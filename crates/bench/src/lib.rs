//! Shared plumbing for the benchmark harnesses that regenerate the paper's
//! tables and figures.
//!
//! Each figure has its own binary under `src/bin/`:
//!
//! | binary | reproduces |
//! |---|---|
//! | `fig1_etl_vs_cow`        | Figure 1 — ETL vs CoW motivation experiment |
//! | `table1_design_space`    | Table 1 — design-space classification probe |
//! | `fig3a_s1_sensitivity`   | Figure 3(a) — co-located state sensitivity |
//! | `fig3b_s2_batches`       | Figure 3(b) — isolated state batch amortisation |
//! | `fig3c_s3ni_elastic`     | Figure 3(c) — hybrid non-isolated elasticity |
//! | `fig4_freshness_sweep`   | Figure 4 — response time vs fresh data accessed |
//! | `fig5_adaptive_mix`      | Figure 5(a)+(b) — adaptive vs static schedules |
//!
//! All binaries accept `--scale <sf>` (CH scale factor, default 0.02),
//! `--sequences <n>` where applicable, and `--csv` to print machine-readable
//! output. `fig5_adaptive_mix` additionally accepts `--concurrent` (OLTP
//! ingest runs continuously while the sequences execute), `--smoke`
//! (CI-bounded tiny run) and `--paper-mix` (the paper's original
//! {Q1, Q6, Q19} sequence instead of the widened seven-query default).
//! Modelled times come from the simulated machine described in
//! DESIGN.md; the shapes — not the absolute values — are the reproduction
//! target (see EXPERIMENTS.md).

use htap_chbench::{ChConfig, ChGenerator, TransactionDriver};
use htap_olap::{QueryExecutor, QueryPlan, WorkerTeam};
use htap_rde::{AccessMethod, RdeConfig, RdeEngine};
use htap_sim::{CoreId, Topology};
use std::sync::Arc;
use std::time::Instant;

/// Command-line options shared by the harness binaries.
#[derive(Debug, Clone, PartialEq)]
pub struct HarnessArgs {
    /// CH-benCHmark scale factor.
    pub scale: f64,
    /// Number of sequences / repetitions, where applicable.
    pub sequences: usize,
    /// Emit CSV instead of an aligned text table.
    pub csv: bool,
    /// Also run the measured (wall-clock) scaling sweep where the harness
    /// supports one — real threads over real data instead of modelled time.
    pub measured: bool,
    /// Run OLTP ingest continuously *while* the analytical sequences execute
    /// (fig5): per-query freshness against the live delta stream and
    /// measured, not modelled, per-query OLTP throughput.
    pub concurrent: bool,
    /// Bound the run to a CI-friendly few seconds (tiny scale, few
    /// sequences); used by the concurrent smoke step.
    pub smoke: bool,
    /// Restrict fig5 to the paper's original {Q1, Q6, Q19} mix instead of
    /// the widened {Q1, Q3, Q4, Q6, Q12, Q14, Q19} default.
    pub paper_mix: bool,
    /// Export a Chrome `trace_event` JSON file of the run (spans, per-worker
    /// events and RDE decisions) to the given path; open it in
    /// `chrome://tracing` or Perfetto.
    pub trace: Option<String>,
}

impl Default for HarnessArgs {
    fn default() -> Self {
        HarnessArgs {
            scale: 0.02,
            sequences: 30,
            csv: false,
            measured: false,
            concurrent: false,
            smoke: false,
            paper_mix: false,
            trace: None,
        }
    }
}

impl HarnessArgs {
    /// Parse `--scale`, `--sequences` and `--csv` from the process arguments,
    /// falling back to the defaults for anything absent.
    pub fn parse() -> Self {
        Self::parse_from(std::env::args().skip(1))
    }

    /// Parse from an explicit iterator (testable).
    pub fn parse_from<I: IntoIterator<Item = String>>(args: I) -> Self {
        let mut out = Self::default();
        let mut iter = args.into_iter();
        while let Some(arg) = iter.next() {
            match arg.as_str() {
                "--scale" => {
                    if let Some(v) = iter.next().and_then(|v| v.parse().ok()) {
                        out.scale = v;
                    }
                }
                "--sequences" => {
                    if let Some(v) = iter.next().and_then(|v| v.parse().ok()) {
                        out.sequences = v;
                    }
                }
                "--csv" => out.csv = true,
                "--measured" => out.measured = true,
                "--concurrent" => out.concurrent = true,
                "--smoke" => out.smoke = true,
                "--paper-mix" => out.paper_mix = true,
                "--trace" => out.trace = iter.next(),
                _ => {}
            }
        }
        out
    }

    /// The CH-benCHmark configuration implied by the arguments, bounded below
    /// so even `--scale 0` produces a runnable database.
    pub fn chbench(&self) -> ChConfig {
        let mut cfg = ChConfig::scale_factor(self.scale.max(0.001));
        // Keep warehouse/customer dimensions host-friendly at tiny scales.
        cfg.warehouses = 4;
        cfg.customers_per_district = 100;
        cfg.items = 10_000;
        cfg
    }
}

/// A populated HTAP stack ready for an experiment: RDE engine (with both
/// engines inside), the CH generator's report and the transaction driver.
pub struct Harness {
    /// The resource and data exchange engine owning both engines.
    pub rde: Arc<RdeEngine>,
    /// The CH-benCHmark transaction driver.
    pub driver: TransactionDriver,
    /// The population that was loaded.
    pub rows_loaded: u64,
}

impl Harness {
    /// Build a populated stack on the given topology.
    pub fn build(args: &HarnessArgs, topology: Topology) -> Self {
        let chbench = args.chbench();
        let rde_config = RdeConfig {
            topology,
            ..RdeConfig::default()
        };
        let rde = Arc::new(RdeEngine::bootstrap(rde_config));
        let generator = ChGenerator::new(chbench.clone());
        let report = generator.build(&rde).expect("population succeeds");
        Harness {
            rde,
            driver: TransactionDriver::for_config(&chbench),
            rows_loaded: report.total_rows,
        }
    }

    /// Build on the paper's two-socket evaluation server.
    pub fn two_socket(args: &HarnessArgs) -> Self {
        Self::build(args, Topology::two_socket())
    }

    /// Build on the four-socket machine of Figure 1.
    pub fn four_socket(args: &HarnessArgs) -> Self {
        Self::build(args, Topology::four_socket())
    }

    /// Run `txns` NewOrder transactions spread over `workers` warehouses.
    pub fn ingest(&self, txns: u64, workers: u64, seed: u64) -> u64 {
        let workers = workers.max(1);
        let per_worker = (txns / workers).max(1);
        let mut committed = 0;
        for w in 0..workers {
            committed += self
                .driver
                .run_new_orders(self.rde.oltp(), w, per_worker, seed + w);
        }
        committed
    }
}

/// One point of a measured (wall-clock) scaling sweep: the same plan over
/// the same data, executed by a worker team of the given size.
#[derive(Debug, Clone, PartialEq)]
pub struct MeasuredPoint {
    /// Pipeline workers (granted cores) of the run.
    pub workers: usize,
    /// Best wall-clock execution time over the repetitions, seconds.
    pub best_seconds: f64,
    /// Scan throughput at the best time, tuples per second.
    pub tuples_per_second: f64,
}

/// Measure wall-clock scan scaling of the morsel-driven executor: execute
/// `plan` with each worker count of `worker_counts` and report the best of
/// `repetitions` runs (the modelled times elsewhere in the harnesses are
/// deterministic; this is the one place real threads touch real data, so the
/// minimum over a few runs filters scheduler noise).
pub fn measured_scan_scaling(
    rde: &RdeEngine,
    plan: &QueryPlan,
    access: AccessMethod,
    worker_counts: &[usize],
    repetitions: usize,
) -> Vec<MeasuredPoint> {
    let sources = rde.sources_for(&plan.tables(), access);
    // Morsels small enough that even the tiny default scale gives every
    // worker of the largest team a queue to pull from.
    let executor = QueryExecutor::with_block_rows(4 * 1024);
    worker_counts
        .iter()
        .map(|&workers| {
            let team = WorkerTeam::from_cores((0..workers as u16).map(CoreId).collect());
            // Warm-up run: faults the columns in and spins the threads up once.
            let output = executor
                .execute_parallel(plan, &sources, &team)
                .expect("CH plan matches its sources");
            let tuples = output.work.tuples_scanned;
            let mut best = f64::INFINITY;
            for _ in 0..repetitions.max(1) {
                let start = Instant::now();
                let out = executor
                    .execute_parallel(plan, &sources, &team)
                    .expect("CH plan matches its sources");
                let elapsed = start.elapsed().as_secs_f64();
                assert_eq!(out.result, output.result, "parallel runs must agree");
                best = best.min(elapsed);
            }
            MeasuredPoint {
                workers,
                best_seconds: best,
                tuples_per_second: if best > 0.0 {
                    tuples as f64 / best
                } else {
                    0.0
                },
            }
        })
        .collect()
}

/// Format a seconds value with µs precision for the experiment tables.
pub fn fmt_secs(s: f64) -> String {
    format!("{s:.6}")
}

/// Format a throughput value as MTPS.
pub fn fmt_mtps(tps: f64) -> String {
    format!("{:.3}", tps / 1e6)
}

/// The executor perf-trajectory fixture: one synthetic fact relation with
/// two dimensions plus the six plan shapes of the morsel executor, shared
/// by the `olap/vectorized_*` / `olap/baseline_*` criterion benches and the
/// `bench_exec` binary that records `BENCH_exec.json`.
pub mod exec_trajectory {
    use htap_olap::{
        AggExpr, BuildSide, CmpOp, Predicate, QueryPlan, ScalarExpr, ScanSource, TopK,
    };
    use htap_sim::SocketId;
    use htap_storage::{ColumnDef, ColumnarTable, DataType, TableSchema, TableSnapshot, Value};
    use std::collections::BTreeMap;
    use std::sync::Arc;

    /// Build the fact/dim/far access paths with `rows` fact tuples.
    pub fn sources(rows: u64) -> BTreeMap<String, ScanSource> {
        let fact = {
            let schema = TableSchema::new(
                "fact",
                vec![
                    ColumnDef::new("f_id", DataType::I64),
                    ColumnDef::new("f_mid", DataType::I64),
                    ColumnDef::new("f_g", DataType::I32),
                    ColumnDef::new("f_hc", DataType::I64),
                    ColumnDef::new("f_a", DataType::F64),
                    ColumnDef::new("f_b", DataType::F64),
                ],
                Some(0),
            );
            let t = ColumnarTable::new(schema);
            for i in 0..rows {
                t.append_row(&[
                    Value::I64(i as i64),
                    Value::I64((i % 64) as i64),
                    Value::I32((i % 24) as i32),
                    Value::I64((i.wrapping_mul(2654435761) % 65536) as i64),
                    Value::F64((i % 100) as f64 + 0.25),
                    Value::F64((i % 13) as f64 * 0.5),
                ])
                .unwrap();
            }
            Arc::new(t)
        };
        let dim = {
            let schema = TableSchema::new(
                "dim",
                vec![
                    ColumnDef::new("d_id", DataType::I64),
                    ColumnDef::new("d_far", DataType::I64),
                    ColumnDef::new("d_v", DataType::F64),
                ],
                Some(0),
            );
            let t = ColumnarTable::new(schema);
            for i in 0..64u64 {
                t.append_row(&[
                    Value::I64(i as i64),
                    Value::I64((i % 8) as i64),
                    Value::F64(i as f64 * 3.0),
                ])
                .unwrap();
            }
            Arc::new(t)
        };
        let far = {
            let schema = TableSchema::new(
                "far",
                vec![
                    ColumnDef::new("r_id", DataType::I64),
                    ColumnDef::new("r_v", DataType::F64),
                ],
                Some(0),
            );
            let t = ColumnarTable::new(schema);
            for i in 0..8u64 {
                t.append_row(&[Value::I64(i as i64), Value::F64(i as f64)])
                    .unwrap();
            }
            Arc::new(t)
        };
        let mut sources = BTreeMap::new();
        let snap = TableSnapshot::new("fact".into(), fact, rows, 0);
        sources.insert(
            "fact".to_string(),
            ScanSource::contiguous_snapshot(&snap, SocketId(0)),
        );
        let snap = TableSnapshot::new("dim".into(), dim, 64, 0);
        sources.insert(
            "dim".to_string(),
            ScanSource::contiguous_snapshot(&snap, SocketId(0)),
        );
        let snap = TableSnapshot::new("far".into(), far, 8, 0);
        sources.insert(
            "far".to_string(),
            ScanSource::contiguous_snapshot(&snap, SocketId(0)),
        );
        sources
    }

    /// The six plan shapes of the trajectory, labelled by the CH query
    /// whose shape they mirror (plus a high-cardinality group-by stressing
    /// the radix-partitioned merge).
    pub fn plans() -> Vec<(&'static str, QueryPlan)> {
        vec![
            (
                "q6_aggregate",
                QueryPlan::Aggregate {
                    table: "fact".into(),
                    filters: vec![Predicate::new("f_a", CmpOp::Lt, 60.0)],
                    aggregates: vec![
                        AggExpr::Sum(ScalarExpr::col("f_a") * ScalarExpr::col("f_b")),
                        AggExpr::Avg(ScalarExpr::col("f_a")),
                        AggExpr::Count,
                    ],
                },
            ),
            (
                // Mirrors the repo's ch_q1: sums, averages and a count over
                // two measures, grouped by a small integer key.
                "q1_group_by",
                QueryPlan::GroupByAggregate {
                    table: "fact".into(),
                    filters: vec![Predicate::new("f_a", CmpOp::Ge, 10.0)],
                    group_by: vec!["f_g".into()],
                    aggregates: vec![
                        AggExpr::Sum(ScalarExpr::col("f_a")),
                        AggExpr::Sum(ScalarExpr::col("f_b")),
                        AggExpr::Avg(ScalarExpr::col("f_a")),
                        AggExpr::Avg(ScalarExpr::col("f_b")),
                        AggExpr::Count,
                    ],
                },
            ),
            (
                // High-cardinality GROUP BY: up to 64k scrambled groups, the
                // shape the radix-partitioned merge exists for. No filter, so
                // every row upserts into the group table.
                "hicard_group_by",
                QueryPlan::GroupByAggregate {
                    table: "fact".into(),
                    filters: vec![],
                    group_by: vec!["f_hc".into()],
                    aggregates: vec![
                        AggExpr::Sum(ScalarExpr::col("f_a")),
                        AggExpr::Max(ScalarExpr::col("f_b")),
                        AggExpr::Count,
                    ],
                },
            ),
            (
                "q19_join",
                QueryPlan::JoinAggregate {
                    fact: "fact".into(),
                    dim: "dim".into(),
                    fact_key: "f_mid".into(),
                    dim_key: "d_id".into(),
                    fact_filters: vec![Predicate::new("f_a", CmpOp::Ge, 5.0)],
                    dim_filters: vec![Predicate::new("d_v", CmpOp::Ge, 30.0)],
                    aggregates: vec![AggExpr::Sum(ScalarExpr::col("f_a")), AggExpr::Count],
                },
            ),
            (
                "q3_multi_join",
                QueryPlan::MultiJoinAggregate {
                    fact: "fact".into(),
                    fact_key: ScalarExpr::col("f_mid"),
                    fact_filters: vec![Predicate::new("f_b", CmpOp::Ge, 1.0)],
                    mid: BuildSide::new("dim", ScalarExpr::col("d_id"), vec![]),
                    mid_fk: ScalarExpr::col("d_far"),
                    far: BuildSide::new(
                        "far",
                        ScalarExpr::col("r_id"),
                        vec![Predicate::new("r_v", CmpOp::Ge, 2.0)],
                    ),
                    aggregates: vec![AggExpr::Sum(ScalarExpr::col("f_a")), AggExpr::Count],
                },
            ),
            (
                "q4_join_group_by",
                QueryPlan::JoinGroupByAggregate {
                    fact: "fact".into(),
                    fact_key: ScalarExpr::col("f_mid"),
                    fact_filters: vec![Predicate::new("f_a", CmpOp::Ge, 10.0)],
                    dim: BuildSide::new(
                        "dim",
                        ScalarExpr::col("d_id"),
                        vec![Predicate::new("d_v", CmpOp::Ge, 15.0)],
                    ),
                    group_by: vec!["f_g".into()],
                    aggregates: vec![AggExpr::Count, AggExpr::Sum(ScalarExpr::col("f_a"))],
                    top_k: Some(TopK {
                        agg_index: 0,
                        k: 10,
                    }),
                },
            ),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn args_parse_known_flags_and_ignore_others() {
        let args = HarnessArgs::parse_from(
            [
                "--scale",
                "0.05",
                "--junk",
                "--sequences",
                "12",
                "--csv",
                "--concurrent",
                "--smoke",
                "--paper-mix",
                "--trace",
                "out.json",
            ]
            .into_iter()
            .map(String::from),
        );
        assert_eq!(args.scale, 0.05);
        assert_eq!(args.sequences, 12);
        assert!(args.csv);
        assert!(args.concurrent);
        assert!(args.smoke);
        assert!(args.paper_mix);
        assert_eq!(args.trace.as_deref(), Some("out.json"));
        let defaults = HarnessArgs::parse_from(std::iter::empty());
        assert_eq!(defaults, HarnessArgs::default());
    }

    #[test]
    fn chbench_config_is_bounded_below() {
        let args = HarnessArgs {
            scale: 0.0,
            ..HarnessArgs::default()
        };
        assert!(args.chbench().orderlines >= 6_000);
    }

    #[test]
    fn harness_builds_and_ingests() {
        let args = HarnessArgs {
            scale: 0.001,
            sequences: 1,
            ..HarnessArgs::default()
        };
        let harness = Harness::two_socket(&args);
        assert!(harness.rows_loaded > 0);
        let committed = harness.ingest(8, 4, 1);
        assert!(committed >= 4);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_secs(0.1234567), "0.123457");
        assert_eq!(fmt_mtps(1_234_000.0), "1.234");
    }
}
