//! A naive, sequential, row-at-a-time reference executor — the differential
//! testing oracle of the morsel-driven engine.
//!
//! The oracle shares exactly one thing with [`crate::exec::QueryExecutor`]:
//! plan lowering. Every plan is lowered onto the composable operator DAG and
//! decomposed by [`crate::dag::DagPlan::decompose`], so both implementations
//! agree on *what* to compute; everything about *how* is independent. Scalar
//! expressions are evaluated recursively per row (not vectorised per block),
//! predicates are re-derived from [`CmpOp`] here, aggregation uses its own
//! accumulator instead of [`crate::expr::AggState`], and join multiplicities
//! live in ordered `BTreeMap` weight maps instead of the engine's
//! open-addressing [`crate::hashtable::JoinTable`]. A row matched by a
//! duplicate-key build side is folded once per matching build tuple —
//! literal repetition, where the engine scales by the multiplicity. Two
//! independent implementations agreeing on randomized plans is the
//! correctness argument (the strategy HTAP engines like oxibase use:
//! validate the optimised engine against a semantic oracle). It is used only
//! by tests and the differential harness — production queries always run
//! through the morsel engine.
//!
//! Floating-point caveat: the oracle accumulates strictly in scan order
//! (and folds weighted rows by repeated addition) while the engine merges
//! per-morsel partial sums (and scales by the weight), so SUM/AVG results
//! agree only up to floating-point associativity — differential tests
//! compare them with a relative tolerance. COUNT, MIN, MAX and group keys
//! are exact.

use crate::block::Block;
use crate::dag::{BuildSpec, DagPlan, DagSpec, Finisher, PipelineSpec, ProbeSpec, RowSlot};
use crate::error::OlapError;
use crate::exec::{GroupRow, QueryResult};
use crate::expr::{AggExpr, CmpOp, Predicate, ScalarExpr};
use crate::plan::QueryPlan;
use crate::source::ScanSource;
use std::collections::BTreeMap;

/// Row-at-a-time scalar evaluation (recursive, unvectorised).
fn scalar_at(expr: &ScalarExpr, block: &Block, row: usize) -> f64 {
    match expr {
        ScalarExpr::Col(name) => block
            .numeric(name)
            .map(|c| c[row])
            .or_else(|| block.key(name).map(|c| c[row] as f64))
            // lint:allow(no-panic): row-at-a-time test oracle, never on the query path; a
            .unwrap_or_else(|| panic!("column {name} not present in block")),
        ScalarExpr::Literal(v) => *v,
        ScalarExpr::Add(a, b) => scalar_at(a, block, row) + scalar_at(b, block, row),
        ScalarExpr::Sub(a, b) => scalar_at(a, block, row) - scalar_at(b, block, row),
        ScalarExpr::Mul(a, b) => scalar_at(a, block, row) * scalar_at(b, block, row),
    }
}

/// Row-at-a-time join-key evaluation, mirroring the engine's exactness rule:
/// a plain column reference reads through the exact `i64` key path (full
/// `i64` range); a computed expression evaluates in `f64` (exact below 2^53).
fn key_at(expr: &ScalarExpr, block: &Block, row: usize) -> i64 {
    if let ScalarExpr::Col(name) = expr {
        if let Some(keys) = block.key(name) {
            return keys[row];
        }
    }
    scalar_at(expr, block, row) as i64
}

/// Split a key expression between the key and numeric load lists, the same
/// rule the engine applies: plain columns load as keys, computed-expression
/// inputs as numerics.
fn push_key_columns(expr: &ScalarExpr, numeric: &mut Vec<String>, keys: &mut Vec<String>) {
    match expr {
        ScalarExpr::Col(name) => keys.push(name.clone()),
        computed => numeric.extend(computed.columns()),
    }
}

/// Row-at-a-time comparison, re-derived from the operator.
fn cmp_at(op: CmpOp, v: f64, literal: f64) -> bool {
    match op {
        CmpOp::Eq => v == literal,
        CmpOp::Ne => v != literal,
        CmpOp::Lt => v < literal,
        CmpOp::Le => v <= literal,
        CmpOp::Gt => v > literal,
        CmpOp::Ge => v >= literal,
    }
}

/// Row-at-a-time predicate evaluation.
fn passes(filters: &[Predicate], block: &Block, row: usize) -> bool {
    filters.iter().all(|p| {
        let v = block
            .numeric(&p.column)
            .map(|c| c[row])
            .or_else(|| block.key(&p.column).map(|c| c[row] as f64))
            // lint:allow(no-panic): test oracle; a missing column is a harness bug, not a query error
            .unwrap_or_else(|| panic!("column {} not present in block", p.column));
        cmp_at(p.op, v, p.literal)
    })
}

/// The oracle's aggregate accumulator — independent of [`crate::expr::AggState`].
#[derive(Debug, Clone, Copy, Default)]
struct RefAcc {
    sum: f64,
    count: u64,
    min: Option<f64>,
    max: Option<f64>,
}

impl RefAcc {
    fn add(&mut self, v: f64) {
        self.sum += v;
        self.count += 1;
        self.min = Some(match self.min {
            Some(m) if m <= v => m,
            _ => v,
        });
        self.max = Some(match self.max {
            Some(m) if m >= v => m,
            _ => v,
        });
    }

    fn add_count(&mut self) {
        self.count += 1;
    }

    /// Matches the engine's defined empty values: 0.0 for empty AVG/MIN/MAX.
    fn finalize(&self, agg: &AggExpr) -> f64 {
        match agg {
            AggExpr::Sum(_) => self.sum,
            AggExpr::Avg(_) => {
                if self.count == 0 {
                    0.0
                } else {
                    self.sum / self.count as f64
                }
            }
            AggExpr::Min(_) => self.min.unwrap_or(0.0),
            AggExpr::Max(_) => self.max.unwrap_or(0.0),
            AggExpr::Count => self.count as f64,
        }
    }
}

/// Fold one surviving row into every accumulator, `weight` times over — the
/// literal semantics of a multiplicity-preserving inner join: the row joins
/// `weight` build tuples, so it is aggregated `weight` times.
fn fold(accs: &mut [RefAcc], aggregates: &[AggExpr], block: &Block, row: usize, weight: u64) {
    for _ in 0..weight {
        for (acc, agg) in accs.iter_mut().zip(aggregates) {
            match agg {
                AggExpr::Count => acc.add_count(),
                AggExpr::Sum(e) | AggExpr::Avg(e) | AggExpr::Min(e) | AggExpr::Max(e) => {
                    acc.add(scalar_at(e, block, row));
                }
            }
        }
    }
}

fn finalize_all(accs: &[RefAcc], aggregates: &[AggExpr]) -> Vec<f64> {
    accs.iter()
        .zip(aggregates)
        .map(|(acc, agg)| acc.finalize(agg))
        .collect()
}

fn source<'a>(
    sources: &'a BTreeMap<String, ScanSource>,
    table: &str,
) -> Result<&'a ScanSource, OlapError> {
    sources.get(table).ok_or_else(|| OlapError::MissingSource {
        table: table.to_string(),
    })
}

/// Materialise a whole relation as blocks, one per segment, in scan order.
fn load(src: &ScanSource, numeric: &[String], keys: &[String]) -> Result<Vec<Block>, OlapError> {
    let mut sorted: Vec<&str> = numeric.iter().map(String::as_str).collect();
    sorted.sort_unstable();
    sorted.dedup();
    let mut key_refs: Vec<&str> = keys.iter().map(String::as_str).collect();
    key_refs.sort_unstable();
    key_refs.dedup();
    let mut blocks = Vec::new();
    src.for_each_block(&sorted, &key_refs, 0, |b| blocks.push(b))?;
    Ok(blocks)
}

/// Columns a predicate list reads.
fn filter_columns(filters: &[Predicate]) -> Vec<String> {
    filters.iter().map(|p| p.column.clone()).collect()
}

/// Columns an aggregate list reads.
fn agg_columns(aggregates: &[AggExpr]) -> Vec<String> {
    aggregates.iter().flat_map(AggExpr::columns).collect()
}

/// The ordered weight map of one build: key → how many surviving build
/// tuples carry it (itself weighted by the build pipeline's own probes, so
/// chained builds multiply through).
type WeightMap = BTreeMap<i64, u64>;

/// The join multiplicity of one probe-side row: the product of the matched
/// weights across the pipeline's probe chain, 0 as soon as any probe
/// misses.
fn probe_weight(probes: &[ProbeSpec], built: &[WeightMap], block: &Block, row: usize) -> u64 {
    let mut w = 1u64;
    for p in probes {
        w *= built[p.build]
            .get(&key_at(&p.key, block, row))
            .copied()
            .unwrap_or(0);
        if w == 0 {
            return 0;
        }
    }
    w
}

/// Run one build pipeline into its weight map.
fn reference_build(
    src: &ScanSource,
    build: &BuildSpec,
    built: &[WeightMap],
) -> Result<WeightMap, OlapError> {
    let mut numeric = filter_columns(&build.input.filters);
    let mut keys = Vec::new();
    push_key_columns(&build.key, &mut numeric, &mut keys);
    for p in &build.input.probes {
        push_key_columns(&p.key, &mut numeric, &mut keys);
    }
    let mut map = WeightMap::new();
    for block in load(src, &numeric, &keys)? {
        for row in 0..block.rows() {
            if !passes(&build.input.filters, &block, row) {
                continue;
            }
            let w = probe_weight(&build.input.probes, built, &block, row);
            if w == 0 {
                continue;
            }
            *map.entry(key_at(&build.key, &block, row)).or_insert(0) += w;
        }
    }
    Ok(map)
}

/// Scan the root pipeline into scalar accumulators.
fn reference_scalar_scan(
    src: &ScanSource,
    root: &PipelineSpec,
    aggregates: &[AggExpr],
    built: &[WeightMap],
) -> Result<Vec<f64>, OlapError> {
    let mut numeric = filter_columns(&root.filters);
    numeric.extend(agg_columns(aggregates));
    let mut keys = Vec::new();
    for p in &root.probes {
        push_key_columns(&p.key, &mut numeric, &mut keys);
    }
    let mut accs = vec![RefAcc::default(); aggregates.len()];
    for block in load(src, &numeric, &keys)? {
        for row in 0..block.rows() {
            if !passes(&root.filters, &block, row) {
                continue;
            }
            let w = probe_weight(&root.probes, built, &block, row);
            if w == 0 {
                continue;
            }
            fold(&mut accs, aggregates, &block, row, w);
        }
    }
    Ok(finalize_all(&accs, aggregates))
}

/// Scan the root pipeline into groups keyed by `group_by` columns.
fn reference_grouped_scan(
    src: &ScanSource,
    root: &PipelineSpec,
    group_by: &[String],
    aggregates: &[AggExpr],
    built: &[WeightMap],
) -> Result<Vec<GroupRow>, OlapError> {
    let mut numeric = filter_columns(&root.filters);
    numeric.extend(agg_columns(aggregates));
    let mut keys = group_by.to_vec();
    for p in &root.probes {
        push_key_columns(&p.key, &mut numeric, &mut keys);
    }
    let mut groups: BTreeMap<Vec<i64>, Vec<RefAcc>> = BTreeMap::new();
    for block in load(src, &numeric, &keys)? {
        let key_columns: Vec<&[i64]> = group_by
            .iter()
            .map(|k| {
                block.key(k).ok_or_else(|| OlapError::MissingColumn {
                    column: k.to_string(),
                })
            })
            .collect::<Result<_, _>>()?;
        for row in 0..block.rows() {
            if !passes(&root.filters, &block, row) {
                continue;
            }
            let w = probe_weight(&root.probes, built, &block, row);
            if w == 0 {
                continue;
            }
            let key: Vec<i64> = key_columns.iter().map(|col| col[row]).collect();
            let accs = groups
                .entry(key)
                .or_insert_with(|| vec![RefAcc::default(); aggregates.len()]);
            fold(accs, aggregates, &block, row, w);
        }
    }
    Ok(groups
        .into_iter()
        .map(|(key, accs)| (key, finalize_all(&accs, aggregates)))
        .collect())
}

/// One finalised-row slot, re-derived (group keys are exact integers far
/// below 2^53).
fn slot_at(row: &GroupRow, slot: RowSlot) -> f64 {
    match slot {
        RowSlot::Key(i) => row.0[i] as f64,
        RowSlot::Agg(i) => row.1[i],
    }
}

/// Apply one finisher over finalised groups: HAVING retains, sorts are
/// total with ties broken by ascending full group key — the same
/// deterministic rule the morsel engine implements, re-derived here.
fn apply_finisher(finisher: &Finisher, rows: &mut Vec<GroupRow>) {
    match finisher {
        Finisher::Having(preds) => rows.retain(|row| {
            preds
                .iter()
                .all(|p| cmp_at(p.op, slot_at(row, p.slot), p.literal))
        }),
        Finisher::Sort(keys) => rows.sort_by(|a, b| {
            for key in keys {
                let (x, y) = (slot_at(a, key.slot), slot_at(b, key.slot));
                let ord = if key.desc {
                    y.total_cmp(&x)
                } else {
                    x.total_cmp(&y)
                };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            a.0.cmp(&b.0)
        }),
        Finisher::Limit(n) => rows.truncate(*n),
    }
}

/// Execute a decomposed DAG with the row-at-a-time interpreter.
fn execute_spec(
    spec: &DagSpec,
    sources: &BTreeMap<String, ScanSource>,
) -> Result<QueryResult, OlapError> {
    let mut built: Vec<WeightMap> = Vec::with_capacity(spec.builds.len());
    for build in &spec.builds {
        let map = reference_build(source(sources, &build.input.table)?, build, &built)?;
        built.push(map);
    }
    match &spec.group_by {
        None => Ok(QueryResult::Scalars(reference_scalar_scan(
            source(sources, &spec.root.table)?,
            &spec.root,
            &spec.aggregates,
            &built,
        )?)),
        Some(group_by) => {
            let mut rows = reference_grouped_scan(
                source(sources, &spec.root.table)?,
                &spec.root,
                group_by,
                &spec.aggregates,
                &built,
            )?;
            for finisher in &spec.finishers {
                apply_finisher(finisher, &mut rows);
            }
            Ok(QueryResult::Groups(rows))
        }
    }
}

/// Execute `plan` with the naive row-at-a-time interpreter. Lowering and
/// decomposition are shared with the engine; execution is not.
pub fn execute_reference(
    plan: &QueryPlan,
    sources: &BTreeMap<String, ScanSource>,
) -> Result<QueryResult, OlapError> {
    let spec = DagPlan::lower(plan).decompose()?;
    execute_spec(&spec, sources)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Predicate;
    use htap_sim::SocketId;
    use htap_storage::{ColumnDef, ColumnarTable, DataType, TableSchema, TableSnapshot, Value};
    use std::sync::Arc;

    fn sources() -> BTreeMap<String, ScanSource> {
        let schema = TableSchema::new(
            "t",
            vec![
                ColumnDef::new("id", DataType::I64),
                ColumnDef::new("g", DataType::I32),
                ColumnDef::new("v", DataType::F64),
            ],
            Some(0),
        );
        let t = ColumnarTable::new(schema);
        for i in 0..100u64 {
            t.append_row(&[
                Value::I64(i as i64),
                Value::I32((i % 4) as i32),
                Value::F64(i as f64 * 0.5),
            ])
            .unwrap();
        }
        let snap = TableSnapshot::new("t".into(), Arc::new(t), 100, 0);
        let mut m = BTreeMap::new();
        m.insert(
            "t".to_string(),
            ScanSource::contiguous_snapshot(&snap, SocketId(0)),
        );
        m
    }

    #[test]
    fn reference_aggregate_matches_hand_computation() {
        let plan = QueryPlan::Aggregate {
            table: "t".into(),
            filters: vec![Predicate::new("v", CmpOp::Ge, 10.0)],
            aggregates: vec![
                AggExpr::Sum(ScalarExpr::col("v")),
                AggExpr::Count,
                AggExpr::Min(ScalarExpr::col("v")),
                AggExpr::Max(ScalarExpr::col("v")),
            ],
        };
        let out = execute_reference(&plan, &sources()).unwrap();
        let vals = out.scalars().unwrap();
        let expected: Vec<f64> = (0..100u64)
            .map(|i| i as f64 * 0.5)
            .filter(|v| *v >= 10.0)
            .collect();
        assert_eq!(vals[0], expected.iter().sum::<f64>());
        assert_eq!(vals[1], expected.len() as f64);
        assert_eq!(vals[2], 10.0);
        assert_eq!(vals[3], 49.5);
    }

    #[test]
    fn reference_empty_selection_finalises_to_engine_empty_values() {
        let plan = QueryPlan::Aggregate {
            table: "t".into(),
            filters: vec![Predicate::new("v", CmpOp::Lt, -1.0)],
            aggregates: vec![
                AggExpr::Min(ScalarExpr::col("v")),
                AggExpr::Max(ScalarExpr::col("v")),
                AggExpr::Avg(ScalarExpr::col("v")),
            ],
        };
        let out = execute_reference(&plan, &sources()).unwrap();
        assert_eq!(out.scalars().unwrap(), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn reference_group_by_produces_sorted_groups() {
        let plan = QueryPlan::GroupByAggregate {
            table: "t".into(),
            filters: vec![],
            group_by: vec!["g".into()],
            aggregates: vec![AggExpr::Count],
        };
        let out = execute_reference(&plan, &sources()).unwrap();
        let groups = out.groups().unwrap();
        assert_eq!(groups.len(), 4);
        for (i, (key, aggs)) in groups.iter().enumerate() {
            assert_eq!(key[0], i as i64);
            assert_eq!(aggs[0], 25.0);
        }
    }

    #[test]
    fn reference_missing_source_is_a_typed_error() {
        let plan = QueryPlan::Aggregate {
            table: "nope".into(),
            filters: vec![],
            aggregates: vec![AggExpr::Count],
        };
        assert_eq!(
            execute_reference(&plan, &BTreeMap::new()).unwrap_err(),
            OlapError::MissingSource {
                table: "nope".into()
            }
        );
    }

    #[test]
    fn reference_folds_duplicate_build_keys_once_per_matching_tuple() {
        // Self-join t with itself on g: the build side has 25 tuples per
        // distinct g value, so every probe row joins 25 build tuples and
        // COUNT sees 100 * 25 joined tuples.
        let mut b = crate::dag::DagBuilder::default();
        let dim = b.scan("t");
        let build = b.build(dim, ScalarExpr::col("g"));
        let probe_scan = b.scan("t");
        let probed = b.probe(probe_scan, build, ScalarExpr::col("g"));
        b.aggregate(probed, None, vec![AggExpr::Count]);
        let plan = QueryPlan::Dag(b.finish());
        let out = execute_reference(&plan, &sources()).unwrap();
        assert_eq!(out.scalars().unwrap(), &[2500.0]);
    }
}
