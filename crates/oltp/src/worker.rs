//! Worker manager: an elastic pool of transaction workers.
//!
//! The paper's OLTP engine "uses one hardware thread per transaction. The WM
//! keeps a worker pool of active threads. We set each thread to first generate
//! a transaction and then execute it, simulating a full transaction queue. The
//! WM exposes an API to set the number of active worker threads and their CPU
//! affinities, thus enabling the OLTP engine to elastically scale up and down
//! upon request" (§3.2).
//!
//! CPU affinities are logical: each worker is associated with a simulated
//! [`CoreId`] from `htap-sim`, and the resulting placement is what the
//! interference model uses to compute modelled throughput. Pinning to host
//! OS cores is deliberately not performed — the evaluation machine is
//! simulated (see DESIGN.md).

use htap_sim::{CoreId, CpuSet};
use parking_lot::{Mutex, RwLock};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Result of a worker-pool run.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct WorkerReport {
    /// Transactions committed, per worker.
    pub committed_per_worker: Vec<u64>,
    /// Transactions that gave up (aborted on their final attempt), per worker.
    pub aborted_per_worker: Vec<u64>,
    /// Retry attempts (an aborted attempt that was tried again), per worker.
    /// Disjoint from `aborted_per_worker`: a transaction that fails twice and
    /// then commits contributes 2 retries, 1 commit and 0 aborts.
    pub retried_per_worker: Vec<u64>,
}

impl WorkerReport {
    /// Total committed transactions.
    pub fn committed(&self) -> u64 {
        self.committed_per_worker.iter().sum()
    }

    /// Total transactions that gave up.
    pub fn aborted(&self) -> u64 {
        self.aborted_per_worker.iter().sum()
    }

    /// Total retry attempts.
    pub fn retried(&self) -> u64 {
        self.retried_per_worker.iter().sum()
    }
}

/// One consistent snapshot of the live ingest counters.
///
/// Produced by a seqlock read of [`CountsCell`], so the three totals belong
/// to the same instant — unlike summing three per-worker atomic vectors,
/// where commits landing between the sums could show, e.g., a retry without
/// its eventual commit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OltpCounts {
    /// Transactions committed.
    pub committed: u64,
    /// Transactions that gave up (aborted on their final attempt).
    pub aborted: u64,
    /// Retry attempts (disjoint from `aborted`).
    pub retried: u64,
}

/// Seqlock-protected counter triple: writers serialize through an odd/even
/// sequence word; readers retry until they observe the same even sequence
/// on both sides of the payload read, guaranteeing a torn-free snapshot.
/// Writes are one CAS + three relaxed adds — cheap enough for once per
/// transaction outcome.
#[derive(Debug, Default)]
struct CountsCell {
    seq: AtomicU64,
    committed: AtomicU64,
    aborted: AtomicU64,
    retried: AtomicU64,
}

impl CountsCell {
    fn add(&self, committed: u64, aborted: u64, retried: u64) {
        loop {
            let s = self.seq.load(Ordering::Relaxed);
            if s & 1 == 0
                && self
                    .seq
                    .compare_exchange_weak(s, s + 1, Ordering::Acquire, Ordering::Relaxed)
                    .is_ok()
            {
                self.committed.fetch_add(committed, Ordering::Relaxed);
                self.aborted.fetch_add(aborted, Ordering::Relaxed);
                self.retried.fetch_add(retried, Ordering::Relaxed);
                self.seq.store(s + 2, Ordering::Release);
                return;
            }
            std::hint::spin_loop();
        }
    }

    fn read(&self) -> OltpCounts {
        loop {
            let s1 = self.seq.load(Ordering::Acquire);
            if s1 & 1 == 1 {
                std::hint::spin_loop();
                continue;
            }
            let snapshot = OltpCounts {
                committed: self.committed.load(Ordering::Relaxed),
                aborted: self.aborted.load(Ordering::Relaxed),
                retried: self.retried.load(Ordering::Relaxed),
            };
            std::sync::atomic::fence(Ordering::Acquire);
            if self.seq.load(Ordering::Relaxed) == s1 {
                return snapshot;
            }
            std::hint::spin_loop();
        }
    }
}

/// Retry policy for aborted transactions in the long-running ingest pool.
///
/// NO-WAIT concurrency control trades waiting for aborts; under contention a
/// bounded retry with jittered exponential backoff recovers most of the lost
/// throughput without letting two workers re-collide in lockstep. The jitter
/// is derived deterministically from `(worker, txn_index, attempt)` so runs
/// stay reproducible.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries after the first failed attempt (0 disables retrying).
    pub max_retries: u32,
    /// Base backoff before the first retry, in microseconds; doubles per
    /// attempt (capped at 64×) with up to 100% deterministic jitter on top.
    /// 0 retries immediately.
    pub backoff_micros: u64,
}

impl RetryPolicy {
    /// Backoff before retry number `attempt` (1-based) of transaction
    /// `txn_index` on worker `worker`, in microseconds. Exponential in the
    /// attempt with a deterministic jitter in `[0, window)` mixed from the
    /// identifying triple (splitmix64 finalizer — no RNG state, no `rand`).
    pub fn backoff_for(&self, worker: u64, txn_index: u64, attempt: u32) -> u64 {
        if self.backoff_micros == 0 {
            return 0;
        }
        let window = self
            .backoff_micros
            .saturating_mul(1u64 << (attempt.saturating_sub(1)).min(6));
        let mut x = worker.wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ txn_index.rotate_left(17)
            ^ (attempt as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x ^= x >> 30;
        x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x ^= x >> 27;
        x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^= x >> 31;
        window + x % window.max(1)
    }
}

/// Pool assignment shared with long-running ingest threads, so mid-flight
/// grants and revocations by the RDE engine take effect without restarting
/// the pool.
#[derive(Debug, Default)]
struct PoolState {
    /// Cores currently assigned to the pool, in worker order.
    affinity: RwLock<Vec<CoreId>>,
    /// Number of workers that are allowed to run (≤ `affinity.len()`).
    active_workers: AtomicU64,
    /// Revoked ingest workers block here instead of sleep-polling (polling
    /// would burn scheduler cycles on the very host whose ingest throughput
    /// is being measured); every resize and stop notifies.
    resize_mutex: std::sync::Mutex<()>,
    resize_cv: std::sync::Condvar,
    /// Retry policy for aborted ingest transactions; read per transaction so
    /// changes take effect mid-flight.
    retry: RwLock<RetryPolicy>,
}

impl PoolState {
    /// Wake every parked worker (after a resize or stop). Holding the mutex
    /// while notifying closes the check-then-wait race in
    /// [`Self::park_until_resize`].
    fn notify_resize(&self) {
        let _guard = self
            .resize_mutex
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        self.resize_cv.notify_all();
    }

    /// Park the calling worker until the next resize/stop notification (with
    /// a timeout backstop). `should_park` is re-checked under the lock so a
    /// notification between the caller's last check and this call is never
    /// lost.
    fn park_until_resize(&self, should_park: impl Fn() -> bool) {
        let guard = self
            .resize_mutex
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        if should_park() {
            let _ = self
                .resize_cv
                .wait_timeout(guard, Duration::from_millis(50));
        }
    }
}

/// Live counters of a continuously running pool.
#[derive(Debug)]
struct IngestShared {
    committed: Vec<AtomicU64>,
    aborted: Vec<AtomicU64>,
    retried: Vec<AtomicU64>,
    /// Consistent-snapshot mirror of the per-worker vectors, updated in the
    /// same places — [`WorkerManager::live_counts`] reads this instead of
    /// summing the vectors so its triple never tears.
    counts: CountsCell,
    stop: AtomicBool,
}

impl IngestShared {
    fn report(&self) -> WorkerReport {
        WorkerReport {
            committed_per_worker: self
                .committed
                .iter()
                .map(|c| c.load(Ordering::Acquire))
                .collect(),
            aborted_per_worker: self
                .aborted
                .iter()
                .map(|a| a.load(Ordering::Acquire))
                .collect(),
            retried_per_worker: self
                .retried
                .iter()
                .map(|r| r.load(Ordering::Acquire))
                .collect(),
        }
    }
}

/// A continuously running set of ingest threads (long-running mode).
#[derive(Debug)]
struct IngestPool {
    shared: Arc<IngestShared>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

/// The elastic worker pool.
#[derive(Debug, Default)]
pub struct WorkerManager {
    state: Arc<PoolState>,
    /// Long-running ingest pool, when one has been started.
    ingest: Mutex<Option<IngestPool>>,
}

impl WorkerManager {
    /// New manager with no workers.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the worker pool to one worker per core of `cores`, all active.
    /// This is the API the RDE engine calls when migrating states; a running
    /// ingest pool observes the new assignment mid-flight.
    pub fn set_workers(&self, cores: &CpuSet) {
        let cores: Vec<CoreId> = cores.iter().collect();
        let n = cores.len() as u64;
        *self.state.affinity.write() = cores;
        self.state.active_workers.store(n, Ordering::Release);
        self.state.notify_resize();
    }

    /// Restrict the number of active workers without changing affinities
    /// (scale down). `n` is clamped to the pool size — the RDE migration
    /// paths may request more workers than the pool holds — and the
    /// effective count is returned.
    pub fn set_active_workers(&self, n: usize) -> usize {
        let pool = self.state.affinity.read().len();
        let effective = n.min(pool);
        self.state
            .active_workers
            .store(effective as u64, Ordering::Release);
        self.state.notify_resize();
        effective
    }

    /// Number of active workers.
    pub fn active_workers(&self) -> usize {
        self.state.active_workers.load(Ordering::Acquire) as usize
    }

    /// The cores assigned to the active workers.
    pub fn affinity(&self) -> Vec<CoreId> {
        let all = self.state.affinity.read();
        all.iter().take(self.active_workers()).copied().collect()
    }

    /// Set the retry policy for aborted ingest transactions. Takes effect on
    /// the next transaction of a running pool.
    pub fn set_retry_policy(&self, policy: RetryPolicy) {
        *self.state.retry.write() = policy;
    }

    /// The current retry policy.
    pub fn retry_policy(&self) -> RetryPolicy {
        *self.state.retry.read()
    }

    /// Start the long-running ingest mode with capacity for the current pool
    /// size only; see [`Self::start_with_capacity`] for grants that may grow
    /// beyond it.
    pub fn start<F>(&self, body: F) -> usize
    where
        F: Fn(usize, CoreId, u64) -> bool + Send + Sync + 'static,
    {
        self.start_with_capacity(0, body)
    }

    /// Start the long-running ingest mode: one OS thread per potential
    /// worker, each repeatedly invoking `body(worker_id, core, txn_index)`
    /// and recording whether the transaction committed. The pool keeps
    /// running until [`Self::stop`]; while it runs, [`Self::set_workers`] /
    /// [`Self::set_active_workers`] resize it mid-flight — deactivated
    /// workers park until they are granted back, and affinity changes are
    /// picked up on the next transaction.
    ///
    /// Threads are spawned for `max(max_workers, current pool size)` workers,
    /// so a later grant *larger* than the pool at start time still finds a
    /// thread to resume (parked threads block on a condition variable until
    /// a resize wakes them). Pass the machine's core count to cover every
    /// possible grant.
    ///
    /// Returns the number of threads spawned: 0 when the capacity is zero or
    /// an ingest run is already active (the running pool is left untouched).
    pub fn start_with_capacity<F>(&self, max_workers: usize, body: F) -> usize
    where
        F: Fn(usize, CoreId, u64) -> bool + Send + Sync + 'static,
    {
        let mut slot = self.ingest.lock();
        if slot.is_some() {
            return 0;
        }
        let pool_size = self.state.affinity.read().len().max(max_workers);
        if pool_size == 0 {
            return 0;
        }
        let shared = Arc::new(IngestShared {
            committed: (0..pool_size).map(|_| AtomicU64::new(0)).collect(),
            aborted: (0..pool_size).map(|_| AtomicU64::new(0)).collect(),
            retried: (0..pool_size).map(|_| AtomicU64::new(0)).collect(),
            counts: CountsCell::default(),
            stop: AtomicBool::new(false),
        });
        let body = Arc::new(body);
        let handles = (0..pool_size)
            .map(|worker_id| {
                let state = Arc::clone(&self.state);
                let shared = Arc::clone(&shared);
                let body = Arc::clone(&body);
                std::thread::Builder::new()
                    .name(format!("oltp-ingest-{worker_id}"))
                    .spawn(move || {
                        // Route this thread's ring events (commit, abort,
                        // retry) to its own oltp-ingest lane, and fetch the
                        // named-counter handles once — increments on the
                        // transaction path are then relaxed atomic adds.
                        htap_obs::bind_thread_oltp(worker_id);
                        let m_committed = htap_obs::counter("oltp.txn.committed");
                        let m_aborted = htap_obs::counter("oltp.txn.aborted");
                        let m_retried = htap_obs::counter("oltp.txn.retried");
                        // The worker's core, when it is inside the current
                        // grant (active and with an assigned affinity slot).
                        let granted_core = |state: &PoolState| {
                            if worker_id < state.active_workers.load(Ordering::Acquire) as usize {
                                state.affinity.read().get(worker_id).copied()
                            } else {
                                None
                            }
                        };
                        let mut txn_index = 0u64;
                        while !shared.stop.load(Ordering::Acquire) {
                            let Some(core) = granted_core(&state) else {
                                state.park_until_resize(|| {
                                    !shared.stop.load(Ordering::Acquire)
                                        && granted_core(&state).is_none()
                                });
                                continue;
                            };
                            // Bounded retry: same (worker, txn_index) pair on
                            // every attempt, so a deterministic body re-runs
                            // the *same* transaction rather than moving on.
                            let mut attempt = 0u32;
                            loop {
                                if body(worker_id, core, txn_index) {
                                    shared.committed[worker_id].fetch_add(1, Ordering::Release);
                                    shared.counts.add(1, 0, 0);
                                    m_committed.inc();
                                    break;
                                }
                                let policy = *state.retry.read();
                                if attempt >= policy.max_retries
                                    || shared.stop.load(Ordering::Acquire)
                                {
                                    shared.aborted[worker_id].fetch_add(1, Ordering::Release);
                                    shared.counts.add(0, 1, 0);
                                    m_aborted.inc();
                                    htap_obs::record_thread(
                                        htap_obs::EventKind::TxnAbort,
                                        htap_obs::now_us(),
                                        worker_id as u64,
                                        txn_index,
                                    );
                                    break;
                                }
                                attempt += 1;
                                shared.retried[worker_id].fetch_add(1, Ordering::Release);
                                shared.counts.add(0, 0, 1);
                                m_retried.inc();
                                htap_obs::record_thread(
                                    htap_obs::EventKind::TxnRetry,
                                    htap_obs::now_us(),
                                    worker_id as u64,
                                    u64::from(attempt),
                                );
                                let backoff =
                                    policy.backoff_for(worker_id as u64, txn_index, attempt);
                                if backoff > 0 {
                                    std::thread::sleep(Duration::from_micros(backoff));
                                }
                            }
                            txn_index += 1;
                        }
                    })
                    .expect("spawning an ingest worker")
            })
            .collect();
        *slot = Some(IngestPool { shared, handles });
        pool_size
    }

    /// Whether a long-running ingest pool is active.
    pub fn ingest_running(&self) -> bool {
        self.ingest.lock().is_some()
    }

    /// Live totals of the running ingest pool — sampled without stopping it,
    /// so callers can derive measured OLTP throughput around each analytical
    /// query. `aborted` counts transactions that gave up; `retried` counts
    /// re-attempts that are NOT in `aborted`. All three fields come from one
    /// seqlock snapshot, so they are mutually consistent (a commit and the
    /// retries that preceded it are either both visible or both not).
    /// Zeroes when no pool runs. Allocation-free: pacing loops poll this at
    /// high frequency.
    pub fn live_counts(&self) -> OltpCounts {
        match self.ingest.lock().as_ref() {
            Some(pool) => pool.shared.counts.read(),
            None => OltpCounts::default(),
        }
    }

    /// Live per-worker commit counts of the running ingest pool (empty when
    /// no pool runs). Lets callers observe which workers a mid-flight resize
    /// parked or resumed.
    pub fn per_worker_committed(&self) -> Vec<u64> {
        match self.ingest.lock().as_ref() {
            Some(pool) => pool.shared.report().committed_per_worker,
            None => Vec::new(),
        }
    }

    /// Stop the long-running ingest pool: signal every thread, join them and
    /// return the final per-worker counts. A no-op returning an empty report
    /// when no pool is running.
    pub fn stop(&self) -> WorkerReport {
        let Some(pool) = self.ingest.lock().take() else {
            return WorkerReport::default();
        };
        pool.shared.stop.store(true, Ordering::Release);
        self.state.notify_resize();
        for handle in pool.handles {
            // A panicked worker must not panic stop(): it is reachable from
            // Drop during unwinding, where a second panic aborts the whole
            // process and masks the original failure. The worker's partial
            // counts are still in the shared counters.
            let _ = handle.join();
        }
        pool.shared.report()
    }

    /// Run `txns_per_worker` transactions on every active worker, in
    /// parallel. The body receives `(worker_id, core, txn_index)` and returns
    /// whether the transaction committed. Returns per-worker counts.
    pub fn run<F>(&self, txns_per_worker: u64, body: F) -> WorkerReport
    where
        F: Fn(usize, CoreId, u64) -> bool + Sync,
    {
        let cores = self.affinity();
        if cores.is_empty() {
            return WorkerReport::default();
        }
        let mut committed = vec![0u64; cores.len()];
        let mut aborted = vec![0u64; cores.len()];
        std::thread::scope(|scope| {
            let handles: Vec<_> = cores
                .iter()
                .enumerate()
                .map(|(worker_id, &core)| {
                    let body = &body;
                    scope.spawn(move || {
                        let mut c = 0u64;
                        let mut a = 0u64;
                        for txn_index in 0..txns_per_worker {
                            if body(worker_id, core, txn_index) {
                                c += 1;
                            } else {
                                a += 1;
                            }
                        }
                        (c, a)
                    })
                })
                .collect();
            for (i, h) in handles.into_iter().enumerate() {
                let (c, a) = h.join().expect("worker panicked");
                committed[i] = c;
                aborted[i] = a;
            }
        });
        let workers = committed.len();
        WorkerReport {
            committed_per_worker: committed,
            aborted_per_worker: aborted,
            retried_per_worker: vec![0; workers],
        }
    }

    /// Run the workers sequentially on the calling thread (deterministic mode
    /// used by benchmarks on single-core hosts). Semantics match [`Self::run`].
    pub fn run_sequential<F>(&self, txns_per_worker: u64, mut body: F) -> WorkerReport
    where
        F: FnMut(usize, CoreId, u64) -> bool,
    {
        let cores = self.affinity();
        let mut committed = vec![0u64; cores.len()];
        let mut aborted = vec![0u64; cores.len()];
        for (worker_id, &core) in cores.iter().enumerate() {
            for txn_index in 0..txns_per_worker {
                if body(worker_id, core, txn_index) {
                    committed[worker_id] += 1;
                } else {
                    aborted[worker_id] += 1;
                }
            }
        }
        let workers = committed.len();
        WorkerReport {
            committed_per_worker: committed,
            aborted_per_worker: aborted,
            retried_per_worker: vec![0; workers],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use htap_sim::{SocketId, Topology};

    fn cores(n: u16) -> CpuSet {
        CpuSet::from_cores((0..n).map(CoreId))
    }

    #[test]
    fn set_workers_and_scale_down() {
        let wm = WorkerManager::new();
        assert_eq!(wm.active_workers(), 0);
        wm.set_workers(&cores(8));
        assert_eq!(wm.active_workers(), 8);
        assert_eq!(wm.affinity().len(), 8);
        assert_eq!(wm.set_active_workers(3), 3);
        assert_eq!(wm.active_workers(), 3);
        assert_eq!(wm.affinity(), vec![CoreId(0), CoreId(1), CoreId(2)]);
    }

    #[test]
    fn scaling_beyond_pool_clamps_to_pool_size() {
        let wm = WorkerManager::new();
        wm.set_workers(&cores(2));
        assert_eq!(wm.set_active_workers(5), 2, "clamped to the pool");
        assert_eq!(wm.active_workers(), 2);
        // An empty pool clamps everything to zero.
        let empty = WorkerManager::new();
        assert_eq!(empty.set_active_workers(4), 0);
    }

    #[test]
    fn parallel_run_counts_commits_and_aborts() {
        let wm = WorkerManager::new();
        wm.set_workers(&cores(4));
        // Every third transaction "aborts".
        let report = wm.run(30, |_, _, i| i % 3 != 0);
        assert_eq!(report.committed_per_worker.len(), 4);
        assert_eq!(report.committed(), 4 * 20);
        assert_eq!(report.aborted(), 4 * 10);
    }

    #[test]
    fn sequential_run_matches_parallel_semantics() {
        let wm = WorkerManager::new();
        wm.set_workers(&cores(3));
        let report = wm.run_sequential(10, |_, _, i| i % 2 == 0);
        assert_eq!(report.committed(), 15);
        assert_eq!(report.aborted(), 15);
    }

    #[test]
    fn workers_receive_their_assigned_core() {
        let topology = Topology::two_socket();
        let wm = WorkerManager::new();
        wm.set_workers(&CpuSet::socket(&topology, SocketId(1)));
        let report = wm.run(1, |worker_id, core, _| {
            // Workers are enumerated over socket-1 cores in ascending order.
            core == CoreId(14 + worker_id as u16)
        });
        assert_eq!(report.committed(), 14, "every worker must see its own core");
    }

    #[test]
    fn empty_pool_runs_nothing() {
        let wm = WorkerManager::new();
        let report = wm.run(100, |_, _, _| true);
        assert_eq!(report.committed(), 0);
        assert_eq!(report.aborted(), 0);
    }

    fn wait_until(mut condition: impl FnMut() -> bool) {
        let deadline = std::time::Instant::now() + Duration::from_secs(30);
        while !condition() {
            assert!(
                std::time::Instant::now() < deadline,
                "condition not reached within 30s"
            );
            std::thread::yield_now();
        }
    }

    #[test]
    fn long_running_pool_counts_live_and_reports_on_stop() {
        let wm = WorkerManager::new();
        wm.set_workers(&cores(2));
        // Every fourth transaction "aborts".
        assert_eq!(wm.start(|_, _, i| i % 4 != 3), 2);
        assert!(wm.ingest_running());
        // A second start must not spawn a second pool.
        assert_eq!(wm.start(|_, _, _| true), 0);
        wait_until(|| {
            let counts = wm.live_counts();
            counts.committed > 0 && counts.aborted > 0
        });
        let report = wm.stop();
        assert!(!wm.ingest_running());
        assert_eq!(report.committed_per_worker.len(), 2);
        assert!(report.committed() > 0);
        assert!(report.aborted() > 0);
        // No retry policy was configured: aborts are final, nothing retried.
        assert_eq!(report.retried(), 0);
        // Stopping again is a no-op.
        assert_eq!(wm.stop(), WorkerReport::default());
        assert_eq!(wm.live_counts(), OltpCounts::default());
    }

    #[test]
    fn long_running_pool_resizes_mid_flight() {
        let wm = WorkerManager::new();
        wm.set_workers(&cores(4));
        assert_eq!(wm.start(|_, _, _| true), 4);
        wait_until(|| wm.live_counts().committed > 0);

        // Revoke all but one worker (the RDE engine shrinking the grant):
        // only worker 0 may make further progress. A revoked worker can
        // still finish the single transaction in flight at revocation time,
        // so the deterministic bound is "at most one more commit each" — no
        // matter how long worker 0 keeps running.
        assert_eq!(wm.set_active_workers(1), 1);
        let at_revocation = wm.per_worker_committed();
        wait_until(|| wm.per_worker_committed()[0] > at_revocation[0] + 5);
        let later = wm.per_worker_committed();
        for w in 1..4 {
            assert!(
                later[w] <= at_revocation[w] + 1,
                "revoked worker {w} kept committing: {} -> {}",
                at_revocation[w],
                later[w]
            );
        }

        // Grant everything back: the parked workers resume.
        assert_eq!(wm.set_active_workers(4), 4);
        wait_until(|| {
            let now = wm.per_worker_committed();
            (1..4).all(|w| now[w] > later[w] + 1)
        });
        let report = wm.stop();
        assert_eq!(report.committed_per_worker.len(), 4);
    }

    #[test]
    fn retries_recover_transient_aborts_and_are_counted_separately() {
        use std::collections::HashMap;
        use std::sync::Mutex;
        let wm = WorkerManager::new();
        wm.set_workers(&cores(2));
        wm.set_retry_policy(RetryPolicy {
            max_retries: 3,
            backoff_micros: 10,
        });
        assert_eq!(
            wm.retry_policy(),
            RetryPolicy {
                max_retries: 3,
                backoff_micros: 10
            }
        );
        // Every transaction fails twice, then commits — and the body must see
        // the SAME txn_index across the retries of one transaction.
        let attempts: Mutex<HashMap<(usize, u64), u32>> = Mutex::new(HashMap::new());
        assert_eq!(
            wm.start(move |worker, _, txn| {
                let mut map = attempts.lock().unwrap();
                let seen = map.entry((worker, txn)).or_insert(0);
                *seen += 1;
                *seen > 2
            }),
            2
        );
        wait_until(|| wm.live_counts().committed >= 10);
        let report = wm.stop();
        // Nothing gave up mid-run (3 retries > 2 needed); only the in-flight
        // transaction on each worker may abort when stop() raises the flag.
        assert!(report.aborted() <= 2, "aborted {}", report.aborted());
        assert!(report.committed() >= 10);
        let retried = report.retried();
        assert!(
            retried >= report.committed() * 2 && retried <= (report.committed() + 2) * 2,
            "expected ~2 retries per commit, got {retried} for {}",
            report.committed()
        );
    }

    #[test]
    fn retry_backoff_is_deterministic_jittered_and_bounded() {
        let p = RetryPolicy {
            max_retries: 5,
            backoff_micros: 100,
        };
        // Deterministic: same triple, same backoff.
        assert_eq!(p.backoff_for(1, 7, 1), p.backoff_for(1, 7, 1));
        // Jittered: different transactions land at different points.
        let distinct: std::collections::HashSet<u64> =
            (0..32).map(|t| p.backoff_for(0, t, 1)).collect();
        assert!(distinct.len() > 16, "jitter collapsed: {distinct:?}");
        // Bounded: window + jitter < 2 * window, exponential growth capped.
        for attempt in 1..=10u32 {
            let window = 100u64 * (1 << (attempt - 1).min(6));
            let b = p.backoff_for(3, 9, attempt);
            assert!(b >= window && b < 2 * window, "attempt {attempt}: {b}");
        }
        // Disabled backoff retries immediately.
        let zero = RetryPolicy {
            max_retries: 1,
            backoff_micros: 0,
        };
        assert_eq!(zero.backoff_for(0, 0, 1), 0);
    }

    #[test]
    fn starting_an_empty_pool_spawns_nothing() {
        let wm = WorkerManager::new();
        assert_eq!(wm.start(|_, _, _| true), 0);
        assert!(!wm.ingest_running());
    }

    #[test]
    fn pool_grows_beyond_its_start_time_grant_up_to_capacity() {
        let wm = WorkerManager::new();
        wm.set_workers(&cores(2));
        // Capacity for 4 workers even though only 2 cores are granted now.
        assert_eq!(wm.start_with_capacity(4, |_, _, _| true), 4);
        wait_until(|| wm.live_counts().committed > 0);
        let before = wm.per_worker_committed();
        assert_eq!(before.len(), 4);

        // A larger grant activates the spare threads.
        wm.set_workers(&cores(4));
        assert_eq!(wm.active_workers(), 4);
        wait_until(|| {
            let now = wm.per_worker_committed();
            (2..4).all(|w| now[w] > before[w])
        });
        let report = wm.stop();
        assert_eq!(report.committed_per_worker.len(), 4);
        assert!(report.committed_per_worker.iter().all(|&c| c > 0));
    }
}
