//! CPU ownership and lending.
//!
//! The RDE engine is the *owner* of all compute resources (paper §3.4); the
//! OLTP and OLAP engines only hold grants. [`ResourcePool`] tracks which core
//! currently belongs to which engine, and supports the three operations the
//! state-migration algorithm needs: granting whole sockets, granting
//! individual cores, and revoking/lending cores between engines subject to
//! administrator-set minimums.

use crate::topology::{CoreId, SocketId, Topology};
use std::collections::BTreeSet;

/// The party a resource is assigned to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum EngineId {
    /// The transactional engine.
    Oltp,
    /// The analytical engine.
    Olap,
    /// Held by the RDE engine, not currently granted to either engine.
    Rde,
}

impl std::fmt::Display for EngineId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineId::Oltp => write!(f, "OLTP"),
            EngineId::Olap => write!(f, "OLAP"),
            EngineId::Rde => write!(f, "RDE"),
        }
    }
}

/// An ordered set of cores. Deterministic iteration keeps placement decisions
/// (and therefore modelled times) reproducible.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CpuSet {
    cores: BTreeSet<CoreId>,
}

impl CpuSet {
    /// Empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set containing the given cores.
    pub fn from_cores<I: IntoIterator<Item = CoreId>>(cores: I) -> Self {
        CpuSet {
            cores: cores.into_iter().collect(),
        }
    }

    /// All cores of one socket.
    pub fn socket(topology: &Topology, socket: SocketId) -> Self {
        Self::from_cores(topology.cores_of(socket))
    }

    /// Number of cores in the set.
    pub fn len(&self) -> usize {
        self.cores.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.cores.is_empty()
    }

    /// Whether the set contains `core`.
    pub fn contains(&self, core: CoreId) -> bool {
        self.cores.contains(&core)
    }

    /// Insert a core; returns `true` if it was not already present.
    pub fn insert(&mut self, core: CoreId) -> bool {
        self.cores.insert(core)
    }

    /// Remove a core; returns `true` if it was present.
    pub fn remove(&mut self, core: CoreId) -> bool {
        self.cores.remove(&core)
    }

    /// Iterate over cores in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = CoreId> + '_ {
        self.cores.iter().copied()
    }

    /// Cores of this set that live on `socket`.
    pub fn on_socket(&self, topology: &Topology, socket: SocketId) -> CpuSet {
        Self::from_cores(self.iter().filter(|c| topology.socket_of(*c) == socket))
    }

    /// Number of cores of this set on `socket`.
    pub fn count_on_socket(&self, topology: &Topology, socket: SocketId) -> usize {
        self.iter()
            .filter(|c| topology.socket_of(*c) == socket)
            .count()
    }

    /// Union of two sets.
    pub fn union(&self, other: &CpuSet) -> CpuSet {
        CpuSet {
            cores: self.cores.union(&other.cores).copied().collect(),
        }
    }

    /// Set difference (`self` minus `other`).
    pub fn difference(&self, other: &CpuSet) -> CpuSet {
        CpuSet {
            cores: self.cores.difference(&other.cores).copied().collect(),
        }
    }

    /// The sockets this set spans, in ascending order.
    pub fn sockets(&self, topology: &Topology) -> Vec<SocketId> {
        let mut sockets: Vec<SocketId> = self.iter().map(|c| topology.socket_of(c)).collect();
        sockets.sort();
        sockets.dedup();
        sockets
    }

    /// Take up to `n` cores from the set that live on `socket` (lowest ids first).
    pub fn take_from_socket(&mut self, topology: &Topology, socket: SocketId, n: usize) -> CpuSet {
        let picked: Vec<CoreId> = self
            .iter()
            .filter(|c| topology.socket_of(*c) == socket)
            .take(n)
            .collect();
        for c in &picked {
            self.cores.remove(c);
        }
        CpuSet::from_cores(picked)
    }
}

impl FromIterator<CoreId> for CpuSet {
    fn from_iter<T: IntoIterator<Item = CoreId>>(iter: T) -> Self {
        Self::from_cores(iter)
    }
}

/// Outcome of a grant/revoke operation: which cores actually moved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResourceGrant {
    /// The engine the cores were taken from.
    pub from: EngineId,
    /// The engine the cores were given to.
    pub to: EngineId,
    /// The cores that moved.
    pub cores: CpuSet,
}

/// Error returned when a resource operation would violate ownership or
/// administrator-set minimums.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResourceError {
    /// The source engine does not own enough cores on the requested socket.
    InsufficientCores {
        /// Engine the cores were requested from.
        engine: EngineId,
        /// Socket on which cores were requested.
        socket: SocketId,
        /// Number of cores requested.
        requested: usize,
        /// Number of cores actually available.
        available: usize,
    },
    /// The operation would push the engine below its configured minimum.
    BelowMinimum {
        /// Engine whose minimum would be violated.
        engine: EngineId,
        /// Minimum number of cores that must remain.
        minimum: usize,
        /// Number of cores the engine would be left with.
        would_leave: usize,
    },
}

impl std::fmt::Display for ResourceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ResourceError::InsufficientCores {
                engine,
                socket,
                requested,
                available,
            } => write!(
                f,
                "{engine} owns {available} cores on {socket}, cannot release {requested}"
            ),
            ResourceError::BelowMinimum {
                engine,
                minimum,
                would_leave,
            } => write!(
                f,
                "operation would leave {engine} with {would_leave} cores, below its minimum of {minimum}"
            ),
        }
    }
}

impl std::error::Error for ResourceError {}

/// Tracks the assignment of every core to an engine and enforces the
/// administrator-set minimum number of OLTP cores per socket
/// (`OLTPCpuThres` in Algorithm 1).
#[derive(Debug, Clone)]
pub struct ResourcePool {
    topology: Topology,
    owner: Vec<EngineId>,
    /// Minimum number of cores the OLTP engine must keep on each socket it occupies.
    pub oltp_min_cores_per_socket: usize,
    /// Minimum number of sockets that must be (at least partly) assigned to OLTP.
    pub oltp_min_sockets: usize,
}

impl ResourcePool {
    /// Create a pool with every core owned by the RDE engine.
    pub fn new(topology: Topology) -> Self {
        let owner = vec![EngineId::Rde; topology.total_cores() as usize];
        ResourcePool {
            topology,
            owner,
            oltp_min_cores_per_socket: 1,
            oltp_min_sockets: 1,
        }
    }

    /// Create a pool with the bootstrap assignment the paper uses: socket 0 to
    /// OLTP, the remaining sockets to OLAP (full-isolation state S2).
    pub fn bootstrap(topology: Topology) -> Self {
        let mut pool = Self::new(topology.clone());
        for core in topology.cores_of(SocketId(0)) {
            pool.owner[core.index()] = EngineId::Oltp;
        }
        for socket in topology.socket_ids().into_iter().skip(1) {
            for core in topology.cores_of(socket) {
                pool.owner[core.index()] = EngineId::Olap;
            }
        }
        pool
    }

    /// The machine topology the pool was created for.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Current owner of a core.
    pub fn owner_of(&self, core: CoreId) -> EngineId {
        self.owner[core.index()]
    }

    /// All cores currently owned by `engine`.
    pub fn cores_of(&self, engine: EngineId) -> CpuSet {
        CpuSet::from_cores(
            self.topology
                .core_ids()
                .into_iter()
                .filter(|c| self.owner[c.index()] == engine),
        )
    }

    /// Number of cores owned by `engine` on `socket`.
    pub fn count_on_socket(&self, engine: EngineId, socket: SocketId) -> usize {
        self.cores_of(engine)
            .count_on_socket(&self.topology, socket)
    }

    /// Number of sockets on which `engine` owns at least one core.
    pub fn socket_count(&self, engine: EngineId) -> usize {
        self.cores_of(engine).sockets(&self.topology).len()
    }

    /// Assign every core of `socket` to `engine`, regardless of prior owner.
    /// Used by Algorithm 1 when distributing sockets (`addSocket`).
    pub fn assign_socket(&mut self, socket: SocketId, engine: EngineId) {
        for core in self.topology.cores_of(socket) {
            self.owner[core.index()] = engine;
        }
    }

    /// Move `n` cores of `socket` from `from` to `to` (lowest core ids first).
    ///
    /// Enforces the OLTP minimum when taking cores away from the OLTP engine.
    pub fn transfer(
        &mut self,
        socket: SocketId,
        from: EngineId,
        to: EngineId,
        n: usize,
    ) -> Result<ResourceGrant, ResourceError> {
        let from_cores: Vec<CoreId> = self
            .topology
            .cores_of(socket)
            .into_iter()
            .filter(|c| self.owner[c.index()] == from)
            .collect();
        if from_cores.len() < n {
            return Err(ResourceError::InsufficientCores {
                engine: from,
                socket,
                requested: n,
                available: from_cores.len(),
            });
        }
        if from == EngineId::Oltp {
            let would_leave = from_cores.len() - n;
            if would_leave < self.oltp_min_cores_per_socket {
                return Err(ResourceError::BelowMinimum {
                    engine: EngineId::Oltp,
                    minimum: self.oltp_min_cores_per_socket,
                    would_leave,
                });
            }
        }
        let moving: Vec<CoreId> = from_cores.into_iter().take(n).collect();
        for core in &moving {
            self.owner[core.index()] = to;
        }
        Ok(ResourceGrant {
            from,
            to,
            cores: CpuSet::from_cores(moving),
        })
    }

    /// Return all cores owned by `engine` to the RDE engine.
    pub fn reclaim_all(&mut self, engine: EngineId) -> CpuSet {
        let cores = self.cores_of(engine);
        for core in cores.iter() {
            self.owner[core.index()] = EngineId::Rde;
        }
        cores
    }

    /// A summary of the current distribution, e.g. `OLTP: 14 (s0:14) | OLAP: 14 (s1:14)`.
    pub fn describe(&self) -> String {
        let mut parts = Vec::new();
        for engine in [EngineId::Oltp, EngineId::Olap, EngineId::Rde] {
            let cores = self.cores_of(engine);
            if cores.is_empty() {
                continue;
            }
            let per_socket: Vec<String> = self
                .topology
                .socket_ids()
                .into_iter()
                .filter_map(|s| {
                    let n = cores.count_on_socket(&self.topology, s);
                    (n > 0).then(|| format!("s{}:{}", s.0, n))
                })
                .collect();
            parts.push(format!(
                "{engine}: {} ({})",
                cores.len(),
                per_socket.join(",")
            ));
        }
        parts.join(" | ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo() -> Topology {
        Topology::two_socket()
    }

    #[test]
    fn bootstrap_gives_one_socket_each() {
        let pool = ResourcePool::bootstrap(topo());
        assert_eq!(pool.cores_of(EngineId::Oltp).len(), 14);
        assert_eq!(pool.cores_of(EngineId::Olap).len(), 14);
        assert_eq!(pool.cores_of(EngineId::Rde).len(), 0);
        assert_eq!(pool.count_on_socket(EngineId::Oltp, SocketId(0)), 14);
        assert_eq!(pool.count_on_socket(EngineId::Olap, SocketId(1)), 14);
    }

    #[test]
    fn transfer_moves_cores_and_respects_minimum() {
        let mut pool = ResourcePool::bootstrap(topo());
        pool.oltp_min_cores_per_socket = 4;
        let grant = pool
            .transfer(SocketId(0), EngineId::Oltp, EngineId::Olap, 6)
            .unwrap();
        assert_eq!(grant.cores.len(), 6);
        assert_eq!(pool.count_on_socket(EngineId::Oltp, SocketId(0)), 8);
        assert_eq!(pool.count_on_socket(EngineId::Olap, SocketId(0)), 6);

        // Taking 6 more would leave 2 < minimum of 4.
        let err = pool
            .transfer(SocketId(0), EngineId::Oltp, EngineId::Olap, 6)
            .unwrap_err();
        assert!(matches!(err, ResourceError::BelowMinimum { .. }));
    }

    #[test]
    fn transfer_fails_when_not_enough_cores() {
        let mut pool = ResourcePool::bootstrap(topo());
        let err = pool
            .transfer(SocketId(1), EngineId::Oltp, EngineId::Olap, 1)
            .unwrap_err();
        assert!(matches!(err, ResourceError::InsufficientCores { .. }));
    }

    #[test]
    fn assign_socket_overrides_ownership() {
        let mut pool = ResourcePool::bootstrap(topo());
        pool.assign_socket(SocketId(1), EngineId::Oltp);
        assert_eq!(pool.socket_count(EngineId::Oltp), 2);
        assert_eq!(pool.cores_of(EngineId::Olap).len(), 0);
    }

    #[test]
    fn reclaim_returns_cores_to_rde() {
        let mut pool = ResourcePool::bootstrap(topo());
        let reclaimed = pool.reclaim_all(EngineId::Olap);
        assert_eq!(reclaimed.len(), 14);
        assert_eq!(pool.cores_of(EngineId::Rde).len(), 14);
    }

    #[test]
    fn cpuset_socket_filtering_and_union() {
        let t = topo();
        let s0 = CpuSet::socket(&t, SocketId(0));
        let s1 = CpuSet::socket(&t, SocketId(1));
        assert_eq!(s0.len(), 14);
        assert_eq!(s0.count_on_socket(&t, SocketId(1)), 0);
        let all = s0.union(&s1);
        assert_eq!(all.len(), 28);
        assert_eq!(all.sockets(&t), vec![SocketId(0), SocketId(1)]);
        let back = all.difference(&s1);
        assert_eq!(back, s0);
    }

    #[test]
    fn cpuset_take_from_socket_takes_lowest_ids() {
        let t = topo();
        let mut all = CpuSet::socket(&t, SocketId(0));
        let taken = all.take_from_socket(&t, SocketId(0), 3);
        assert_eq!(taken.len(), 3);
        assert!(
            taken.contains(CoreId(0)) && taken.contains(CoreId(1)) && taken.contains(CoreId(2))
        );
        assert_eq!(all.len(), 11);
        assert!(!all.contains(CoreId(0)));
    }

    #[test]
    fn describe_lists_all_engines() {
        let pool = ResourcePool::bootstrap(topo());
        let d = pool.describe();
        assert!(d.contains("OLTP: 14"));
        assert!(d.contains("OLAP: 14"));
    }
}
