//! A "short and fresh" workload (§2.3 of the paper): a dashboard issues small
//! analytical queries continuously and every query must see the latest
//! transactions. The adaptive scheduler keeps the system in the hybrid states
//! (split access / borrowed cores) so queries reach fresh data without paying
//! a full ETL, and falls back to an ETL only once the fresh delta dominates.
//!
//! Run with: `cargo run --example realtime_dashboard --release`

use adaptive_htap::core::SchedulerPolicy;
use adaptive_htap::{HtapConfig, HtapSystem, QueryId, Schedule};

fn main() -> Result<(), String> {
    // Hybrid elasticity with a moderately lazy ETL threshold.
    let config = HtapConfig::small().with_schedule(Schedule::Adaptive(
        SchedulerPolicy::adaptive_non_isolated(0.6),
    ));
    let system = HtapSystem::build(config)?;
    println!(
        "dashboard over {} order lines",
        system.population().orderlines
    );

    let mut total_fresh = 0u64;
    for tick in 0..12 {
        // Transactions stream in between dashboard refreshes.
        let committed = system.run_oltp(50);
        // The dashboard refresh is a cheap scan-heavy query over the newest data.
        let report = system
            .execute_query(QueryId::Q6)
            .expect("CH query executes");
        total_fresh += report.fresh_rows_accessed;
        println!(
            "tick {tick:>2}: +{committed:>4} txns | {} in {:.4}s via {:<5} freshness={:.3} fresh_rows={}{}",
            report.query,
            report.total_time(),
            report.state.label(),
            report.freshness_rate,
            report.fresh_rows_accessed,
            if report.performed_etl { " [ETL]" } else { "" }
        );
    }
    println!(
        "dashboard read {total_fresh} fresh rows; ETLs performed: {}",
        system.with_scheduler(|s| s.etl_count())
    );
    println!(
        "final resource split: {}",
        system.rde().describe_resources()
    );
    Ok(())
}
