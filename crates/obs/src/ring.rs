//! Lock-free fixed-capacity event rings: the recording side never blocks,
//! never allocates, and overwrites the oldest events when the reader falls
//! behind (drop-oldest, with an exact dropped count).
//!
//! # Design
//!
//! A ring is a power-of-two array of slots, each slot four `AtomicU64`s:
//! a per-slot sequence/version word and the event payload (`ts<<8|kind`,
//! `a`, `b`). Writers reserve a global sequence number with one
//! `fetch_add` on `head` and publish into slot `seq & mask` with a seqlock
//! protocol:
//!
//! ```text
//! version := 2*seq + 1   (write in progress)
//! ts_kind, a, b := ...   (relaxed stores)
//! version := 2*seq + 2   (write complete)
//! ```
//!
//! The reader validates `version == 2*seq + 2` before *and* after loading
//! the payload; any mismatch (slot overwritten by a later lap, or a write
//! still in flight) counts the event as dropped and moves on. Because the
//! payload words are themselves atomics there is no UB under any race; the
//! residual weak-memory hazard (a lapping writer's payload stores becoming
//! visible before its odd version store) can at worst garble one event's
//! payload in a diagnostic trace, and cannot occur on TSO hardware. Rings
//! in this repo are effectively single-writer (one per worker), which makes
//! even that window moot in practice.
//!
//! Accounting is exact: after a final drain with all writers quiescent,
//! `accepted + dropped == recorded` — the concurrent-writer tests in
//! `tests/ring.rs` pin this invariant.

use crate::event::{Event, EventKind};
use parking_lot::Mutex;
use std::sync::atomic::{fence, AtomicU64, Ordering};

/// One ring slot: a seqlock version word plus the event payload.
#[derive(Default)]
struct Slot {
    version: AtomicU64,
    ts_kind: AtomicU64,
    a: AtomicU64,
    b: AtomicU64,
}

/// Counters describing a ring's lifetime traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RingStats {
    /// Events ever recorded (including ones later overwritten).
    pub recorded: u64,
    /// Events returned by drains so far.
    pub drained: u64,
    /// Events lost: overwritten before a drain reached them, torn by a
    /// racing lap, or still in flight when the drain passed their slot.
    pub dropped: u64,
}

/// The result of one [`EventRing::drain`] call.
#[derive(Debug, Default)]
pub struct Drained {
    /// Events accepted, in recording (sequence) order.
    pub events: Vec<Event>,
    /// Events this drain had to skip (overwritten or in flight).
    pub dropped: u64,
}

/// A fixed-capacity, pre-allocated, lock-free MPSC event ring.
///
/// Writers call [`record`](EventRing::record) — wait-free, allocation-free.
/// The (single at a time; internally serialized) reader calls
/// [`drain`](EventRing::drain) to take everything recorded since the last
/// drain, oldest first.
pub struct EventRing {
    head: AtomicU64,
    dropped: AtomicU64,
    drained: AtomicU64,
    /// Reader cursor: next sequence number to read. The mutex serializes
    /// concurrent drains; writers never touch it.
    tail: Mutex<u64>,
    mask: u64,
    slots: Box<[Slot]>,
}

impl EventRing {
    /// Create a ring holding `capacity` events (rounded up to a power of
    /// two, minimum 8). All slots are allocated up front; recording never
    /// allocates.
    pub fn with_capacity(capacity: usize) -> Self {
        let cap = capacity.max(8).next_power_of_two();
        let slots: Vec<Slot> = (0..cap).map(|_| Slot::default()).collect();
        EventRing {
            head: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            drained: AtomicU64::new(0),
            tail: Mutex::new(0),
            mask: cap as u64 - 1,
            slots: slots.into_boxed_slice(),
        }
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Bytes of slot storage this ring pre-allocated.
    pub fn footprint_bytes(&self) -> usize {
        self.slots.len() * std::mem::size_of::<Slot>()
    }

    /// Record one event. Wait-free: one `fetch_add` and four stores; if the
    /// ring is full the oldest unread event is overwritten (the next drain
    /// counts it as dropped). Timestamps are capped at 56 bits of µs
    /// (~2284 years of process uptime).
    pub fn record(&self, kind: EventKind, ts_us: u64, a: u64, b: u64) {
        let seq = self.head.fetch_add(1, Ordering::Relaxed);
        let idx = (seq & self.mask) as usize;
        // `idx` is masked into range, but use the checked accessor anyway:
        // this crate is in the lint's no-panic scope and stays index-free.
        let Some(slot) = self.slots.get(idx) else {
            return;
        };
        slot.version.store(seq * 2 + 1, Ordering::Release);
        slot.ts_kind
            .store((ts_us << 8) | kind as u64, Ordering::Relaxed);
        slot.a.store(a, Ordering::Relaxed);
        slot.b.store(b, Ordering::Relaxed);
        slot.version.store(seq * 2 + 2, Ordering::Release);
    }

    /// Take every event recorded since the last drain, oldest first.
    /// Events overwritten in the meantime (reader more than one lap behind)
    /// are counted into [`Drained::dropped`], as are slots whose write was
    /// still in flight when the drain passed them. The reader never blocks
    /// a writer and vice versa.
    pub fn drain(&self) -> Drained {
        let mut tail = self.tail.lock();
        let head = self.head.load(Ordering::Acquire);
        let cap = self.mask + 1;
        let mut dropped = 0u64;
        // Drop-oldest: anything more than one full lap behind is gone.
        if head.saturating_sub(*tail) > cap {
            dropped += head - cap - *tail;
            *tail = head - cap;
        }
        let mut events = Vec::with_capacity((head - *tail) as usize);
        for seq in *tail..head {
            let Some(slot) = self.slots.get((seq & self.mask) as usize) else {
                dropped += 1;
                continue;
            };
            let v1 = slot.version.load(Ordering::Acquire);
            if v1 != seq * 2 + 2 {
                dropped += 1;
                continue;
            }
            let ts_kind = slot.ts_kind.load(Ordering::Relaxed);
            let a = slot.a.load(Ordering::Relaxed);
            let b = slot.b.load(Ordering::Relaxed);
            fence(Ordering::Acquire);
            let v2 = slot.version.load(Ordering::Relaxed);
            if v2 != v1 {
                dropped += 1;
                continue;
            }
            match EventKind::from_u8((ts_kind & 0xff) as u8) {
                Some(kind) => events.push(Event {
                    ts_us: ts_kind >> 8,
                    kind,
                    a,
                    b,
                }),
                None => dropped += 1,
            }
        }
        *tail = head;
        self.dropped.fetch_add(dropped, Ordering::Relaxed);
        self.drained
            .fetch_add(events.len() as u64, Ordering::Relaxed);
        Drained { events, dropped }
    }

    /// Lifetime counters. `recorded` is exact; `dropped`/`drained` reflect
    /// completed drains.
    pub fn stats(&self) -> RingStats {
        RingStats {
            recorded: self.head.load(Ordering::Relaxed),
            drained: self.drained.load(Ordering::Relaxed),
            dropped: self.dropped.load(Ordering::Relaxed),
        }
    }
}

impl std::fmt::Debug for EventRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventRing")
            .field("capacity", &self.capacity())
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_rounds_up_to_power_of_two() {
        assert_eq!(EventRing::with_capacity(0).capacity(), 8);
        assert_eq!(EventRing::with_capacity(9).capacity(), 16);
        assert_eq!(EventRing::with_capacity(2048).capacity(), 2048);
    }

    #[test]
    fn record_then_drain_preserves_order_and_payload() {
        let ring = EventRing::with_capacity(64);
        for i in 0..10u64 {
            ring.record(EventKind::Morsel, 100 + i, i, i * 2);
        }
        let d = ring.drain();
        assert_eq!(d.dropped, 0);
        assert_eq!(d.events.len(), 10);
        for (i, e) in d.events.iter().enumerate() {
            let i = i as u64;
            assert_eq!(e.ts_us, 100 + i);
            assert_eq!(e.kind, EventKind::Morsel);
            assert_eq!((e.a, e.b), (i, i * 2));
        }
        // Second drain is empty.
        assert!(ring.drain().events.is_empty());
    }

    #[test]
    fn incremental_drains_resume_where_they_stopped() {
        let ring = EventRing::with_capacity(32);
        ring.record(EventKind::TxnAbort, 1, 0, 0);
        assert_eq!(ring.drain().events.len(), 1);
        ring.record(EventKind::TxnRetry, 2, 0, 1);
        ring.record(EventKind::TxnRetry, 3, 0, 2);
        let d = ring.drain();
        assert_eq!(d.events.len(), 2);
        assert_eq!(d.events[0].ts_us, 2);
        let s = ring.stats();
        assert_eq!((s.recorded, s.drained, s.dropped), (3, 3, 0));
    }
}
