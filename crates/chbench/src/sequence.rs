//! Query sequences and batches.
//!
//! The paper's workload classification (§2.3) distinguishes *short and fresh*
//! queries, *query batches* (same snapshot, same freshness for every query)
//! and *ad-hoc* queries. The evaluation drives the system with sequences of
//! the {Q1, Q6, Q19} mix (Figure 5) and with batches of the same query over
//! one snapshot (Figures 1 and 3(b)). This module generates both.

use crate::queries::{query_mix, query_mix_wide, QueryId};

/// The kind of analytical workload being generated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SequenceKind {
    /// Independent queries, each requiring maximum freshness
    /// ("short and fresh" / ad-hoc): the scheduler treats them individually.
    Independent,
    /// A batch executed over a single snapshot: only the first query of the
    /// batch pays for snapshotting/ETL.
    Batch,
}

/// One analytical work unit: an ordered list of queries plus the batch flag.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuerySequence {
    /// Queries in execution order.
    pub queries: Vec<QueryId>,
    /// Whether the queries form a batch over one snapshot.
    pub kind: SequenceKind,
}

impl QuerySequence {
    /// The paper's adaptive-experiment sequence: one Q1, one Q6, one Q19,
    /// scheduled independently (Figure 5 runs 100 of these).
    pub fn mix() -> Self {
        QuerySequence {
            queries: query_mix(),
            kind: SequenceKind::Independent,
        }
    }

    /// The widened mix: all seven implemented queries {Q1, Q3, Q4, Q6, Q12,
    /// Q14, Q19}, scheduled independently — every plan shape and relation
    /// footprint the engine supports in one sequence.
    pub fn wide_mix() -> Self {
        QuerySequence {
            queries: query_mix_wide(),
            kind: SequenceKind::Independent,
        }
    }

    /// A batch of `n` copies of `query` over the same snapshot
    /// (Figures 1 and 3(b)).
    pub fn batch(query: QueryId, n: usize) -> Self {
        QuerySequence {
            queries: vec![query; n],
            kind: SequenceKind::Batch,
        }
    }

    /// A sequence of `n` copies of `query`, each treated independently.
    pub fn repeated(query: QueryId, n: usize) -> Self {
        QuerySequence {
            queries: vec![query; n],
            kind: SequenceKind::Independent,
        }
    }

    /// Number of queries in the sequence.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// Whether the sequence is empty.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// Whether query `index` should be scheduled as part of a batch: for a
    /// batch, every query after the first reuses the snapshot, so only the
    /// first query triggers scheduling work.
    pub fn is_batch_member(&self, index: usize) -> bool {
        self.kind == SequenceKind::Batch && index > 0
    }
}

/// Generate `n` consecutive mix sequences (the Figure-5 workload).
pub fn mix_sequences(n: usize) -> Vec<QuerySequence> {
    (0..n).map(|_| QuerySequence::mix()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_sequence_has_three_independent_queries() {
        let seq = QuerySequence::mix();
        assert_eq!(seq.len(), 3);
        assert_eq!(seq.kind, SequenceKind::Independent);
        assert!(!seq.is_batch_member(0));
        assert!(!seq.is_batch_member(2));
        assert!(!seq.is_empty());
    }

    #[test]
    fn wide_mix_sequence_has_seven_independent_queries() {
        let seq = QuerySequence::wide_mix();
        assert_eq!(seq.len(), 7);
        assert_eq!(seq.kind, SequenceKind::Independent);
        assert!(seq.queries.contains(&QueryId::Q3));
        assert!(seq.queries.contains(&QueryId::Q12));
    }

    #[test]
    fn batches_mark_all_but_the_first_query() {
        let batch = QuerySequence::batch(QueryId::Q6, 16);
        assert_eq!(batch.len(), 16);
        assert!(!batch.is_batch_member(0));
        for i in 1..16 {
            assert!(batch.is_batch_member(i));
        }
    }

    #[test]
    fn repeated_sequences_stay_independent() {
        let seq = QuerySequence::repeated(QueryId::Q1, 4);
        assert_eq!(seq.len(), 4);
        assert!(!seq.is_batch_member(3));
    }

    #[test]
    fn figure5_workload_has_n_sequences() {
        let seqs = mix_sequences(100);
        assert_eq!(seqs.len(), 100);
        assert!(seqs.iter().all(|s| s.len() == 3));
    }
}
