//! Per-worker execution scratch: the reusable buffers that make the
//! steady-state morsel loop allocation-free.
//!
//! Every pipeline worker owns one [`ExecScratch`] for the lifetime of the
//! pipeline. Each claimed morsel reuses the same column buffers, register
//! file, selection vectors and group table — the buffers grow to the morsel
//! size once and are then recycled, so after the first morsel the hot loop
//! performs no heap allocation (verified by `tests/alloc_steady_state.rs`).
//!
//! Column access is zero-copy where the storage layout allows it: an `f64`
//! column serving as a numeric input, or an `i64` column serving as a key,
//! is *borrowed* straight out of the columnar storage (a read guard held
//! for the duration of the morsel) instead of copied. Only genuine type
//! conversions (`i32`/`i64` → `f64` numerics, `i32` → `i64` keys) write
//! into the scratch conversion buffers.

use crate::hashtable::GroupTable;
use crate::morsel::Morsel;
use crate::source::{BoundLayout, ScanSource};
use htap_storage::{ColumnGuard, DataType};
use parking_lot::RwLockReadGuard;

/// One numeric column of the current morsel: borrowed from storage or
/// converted into the aligned scratch buffer.
pub(crate) enum NumCol<'env> {
    /// Borrowed `f64` storage (zero copy); slices `[start, start + rows)`.
    Borrowed(RwLockReadGuard<'env, Vec<f64>>),
    /// Converted values live in `MorselData::num_bufs` at the same index.
    Converted,
}

/// One key column of the current morsel.
pub(crate) enum KeyCol<'env> {
    /// Borrowed `i64` storage (zero copy).
    Borrowed(RwLockReadGuard<'env, Vec<i64>>),
    /// Converted values live in `MorselData::key_bufs` at the same index.
    Converted,
}

/// The column data of the morsel currently being processed: borrowed slices
/// plus conversion buffers, reused across morsels.
pub(crate) struct MorselData<'env> {
    num: Vec<NumCol<'env>>,
    key: Vec<KeyCol<'env>>,
    num_bufs: Vec<Vec<f64>>,
    key_bufs: Vec<Vec<i64>>,
    start: usize,
    rows: usize,
}

impl<'env> MorselData<'env> {
    /// Scratch for a pipeline loading `n_num` numeric and `n_key` key
    /// columns.
    pub fn with_columns(n_num: usize, n_key: usize) -> Self {
        MorselData {
            num: Vec::with_capacity(n_num),
            key: Vec::with_capacity(n_key),
            num_bufs: (0..n_num).map(|_| Vec::new()).collect(),
            key_bufs: (0..n_key).map(|_| Vec::new()).collect(),
            start: 0,
            rows: 0,
        }
    }

    /// Rows in the current morsel.
    #[cfg(test)]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// The `j`-th numeric column of the current morsel as a dense slice.
    #[inline(always)]
    pub fn numeric(&self, j: usize) -> &[f64] {
        match &self.num[j] {
            NumCol::Borrowed(g) => &g[self.start..self.start + self.rows],
            NumCol::Converted => &self.num_bufs[j][..self.rows],
        }
    }

    /// The `j`-th key column of the current morsel as a dense slice.
    #[inline(always)]
    pub fn key(&self, j: usize) -> &[i64] {
        match &self.key[j] {
            KeyCol::Borrowed(g) => &g[self.start..self.start + self.rows],
            KeyCol::Converted => &self.key_bufs[j][..self.rows],
        }
    }

    /// Release the previous morsel's guards (buffers keep their capacity).
    fn reset(&mut self, start: usize, rows: usize) {
        self.num.clear();
        self.key.clear();
        self.start = start;
        self.rows = rows;
    }

    /// Populate the scratch with literal columns (unit tests of the compiled
    /// kernels, which need morsel data without a storage segment).
    #[cfg(test)]
    pub fn set_test_columns(&mut self, numeric: Vec<Vec<f64>>, keys: Vec<Vec<i64>>) {
        let rows = numeric
            .first()
            .map(Vec::len)
            .or_else(|| keys.first().map(Vec::len))
            .unwrap_or(0);
        self.reset(0, rows);
        self.num_bufs = numeric;
        self.key_bufs = keys;
        self.num = self.num_bufs.iter().map(|_| NumCol::Converted).collect();
        self.key = self.key_bufs.iter().map(|_| KeyCol::Converted).collect();
    }
}

/// Load one morsel's columns into `data`: `f64` numerics and `i64` keys are
/// borrowed from the columnar storage, everything else converts into the
/// reused scratch buffers. The layout was validated at bind time, so the
/// load itself is infallible.
pub(crate) fn load_morsel<'env>(
    source: &'env ScanSource,
    layout: &BoundLayout,
    morsel: &Morsel,
    data: &mut MorselData<'env>,
) {
    let seg = &source.segments[morsel.segment];
    let binding = &layout.segments[morsel.segment];
    let start = morsel.rows.start as usize;
    let rows = morsel.row_count();
    data.reset(start, rows);
    for (j, bc) in binding.numeric.iter().enumerate() {
        let col = seg.table.column(bc.index);
        match bc.dtype {
            DataType::F64 => match col.read_guard() {
                ColumnGuard::F64(g) => data.num.push(NumCol::Borrowed(g)),
                _ => unreachable!("bind checked the dtype"),
            },
            DataType::I64 => {
                let buf = &mut data.num_bufs[j];
                buf.clear();
                col.with_i64(start + rows, |v| {
                    buf.extend(v[start..start + rows].iter().map(|&x| x as f64))
                });
                data.num.push(NumCol::Converted);
            }
            DataType::I32 => {
                let buf = &mut data.num_bufs[j];
                buf.clear();
                col.with_i32(start + rows, |v| {
                    buf.extend(v[start..start + rows].iter().map(|&x| x as f64))
                });
                data.num.push(NumCol::Converted);
            }
            DataType::Str => unreachable!("bind rejected string numerics"),
        }
    }
    for (j, bc) in binding.keys.iter().enumerate() {
        let col = seg.table.column(bc.index);
        match bc.dtype {
            DataType::I64 => match col.read_guard() {
                ColumnGuard::I64(g) => data.key.push(KeyCol::Borrowed(g)),
                _ => unreachable!("bind checked the dtype"),
            },
            DataType::I32 => {
                let buf = &mut data.key_bufs[j];
                buf.clear();
                col.with_i32(start + rows, |v| {
                    buf.extend(v[start..start + rows].iter().map(|&x| x as i64))
                });
                data.key.push(KeyCol::Converted);
            }
            _ => unreachable!("bind rejected non-integer keys"),
        }
    }
}

/// The full per-worker scratch of one pipeline.
pub(crate) struct ExecScratch<'env> {
    /// Column data of the current morsel.
    pub data: MorselData<'env>,
    /// Expression evaluation registers (one dense `f64` lane per register).
    pub regs: Vec<Vec<f64>>,
    /// Primary selection vector (filter output).
    pub sel: Vec<u32>,
    /// Secondary selection vector (join-probe output).
    pub sel2: Vec<u32>,
    /// Tertiary selection vector: probe chains ping-pong between `sel2` and
    /// `sel3`, so an N-way join needs no per-morsel allocation.
    pub sel3: Vec<u32>,
    /// Join multiplicity per surviving row (parallel to the active probe
    /// selection; empty while every probed build side is unique).
    pub weights: Vec<u64>,
    /// Ping-pong partner of `weights` for probe chains.
    pub weights_b: Vec<u64>,
    /// Per-selected-row group indices (group-by assignment output).
    pub group_rows: Vec<u32>,
    /// Composite-key assembly buffer for > 2 group columns.
    pub key_tmp: Vec<i64>,
    /// Batch-hash output buffer: one `u64` hash per selected row, filled by
    /// the chunked hash kernels before the probe/upsert loop.
    pub hashes: Vec<u64>,
    /// The worker's group-by hash table, reused across morsels.
    pub groups: GroupTable,
}

impl ExecScratch<'_> {
    /// Scratch with `n_regs` evaluation registers and no column buffers
    /// (kernel unit tests).
    #[cfg(test)]
    pub fn new(n_regs: usize) -> Self {
        Self::for_pipeline(n_regs, 0, 0)
    }

    /// Scratch for a pipeline with the given register and load-list sizes.
    pub fn for_pipeline(n_regs: usize, n_num: usize, n_key: usize) -> Self {
        ExecScratch {
            data: MorselData::with_columns(n_num, n_key),
            regs: (0..n_regs).map(|_| Vec::new()).collect(),
            sel: Vec::new(),
            sel2: Vec::new(),
            sel3: Vec::new(),
            weights: Vec::new(),
            weights_b: Vec::new(),
            group_rows: Vec::new(),
            key_tmp: Vec::new(),
            hashes: Vec::new(),
            groups: GroupTable::default(),
        }
    }

    /// Grow every register to at least `rows` lanes (no-op after the first
    /// full-size morsel).
    pub fn ensure_regs(&mut self, rows: usize) {
        for reg in &mut self.regs {
            if reg.len() < rows {
                reg.resize(rows, 0.0);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::OlapError;
    use htap_sim::SocketId;
    use htap_storage::{ColumnDef, ColumnarTable, TableSchema, TableSnapshot, Value};
    use std::sync::Arc;

    fn source() -> ScanSource {
        let schema = TableSchema::new(
            "t",
            vec![
                ColumnDef::new("id", DataType::I64),
                ColumnDef::new("qty", DataType::I32),
                ColumnDef::new("amount", DataType::F64),
            ],
            Some(0),
        );
        let t = ColumnarTable::new(schema);
        for i in 0..100u64 {
            t.append_row(&[
                Value::I64(i as i64),
                Value::I32((i % 10) as i32),
                Value::F64(i as f64 * 1.5),
            ])
            .unwrap();
        }
        let snap = TableSnapshot::new("t".into(), Arc::new(t), 100, 0);
        ScanSource::contiguous_snapshot(&snap, SocketId(0))
    }

    #[test]
    fn load_borrows_f64_numerics_and_i64_keys() {
        let src = source();
        let layout = src
            .bind_columns(&["amount", "qty"], &["id", "qty"], &["amount", "qty", "id"])
            .unwrap();
        let morsels = src.morsels(32);
        let mut data = MorselData::with_columns(2, 2);
        load_morsel(&src, &layout, &morsels[1], &mut data);
        assert_eq!(data.rows(), 32);
        // amount (f64) is borrowed; qty (i32) converts.
        assert!(matches!(data.num[0], NumCol::Borrowed(_)));
        assert!(matches!(data.num[1], NumCol::Converted));
        assert_eq!(data.numeric(0)[0], 32.0 * 1.5);
        assert_eq!(data.numeric(1)[0], 2.0);
        // id (i64) is borrowed as a key; qty (i32) converts.
        assert!(matches!(data.key[0], KeyCol::Borrowed(_)));
        assert!(matches!(data.key[1], KeyCol::Converted));
        assert_eq!(data.key(0)[0], 32);
        assert_eq!(data.key(1)[31], (63 % 10) as i64);
    }

    #[test]
    fn bind_validates_columns_and_roles() {
        let src = source();
        assert_eq!(
            src.bind_columns(&["ghost"], &[], &[]).unwrap_err(),
            OlapError::UnknownColumn {
                table: "t".into(),
                column: "ghost".into()
            }
        );
        assert_eq!(
            src.bind_columns(&[], &["amount"], &[]).unwrap_err(),
            OlapError::UnsupportedColumnType {
                table: "t".into(),
                column: "amount".into(),
                role: "a key"
            }
        );
        let layout = src.bind_columns(&["qty"], &["id"], &["qty", "id"]).unwrap();
        assert_eq!(layout.segments.len(), 1);
        assert_eq!(layout.segments[0].accessed_row_bytes, 4 + 8);
    }
}
