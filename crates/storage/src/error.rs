//! Typed errors of the storage mutation path.
//!
//! The twin store, columnar tables and schemas used to report failures as
//! bare `String`s; callers could neither match on the failure kind nor keep
//! panic-free guarantees honest. `StorageError` names every way a mutation
//! can fail. The stringly-typed boundary survives only at the RDE facade,
//! via [`From<StorageError> for String`].

use crate::schema::DataType;

/// An error on the storage mutation path (`TwinTable::insert` / `update`,
/// `TwinStore::create_table`, `ColumnarTable::append_row` / `update_value`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// `create_table` for a name that is already taken.
    TableExists {
        /// The colliding relation name.
        table: String,
    },
    /// A row with the wrong number of values for the schema.
    ArityMismatch {
        /// Relation name.
        table: String,
        /// Columns in the schema.
        expected: usize,
        /// Values supplied.
        got: usize,
    },
    /// A value whose type does not match its column.
    TypeMismatch {
        /// Relation name.
        table: String,
        /// Column index.
        column: usize,
        /// The column's declared type.
        expected: DataType,
        /// The supplied value's type.
        got: DataType,
    },
    /// An update addressed to a row beyond the committed row count.
    RowOutOfRange {
        /// Relation name.
        table: String,
        /// The addressed row.
        row: u64,
        /// Committed rows at the time of the access.
        rows: u64,
    },
    /// An update addressed to a row the active instance does not hold.
    RowMissing {
        /// The addressed row.
        row: u64,
    },
    /// A mutation addressed to a relation that is not registered.
    TableMissing {
        /// The missing relation name.
        table: String,
    },
}

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageError::TableExists { table } => write!(f, "table {table} already exists"),
            StorageError::ArityMismatch {
                table,
                expected,
                got,
            } => write!(f, "table {table}: expected {expected} values, got {got}"),
            StorageError::TypeMismatch {
                table,
                column,
                expected,
                got,
            } => write!(
                f,
                "table {table}: column {column} expects {expected}, got {got}"
            ),
            StorageError::RowOutOfRange { table, row, rows } => {
                write!(f, "table {table}: row {row} out of range ({rows} rows)")
            }
            StorageError::RowMissing { row } => {
                write!(f, "row {row} not found in active instance")
            }
            StorageError::TableMissing { table } => {
                write!(f, "table {table} not registered")
            }
        }
    }
}

impl std::error::Error for StorageError {}

impl From<StorageError> for String {
    /// The stringly-typed boundary kept at the RDE facade and the examples:
    /// `?` in a `Result<_, String>` context converts through this impl.
    fn from(e: StorageError) -> Self {
        e.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_failure() {
        let e = StorageError::TableExists {
            table: "orders".into(),
        };
        assert_eq!(e.to_string(), "table orders already exists");
        let e = StorageError::TypeMismatch {
            table: "item".into(),
            column: 1,
            expected: DataType::F64,
            got: DataType::I64,
        };
        assert_eq!(e.to_string(), "table item: column 1 expects f64, got i64");
        let s: String = StorageError::RowMissing { row: 9 }.into();
        assert_eq!(s, "row 9 not found in active instance");
    }
}
