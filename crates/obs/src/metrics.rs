//! The metrics registry: counters, gauges and log-linear histograms
//! registered by name, with a [`MetricsSnapshot`] API for the bench and fig
//! binaries.
//!
//! Handles are `Arc`s over atomics: callers fetch a handle once (one
//! `BTreeMap` lookup under a short mutex) and every subsequent
//! increment/record is a couple of relaxed atomic ops — no locks, no
//! allocation, safe on the ingest hot path.
//!
//! Histograms are log-linear (HdrHistogram-style): four linear sub-buckets
//! per power of two, 256 buckets total, covering the full `u64` range in
//! ~2 KiB of counters. Quantiles are answered as the lower bound of the
//! bucket containing the target rank, i.e. with a relative error bounded by
//! 25% — plenty for p50/p95/p99 of latencies and rates.

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Number of histogram buckets: 62 octaves x 4 sub-buckets + the 8 exact
/// small values (0..8 map to themselves via the first two octaves).
const BUCKETS: usize = 256;

/// A monotonically increasing named counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Add one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A named gauge holding the last value set.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Overwrite the value.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A lock-free log-linear histogram over `u64` samples.
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    buckets: Box<[AtomicU64]>,
}

impl Default for Histogram {
    fn default() -> Self {
        let buckets: Vec<AtomicU64> = (0..BUCKETS).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            buckets: buckets.into_boxed_slice(),
        }
    }
}

/// Bucket index of a value: values below 8 map exactly; above, the octave
/// (position of the most significant bit) selects a group of four linear
/// sub-buckets.
fn bucket_of(v: u64) -> usize {
    if v < 8 {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros() as u64; // >= 3
    let sub = (v >> (msb - 2)) & 0x3;
    (((msb - 1) << 2) | sub) as usize
}

/// Lower bound of a bucket (the value reported for quantiles landing in it).
fn bucket_lower_bound(idx: usize) -> u64 {
    if idx < 8 {
        return idx as u64;
    }
    let idx = idx as u64;
    let msb = (idx >> 2) + 1;
    let sub = idx & 0x3;
    (1 << msb) | (sub << (msb - 2))
}

impl Histogram {
    /// Record one sample. Lock-free, allocation-free.
    pub fn record(&self, v: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
        if let Some(b) = self.buckets.get(bucket_of(v)) {
            b.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Record a non-negative float after scaling (e.g. a freshness rate in
    /// `[0,1]` with `scale = 1e6`). Negative or non-finite samples clamp
    /// to zero.
    pub fn record_scaled(&self, v: f64, scale: f64) {
        let scaled = v * scale;
        self.record(if scaled.is_finite() && scaled > 0.0 {
            scaled as u64
        } else {
            0
        });
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Quantile `q` in `[0,1]`: the lower bound of the bucket holding the
    /// target rank (relative error <= 25%). Returns 0 on an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count.load(Ordering::Relaxed);
        if count == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= target {
                return bucket_lower_bound(i);
            }
        }
        self.max.load(Ordering::Relaxed)
    }

    /// Fixed summary of the distribution.
    pub fn summary(&self) -> HistogramSummary {
        let count = self.count.load(Ordering::Relaxed);
        let sum = self.sum.load(Ordering::Relaxed);
        HistogramSummary {
            count,
            sum,
            mean: if count == 0 {
                0.0
            } else {
                sum as f64 / count as f64
            },
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("summary", &self.summary())
            .finish()
    }
}

/// Point-in-time digest of one histogram.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct HistogramSummary {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (bucket lower bound).
    pub p50: u64,
    /// 95th percentile (bucket lower bound).
    pub p95: u64,
    /// 99th percentile (bucket lower bound).
    pub p99: u64,
    /// Largest sample seen.
    pub max: u64,
}

/// Get-or-create registry of named metrics. Names are `&'static str` so the
/// hot paths never allocate; iteration order (and snapshot order) is the
/// `BTreeMap`'s — stable and deterministic.
#[derive(Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<&'static str, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<&'static str, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<&'static str, Arc<Histogram>>>,
}

impl Registry {
    /// The counter registered under `name`, created on first use. Cache the
    /// handle; increments through it never touch the registry lock.
    pub fn counter(&self, name: &'static str) -> Arc<Counter> {
        Arc::clone(self.counters.lock().entry(name).or_default())
    }

    /// The gauge registered under `name`, created on first use.
    pub fn gauge(&self, name: &'static str) -> Arc<Gauge> {
        Arc::clone(self.gauges.lock().entry(name).or_default())
    }

    /// The histogram registered under `name`, created on first use.
    pub fn histogram(&self, name: &'static str) -> Arc<Histogram> {
        Arc::clone(self.histograms.lock().entry(name).or_default())
    }

    /// A consistent-enough point-in-time snapshot of every registered
    /// metric (each metric is read atomically; the set is read under the
    /// registry locks).
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .lock()
                .iter()
                .map(|(&k, v)| (k.to_string(), v.get()))
                .collect(),
            gauges: self
                .gauges
                .lock()
                .iter()
                .map(|(&k, v)| (k.to_string(), v.get()))
                .collect(),
            histograms: self
                .histograms
                .lock()
                .iter()
                .map(|(&k, v)| (k.to_string(), v.summary()))
                .collect(),
        }
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry").finish_non_exhaustive()
    }
}

/// Everything the registry knows, frozen: the API `bench_exec` and the fig
/// binaries consume.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, u64>,
    /// Histogram digests by name.
    pub histograms: BTreeMap<String, HistogramSummary>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_mapping_is_monotone_and_bounded() {
        let mut last = 0;
        for v in [0u64, 1, 7, 8, 9, 100, 1_000, 65_535, 1 << 40, u64::MAX] {
            let b = bucket_of(v);
            assert!(b >= last, "bucket({v}) went backwards");
            assert!(b < BUCKETS, "bucket({v}) = {b} out of range");
            last = b;
        }
    }

    #[test]
    fn bucket_lower_bound_brackets_its_values() {
        for v in (0..64)
            .map(|s| 1u64 << s)
            .chain([0, 3, 7, 9, 12345, 999_999])
        {
            let b = bucket_of(v);
            assert!(bucket_lower_bound(b) <= v, "lb(bucket({v})) > {v}");
            if b + 1 < BUCKETS {
                assert!(bucket_lower_bound(b + 1) > v, "lb(bucket({v})+1) <= {v}");
            }
        }
    }

    #[test]
    fn quantiles_land_within_a_bucket_of_truth() {
        let h = Histogram::default();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.summary();
        assert_eq!(s.count, 1000);
        assert_eq!(s.max, 1000);
        // Log-linear buckets: answers are lower bounds, <= truth, within 25%.
        assert!(
            s.p50 <= 500 && s.p50 as f64 >= 500.0 * 0.75,
            "p50={}",
            s.p50
        );
        assert!(
            s.p95 <= 950 && s.p95 as f64 >= 950.0 * 0.75,
            "p95={}",
            s.p95
        );
        assert!(
            s.p99 <= 990 && s.p99 as f64 >= 990.0 * 0.75,
            "p99={}",
            s.p99
        );
        assert!((s.mean - 500.5).abs() < 1.0);
    }

    #[test]
    fn empty_histogram_answers_zero() {
        let h = Histogram::default();
        assert_eq!(h.quantile(0.99), 0);
        assert_eq!(h.summary(), HistogramSummary::default());
    }

    #[test]
    fn record_scaled_clamps_junk() {
        let h = Histogram::default();
        h.record_scaled(0.5, 1e6);
        h.record_scaled(-3.0, 1e6);
        h.record_scaled(f64::NAN, 1e6);
        let s = h.summary();
        assert_eq!(s.count, 3);
        assert_eq!(s.max, 500_000);
    }

    #[test]
    fn registry_handles_are_shared_and_snapshot_orders_by_name() {
        let r = Registry::default();
        r.counter("b.two").add(2);
        r.counter("a.one").inc();
        let again = r.counter("b.two");
        again.inc();
        r.gauge("g").set(7);
        r.histogram("h").record(10);
        let snap = r.snapshot();
        assert_eq!(snap.counters.keys().collect::<Vec<_>>(), ["a.one", "b.two"]);
        assert_eq!(snap.counters["b.two"], 3);
        assert_eq!(snap.gauges["g"], 7);
        assert_eq!(snap.histograms["h"].count, 1);
    }
}
