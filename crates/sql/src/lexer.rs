//! The SQL lexer: query text → position-tagged tokens.
//!
//! Keywords are not distinguished here — they surface as [`Tok::Ident`] and
//! the parser matches them case-insensitively, which keeps the token set
//! small and lets column names shadow nothing.

use crate::error::SqlError;

/// One lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Identifier or keyword (case preserved; keyword matching is the
    /// parser's job).
    Ident(String),
    /// Numeric literal.
    Number(f64),
    /// Single-quoted string literal (quotes stripped, no escapes).
    Str(String),
    /// `,`
    Comma,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `*`
    Star,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `.`
    Dot,
    /// `;`
    Semi,
    /// `=`
    Eq,
    /// `<>` or `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl Tok {
    /// Render the token for error messages.
    pub fn describe(&self) -> String {
        match self {
            Tok::Ident(s) => format!("{s:?}"),
            Tok::Number(v) => format!("number {v}"),
            Tok::Str(s) => format!("string {s:?}"),
            Tok::Comma => "','".into(),
            Tok::LParen => "'('".into(),
            Tok::RParen => "')'".into(),
            Tok::Star => "'*'".into(),
            Tok::Plus => "'+'".into(),
            Tok::Minus => "'-'".into(),
            Tok::Dot => "'.'".into(),
            Tok::Semi => "';'".into(),
            Tok::Eq => "'='".into(),
            Tok::Ne => "'<>'".into(),
            Tok::Lt => "'<'".into(),
            Tok::Le => "'<='".into(),
            Tok::Gt => "'>'".into(),
            Tok::Ge => "'>='".into(),
        }
    }
}

/// A token plus the byte offset where it starts.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token.
    pub tok: Tok,
    /// Byte offset into the query text.
    pub pos: usize,
}

/// Tokenise `sql`. Unknown characters, unclosed strings and malformed
/// numbers are typed errors, never panics.
pub fn lex(sql: &str) -> Result<Vec<Token>, SqlError> {
    let bytes = sql.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => i += 1,
            b',' => {
                out.push(Token {
                    tok: Tok::Comma,
                    pos: i,
                });
                i += 1;
            }
            b'(' => {
                out.push(Token {
                    tok: Tok::LParen,
                    pos: i,
                });
                i += 1;
            }
            b')' => {
                out.push(Token {
                    tok: Tok::RParen,
                    pos: i,
                });
                i += 1;
            }
            b'*' => {
                out.push(Token {
                    tok: Tok::Star,
                    pos: i,
                });
                i += 1;
            }
            b'+' => {
                out.push(Token {
                    tok: Tok::Plus,
                    pos: i,
                });
                i += 1;
            }
            b'-' => {
                out.push(Token {
                    tok: Tok::Minus,
                    pos: i,
                });
                i += 1;
            }
            b'.' => {
                out.push(Token {
                    tok: Tok::Dot,
                    pos: i,
                });
                i += 1;
            }
            b';' => {
                out.push(Token {
                    tok: Tok::Semi,
                    pos: i,
                });
                i += 1;
            }
            b'=' => {
                out.push(Token {
                    tok: Tok::Eq,
                    pos: i,
                });
                i += 1;
            }
            b'<' => {
                let (tok, step) = match bytes.get(i + 1) {
                    Some(b'=') => (Tok::Le, 2),
                    Some(b'>') => (Tok::Ne, 2),
                    _ => (Tok::Lt, 1),
                };
                out.push(Token { tok, pos: i });
                i += step;
            }
            b'>' => {
                let (tok, step) = match bytes.get(i + 1) {
                    Some(b'=') => (Tok::Ge, 2),
                    _ => (Tok::Gt, 1),
                };
                out.push(Token { tok, pos: i });
                i += step;
            }
            b'!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token {
                        tok: Tok::Ne,
                        pos: i,
                    });
                    i += 2;
                } else {
                    return Err(SqlError::UnexpectedChar { ch: '!', pos: i });
                }
            }
            b'\'' => {
                let start = i;
                i += 1;
                let content_start = i;
                while i < bytes.len() && bytes[i] != b'\'' {
                    i += 1;
                }
                if i >= bytes.len() {
                    return Err(SqlError::UnclosedString { pos: start });
                }
                out.push(Token {
                    tok: Tok::Str(sql[content_start..i].to_string()),
                    pos: start,
                });
                i += 1;
            }
            b'0'..=b'9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                // One fractional part; a second '.' makes the literal
                // malformed (the "1.2.3" case) rather than two tokens.
                if i < bytes.len()
                    && bytes[i] == b'.'
                    && bytes.get(i + 1).is_some_and(u8::is_ascii_digit)
                {
                    i += 1;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                    if i < bytes.len()
                        && bytes[i] == b'.'
                        && bytes.get(i + 1).is_some_and(u8::is_ascii_digit)
                    {
                        while i < bytes.len() && (bytes[i].is_ascii_digit() || bytes[i] == b'.') {
                            i += 1;
                        }
                        return Err(SqlError::BadNumber {
                            text: sql[start..i].to_string(),
                            pos: start,
                        });
                    }
                }
                let text = &sql[start..i];
                let value = text.parse::<f64>().map_err(|_| SqlError::BadNumber {
                    text: text.to_string(),
                    pos: start,
                })?;
                out.push(Token {
                    tok: Tok::Number(value),
                    pos: start,
                });
            }
            b'A'..=b'Z' | b'a'..=b'z' | b'_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                out.push(Token {
                    tok: Tok::Ident(sql[start..i].to_string()),
                    pos: start,
                });
            }
            other => {
                // Report the full character, not the raw byte, for non-ASCII.
                let ch = sql[i..].chars().next().unwrap_or(other as char);
                return Err(SqlError::UnexpectedChar { ch, pos: i });
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(sql: &str) -> Vec<Tok> {
        lex(sql).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn tokenises_a_simple_query() {
        assert_eq!(
            toks("SELECT SUM(a) FROM t WHERE b >= 1.5"),
            vec![
                Tok::Ident("SELECT".into()),
                Tok::Ident("SUM".into()),
                Tok::LParen,
                Tok::Ident("a".into()),
                Tok::RParen,
                Tok::Ident("FROM".into()),
                Tok::Ident("t".into()),
                Tok::Ident("WHERE".into()),
                Tok::Ident("b".into()),
                Tok::Ge,
                Tok::Number(1.5),
            ]
        );
    }

    #[test]
    fn comparison_operators_and_both_ne_spellings() {
        assert_eq!(
            toks("a < b <= c > d >= e = f <> g != h"),
            vec![
                Tok::Ident("a".into()),
                Tok::Lt,
                Tok::Ident("b".into()),
                Tok::Le,
                Tok::Ident("c".into()),
                Tok::Gt,
                Tok::Ident("d".into()),
                Tok::Ge,
                Tok::Ident("e".into()),
                Tok::Eq,
                Tok::Ident("f".into()),
                Tok::Ne,
                Tok::Ident("g".into()),
                Tok::Ne,
                Tok::Ident("h".into()),
            ]
        );
    }

    #[test]
    fn strings_and_positions() {
        let tokens = lex("x LIKE 'PR%'").unwrap();
        assert_eq!(tokens[2].tok, Tok::Str("PR%".into()));
        assert_eq!(tokens[2].pos, 7);
        assert_eq!(tokens[0].pos, 0);
    }

    #[test]
    fn unclosed_string_is_a_typed_error() {
        assert_eq!(lex("a LIKE 'PR"), Err(SqlError::UnclosedString { pos: 7 }));
    }

    #[test]
    fn unexpected_characters_are_typed_errors() {
        assert_eq!(
            lex("a # b"),
            Err(SqlError::UnexpectedChar { ch: '#', pos: 2 })
        );
        assert_eq!(
            lex("a ! b"),
            Err(SqlError::UnexpectedChar { ch: '!', pos: 2 })
        );
        // Non-ASCII is reported as the character, not a byte.
        assert!(matches!(
            lex("a £ b"),
            Err(SqlError::UnexpectedChar { ch: '£', .. })
        ));
    }

    #[test]
    fn malformed_number_is_a_typed_error() {
        assert_eq!(
            lex("SELECT 1.2.3"),
            Err(SqlError::BadNumber {
                text: "1.2.3".into(),
                pos: 7
            })
        );
    }

    #[test]
    fn a_trailing_dot_is_its_own_token() {
        // "t.c" style qualification: the dot separates identifiers.
        assert_eq!(
            toks("t.c"),
            vec![Tok::Ident("t".into()), Tok::Dot, Tok::Ident("c".into())]
        );
        // "1." does not swallow the dot into the number.
        assert_eq!(toks("1."), vec![Tok::Number(1.0), Tok::Dot]);
    }
}
