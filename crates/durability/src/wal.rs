//! Write-ahead log with a group-commit coordinator.
//!
//! `append_commit` encodes the record into a shared batch buffer and blocks
//! until the record is durable. The first waiter whose record is not yet
//! durable elects itself *flush leader*: it optionally lingers (bounded by
//! the flush interval) to let concurrent committers join the batch, then
//! writes the whole buffer and issues a single fsync for all of them. Every
//! waiter of the batch wakes when the leader publishes the new durable LSN —
//! N concurrent committers cost one fsync, not N.
//!
//! Locking: `state` (batch buffer + LSN watermarks, a `std::sync::Mutex`
//! paired with a condvar) and `io` (the file handle) are never held at the
//! same time — the leader drops `state` before touching `io` and reacquires
//! it afterwards. Poisoned guards are recovered (`into_inner`): the guarded
//! data is plain bytes and counters, and a failed flush is reported through
//! the explicit `broken` state, not through poisoning.
//!
//! If a flush fails, the WAL marks itself broken: the failed batch's waiters
//! (and all later appends) get an error and the engine must treat those
//! transactions as aborted. The bytes of a failed batch may be partially on
//! disk; the CRC framing makes recovery discard any torn tail.

use crate::error::DurabilityError;
use crate::file::{DurableFile, DurableStorage};
use crate::record::{decode_wal, encode_wal_header, Lsn, WalRecord, WalSegment};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Duration;

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Tuning knobs of the group-commit coordinator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalConfig {
    /// How long a flush leader lingers for more committers to join the batch
    /// before writing, in microseconds. Zero flushes immediately.
    pub flush_interval_micros: u64,
    /// Flush as soon as this many records are pending, even before the
    /// linger expires.
    pub max_batch: usize,
}

impl Default for WalConfig {
    fn default() -> Self {
        WalConfig {
            flush_interval_micros: 100,
            max_batch: 64,
        }
    }
}

/// Counters describing the work the group-commit coordinator has done.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalStats {
    /// Records appended (commits logged).
    pub appended: u64,
    /// Physical fsync barriers issued.
    pub fsyncs: u64,
    /// Flush batches written.
    pub batches: u64,
}

#[derive(Debug)]
struct WalState {
    /// Encoded-but-unflushed records.
    buf: Vec<u8>,
    /// Records currently in `buf`.
    pending: usize,
    /// LSN the next append receives.
    next_lsn: Lsn,
    /// Highest LSN known durable (exclusive: records with `lsn < durable_to`
    /// are durable).
    durable_to: Lsn,
    /// A leader is currently flushing.
    flushing: bool,
    /// Set on flush failure; all subsequent appends fail fast.
    broken: Option<DurabilityError>,
}

struct WalShared {
    state: Mutex<WalState>,
    cv: Condvar,
    io: Mutex<Box<dyn DurableFile>>,
    storage: Arc<dyn DurableStorage>,
    name: String,
    config: WalConfig,
    appended: AtomicU64,
    fsyncs: AtomicU64,
    batches: AtomicU64,
}

/// The write-ahead log. Cheap to clone and share across committer threads.
#[derive(Clone)]
pub struct Wal {
    shared: Arc<WalShared>,
}

impl std::fmt::Debug for Wal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = lock(&self.shared.state);
        f.debug_struct("Wal")
            .field("name", &self.shared.name)
            .field("next_lsn", &st.next_lsn)
            .field("durable_to", &st.durable_to)
            .field("broken", &st.broken)
            .finish()
    }
}

impl Wal {
    /// Open (creating or repairing) the WAL file `name` on `storage`.
    ///
    /// An existing file is decoded and any torn/corrupt tail is rewritten
    /// away before the append handle opens, so appends always continue a
    /// valid prefix. Returns the WAL plus the decoded segment (recovery
    /// replays from it; a fresh WAL has an empty segment).
    pub fn open(
        storage: Arc<dyn DurableStorage>,
        name: &str,
        config: WalConfig,
    ) -> Result<(Self, WalSegment), DurabilityError> {
        let segment = match storage.read(name)? {
            Some(bytes) => {
                let seg = decode_wal(&bytes)?;
                if seg.valid_len < bytes.len() {
                    // Drop the torn tail so the append handle continues a
                    // valid prefix.
                    storage.write_atomic(name, &bytes[..seg.valid_len])?;
                }
                seg
            }
            None => {
                storage.write_atomic(name, &encode_wal_header(0))?;
                WalSegment {
                    base_lsn: 0,
                    records: Vec::new(),
                    valid_len: crate::record::WAL_HEADER_LEN,
                }
            }
        };
        let file = storage.open_append(name)?;
        let end = segment.end_lsn();
        let wal = Wal {
            shared: Arc::new(WalShared {
                state: Mutex::new(WalState {
                    buf: Vec::new(),
                    pending: 0,
                    next_lsn: end,
                    durable_to: end,
                    flushing: false,
                    broken: None,
                }),
                cv: Condvar::new(),
                io: Mutex::new(file),
                storage,
                name: name.to_string(),
                config,
                appended: AtomicU64::new(0),
                fsyncs: AtomicU64::new(0),
                batches: AtomicU64::new(0),
            }),
        };
        Ok((wal, segment))
    }

    /// Append a commit record and block until it is durable (or the flush
    /// covering it fails). Returns the record's LSN.
    ///
    /// Concurrent callers are batched: one of them becomes the flush leader
    /// and issues a single append+fsync for the whole batch.
    pub fn append_commit(&self, record: &WalRecord) -> Result<Lsn, DurabilityError> {
        let sh = &self.shared;
        let mut st = lock(&sh.state);
        if let Some(e) = &st.broken {
            return Err(e.clone());
        }
        let lsn = st.next_lsn;
        st.next_lsn += 1;
        record.encode_into(&mut st.buf);
        st.pending += 1;
        sh.appended.fetch_add(1, Ordering::Relaxed);
        // Wake a lingering leader if the batch just filled up.
        if st.pending >= sh.config.max_batch {
            sh.cv.notify_all();
        }

        loop {
            if st.durable_to > lsn {
                return Ok(lsn);
            }
            if let Some(e) = &st.broken {
                return Err(e.clone());
            }
            if !st.flushing {
                st.flushing = true;
                // Linger: give concurrent committers a chance to join this
                // batch so one fsync covers them all.
                let linger = Duration::from_micros(sh.config.flush_interval_micros);
                if !linger.is_zero() && st.pending < sh.config.max_batch {
                    let (guard, _timeout) = sh
                        .cv
                        .wait_timeout(st, linger)
                        .unwrap_or_else(|poisoned| poisoned.into_inner());
                    st = guard;
                }
                let buf = std::mem::take(&mut st.buf);
                let flush_to = st.next_lsn;
                let batch_records = st.pending as u64;
                st.pending = 0;
                drop(st);

                // I/O outside the state lock: the two mutexes are never held
                // simultaneously.
                let on = htap_obs::enabled();
                let t_flush = if on { htap_obs::now_us() } else { 0 };
                let result = {
                    let mut io = lock(&sh.io);
                    io.append(&buf).and_then(|()| {
                        sh.fsyncs.fetch_add(1, Ordering::Relaxed);
                        io.sync()
                    })
                };
                sh.batches.fetch_add(1, Ordering::Relaxed);
                if on {
                    // One event per group-commit batch on the leader's lane:
                    // how many commit records the single fsync covered.
                    htap_obs::record_thread(
                        htap_obs::EventKind::WalFsyncBatch,
                        t_flush,
                        batch_records,
                        htap_obs::now_us().saturating_sub(t_flush),
                    );
                    htap_obs::histogram("wal.fsync_batch_records").record(batch_records);
                }

                st = lock(&sh.state);
                st.flushing = false;
                match result {
                    Ok(()) => st.durable_to = st.durable_to.max(flush_to),
                    Err(e) => {
                        st.broken = Some(DurabilityError::Broken {
                            detail: e.to_string(),
                        });
                        // The waiter that observed the original failure
                        // reports it precisely; later appends see Broken.
                        sh.cv.notify_all();
                        return Err(e);
                    }
                }
                sh.cv.notify_all();
            } else {
                st = sh
                    .cv
                    .wait(st)
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
            }
        }
    }

    /// LSN the next append will receive.
    pub fn next_lsn(&self) -> Lsn {
        lock(&self.shared.state).next_lsn
    }

    /// Exclusive durable watermark: every record with `lsn < durable_to()`
    /// is on the durable medium.
    pub fn durable_to(&self) -> Lsn {
        lock(&self.shared.state).durable_to
    }

    /// Whether an earlier flush failure has wedged the WAL.
    pub fn is_broken(&self) -> bool {
        lock(&self.shared.state).broken.is_some()
    }

    /// Group-commit counters.
    pub fn stats(&self) -> WalStats {
        WalStats {
            appended: self.shared.appended.load(Ordering::Relaxed),
            fsyncs: self.shared.fsyncs.load(Ordering::Relaxed),
            batches: self.shared.batches.load(Ordering::Relaxed),
        }
    }

    /// Discard every record with `lsn < up_to` (they are covered by a
    /// checkpoint) by rewriting the file with `base_lsn = up_to`, then
    /// reopen the append handle on the rewritten file.
    ///
    /// Called inside the switch-gate quiescence window: no commit is in
    /// flight, but the method still drains any pending batch first so it is
    /// safe in general.
    pub fn truncate_to(&self, up_to: Lsn) -> Result<(), DurabilityError> {
        let sh = &self.shared;
        let mut st = lock(&sh.state);
        if let Some(e) = &st.broken {
            return Err(e.clone());
        }
        // Claim the flush role so no leader races the rewrite.
        while st.flushing {
            st = sh
                .cv
                .wait(st)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
        st.flushing = true;
        let buf = std::mem::take(&mut st.buf);
        let flush_to = st.next_lsn;
        st.pending = 0;
        drop(st);

        let result = self.rewrite(up_to, &buf);

        let mut st = lock(&sh.state);
        st.flushing = false;
        match &result {
            Ok(()) => st.durable_to = st.durable_to.max(flush_to),
            Err(e) => {
                st.broken = Some(DurabilityError::Broken {
                    detail: e.to_string(),
                })
            }
        }
        sh.cv.notify_all();
        result
    }

    /// Flush `pending_buf`, rewrite the file keeping only records with
    /// `lsn >= up_to`, and swap in a fresh append handle.
    fn rewrite(&self, up_to: Lsn, pending_buf: &[u8]) -> Result<(), DurabilityError> {
        let sh = &self.shared;
        let mut io = lock(&sh.io);
        if !pending_buf.is_empty() {
            io.append(pending_buf)?;
            sh.fsyncs.fetch_add(1, Ordering::Relaxed);
            io.sync()?;
        }
        let bytes = sh
            .storage
            .read(&sh.name)?
            .ok_or_else(|| DurabilityError::corrupt("wal file vanished during truncation"))?;
        let seg = decode_wal(&bytes)?;
        let mut fresh = encode_wal_header(up_to.min(seg.end_lsn()));
        for (lsn, record) in seg.numbered() {
            if lsn >= up_to {
                record.encode_into(&mut fresh);
            }
        }
        sh.storage.write_atomic(&sh.name, &fresh)?;
        // The old handle points at the replaced file; reopen on the new one.
        *io = sh.storage.open_append(&sh.name)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::file::MemStorage;
    use crate::record::WalOp;
    use htap_storage::Value;

    fn rec(txn_id: u64) -> WalRecord {
        WalRecord {
            txn_id,
            commit_ts: txn_id + 100,
            ops: vec![WalOp::Update {
                table: "t".into(),
                key: txn_id,
                column: 0,
                value: Value::I64(txn_id as i64),
            }],
        }
    }

    fn mem_wal(config: WalConfig) -> (MemStorage, Wal) {
        let mem = MemStorage::new();
        let (wal, seg) = Wal::open(Arc::new(mem.clone()), "wal", config).unwrap();
        assert!(seg.records.is_empty());
        (mem, wal)
    }

    #[test]
    fn appends_become_durable_and_reopen_continues() {
        let (mem, wal) = mem_wal(WalConfig {
            flush_interval_micros: 0,
            max_batch: 1,
        });
        assert_eq!(wal.append_commit(&rec(1)).unwrap(), 0);
        assert_eq!(wal.append_commit(&rec(2)).unwrap(), 1);
        assert_eq!(wal.durable_to(), 2);
        drop(wal);

        let (wal2, seg) = Wal::open(Arc::new(mem), "wal", WalConfig::default()).unwrap();
        assert_eq!(seg.records.len(), 2);
        assert_eq!(seg.records[1], rec(2));
        assert_eq!(wal2.next_lsn(), 2);
    }

    #[test]
    fn group_commit_batches_concurrent_committers() {
        let (_mem, wal) = mem_wal(WalConfig {
            flush_interval_micros: 20_000,
            max_batch: 64,
        });
        const N: u64 = 16;
        let threads: Vec<_> = (0..N)
            .map(|i| {
                let wal = wal.clone();
                std::thread::spawn(move || wal.append_commit(&rec(i)).unwrap())
            })
            .collect();
        let mut lsns: Vec<_> = threads.into_iter().map(|t| t.join().unwrap()).collect();
        lsns.sort_unstable();
        assert_eq!(lsns, (0..N).collect::<Vec<_>>());
        let stats = wal.stats();
        assert_eq!(stats.appended, N);
        // The whole point: far fewer fsyncs than committers. With a 20ms
        // linger the common case is one or two batches; allow slack for
        // scheduling but require real amortisation.
        assert!(
            stats.fsyncs <= N / 2,
            "expected batching, got {} fsyncs for {N} commits",
            stats.fsyncs
        );
    }

    #[test]
    fn full_batch_flushes_without_waiting_for_linger() {
        let (_mem, wal) = mem_wal(WalConfig {
            flush_interval_micros: 60_000_000, // would time out the test
            max_batch: 2,
        });
        let t1 = {
            let wal = wal.clone();
            std::thread::spawn(move || wal.append_commit(&rec(1)).unwrap())
        };
        let t2 = {
            let wal = wal.clone();
            std::thread::spawn(move || wal.append_commit(&rec(2)).unwrap())
        };
        t1.join().unwrap();
        t2.join().unwrap();
        assert_eq!(wal.durable_to(), 2);
    }

    #[test]
    fn failed_flush_breaks_the_wal() {
        use crate::file::{FaultInjector, FaultStorage};
        let mem = MemStorage::new();
        let inj = FaultInjector::new();
        let storage = FaultStorage::new(Arc::new(mem), inj.clone());
        let (wal, _) = Wal::open(
            Arc::new(storage),
            "wal",
            WalConfig {
                flush_interval_micros: 0,
                max_batch: 1,
            },
        )
        .unwrap();
        wal.append_commit(&rec(1)).unwrap();
        inj.fail_syncs(1);
        assert!(wal.append_commit(&rec(2)).is_err());
        assert!(wal.is_broken());
        assert!(matches!(
            wal.append_commit(&rec(3)),
            Err(DurabilityError::Broken { .. })
        ));
        // Durable watermark never advanced past the failure.
        assert_eq!(wal.durable_to(), 1);
    }

    #[test]
    fn truncate_to_discards_covered_records_and_keeps_tail() {
        let (mem, wal) = mem_wal(WalConfig {
            flush_interval_micros: 0,
            max_batch: 1,
        });
        for i in 0..5 {
            wal.append_commit(&rec(i)).unwrap();
        }
        wal.truncate_to(3).unwrap();
        let seg = decode_wal(&mem.bytes("wal").unwrap()).unwrap();
        assert_eq!(seg.base_lsn, 3);
        assert_eq!(seg.records.len(), 2);
        assert_eq!(seg.records[0], rec(3));
        // Appends continue with correct LSNs on the rewritten file.
        assert_eq!(wal.append_commit(&rec(9)).unwrap(), 5);
        let seg = decode_wal(&mem.bytes("wal").unwrap()).unwrap();
        assert_eq!(seg.end_lsn(), 6);
        assert_eq!(seg.records[2], rec(9));
    }

    #[test]
    fn open_repairs_a_torn_tail() {
        let (mem, wal) = mem_wal(WalConfig {
            flush_interval_micros: 0,
            max_batch: 1,
        });
        wal.append_commit(&rec(1)).unwrap();
        wal.append_commit(&rec(2)).unwrap();
        drop(wal);
        let mut bytes = mem.bytes("wal").unwrap();
        bytes.truncate(bytes.len() - 3);
        mem.set_bytes("wal", bytes);

        let (wal2, seg) = Wal::open(Arc::new(mem.clone()), "wal", WalConfig::default()).unwrap();
        assert_eq!(seg.records.len(), 1);
        assert_eq!(wal2.next_lsn(), 1);
        // The stored file itself was repaired to the valid prefix.
        let repaired = decode_wal(&mem.bytes("wal").unwrap()).unwrap();
        assert_eq!(repaired.valid_len, mem.bytes("wal").unwrap().len());
    }
}
