//! Table 1 — HTAP design classification.
//!
//! Table 1 of the paper is qualitative: it classifies existing HTAP systems by
//! storage organisation, snapshotting mechanism and the freshness/performance
//! trade-off they make. This harness prints the classification and, for every
//! row that our system can emulate (through its states and the two baselines),
//! runs a small probe that quantifies the trade-off: the OLTP throughput
//! retained while an analytical query runs, and the scheduling cost (snapshot
//! / ETL / page copies) paid to give that query fresh data.
//!
//! `cargo run --release -p htap-bench --bin table1_design_space`

use htap_baselines::{CowBaseline, EtlBaseline};
use htap_bench::{fmt_mtps, fmt_secs, Harness, HarnessArgs};
use htap_chbench::ch_q6;
use htap_core::ExperimentTable;
use htap_rde::SystemState;

fn main() {
    let args = HarnessArgs::parse();
    let plan = ch_q6();

    println!("Table 1 — HTAP design classification (paper) and measured trade-off probes\n");
    let mut classification = ExperimentTable::new(
        "Table 1 — classification of HTAP designs",
        &[
            "storage",
            "system_class",
            "snapshot_mechanism",
            "freshness_perf_tradeoff",
            "emulated_by",
        ],
    );
    let rows = [
        (
            "Unified",
            "HyPer-Fork / Caldera",
            "CoW",
            "OLTP pays page copies",
            "CoW baseline",
        ),
        (
            "Unified",
            "HyPer-MVOCC / MemSQL / BLU",
            "MVCC",
            "OLAP pays version traversal",
            "state S1",
        ),
        (
            "Unified",
            "SAP HANA",
            "Delta-versioning",
            "both engines pay merges",
            "state S1 + sync",
        ),
        (
            "Decoupled",
            "BatchDB",
            "Batch-ETL",
            "OLAP pays ETL latency",
            "state S2 / ETL baseline",
        ),
        (
            "Decoupled",
            "SQL Server",
            "MVCC-Delta",
            "OLAP pays tail-record scan",
            "state S3-IS",
        ),
        (
            "Decoupled",
            "Oracle dual-format",
            "Txn journal & ETL",
            "OLAP pays tail-record scan",
            "state S3-NI",
        ),
    ];
    for (storage, class, mech, tradeoff, emulated) in rows {
        classification.push_row(vec![
            storage.into(),
            class.into(),
            mech.into(),
            tradeoff.into(),
            emulated.into(),
        ]);
    }
    print!("{}", classification.render());
    println!();

    // Measured probes: run one fresh-data query per emulation target and
    // report what it cost each side.
    let mut probes = ExperimentTable::new(
        "Table 1 probes — measured freshness/performance trade-off per emulated design",
        &[
            "emulation",
            "query_resp_s",
            "freshness_cost_s",
            "oltp_mtps_during_query",
        ],
    );

    // States of our system.
    for state in SystemState::all() {
        let harness = Harness::two_socket(&args);
        harness.rde.switch_and_sync();
        harness.rde.etl_to_olap();
        harness.ingest(400, 4, 3);
        let migration = harness.rde.migrate(state);
        let sources = harness.rde.sources_for(&plan.tables(), migration.access);
        let txn = harness.rde.txn_work();
        let exec = harness
            .rde
            .olap()
            .run_query(&plan, &sources, Some(&txn))
            .expect("CH plan matches the scheduled sources");
        let tps = harness.rde.modeled_oltp_throughput(
            &harness
                .rde
                .olap_traffic_for(&exec.output.work.bytes_per_socket),
        );
        probes.push_row(vec![
            format!("state {}", state.label()),
            fmt_secs(exec.modeled.total),
            fmt_secs(migration.modeled_time),
            fmt_mtps(tps),
        ]);
    }

    // Baselines.
    {
        let harness = Harness::two_socket(&args);
        harness.ingest(400, 4, 4);
        let point = EtlBaseline.run_snapshot(&harness.rde, &plan, 1);
        probes.push_row(vec![
            "ETL baseline (BatchDB-like)".into(),
            fmt_secs(point.query_exec_time),
            fmt_secs(point.data_transfer_time),
            fmt_mtps(point.oltp_tps),
        ]);
    }
    {
        let harness = Harness::two_socket(&args);
        let txns = harness.ingest(400, 4, 5);
        let point = CowBaseline::default().run_snapshot(&harness.rde, &plan, 1, txns);
        probes.push_row(vec![
            "CoW baseline (HyPer-fork-like)".into(),
            fmt_secs(point.query_exec_time),
            format!("{} page copies", point.pages_copied),
            fmt_mtps(point.oltp_tps),
        ]);
    }

    if args.csv {
        print!("{}", probes.to_csv());
    } else {
        print!("{}", probes.render());
    }
}
