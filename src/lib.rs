//! # adaptive-htap
//!
//! Umbrella crate for the reproduction of *Adaptive HTAP through Elastic
//! Resource Scheduling* (Raza et al., SIGMOD 2020).
//!
//! It re-exports the public API of every component so the examples and
//! integration tests in this repository read like downstream user code:
//!
//! * [`core`](htap_core) — the assembled system ([`htap_core::HtapSystem`]).
//! * [`sim`](htap_sim) — the simulated NUMA machine and cost models.
//! * [`storage`](htap_storage) — twin-instance columnar storage.
//! * [`oltp`](htap_oltp) / [`olap`](htap_olap) — the two engines.
//! * [`rde`](htap_rde) — the resource and data exchange engine.
//! * [`scheduler`](htap_scheduler) — Algorithm 2 and the static schedules.
//! * [`chbench`](htap_chbench) — the CH-benCHmark workload.
//! * [`sql`](htap_sql) — the SQL frontend (parser, binder, cost-aware
//!   planner) lowering query text onto the engine's plans.
//! * [`durability`](htap_durability) — write-ahead log with group commit,
//!   column-segment checkpoints, crash recovery, fault-injectable storage.
//! * [`baselines`](htap_baselines) — the Figure-1 ETL and CoW baselines.
//! * [`obs`](htap_obs) — always-on tracing and metrics: per-worker event
//!   rings, span trees, the RDE decision log, a metrics registry and a
//!   Chrome `trace_event` exporter (see the *Observability* section of
//!   ARCHITECTURE.md and `examples/trace_viewer.rs`).
//!
//! The crate layering (sim → storage → engines → rde → scheduler → core) and
//! the morsel-driven parallel execution flow are documented in
//! [`ARCHITECTURE.md`](https://github.com/paper-repo-growth/adaptive-htap/blob/main/ARCHITECTURE.md)
//! at the repository root. Its *Static analysis & concurrency checking*
//! section covers `htap-lint` (the workspace determinism linter under
//! `crates/lint`, rules L1–L5 and the `lint:allow` syntax) and the runtime
//! lock-order checker built into `shims/parking_lot`, which is live in
//! every debug-build test run. Its *Durability & crash recovery* section
//! documents the WAL record format, the group-commit protocol, how
//! checkpoints ride the switch gate's quiescence window, the
//! WAL-before-apply recovery invariant, and the failpoint catalog behind
//! `tests/crash_recovery.rs`.

pub use htap_baselines as baselines;
pub use htap_chbench as chbench;
pub use htap_core as core;
pub use htap_durability as durability;
pub use htap_obs as obs;
pub use htap_olap as olap;
pub use htap_oltp as oltp;
pub use htap_rde as rde;
pub use htap_scheduler as scheduler;
pub use htap_sim as sim;
pub use htap_sql as sql;
pub use htap_storage as storage;

pub use htap_core::{
    HtapConfig, HtapSystem, MixedWorkload, QueryId, Schedule, SqlRunError, SystemState,
};

#[cfg(test)]
mod tests {
    #[test]
    fn umbrella_reexports_compose() {
        let cfg = crate::HtapConfig::tiny();
        assert!(cfg.validate().is_ok());
        assert_eq!(crate::SystemState::S2Isolated.label(), "S2");
    }
}
