//! The RDE decision log: one record per scheduling decision, carrying the
//! scheduler's *inputs* (freshness estimate, pending delta rows, active
//! OLTP workers) and its chosen action, so a fig5 run can answer "why did
//! the engine grant/revoke cores here?" instead of only showing that it did.

use crate::clock::now_us;

/// Decisions kept before drop-newest kicks in.
pub(crate) const DECISION_LOG_CAPACITY: usize = 4096;

/// One elastic-scheduling decision.
#[derive(Debug, Clone, PartialEq)]
pub struct RdeDecision {
    /// When the decision was taken, µs since the trace epoch.
    pub ts_us: u64,
    /// The query (label) that triggered scheduling.
    pub query: String,
    /// Measured fresh-data rate the decision saw, in `[0,1]`.
    pub freshness: f64,
    /// Delta-store rows pending ETL at decision time (the queue depth the
    /// scheduler weighs against freshness).
    pub pending_delta_rows: u64,
    /// OLTP ingest workers active at decision time.
    pub active_oltp_workers: u64,
    /// The system state chosen ("S1", "S2", "S3-NI", ...).
    pub state: String,
    /// OLTP cores after the migration.
    pub oltp_cores: usize,
    /// OLAP cores after the migration.
    pub olap_cores: usize,
    /// The scheduler's modeled execution time for the query, seconds.
    pub modeled_time_s: f64,
    /// Chosen action relative to the previous decision: "grant-olap"
    /// (cores moved to OLAP), "revoke-olap" (cores moved back to OLTP), or
    /// "hold".
    pub action: &'static str,
}

/// Bounded log plus the state needed to classify the next decision.
#[derive(Debug, Default)]
pub(crate) struct DecisionLog {
    pub(crate) entries: Vec<RdeDecision>,
    pub(crate) dropped: u64,
    last_olap_cores: Option<usize>,
}

impl DecisionLog {
    pub(crate) fn push(&mut self, mut d: RdeDecision) {
        d.action = match self.last_olap_cores {
            Some(prev) if d.olap_cores > prev => "grant-olap",
            Some(prev) if d.olap_cores < prev => "revoke-olap",
            Some(_) => "hold",
            None => "initial",
        };
        self.last_olap_cores = Some(d.olap_cores);
        if self.entries.capacity() == 0 {
            self.entries.reserve_exact(DECISION_LOG_CAPACITY);
        }
        if self.entries.len() < DECISION_LOG_CAPACITY {
            self.entries.push(d);
        } else {
            self.dropped += 1;
        }
    }
}

/// Inputs for [`record_decision`]; the action classification and timestamp
/// are filled in by the log.
#[derive(Debug, Clone, Default)]
pub struct DecisionInputs {
    /// The query (label) being scheduled.
    pub query: String,
    /// Measured fresh-data rate, `[0,1]`.
    pub freshness: f64,
    /// Delta rows pending ETL.
    pub pending_delta_rows: u64,
    /// Active OLTP ingest workers.
    pub active_oltp_workers: u64,
    /// Chosen system state label.
    pub state: String,
    /// OLTP cores after migration.
    pub oltp_cores: usize,
    /// OLAP cores after migration.
    pub olap_cores: usize,
    /// Modeled query time, seconds.
    pub modeled_time_s: f64,
}

/// Record one scheduling decision (no-op when tracing is disabled). The
/// grant/revoke/hold action is derived from the previous decision's OLAP
/// core count.
pub fn record_decision(inputs: DecisionInputs) {
    if !crate::enabled() {
        return;
    }
    crate::obs().decisions.lock().push(RdeDecision {
        ts_us: now_us(),
        query: inputs.query,
        freshness: inputs.freshness,
        pending_delta_rows: inputs.pending_delta_rows,
        active_oltp_workers: inputs.active_oltp_workers,
        state: inputs.state,
        oltp_cores: inputs.oltp_cores,
        olap_cores: inputs.olap_cores,
        modeled_time_s: inputs.modeled_time_s,
        action: "initial",
    });
}

/// Clone the decisions recorded so far (oldest first), without draining.
pub fn decisions_snapshot() -> Vec<RdeDecision> {
    crate::obs().decisions.lock().entries.clone()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn actions_classify_against_the_previous_decision() {
        let mut log = DecisionLog::default();
        let d = |olap: usize| RdeDecision {
            ts_us: 0,
            query: "q".into(),
            freshness: 0.5,
            pending_delta_rows: 10,
            active_oltp_workers: 4,
            state: "S3-NI".into(),
            oltp_cores: 16 - olap,
            olap_cores: olap,
            modeled_time_s: 0.1,
            action: "",
        };
        log.push(d(4));
        log.push(d(8));
        log.push(d(8));
        log.push(d(2));
        let actions: Vec<_> = log.entries.iter().map(|e| e.action).collect();
        assert_eq!(actions, ["initial", "grant-olap", "hold", "revoke-olap"]);
    }

    #[test]
    fn log_is_bounded_with_a_dropped_counter() {
        let mut log = DecisionLog::default();
        for i in 0..(DECISION_LOG_CAPACITY + 5) {
            log.push(RdeDecision {
                ts_us: i as u64,
                query: String::new(),
                freshness: 0.0,
                pending_delta_rows: 0,
                active_oltp_workers: 0,
                state: String::new(),
                oltp_cores: 0,
                olap_cores: 0,
                modeled_time_s: 0.0,
                action: "",
            });
        }
        assert_eq!(log.entries.len(), DECISION_LOG_CAPACITY);
        assert_eq!(log.dropped, 5);
    }
}
