//! The vectorised query executor.
//!
//! Plans are executed one block of tuples at a time without materialising
//! intermediate results (§3.3). Besides the query result, the executor
//! produces a [`WorkProfile`]: how many bytes were read from each socket, how
//! many tuples flowed through the pipeline, and the join-specific quantities
//! (build size, probe count). The work profile is what the cost model converts
//! into modelled execution time on the simulated NUMA machine.

use crate::block::DEFAULT_BLOCK_ROWS;
use crate::expr::{evaluate_conjunction, AggExpr, AggState};
use crate::plan::QueryPlan;
use crate::source::ScanSource;
use htap_sim::{JoinWork, ScanSegment, ScanWork, SocketId};
use std::collections::{BTreeMap, HashMap, HashSet};

/// Result rows of a query.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryResult {
    /// One value per aggregate expression (no grouping).
    Scalars(Vec<f64>),
    /// One row per group: the group key values followed by the aggregates.
    Groups(Vec<(Vec<i64>, Vec<f64>)>),
}

impl QueryResult {
    /// The scalar results; panics if the result is grouped.
    pub fn scalars(&self) -> &[f64] {
        match self {
            QueryResult::Scalars(v) => v,
            QueryResult::Groups(_) => panic!("expected scalar result, found groups"),
        }
    }

    /// The grouped results; panics if the result is scalar.
    pub fn groups(&self) -> &[(Vec<i64>, Vec<f64>)] {
        match self {
            QueryResult::Groups(g) => g,
            QueryResult::Scalars(_) => panic!("expected grouped result, found scalars"),
        }
    }

    /// Number of result rows.
    pub fn row_count(&self) -> usize {
        match self {
            QueryResult::Scalars(_) => 1,
            QueryResult::Groups(g) => g.len(),
        }
    }
}

/// Measured work of one query execution, used as cost-model input.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct WorkProfile {
    /// Bytes read from each socket (columnar accounting over accessed columns).
    pub bytes_per_socket: BTreeMap<SocketId, u64>,
    /// Tuples that flowed through the scan pipelines.
    pub tuples_scanned: u64,
    /// Tuples that passed the filters.
    pub tuples_selected: u64,
    /// Rows read from OLTP snapshots (fresh data touched by the query).
    pub fresh_rows: u64,
    /// Join build side size in bytes (0 when the plan has no join).
    pub build_bytes: u64,
    /// Number of hash-join probes.
    pub probes: u64,
    /// Size of the join hash table in bytes.
    pub hash_table_bytes: u64,
}

impl WorkProfile {
    /// Total bytes read across sockets.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_per_socket.values().sum()
    }

    /// Convert the profile into the cost model's scan-work descriptor.
    pub fn scan_work(&self, cpu_ns_per_tuple: f64) -> ScanWork {
        ScanWork {
            segments: self
                .bytes_per_socket
                .iter()
                .map(|(&socket, &bytes)| ScanSegment { socket, bytes })
                .collect(),
            tuples: self.tuples_scanned,
            cpu_ns_per_tuple,
        }
    }

    /// Convert the profile into the cost model's join-work descriptor, if the
    /// plan had a join phase.
    pub fn join_work(&self) -> Option<JoinWork> {
        if self.build_bytes == 0 && self.probes == 0 {
            None
        } else {
            Some(JoinWork {
                build_bytes: self.build_bytes,
                probes: self.probes,
                hash_table_bytes: self.hash_table_bytes,
            })
        }
    }

    fn absorb_source(&mut self, source: &ScanSource, columns: &[&str]) {
        for (socket, bytes) in source.bytes_per_socket(columns) {
            *self.bytes_per_socket.entry(socket).or_insert(0) += bytes;
        }
        self.tuples_scanned += source.total_rows();
        self.fresh_rows += source.fresh_rows();
    }
}

/// Output of a query execution: the result plus the measured work.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryOutput {
    /// The query result.
    pub result: QueryResult,
    /// The measured work (cost-model input).
    pub work: WorkProfile,
}

/// The block-at-a-time query executor.
#[derive(Debug, Clone)]
pub struct QueryExecutor {
    /// Tuples per block.
    pub block_rows: usize,
}

impl Default for QueryExecutor {
    fn default() -> Self {
        QueryExecutor {
            block_rows: DEFAULT_BLOCK_ROWS,
        }
    }
}

impl QueryExecutor {
    /// Executor with a custom block size (tests use small blocks).
    pub fn with_block_rows(block_rows: usize) -> Self {
        QueryExecutor { block_rows }
    }

    /// Execute `plan` over the given per-relation access paths.
    ///
    /// Panics if a relation required by the plan has no source — wiring the
    /// sources is the responsibility of the RDE engine / scheduler, and a
    /// missing one is a logic error, not a runtime condition.
    pub fn execute(&self, plan: &QueryPlan, sources: &BTreeMap<String, ScanSource>) -> QueryOutput {
        match plan {
            QueryPlan::Aggregate {
                table,
                filters,
                aggregates,
            } => self.execute_aggregate(table, filters, aggregates, sources),
            QueryPlan::GroupByAggregate {
                table,
                filters,
                group_by,
                aggregates,
            } => self.execute_group_by(table, filters, group_by, aggregates, sources),
            QueryPlan::JoinAggregate {
                fact,
                dim,
                fact_key,
                dim_key,
                fact_filters,
                dim_filters,
                aggregates,
            } => self.execute_join(
                fact,
                dim,
                fact_key,
                dim_key,
                fact_filters,
                dim_filters,
                aggregates,
                sources,
            ),
        }
    }

    fn source<'a>(
        sources: &'a BTreeMap<String, ScanSource>,
        table: &str,
    ) -> &'a ScanSource {
        sources
            .get(table)
            .unwrap_or_else(|| panic!("no access path provided for relation {table}"))
    }

    fn numeric_columns(
        filters: &[crate::expr::Predicate],
        aggregates: &[AggExpr],
    ) -> Vec<String> {
        let mut cols: Vec<String> = filters.iter().map(|p| p.column.clone()).collect();
        cols.extend(aggregates.iter().flat_map(AggExpr::columns));
        cols.sort();
        cols.dedup();
        cols
    }

    fn execute_aggregate(
        &self,
        table: &str,
        filters: &[crate::expr::Predicate],
        aggregates: &[AggExpr],
        sources: &BTreeMap<String, ScanSource>,
    ) -> QueryOutput {
        let source = Self::source(sources, table);
        let numeric = Self::numeric_columns(filters, aggregates);
        let numeric_refs: Vec<&str> = numeric.iter().map(String::as_str).collect();

        let mut states = vec![AggState::default(); aggregates.len()];
        let mut selected = 0u64;
        source.for_each_block(&numeric_refs, &[], self.block_rows, |block| {
            let selection = evaluate_conjunction(filters, &block);
            // Evaluate aggregate inputs once per block, fold selected rows.
            for (agg, state) in aggregates.iter().zip(states.iter_mut()) {
                match agg {
                    AggExpr::Count => {
                        for &sel in &selection {
                            if sel {
                                state.update_count();
                            }
                        }
                    }
                    AggExpr::Sum(e) | AggExpr::Avg(e) | AggExpr::Min(e) | AggExpr::Max(e) => {
                        let values = e.evaluate(&block);
                        for (v, &sel) in values.iter().zip(&selection) {
                            if sel {
                                state.update(*v);
                            }
                        }
                    }
                }
            }
            selected += selection.iter().filter(|&&s| s).count() as u64;
        });

        let mut work = WorkProfile::default();
        work.absorb_source(source, &numeric_refs);
        work.tuples_selected = selected;

        QueryOutput {
            result: QueryResult::Scalars(
                aggregates
                    .iter()
                    .zip(&states)
                    .map(|(agg, st)| st.finalize(agg))
                    .collect(),
            ),
            work,
        }
    }

    fn execute_group_by(
        &self,
        table: &str,
        filters: &[crate::expr::Predicate],
        group_by: &[String],
        aggregates: &[AggExpr],
        sources: &BTreeMap<String, ScanSource>,
    ) -> QueryOutput {
        let source = Self::source(sources, table);
        let numeric = Self::numeric_columns(filters, aggregates);
        let numeric_refs: Vec<&str> = numeric.iter().map(String::as_str).collect();
        let key_refs: Vec<&str> = group_by.iter().map(String::as_str).collect();

        let mut groups: BTreeMap<Vec<i64>, Vec<AggState>> = BTreeMap::new();
        let mut selected = 0u64;
        source.for_each_block(&numeric_refs, &key_refs, self.block_rows, |block| {
            let selection = evaluate_conjunction(filters, &block);
            let key_columns: Vec<&[i64]> = key_refs
                .iter()
                .map(|k| block.key(k).expect("group key column loaded"))
                .collect();
            // Pre-evaluate aggregate inputs for the block.
            let agg_inputs: Vec<Option<Vec<f64>>> = aggregates
                .iter()
                .map(|agg| match agg {
                    AggExpr::Count => None,
                    AggExpr::Sum(e) | AggExpr::Avg(e) | AggExpr::Min(e) | AggExpr::Max(e) => {
                        Some(e.evaluate(&block))
                    }
                })
                .collect();
            for row in 0..block.rows() {
                if !selection[row] {
                    continue;
                }
                selected += 1;
                let key: Vec<i64> = key_columns.iter().map(|col| col[row]).collect();
                let states = groups
                    .entry(key)
                    .or_insert_with(|| vec![AggState::default(); aggregates.len()]);
                for (i, input) in agg_inputs.iter().enumerate() {
                    match input {
                        None => states[i].update_count(),
                        Some(values) => states[i].update(values[row]),
                    }
                }
            }
        });

        let mut work = WorkProfile::default();
        let mut accessed: Vec<&str> = numeric_refs.clone();
        accessed.extend(&key_refs);
        work.absorb_source(source, &accessed);
        work.tuples_selected = selected;

        let rows = groups
            .into_iter()
            .map(|(key, states)| {
                let aggs = aggregates
                    .iter()
                    .zip(&states)
                    .map(|(agg, st)| st.finalize(agg))
                    .collect();
                (key, aggs)
            })
            .collect();
        QueryOutput {
            result: QueryResult::Groups(rows),
            work,
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn execute_join(
        &self,
        fact: &str,
        dim: &str,
        fact_key: &str,
        dim_key: &str,
        fact_filters: &[crate::expr::Predicate],
        dim_filters: &[crate::expr::Predicate],
        aggregates: &[AggExpr],
        sources: &BTreeMap<String, ScanSource>,
    ) -> QueryOutput {
        let fact_source = Self::source(sources, fact);
        let dim_source = Self::source(sources, dim);

        // Build phase: hash set of dimension keys passing the dimension filters.
        let dim_numeric: Vec<String> = dim_filters.iter().map(|p| p.column.clone()).collect();
        let dim_numeric_refs: Vec<&str> = dim_numeric.iter().map(String::as_str).collect();
        let mut build: HashSet<i64> = HashSet::new();
        dim_source.for_each_block(&dim_numeric_refs, &[dim_key], self.block_rows, |block| {
            let selection = evaluate_conjunction(dim_filters, &block);
            let keys = block.key(dim_key).expect("dim key loaded");
            for (row, &sel) in selection.iter().enumerate() {
                if sel {
                    build.insert(keys[row]);
                }
            }
        });

        // Probe phase.
        let fact_numeric = Self::numeric_columns(fact_filters, aggregates);
        let fact_numeric_refs: Vec<&str> = fact_numeric.iter().map(String::as_str).collect();
        let mut states = vec![AggState::default(); aggregates.len()];
        let mut probes = 0u64;
        let mut selected = 0u64;
        fact_source.for_each_block(&fact_numeric_refs, &[fact_key], self.block_rows, |block| {
            let selection = evaluate_conjunction(fact_filters, &block);
            let keys = block.key(fact_key).expect("fact key loaded");
            let agg_inputs: Vec<Option<Vec<f64>>> = aggregates
                .iter()
                .map(|agg| match agg {
                    AggExpr::Count => None,
                    AggExpr::Sum(e) | AggExpr::Avg(e) | AggExpr::Min(e) | AggExpr::Max(e) => {
                        Some(e.evaluate(&block))
                    }
                })
                .collect();
            for row in 0..block.rows() {
                if !selection[row] {
                    continue;
                }
                probes += 1;
                if !build.contains(&keys[row]) {
                    continue;
                }
                selected += 1;
                for (i, input) in agg_inputs.iter().enumerate() {
                    match input {
                        None => states[i].update_count(),
                        Some(values) => states[i].update(values[row]),
                    }
                }
            }
        });

        let mut work = WorkProfile::default();
        let mut fact_cols: Vec<&str> = fact_numeric_refs.clone();
        fact_cols.push(fact_key);
        work.absorb_source(fact_source, &fact_cols);
        let mut dim_cols: Vec<&str> = dim_numeric_refs.clone();
        dim_cols.push(dim_key);
        work.absorb_source(dim_source, &dim_cols);
        work.tuples_selected = selected;
        work.probes = probes;
        // The build side is broadcast: account its bytes and hash-table size.
        let dim_schema_width: u64 = dim_cols
            .iter()
            .filter_map(|c| {
                dim_source.segments.first().and_then(|seg| {
                    seg.table
                        .schema()
                        .column_index(c)
                        .map(|i| seg.table.schema().column(i).dtype.width_bytes())
                })
            })
            .sum();
        work.build_bytes = dim_source.total_rows() * dim_schema_width;
        // 16 bytes per hash-table entry (key + bucket overhead).
        work.hash_table_bytes = build.len() as u64 * 16;

        QueryOutput {
            result: QueryResult::Scalars(
                aggregates
                    .iter()
                    .zip(&states)
                    .map(|(agg, st)| st.finalize(agg))
                    .collect(),
            ),
            work,
        }
    }
}

/// A keyed hash-map based group-by helper exposed for reuse by custom plans
/// and tests: folds `(key, value)` pairs and returns sorted groups.
pub fn hash_group_sum(pairs: impl IntoIterator<Item = (i64, f64)>) -> Vec<(i64, f64)> {
    let mut map: HashMap<i64, f64> = HashMap::new();
    for (k, v) in pairs {
        *map.entry(k).or_insert(0.0) += v;
    }
    let mut out: Vec<(i64, f64)> = map.into_iter().collect();
    out.sort_by_key(|(k, _)| *k);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{CmpOp, Predicate, ScalarExpr};
    use crate::source::ScanSource;
    use htap_storage::{ColumnDef, ColumnarTable, DataType, TableSchema, TableSnapshot, Value};
    use std::sync::Arc;

    /// orderline-like table: (ol_number i64, ol_quantity i32, ol_amount f64, ol_i_id i64)
    fn orderline(n: u64) -> Arc<ColumnarTable> {
        let schema = TableSchema::new(
            "orderline",
            vec![
                ColumnDef::new("ol_number", DataType::I64),
                ColumnDef::new("ol_quantity", DataType::I32),
                ColumnDef::new("ol_amount", DataType::F64),
                ColumnDef::new("ol_i_id", DataType::I64),
            ],
            Some(0),
        );
        let t = ColumnarTable::new(schema);
        for i in 0..n {
            t.append_row(&[
                Value::I64(i as i64),
                Value::I32((i % 10) as i32),
                Value::F64((i % 100) as f64),
                Value::I64((i % 5) as i64),
            ])
            .unwrap();
        }
        Arc::new(t)
    }

    /// item-like dimension table: (i_id i64, i_price f64)
    fn item(n: u64) -> Arc<ColumnarTable> {
        let schema = TableSchema::new(
            "item",
            vec![
                ColumnDef::new("i_id", DataType::I64),
                ColumnDef::new("i_price", DataType::F64),
            ],
            Some(0),
        );
        let t = ColumnarTable::new(schema);
        for i in 0..n {
            t.append_row(&[Value::I64(i as i64), Value::F64(i as f64 * 10.0)]).unwrap();
        }
        Arc::new(t)
    }

    fn sources_for(n: u64) -> BTreeMap<String, ScanSource> {
        let ol = orderline(n);
        let snap = TableSnapshot::new("orderline".into(), ol, n, 0);
        let mut m = BTreeMap::new();
        m.insert(
            "orderline".to_string(),
            ScanSource::contiguous_snapshot(&snap, SocketId(0)),
        );
        m
    }

    #[test]
    fn aggregate_plan_computes_filtered_sum_and_count() {
        let plan = QueryPlan::Aggregate {
            table: "orderline".into(),
            filters: vec![Predicate::new("ol_quantity", CmpOp::Lt, 5.0)],
            aggregates: vec![AggExpr::Sum(ScalarExpr::col("ol_amount")), AggExpr::Count],
        };
        let out = QueryExecutor::with_block_rows(64).execute(&plan, &sources_for(1000));
        // Rows with quantity in 0..=4: i%10 < 5, i.e. 500 rows.
        let expected_sum: f64 = (0..1000u64)
            .filter(|i| i % 10 < 5)
            .map(|i| (i % 100) as f64)
            .sum();
        assert_eq!(out.result.scalars()[0], expected_sum);
        assert_eq!(out.result.scalars()[1], 500.0);
        assert_eq!(out.work.tuples_scanned, 1000);
        assert_eq!(out.work.tuples_selected, 500);
        assert!(out.work.total_bytes() > 0);
        assert_eq!(out.work.fresh_rows, 1000, "all rows came from an OLTP snapshot");
        assert!(out.work.join_work().is_none());
    }

    #[test]
    fn group_by_plan_produces_one_row_per_group() {
        let plan = QueryPlan::GroupByAggregate {
            table: "orderline".into(),
            filters: vec![],
            group_by: vec!["ol_i_id".into()],
            aggregates: vec![AggExpr::Sum(ScalarExpr::col("ol_amount")), AggExpr::Count],
        };
        let out = QueryExecutor::with_block_rows(128).execute(&plan, &sources_for(1000));
        let groups = out.result.groups();
        assert_eq!(groups.len(), 5);
        // Every group has 200 rows.
        for (key, aggs) in groups {
            assert!(key[0] >= 0 && key[0] < 5);
            assert_eq!(aggs[1], 200.0);
        }
        let total: f64 = groups.iter().map(|(_, a)| a[0]).sum();
        let expected: f64 = (0..1000u64).map(|i| (i % 100) as f64).sum();
        assert_eq!(total, expected);
        assert_eq!(out.result.row_count(), 5);
    }

    #[test]
    fn join_plan_filters_both_sides_and_counts_probes() {
        let mut sources = sources_for(1000);
        let it = item(5);
        let snap = TableSnapshot::new("item".into(), it, 5, 0);
        sources.insert("item".into(), ScanSource::contiguous_snapshot(&snap, SocketId(1)));

        let plan = QueryPlan::JoinAggregate {
            fact: "orderline".into(),
            dim: "item".into(),
            fact_key: "ol_i_id".into(),
            dim_key: "i_id".into(),
            fact_filters: vec![Predicate::new("ol_quantity", CmpOp::Lt, 5.0)],
            // Items with price >= 20 -> i_id in {2, 3, 4}.
            dim_filters: vec![Predicate::new("i_price", CmpOp::Ge, 20.0)],
            aggregates: vec![AggExpr::Sum(ScalarExpr::col("ol_amount")), AggExpr::Count],
        };
        let out = QueryExecutor::with_block_rows(100).execute(&plan, &sources);
        let expected: f64 = (0..1000u64)
            .filter(|i| i % 10 < 5 && i % 5 >= 2)
            .map(|i| (i % 100) as f64)
            .sum();
        let expected_count = (0..1000u64).filter(|i| i % 10 < 5 && i % 5 >= 2).count() as f64;
        assert_eq!(out.result.scalars()[0], expected);
        assert_eq!(out.result.scalars()[1], expected_count);
        assert_eq!(out.work.probes, 500, "every filtered fact row probes");
        assert!(out.work.build_bytes > 0);
        assert!(out.work.hash_table_bytes > 0);
        let jw = out.work.join_work().unwrap();
        assert_eq!(jw.probes, 500);
        // Bytes are attributed to both sockets (fact on 0, dim on 1).
        assert!(out.work.bytes_per_socket.contains_key(&SocketId(0)));
        assert!(out.work.bytes_per_socket.contains_key(&SocketId(1)));
    }

    #[test]
    fn split_access_profile_reports_fresh_rows_only_for_oltp_segments() {
        let olap_part = orderline(800);
        let oltp_part = orderline(1000);
        let snap = TableSnapshot::new("orderline".into(), oltp_part, 1000, 0);
        let src = ScanSource::split(olap_part, 800, SocketId(1), &snap, SocketId(0));
        let mut sources = BTreeMap::new();
        sources.insert("orderline".to_string(), src);
        let plan = QueryPlan::Aggregate {
            table: "orderline".into(),
            filters: vec![],
            aggregates: vec![AggExpr::Count, AggExpr::Sum(ScalarExpr::col("ol_amount"))],
        };
        let out = QueryExecutor::default().execute(&plan, &sources);
        assert_eq!(out.result.scalars()[0], 1000.0);
        assert_eq!(out.work.fresh_rows, 200);
        assert!(out.work.bytes_per_socket[&SocketId(1)] > out.work.bytes_per_socket[&SocketId(0)]);
    }

    #[test]
    fn scan_work_conversion_preserves_bytes_and_tuples() {
        let plan = QueryPlan::Aggregate {
            table: "orderline".into(),
            filters: vec![],
            aggregates: vec![AggExpr::Sum(ScalarExpr::col("ol_amount"))],
        };
        let out = QueryExecutor::default().execute(&plan, &sources_for(500));
        let sw = out.work.scan_work(1.0);
        assert_eq!(sw.tuples, 500);
        assert_eq!(sw.total_bytes(), out.work.total_bytes());
    }

    #[test]
    fn results_are_identical_across_block_sizes() {
        let plan = QueryPlan::GroupByAggregate {
            table: "orderline".into(),
            filters: vec![Predicate::new("ol_amount", CmpOp::Ge, 10.0)],
            group_by: vec!["ol_quantity".into()],
            aggregates: vec![AggExpr::Sum(ScalarExpr::col("ol_amount")), AggExpr::Count],
        };
        let small = QueryExecutor::with_block_rows(7).execute(&plan, &sources_for(997));
        let large = QueryExecutor::with_block_rows(100_000).execute(&plan, &sources_for(997));
        assert_eq!(small.result, large.result);
    }

    #[test]
    fn hash_group_sum_helper() {
        let groups = hash_group_sum(vec![(1, 1.0), (2, 2.0), (1, 3.0)]);
        assert_eq!(groups, vec![(1, 4.0), (2, 2.0)]);
    }

    #[test]
    #[should_panic(expected = "no access path provided")]
    fn missing_source_panics() {
        let plan = QueryPlan::Aggregate {
            table: "nope".into(),
            filters: vec![],
            aggregates: vec![AggExpr::Count],
        };
        QueryExecutor::default().execute(&plan, &BTreeMap::new());
    }
}
