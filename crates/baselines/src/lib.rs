//! Static HTAP baselines used by the paper's motivation experiment (Figure 1):
//!
//! * **Batch-ETL** ([`etl`]) — decoupled storage in the style of BatchDB /
//!   classic data warehousing: before a batch of analytical queries, the
//!   fresh delta is copied from the transactional to the analytical store;
//!   queries then run entirely on analytical-local data, and the transfer
//!   cost is amortised over the batch.
//! * **Copy-on-Write** ([`cow`]) — unified storage in the style of HyPer's
//!   fork-based snapshots / Caldera: analytical queries get an instant
//!   snapshot of the transactional storage, and the transactional engine pays
//!   for every page it dirties while a snapshot is live.
//!
//! Both baselines reuse the functional engines of this repository (so they
//! execute real queries over real data) but follow the respective system's
//! policy instead of the elastic scheduler. The hardware behaviour (page-copy
//! cost, interconnect-limited reads) comes from `htap-sim`, as described in
//! DESIGN.md.

pub mod cow;
pub mod etl;

pub use cow::CowBaseline;
pub use etl::EtlBaseline;

/// One measured point of a baseline run (one snapshot, `queries_per_snapshot`
/// queries over it) — the quantities Figure 1 plots.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselinePoint {
    /// Baseline label ("ETL" or "CoW").
    pub label: String,
    /// Number of queries executed over one snapshot.
    pub queries_per_snapshot: usize,
    /// Modelled query execution time, summed over the snapshot's queries.
    pub query_exec_time: f64,
    /// Modelled data-transfer (ETL) time paid for the snapshot.
    pub data_transfer_time: f64,
    /// Modelled OLTP throughput while the queries run, in transactions/s.
    pub oltp_tps: f64,
    /// Pages copied by the copy-on-write mechanism (0 for ETL).
    pub pages_copied: u64,
}

impl BaselinePoint {
    /// Average end-to-end time per query (execution plus its share of the
    /// transfer cost) — the left-hand axis of Figure 1.
    pub fn avg_query_time(&self) -> f64 {
        if self.queries_per_snapshot == 0 {
            0.0
        } else {
            (self.query_exec_time + self.data_transfer_time) / self.queries_per_snapshot as f64
        }
    }

    /// OLTP throughput in million transactions per second — the right-hand
    /// axis of Figure 1.
    pub fn oltp_mtps(&self) -> f64 {
        self.oltp_tps / 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn average_query_time_amortises_transfer() {
        let point = BaselinePoint {
            label: "ETL".into(),
            queries_per_snapshot: 4,
            query_exec_time: 4.0,
            data_transfer_time: 2.0,
            oltp_tps: 2.0e6,
            pages_copied: 0,
        };
        assert!((point.avg_query_time() - 1.5).abs() < 1e-12);
        assert!((point.oltp_mtps() - 2.0).abs() < 1e-12);

        let empty = BaselinePoint {
            queries_per_snapshot: 0,
            ..point
        };
        assert_eq!(empty.avg_query_time(), 0.0);
    }
}
