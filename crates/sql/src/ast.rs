//! The abstract syntax tree the parser produces and the binder consumes.
//!
//! Every node carries the byte offset of the token it started at, so binder
//! errors can point back into the query text.

/// Arithmetic operator of a binary scalar expression.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
}

/// A scalar expression as parsed (unresolved column references).
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A column reference, optionally qualified (`table.column`).
    Column {
        /// Optional qualifying relation name.
        table: Option<String>,
        /// Column name.
        name: String,
        /// Byte offset of the reference.
        pos: usize,
    },
    /// A numeric literal (unary minus already folded in).
    Number {
        /// The value.
        value: f64,
        /// Byte offset of the literal.
        pos: usize,
    },
    /// `lhs op rhs`.
    Binary {
        /// The operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
        /// Byte offset of the operator.
        pos: usize,
    },
}

impl Expr {
    /// Byte offset of the leftmost token of the expression.
    pub fn pos(&self) -> usize {
        match self {
            Expr::Column { pos, .. } | Expr::Number { pos, .. } => *pos,
            Expr::Binary { lhs, .. } => lhs.pos(),
        }
    }
}

/// Comparison operator of a predicate or join condition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>` / `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// Aggregate function name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// `SUM(expr)`
    Sum,
    /// `AVG(expr)`
    Avg,
    /// `MIN(expr)`
    Min,
    /// `MAX(expr)`
    Max,
    /// `COUNT(*)`
    Count,
}

/// One item of the `SELECT` list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// A bare column reference (must be a grouping key).
    Column {
        /// Optional qualifying relation name.
        table: Option<String>,
        /// Column name.
        name: String,
        /// Byte offset.
        pos: usize,
    },
    /// An aggregate call. `arg` is `None` for `COUNT(*)`.
    Aggregate {
        /// The aggregate function.
        func: AggFunc,
        /// The argument expression (`None` for `COUNT(*)`).
        arg: Option<Expr>,
        /// Byte offset of the function name.
        pos: usize,
    },
}

/// One conjunct of the `WHERE` clause (or an `ON` condition, which the
/// parser folds into the same list — the binder separates filters from join
/// conditions by which relations each side references).
#[derive(Debug, Clone, PartialEq)]
pub enum Condition {
    /// `lhs op rhs`.
    Cmp {
        /// Left side.
        lhs: Expr,
        /// Comparison operator.
        op: CmpOp,
        /// Right side.
        rhs: Expr,
        /// Byte offset of the operator.
        pos: usize,
    },
    /// `column LIKE 'pattern'` — resolved against the catalog's encoded-
    /// column rewrites.
    Like {
        /// Optional qualifying relation name.
        table: Option<String>,
        /// The (possibly virtual, encoded) column name.
        column: String,
        /// The pattern text, quotes stripped.
        pattern: String,
        /// Byte offset of the column reference.
        pos: usize,
    },
}

/// One relation of the `FROM` clause.
#[derive(Debug, Clone, PartialEq)]
pub struct TableRef {
    /// Relation name.
    pub name: String,
    /// Byte offset of the name.
    pub pos: usize,
}

/// The sort key of one `ORDER BY` item.
#[derive(Debug, Clone, PartialEq)]
pub enum OrderKey {
    /// Order by a (grouping) column.
    Column {
        /// Optional qualifying relation name.
        table: Option<String>,
        /// Column name.
        name: String,
        /// Byte offset.
        pos: usize,
    },
    /// Order by an aggregate that also appears in the `SELECT` list.
    Aggregate {
        /// The aggregate function.
        func: AggFunc,
        /// The argument expression (`None` for `COUNT(*)`).
        arg: Option<Expr>,
        /// Byte offset.
        pos: usize,
    },
}

/// One `ORDER BY` item.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderItem {
    /// What to sort by.
    pub key: OrderKey,
    /// `DESC` if true, `ASC` (the default) otherwise.
    pub desc: bool,
    /// Byte offset of the item.
    pub pos: usize,
}

/// The left side of one `HAVING` comparison.
#[derive(Debug, Clone, PartialEq)]
pub enum HavingLeft {
    /// A grouping-key column.
    Column {
        /// Optional qualifying relation name.
        table: Option<String>,
        /// Column name.
        name: String,
        /// Byte offset.
        pos: usize,
    },
    /// An aggregate that also appears in the `SELECT` list.
    Aggregate {
        /// The aggregate function.
        func: AggFunc,
        /// The argument expression (`None` for `COUNT(*)`).
        arg: Option<Expr>,
        /// Byte offset.
        pos: usize,
    },
}

/// One conjunct of the `HAVING` clause: `key-or-aggregate op literal`.
#[derive(Debug, Clone, PartialEq)]
pub struct HavingCond {
    /// What the predicate reads.
    pub left: HavingLeft,
    /// Comparison operator.
    pub op: CmpOp,
    /// Literal right-hand side.
    pub value: f64,
    /// Byte offset of the conjunct.
    pub pos: usize,
}

/// A parsed `SELECT` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    /// The `SELECT` list, in order.
    pub items: Vec<SelectItem>,
    /// The `FROM` relations, in order (comma list and `JOIN`s flattened).
    pub from: Vec<TableRef>,
    /// All conjuncts: `ON` conditions first (in join order), then the
    /// `WHERE` conjuncts in text order.
    pub conditions: Vec<Condition>,
    /// `GROUP BY` columns, in order.
    pub group_by: Vec<OrderKeyColumn>,
    /// `HAVING` conjuncts, in text order.
    pub having: Vec<HavingCond>,
    /// `ORDER BY` items, in order.
    pub order_by: Vec<OrderItem>,
    /// `LIMIT` value, if present.
    pub limit: Option<(u64, usize)>,
}

/// A bare, possibly qualified column reference with its position (used by
/// `GROUP BY`).
#[derive(Debug, Clone, PartialEq)]
pub struct OrderKeyColumn {
    /// Optional qualifying relation name.
    pub table: Option<String>,
    /// Column name.
    pub name: String,
    /// Byte offset.
    pub pos: usize,
}
