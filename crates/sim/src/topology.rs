//! Machine topology: sockets, cores and the bandwidth/latency parameters the
//! cost model is built on.
//!
//! The default topology mirrors the server used in the paper's evaluation:
//! two sockets of 14 cores each (hyper-threads are not modelled as separate
//! compute units; the paper pins one worker per hardware thread and the cost
//! model works at core granularity), roughly 100 GB/s of DRAM bandwidth per
//! socket and a cross-socket interconnect that sustains about a third of that
//! per direction. Figure 1 uses a four-socket sibling of the same machine,
//! available through [`Topology::four_socket`].

use serde::{Deserialize, Serialize};

/// Identifier of a CPU socket (NUMA node).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SocketId(pub u16);

impl SocketId {
    /// Index usable for direct vector addressing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for SocketId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "socket{}", self.0)
    }
}

/// Identifier of a physical core. Cores are numbered globally across sockets:
/// core `c` lives on socket `c / cores_per_socket`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CoreId(pub u16);

impl CoreId {
    /// Index usable for direct vector addressing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for CoreId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cpu{}", self.0)
    }
}

/// Description of the simulated scale-up server.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Topology {
    /// Number of CPU sockets (NUMA nodes).
    pub sockets: u16,
    /// Physical cores per socket.
    pub cores_per_socket: u16,
    /// Sequential-read DRAM bandwidth per socket, in GB/s.
    pub dram_bandwidth_gbps: f64,
    /// Interconnect (UPI/QPI) bandwidth per direction between any socket pair, in GB/s.
    pub interconnect_bandwidth_gbps: f64,
    /// Maximum sequential bandwidth a single core can sustain, in GB/s.
    pub per_core_scan_bandwidth_gbps: f64,
    /// Bandwidth consumed by one OLTP worker doing random accesses, in GB/s.
    pub per_core_random_bandwidth_gbps: f64,
    /// Local DRAM access latency in nanoseconds (used for random-access costs).
    pub local_latency_ns: f64,
    /// Remote (cross-socket) DRAM access latency in nanoseconds.
    pub remote_latency_ns: f64,
    /// Last-level cache size per socket in bytes (used by group-by/join cache terms).
    pub llc_bytes: u64,
    /// DRAM capacity per socket in bytes. The RDE engine checks grants against it.
    pub dram_capacity_bytes: u64,
}

impl Topology {
    /// The two-socket server used for the sensitivity analysis and Figure 3–5:
    /// 2 × 14 cores, ~100 GB/s local DRAM bandwidth, ~33 GB/s interconnect.
    pub fn two_socket() -> Self {
        Topology {
            sockets: 2,
            cores_per_socket: 14,
            dram_bandwidth_gbps: 100.0,
            interconnect_bandwidth_gbps: 33.0,
            per_core_scan_bandwidth_gbps: 14.0,
            per_core_random_bandwidth_gbps: 0.8,
            local_latency_ns: 85.0,
            remote_latency_ns: 145.0,
            llc_bytes: 19_250 * 1024,
            dram_capacity_bytes: 768 * 1024 * 1024 * 1024,
        }
    }

    /// The four-socket sibling used in Figure 1 (ETL vs CoW motivation).
    pub fn four_socket() -> Self {
        Topology {
            sockets: 4,
            ..Self::two_socket()
        }
    }

    /// A deliberately tiny topology for unit tests (2 × 2 cores) so tests can
    /// enumerate placements exhaustively.
    pub fn tiny() -> Self {
        Topology {
            sockets: 2,
            cores_per_socket: 2,
            ..Self::two_socket()
        }
    }

    /// Total number of cores in the machine.
    #[inline]
    pub fn total_cores(&self) -> u16 {
        self.sockets * self.cores_per_socket
    }

    /// The socket a global core id belongs to.
    #[inline]
    pub fn socket_of(&self, core: CoreId) -> SocketId {
        SocketId(core.0 / self.cores_per_socket)
    }

    /// All cores of a socket, in ascending order.
    pub fn cores_of(&self, socket: SocketId) -> Vec<CoreId> {
        let start = socket.0 * self.cores_per_socket;
        (start..start + self.cores_per_socket).map(CoreId).collect()
    }

    /// All sockets of the machine, in ascending order.
    pub fn socket_ids(&self) -> Vec<SocketId> {
        (0..self.sockets).map(SocketId).collect()
    }

    /// All cores of the machine, in ascending order.
    pub fn core_ids(&self) -> Vec<CoreId> {
        (0..self.total_cores()).map(CoreId).collect()
    }

    /// Whether `core` is local to `socket`.
    #[inline]
    pub fn is_local(&self, core: CoreId, socket: SocketId) -> bool {
        self.socket_of(core) == socket
    }

    /// Number of cores needed to saturate one socket's DRAM bandwidth with
    /// sequential scans. This is the knee after which lending more cores to
    /// the OLAP engine stops helping (paper §5.2, Figures 3(a) and 3(c)).
    pub fn scan_saturation_cores(&self) -> u16 {
        (self.dram_bandwidth_gbps / self.per_core_scan_bandwidth_gbps).ceil() as u16
    }

    /// Validate internal consistency; returns a human-readable error if the
    /// description cannot correspond to a real machine.
    pub fn validate(&self) -> Result<(), String> {
        if self.sockets == 0 {
            return Err("topology must have at least one socket".into());
        }
        if self.cores_per_socket == 0 {
            return Err("topology must have at least one core per socket".into());
        }
        if self.dram_bandwidth_gbps <= 0.0 || self.interconnect_bandwidth_gbps <= 0.0 {
            return Err("bandwidths must be positive".into());
        }
        if self.interconnect_bandwidth_gbps > self.dram_bandwidth_gbps {
            return Err("interconnect bandwidth cannot exceed DRAM bandwidth".into());
        }
        if self.per_core_scan_bandwidth_gbps <= 0.0 || self.per_core_random_bandwidth_gbps <= 0.0 {
            return Err("per-core bandwidths must be positive".into());
        }
        if self.remote_latency_ns < self.local_latency_ns {
            return Err("remote latency must be at least local latency".into());
        }
        Ok(())
    }
}

impl Default for Topology {
    fn default() -> Self {
        Self::two_socket()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_topology_matches_paper_server() {
        let t = Topology::default();
        assert_eq!(t.sockets, 2);
        assert_eq!(t.cores_per_socket, 14);
        assert_eq!(t.total_cores(), 28);
        assert!(t.validate().is_ok());
    }

    #[test]
    fn four_socket_differs_only_in_socket_count() {
        let two = Topology::two_socket();
        let four = Topology::four_socket();
        assert_eq!(four.sockets, 4);
        assert_eq!(four.cores_per_socket, two.cores_per_socket);
        assert_eq!(four.total_cores(), 56);
    }

    #[test]
    fn socket_of_maps_cores_to_sockets() {
        let t = Topology::two_socket();
        assert_eq!(t.socket_of(CoreId(0)), SocketId(0));
        assert_eq!(t.socket_of(CoreId(13)), SocketId(0));
        assert_eq!(t.socket_of(CoreId(14)), SocketId(1));
        assert_eq!(t.socket_of(CoreId(27)), SocketId(1));
    }

    #[test]
    fn cores_of_returns_contiguous_ranges() {
        let t = Topology::two_socket();
        let s1 = t.cores_of(SocketId(1));
        assert_eq!(s1.len(), 14);
        assert_eq!(s1[0], CoreId(14));
        assert_eq!(*s1.last().unwrap(), CoreId(27));
    }

    #[test]
    fn saturation_cores_is_knee_of_scan_scaling() {
        let t = Topology::two_socket();
        // 100 GB/s at 14 GB/s per core -> 8 cores saturate the socket.
        assert_eq!(t.scan_saturation_cores(), 8);
    }

    #[test]
    fn validation_rejects_inconsistent_descriptions() {
        let mut t = Topology::two_socket();
        t.interconnect_bandwidth_gbps = 500.0;
        assert!(t.validate().is_err());

        let mut t = Topology::two_socket();
        t.sockets = 0;
        assert!(t.validate().is_err());

        let mut t = Topology::two_socket();
        t.remote_latency_ns = 1.0;
        assert!(t.validate().is_err());
    }

    #[test]
    fn is_local_checks_socket_membership() {
        let t = Topology::two_socket();
        assert!(t.is_local(CoreId(3), SocketId(0)));
        assert!(!t.is_local(CoreId(3), SocketId(1)));
    }

    #[test]
    fn display_impls_are_stable() {
        assert_eq!(SocketId(1).to_string(), "socket1");
        assert_eq!(CoreId(5).to_string(), "cpu5");
    }
}
