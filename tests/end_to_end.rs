//! End-to-end integration tests: the whole system (storage, OLTP, OLAP, RDE,
//! scheduler, CH-benCHmark workload) exercised through the public API.

use adaptive_htap::core::{run_mixed_workload, MixedWorkload, SchedulerPolicy};
use adaptive_htap::{HtapConfig, HtapSystem, QueryId, Schedule, SystemState};

fn tiny_system_with_schedule(schedule: Schedule) -> HtapSystem {
    HtapSystem::build(HtapConfig::tiny().with_schedule(schedule)).expect("system builds")
}

#[test]
fn transactions_become_visible_to_analytics_under_every_schedule() {
    for schedule in [
        Schedule::Static(SystemState::S1Colocated),
        Schedule::Static(SystemState::S2Isolated),
        Schedule::Static(SystemState::S3HybridIsolated),
        Schedule::Static(SystemState::S3HybridNonIsolated),
        Schedule::Adaptive(SchedulerPolicy::adaptive_non_isolated(0.5)),
    ] {
        let system = tiny_system_with_schedule(schedule);
        let before = system.execute_query(QueryId::Q6).unwrap();
        let committed = system.run_oltp(10);
        assert!(committed > 0);
        let after = system.execute_query(QueryId::Q6).unwrap();
        // The orderline relation only grows, so the count of scanned tuples
        // (and therefore bytes) must grow once new transactions committed.
        assert!(
            after.bytes_scanned > before.bytes_scanned,
            "schedule {}: analytics must observe freshly inserted data",
            schedule.label()
        );
    }
}

#[test]
fn all_schedules_agree_on_query_answers() {
    // Freshness handling differs per schedule, but on a quiesced database the
    // answer must be identical everywhere.
    let schedules = [
        Schedule::Static(SystemState::S1Colocated),
        Schedule::Static(SystemState::S2Isolated),
        Schedule::Static(SystemState::S3HybridIsolated),
        Schedule::Static(SystemState::S3HybridNonIsolated),
        Schedule::Adaptive(SchedulerPolicy::adaptive_isolated(0.5)),
    ];
    let system = tiny_system_with_schedule(schedules[0]);
    system.run_oltp(5);

    let mut q6_answers = Vec::new();
    let mut q19_answers = Vec::new();
    for schedule in schedules {
        system.set_schedule(schedule);
        for (plan, sink) in [
            (QueryId::Q6.plan(), &mut q6_answers),
            (QueryId::Q19.plan(), &mut q19_answers),
        ] {
            let scheduled = system.with_scheduler(|s| s.schedule_query(&plan, false));
            let exec = system
                .rde()
                .olap()
                .run_query(&plan, &scheduled.sources, None)
                .unwrap();
            sink.push(exec.output.result.scalars().unwrap()[0]);
        }
    }
    for answers in [&q6_answers, &q19_answers] {
        for pair in answers.windows(2) {
            assert!(
                (pair[0] - pair[1]).abs() < 1e-6,
                "schedules disagree: {answers:?}"
            );
        }
    }
}

#[test]
fn group_by_results_match_between_olap_local_and_oltp_snapshot_paths() {
    let system = tiny_system_with_schedule(Schedule::Static(SystemState::S2Isolated));
    system.run_oltp(8);
    let plan = QueryId::Q1.plan();

    // S2: OLAP-local after ETL.
    let local = system.with_scheduler(|s| s.schedule_query(&plan, false));
    let local_rows = system
        .rde()
        .olap()
        .run_query(&plan, &local.sources, None)
        .unwrap()
        .output
        .result
        .groups()
        .unwrap()
        .to_vec();

    // S1: straight from the OLTP snapshot.
    system.set_schedule(Schedule::Static(SystemState::S1Colocated));
    let remote = system.with_scheduler(|s| s.schedule_query(&plan, false));
    let remote_rows = system
        .rde()
        .olap()
        .run_query(&plan, &remote.sources, None)
        .unwrap()
        .output
        .result
        .groups()
        .unwrap()
        .to_vec();

    assert_eq!(local_rows.len(), remote_rows.len());
    for (l, r) in local_rows.iter().zip(&remote_rows) {
        assert_eq!(l.0, r.0, "group keys must match");
        for (a, b) in l.1.iter().zip(&r.1) {
            assert!((a - b).abs() < 1e-6, "aggregates must match: {a} vs {b}");
        }
    }
}

#[test]
fn adaptive_scheduler_reacts_to_accumulating_fresh_data() {
    let system = tiny_system_with_schedule(Schedule::Adaptive(
        SchedulerPolicy::adaptive_non_isolated(0.5),
    ));
    // Drain the initial load into the OLAP instance with a first query (the
    // whole database is fresh, so the policy must pick the ETL branch).
    let first = system.execute_query(QueryId::Q6).unwrap();
    assert_eq!(first.state, SystemState::S2Isolated);
    assert!(first.performed_etl);

    // With little fresh data relative to the whole fresh set, the scheduler
    // stays in the elastic states.
    system.run_oltp(3);
    let report = system.execute_query(QueryId::Q19).unwrap();
    assert!(
        matches!(
            report.state,
            SystemState::S3HybridNonIsolated | SystemState::S2Isolated
        ),
        "unexpected state {:?}",
        report.state
    );

    // The workload keeps inserting; across many queries the scheduler must
    // have used the hybrid state at least once and performed at least one ETL
    // in total (the Figure-5 behaviour in miniature).
    let mut states = Vec::new();
    for _ in 0..6 {
        system.run_oltp(5);
        states.push(system.execute_query(QueryId::Q6).unwrap().state);
    }
    assert!(
        states.contains(&SystemState::S3HybridNonIsolated),
        "expected hybrid states in {states:?}"
    );
}

#[test]
fn oltp_throughput_is_higher_in_isolation_than_under_colocation() {
    let system = tiny_system_with_schedule(Schedule::Static(SystemState::S2Isolated));
    system.run_oltp(5);
    let isolated = system.execute_query(QueryId::Q6).unwrap();

    system.set_schedule(Schedule::Static(SystemState::S1Colocated));
    system.run_oltp(5);
    let colocated = system.execute_query(QueryId::Q6).unwrap();

    assert!(
        isolated.oltp_tps > colocated.oltp_tps,
        "co-location must cost OLTP throughput: isolated {} vs colocated {}",
        isolated.oltp_tps,
        colocated.oltp_tps
    );
}

#[test]
fn mixed_workload_reports_are_internally_consistent() {
    let system = tiny_system_with_schedule(Schedule::Adaptive(
        SchedulerPolicy::adaptive_non_isolated(0.5),
    ));
    let report = run_mixed_workload(&system, &MixedWorkload::figure5(4, 3)).unwrap();
    assert_eq!(report.sequences.len(), 4);
    let sum: f64 = report.sequence_times().iter().sum();
    assert!((sum - report.total_query_time()).abs() < 1e-9);
    assert_eq!(report.sequence_mtps().len(), 4);
    assert!(report.transactions_committed >= 4 * 3);
    // The simulated clock accumulated query execution time.
    assert!(
        system
            .rde()
            .clock()
            .elapsed(adaptive_htap::sim::clock::Activity::QueryExecution)
            > 0.0
    );
}

#[test]
fn concurrent_oltp_and_analytics_preserve_correctness() {
    use std::sync::Arc;
    let system = Arc::new(tiny_system_with_schedule(Schedule::Adaptive(
        SchedulerPolicy::adaptive_non_isolated(0.5),
    )));
    let writer = {
        let system = Arc::clone(&system);
        std::thread::spawn(move || {
            let mut committed = 0;
            for _ in 0..4 {
                committed += system.run_oltp_parallel(3);
            }
            committed
        })
    };
    // Analytical queries run while transactions are being ingested.
    let mut last_bytes = 0;
    for _ in 0..4 {
        let report = system.execute_query(QueryId::Q6).unwrap();
        assert!(
            report.bytes_scanned >= last_bytes,
            "scanned data must not shrink"
        );
        last_bytes = report.bytes_scanned;
    }
    let committed = writer.join().unwrap();
    assert!(committed > 0);
    // A final query sees at least all committed order lines.
    let final_report = system.execute_query(QueryId::Q6).unwrap();
    assert!(final_report.bytes_scanned >= last_bytes);
}
