//! The catalog the binder resolves names against: relation schemas, row
//! counts (the planner's cost input) and the encoded-column `LIKE` rewrites.
//!
//! The engine's storage is integer/float only — string-valued CH columns
//! (`i_data`, `c_state`...) exist only through their integer *encodings*
//! (e.g. `i_data LIKE 'PR%'` is, by the generator's construction, exactly
//! `i_im_id < 5000`). A [`LikeRewrite`] declares such a virtual column: the
//! binder accepts `column LIKE 'pattern'` when a rewrite matches and replaces
//! it with the registered predicate over the encoding column.

use crate::error::SqlError;
use htap_olap::Predicate;
use htap_storage::{DataType, TableSchema};

/// A registered rewrite of `table.column LIKE 'pattern'` into a predicate
/// over the integer encoding column.
#[derive(Debug, Clone, PartialEq)]
pub struct LikeRewrite {
    /// Relation the virtual string column belongs to.
    pub table: String,
    /// The virtual (encoded) column name as queries spell it.
    pub column: String,
    /// The exact pattern the rewrite covers.
    pub pattern: String,
    /// The predicate the condition rewrites to.
    pub predicate: Predicate,
}

/// One relation known to the catalog.
#[derive(Debug, Clone, PartialEq)]
pub struct TableInfo {
    /// The relation's schema.
    pub schema: TableSchema,
    /// Estimated (or exact) row count — the planner's join-order cost input.
    pub rows: u64,
}

/// The name-resolution and statistics environment of one bind.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Catalog {
    tables: Vec<TableInfo>,
    like_rewrites: Vec<LikeRewrite>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Register a relation with its estimated row count. Returns `self` for
    /// chaining.
    pub fn with_table(mut self, schema: TableSchema, rows: u64) -> Self {
        self.tables.push(TableInfo { schema, rows });
        self
    }

    /// Register an encoded-column `LIKE` rewrite. Returns `self` for
    /// chaining.
    pub fn with_like_rewrite(
        mut self,
        table: impl Into<String>,
        column: impl Into<String>,
        pattern: impl Into<String>,
        predicate: Predicate,
    ) -> Self {
        self.like_rewrites.push(LikeRewrite {
            table: table.into(),
            column: column.into(),
            pattern: pattern.into(),
            predicate,
        });
        self
    }

    /// All registered relations.
    pub fn tables(&self) -> &[TableInfo] {
        &self.tables
    }

    /// Look up a relation by name.
    pub fn table(&self, name: &str) -> Option<&TableInfo> {
        self.tables.iter().find(|t| t.schema.name == name)
    }

    /// Resolve a relation or report [`SqlError::UnknownTable`] at `pos`.
    pub fn resolve_table(&self, name: &str, pos: usize) -> Result<&TableInfo, SqlError> {
        self.table(name).ok_or_else(|| SqlError::UnknownTable {
            name: name.to_string(),
            pos,
        })
    }

    /// The dtype of `column` in `table`, if both exist.
    pub fn column_type(&self, table: &str, column: &str) -> Option<DataType> {
        let info = self.table(table)?;
        let idx = info.schema.column_index(column)?;
        Some(info.schema.column(idx).dtype)
    }

    /// The `LIKE` rewrites registered for a column name (any table).
    pub fn like_rewrites_for(&self, column: &str) -> Vec<&LikeRewrite> {
        self.like_rewrites
            .iter()
            .filter(|r| r.column == column)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use htap_olap::CmpOp;
    use htap_storage::ColumnDef;

    fn catalog() -> Catalog {
        Catalog::new()
            .with_table(
                TableSchema::new(
                    "item",
                    vec![
                        ColumnDef::new("i_id", DataType::I64),
                        ColumnDef::new("i_im_id", DataType::I64),
                        ColumnDef::new("i_price", DataType::F64),
                    ],
                    Some(0),
                ),
                100_000,
            )
            .with_like_rewrite(
                "item",
                "i_data",
                "PR%",
                Predicate::new("i_im_id", CmpOp::Lt, 5_000.0),
            )
    }

    #[test]
    fn resolves_tables_columns_and_rewrites() {
        let c = catalog();
        assert_eq!(c.table("item").unwrap().rows, 100_000);
        assert_eq!(c.column_type("item", "i_price"), Some(DataType::F64));
        assert_eq!(c.column_type("item", "ghost"), None);
        assert_eq!(c.like_rewrites_for("i_data").len(), 1);
        assert!(c.like_rewrites_for("i_name").is_empty());
        assert_eq!(
            c.resolve_table("nope", 9).unwrap_err(),
            SqlError::UnknownTable {
                name: "nope".into(),
                pos: 9
            }
        );
    }
}
