//! Sharing of DRAM and interconnect bandwidth among concurrent access streams.
//!
//! The paper's performance arguments are bandwidth arguments: analytical scans
//! saturate the DRAM bus of the socket holding the data, the cross-socket
//! interconnect sustains roughly a third of DRAM bandwidth, and transactional
//! workers issue random accesses that use only a small fraction of the bus but
//! suffer when scans occupy it (§3.4, §5.2). This module captures exactly that
//! mechanism: every concurrent activity is described as a [`Stream`] (source
//! socket, consuming cores, sequential or random), and [`BandwidthModel`]
//! computes a *demand-weighted max-min fair* allocation subject to three kinds
//! of capacity constraints:
//!
//! 1. per-socket DRAM bandwidth (all streams sourced from that socket),
//! 2. per-directed-link interconnect bandwidth (streams whose consumer socket
//!    differs from the source socket),
//! 3. per-stream demand (number of consuming cores × per-core achievable
//!    bandwidth for the stream's access class, optionally capped further).
//!
//! Weighting by demand makes sequential scans dominate random-access streams
//! on a contended bus, which is what real memory controllers do and what the
//! paper observes ("bandwidth-intensive OLAP can starve OLTP").

use crate::topology::{SocketId, Topology};
use crate::GBps;

/// Index of a stream in the slice passed to [`BandwidthModel::allocate`].
pub type StreamId = usize;

/// Memory-access behaviour of a stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamClass {
    /// Long sequential scans (OLAP pipelines, ETL copies).
    Sequential,
    /// Point reads/writes (OLTP transactions, join probes).
    Random,
}

/// One concurrent memory-access activity.
#[derive(Debug, Clone, PartialEq)]
pub struct Stream {
    /// Socket whose DRAM holds the accessed data.
    pub source: SocketId,
    /// Socket on which the consuming cores run.
    pub consumer: SocketId,
    /// Number of cores driving the stream.
    pub cores: usize,
    /// Access class, which determines per-core achievable bandwidth.
    pub class: StreamClass,
    /// Optional additional cap on the stream's demand in GB/s (e.g. an
    /// administrator-imposed bandwidth limit, see §4.2 "Elasticity and
    /// Interference").
    pub demand_cap_gbps: Option<GBps>,
}

impl Stream {
    /// Sequential stream helper.
    pub fn sequential(source: SocketId, consumer: SocketId, cores: usize) -> Self {
        Stream {
            source,
            consumer,
            cores,
            class: StreamClass::Sequential,
            demand_cap_gbps: None,
        }
    }

    /// Random-access stream helper.
    pub fn random(source: SocketId, consumer: SocketId, cores: usize) -> Self {
        Stream {
            source,
            consumer,
            cores,
            class: StreamClass::Random,
            demand_cap_gbps: None,
        }
    }

    /// Whether the stream crosses the socket interconnect.
    pub fn is_remote(&self) -> bool {
        self.source != self.consumer
    }
}

/// Result of a bandwidth allocation: one rate per input stream, in GB/s.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamAllocation {
    rates: Vec<GBps>,
}

impl StreamAllocation {
    /// Allocated bandwidth of stream `id`.
    pub fn rate(&self, id: StreamId) -> GBps {
        self.rates[id]
    }

    /// Allocated rates for all streams, in input order.
    pub fn rates(&self) -> &[GBps] {
        &self.rates
    }

    /// Sum of the allocated rates of the given streams.
    pub fn total<I: IntoIterator<Item = StreamId>>(&self, ids: I) -> GBps {
        ids.into_iter().map(|i| self.rates[i]).sum()
    }
}

/// Demand-weighted max-min fair bandwidth allocator over a [`Topology`].
#[derive(Debug, Clone)]
pub struct BandwidthModel {
    topology: Topology,
}

impl BandwidthModel {
    /// Build a model for the given machine.
    pub fn new(topology: Topology) -> Self {
        BandwidthModel { topology }
    }

    /// The topology the model was built for.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Demand (= weight) of a stream: how much bandwidth it could consume if
    /// it were alone on the machine.
    pub fn demand(&self, stream: &Stream) -> GBps {
        let per_core = match stream.class {
            StreamClass::Sequential => self.topology.per_core_scan_bandwidth_gbps,
            StreamClass::Random => self.topology.per_core_random_bandwidth_gbps,
        };
        let mut demand = per_core * stream.cores as f64;
        if let Some(cap) = stream.demand_cap_gbps {
            demand = demand.min(cap);
        }
        // A stream that crosses the interconnect can never demand more than
        // one link's worth of bandwidth.
        if stream.is_remote() {
            demand = demand.min(self.topology.interconnect_bandwidth_gbps);
        }
        demand.min(self.topology.dram_bandwidth_gbps)
    }

    /// Allocate bandwidth to the given concurrent streams.
    ///
    /// The allocation is *demand-weighted max-min fair*: all streams grow
    /// proportionally to their demand until a constraint (socket DRAM,
    /// interconnect link, or the stream's own demand) saturates; saturated
    /// streams are frozen and the remaining ones keep growing.
    pub fn allocate(&self, streams: &[Stream]) -> StreamAllocation {
        let n = streams.len();
        let mut rates = vec![0.0; n];
        if n == 0 {
            return StreamAllocation { rates };
        }

        let demands: Vec<GBps> = streams.iter().map(|s| self.demand(s)).collect();
        let mut frozen: Vec<bool> = demands.iter().map(|&d| d <= 0.0).collect();

        // Constraint bookkeeping: socket DRAM and directed interconnect links.
        let sockets = self.topology.socket_ids();
        let dram_members = |socket: SocketId| -> Vec<StreamId> {
            streams
                .iter()
                .enumerate()
                .filter(|(_, s)| s.source == socket)
                .map(|(i, _)| i)
                .collect()
        };
        let link_members = |from: SocketId, to: SocketId| -> Vec<StreamId> {
            streams
                .iter()
                .enumerate()
                .filter(|(_, s)| s.source == from && s.consumer == to && s.is_remote())
                .map(|(i, _)| i)
                .collect()
        };

        // Progressive filling: grow the common scaling factor `level`, where
        // stream i's rate is level * demand_i, until a constraint binds.
        // Repeat on the unfrozen remainder.
        for _round in 0..(n + sockets.len() * sockets.len() + 2) {
            if frozen.iter().all(|&f| f) {
                break;
            }
            // Maximum additional level permitted by each constraint.
            let mut max_dlevel = f64::INFINITY;

            // Per-stream demand constraints.
            for i in 0..n {
                if frozen[i] {
                    continue;
                }
                let headroom = demands[i] - rates[i];
                max_dlevel = max_dlevel.min(headroom / demands[i]);
            }
            // Socket DRAM constraints.
            for &s in &sockets {
                let members = dram_members(s);
                let active_demand: f64 = members
                    .iter()
                    .filter(|&&i| !frozen[i])
                    .map(|&i| demands[i])
                    .sum();
                if active_demand <= 0.0 {
                    continue;
                }
                let used: f64 = members.iter().map(|&i| rates[i]).sum();
                let headroom = (self.topology.dram_bandwidth_gbps - used).max(0.0);
                max_dlevel = max_dlevel.min(headroom / active_demand);
            }
            // Interconnect link constraints.
            for &from in &sockets {
                for &to in &sockets {
                    if from == to {
                        continue;
                    }
                    let members = link_members(from, to);
                    let active_demand: f64 = members
                        .iter()
                        .filter(|&&i| !frozen[i])
                        .map(|&i| demands[i])
                        .sum();
                    if active_demand <= 0.0 {
                        continue;
                    }
                    let used: f64 = members.iter().map(|&i| rates[i]).sum();
                    let headroom = (self.topology.interconnect_bandwidth_gbps - used).max(0.0);
                    max_dlevel = max_dlevel.min(headroom / active_demand);
                }
            }

            if !max_dlevel.is_finite() {
                break;
            }

            // Apply the growth.
            for i in 0..n {
                if !frozen[i] {
                    rates[i] += max_dlevel * demands[i];
                }
            }

            // Freeze streams that hit their demand or sit on a saturated constraint.
            const EPS: f64 = 1e-9;
            for i in 0..n {
                if !frozen[i] && rates[i] + EPS >= demands[i] {
                    frozen[i] = true;
                }
            }
            for &s in &sockets {
                let members = dram_members(s);
                let used: f64 = members.iter().map(|&i| rates[i]).sum();
                if used + EPS >= self.topology.dram_bandwidth_gbps {
                    for &i in &members {
                        frozen[i] = true;
                    }
                }
            }
            for &from in &sockets {
                for &to in &sockets {
                    if from == to {
                        continue;
                    }
                    let members = link_members(from, to);
                    let used: f64 = members.iter().map(|&i| rates[i]).sum();
                    if !members.is_empty()
                        && used + EPS >= self.topology.interconnect_bandwidth_gbps
                    {
                        for &i in &members {
                            frozen[i] = true;
                        }
                    }
                }
            }
            if max_dlevel <= 0.0 {
                // No further growth possible.
                break;
            }
        }

        StreamAllocation { rates }
    }

    /// Convenience: the bandwidth a single stream achieves when alone.
    pub fn solo_rate(&self, stream: &Stream) -> GBps {
        self.allocate(std::slice::from_ref(stream)).rate(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> BandwidthModel {
        BandwidthModel::new(Topology::two_socket())
    }

    const S0: SocketId = SocketId(0);
    const S1: SocketId = SocketId(1);

    #[test]
    fn solo_local_scan_is_core_or_dram_limited() {
        let m = model();
        // 2 cores: core-limited at 28 GB/s.
        let r = m.solo_rate(&Stream::sequential(S0, S0, 2));
        assert!((r - 28.0).abs() < 1e-6);
        // 14 cores: DRAM-limited at 100 GB/s.
        let r = m.solo_rate(&Stream::sequential(S0, S0, 14));
        assert!((r - 100.0).abs() < 1e-6);
    }

    #[test]
    fn solo_remote_scan_is_interconnect_limited() {
        let m = model();
        let r = m.solo_rate(&Stream::sequential(S0, S1, 14));
        assert!(
            (r - 33.0).abs() < 1e-6,
            "remote scan should cap at interconnect, got {r}"
        );
    }

    #[test]
    fn random_stream_uses_small_fraction_of_bus() {
        let m = model();
        let r = m.solo_rate(&Stream::random(S0, S0, 14));
        assert!((r - 14.0 * 0.8).abs() < 1e-6);
    }

    #[test]
    fn scans_dominate_random_streams_under_contention() {
        let m = model();
        let streams = vec![
            Stream::sequential(S0, S0, 14), // OLAP scanning OLTP-socket data locally
            Stream::random(S0, S0, 14),     // OLTP workers on their own data
        ];
        let alloc = m.allocate(&streams);
        let olap = alloc.rate(0);
        let oltp = alloc.rate(1);
        // Total respects the DRAM cap.
        assert!(olap + oltp <= 100.0 + 1e-6);
        // Demand weighting: the scan gets the lion's share but the random
        // stream is not pushed to zero.
        assert!(olap > 80.0, "scan should dominate, got {olap}");
        assert!(
            oltp > 5.0,
            "random stream should retain progress, got {oltp}"
        );
    }

    #[test]
    fn local_and_remote_streams_share_source_dram() {
        let m = model();
        // OLAP pulls socket-0 data both from 4 local (borrowed) cores and over
        // the interconnect from 14 remote cores; OLTP also lives on socket 0.
        let streams = vec![
            Stream::sequential(S0, S0, 4),
            Stream::sequential(S0, S1, 14),
            Stream::random(S0, S0, 10),
        ];
        let alloc = m.allocate(&streams);
        let total: f64 = alloc.rates().iter().sum();
        assert!(total <= 100.0 + 1e-6, "source DRAM cap violated: {total}");
        // The remote stream can never exceed the link.
        assert!(alloc.rate(1) <= 33.0 + 1e-6);
        // The local borrowed cores achieve close to their core-limited demand.
        assert!(alloc.rate(0) > 30.0);
    }

    #[test]
    fn interconnect_is_shared_between_streams_on_same_link() {
        let m = model();
        let streams = vec![Stream::sequential(S0, S1, 7), Stream::sequential(S0, S1, 7)];
        let alloc = m.allocate(&streams);
        let total = alloc.rate(0) + alloc.rate(1);
        assert!(total <= 33.0 + 1e-6);
        // Equal demands -> equal split.
        assert!((alloc.rate(0) - alloc.rate(1)).abs() < 1e-6);
    }

    #[test]
    fn opposite_links_do_not_interfere() {
        let m = model();
        let streams = vec![
            Stream::sequential(S0, S1, 14),
            Stream::sequential(S1, S0, 14),
        ];
        let alloc = m.allocate(&streams);
        assert!((alloc.rate(0) - 33.0).abs() < 1e-6);
        assert!((alloc.rate(1) - 33.0).abs() < 1e-6);
    }

    #[test]
    fn demand_cap_limits_a_stream() {
        let m = model();
        let mut s = Stream::sequential(S0, S0, 14);
        s.demand_cap_gbps = Some(10.0);
        assert!((m.solo_rate(&s) - 10.0).abs() < 1e-6);
    }

    #[test]
    fn zero_core_stream_gets_nothing() {
        let m = model();
        let alloc = m.allocate(&[Stream::sequential(S0, S0, 0), Stream::sequential(S0, S0, 4)]);
        assert_eq!(alloc.rate(0), 0.0);
        assert!(alloc.rate(1) > 0.0);
    }

    #[test]
    fn empty_input_is_fine() {
        let m = model();
        let alloc = m.allocate(&[]);
        assert!(alloc.rates().is_empty());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_stream() -> impl Strategy<Value = Stream> {
        (
            0u16..2,
            0u16..2,
            0usize..20,
            prop::bool::ANY,
            prop::option::of(0.5f64..200.0),
        )
            .prop_map(|(src, dst, cores, seq, cap)| Stream {
                source: SocketId(src),
                consumer: SocketId(dst),
                cores,
                class: if seq {
                    StreamClass::Sequential
                } else {
                    StreamClass::Random
                },
                demand_cap_gbps: cap,
            })
    }

    proptest! {
        /// No allocation may exceed any physical capacity, and every stream
        /// stays within its own demand.
        #[test]
        fn allocation_respects_all_capacities(streams in prop::collection::vec(arb_stream(), 0..8)) {
            let topo = Topology::two_socket();
            let m = BandwidthModel::new(topo.clone());
            let alloc = m.allocate(&streams);

            for (i, s) in streams.iter().enumerate() {
                prop_assert!(alloc.rate(i) <= m.demand(s) + 1e-6);
                prop_assert!(alloc.rate(i) >= 0.0);
            }
            for s in topo.socket_ids() {
                let total: f64 = streams.iter().enumerate()
                    .filter(|(_, st)| st.source == s)
                    .map(|(i, _)| alloc.rate(i)).sum();
                prop_assert!(total <= topo.dram_bandwidth_gbps + 1e-6);
            }
            for from in topo.socket_ids() {
                for to in topo.socket_ids() {
                    if from == to { continue; }
                    let total: f64 = streams.iter().enumerate()
                        .filter(|(_, st)| st.source == from && st.consumer == to)
                        .map(|(i, _)| alloc.rate(i)).sum();
                    prop_assert!(total <= topo.interconnect_bandwidth_gbps + 1e-6);
                }
            }
        }

        /// Work conservation: a stream with positive demand receives positive
        /// bandwidth unless one of its constraints is already saturated by others.
        #[test]
        fn positive_demand_receives_positive_rate(streams in prop::collection::vec(arb_stream(), 1..6)) {
            let m = BandwidthModel::new(Topology::two_socket());
            let alloc = m.allocate(&streams);
            for (i, s) in streams.iter().enumerate() {
                if m.demand(s) > 0.0 {
                    prop_assert!(alloc.rate(i) > 0.0, "stream {i} starved: {:?}", s);
                }
            }
        }

        /// Adding a competing stream never increases an existing stream's rate.
        #[test]
        fn adding_contention_is_monotone(
            base in prop::collection::vec(arb_stream(), 1..5),
            extra in arb_stream()
        ) {
            let m = BandwidthModel::new(Topology::two_socket());
            let before = m.allocate(&base);
            let mut with = base.clone();
            with.push(extra);
            let after = m.allocate(&with);
            for i in 0..base.len() {
                prop_assert!(after.rate(i) <= before.rate(i) + 1e-6,
                    "stream {i} gained bandwidth from added contention");
            }
        }
    }
}
