//! The transactional side of the CH-benCHmark: TPC-C `NewOrder` (the
//! transaction the paper's OLTP workers run) and `Payment` as a secondary
//! write transaction.
//!
//! Each worker owns one warehouse ("we assign one warehouse to every worker
//! thread, which generates and executes transactions simulating a complete
//! transactional queue", §5.1). Transactions run through the OLTP engine's
//! MV2PL transaction manager; conflicts abort and are retried by the caller.

use crate::schema::keys;
use htap_oltp::{OltpEngine, TxnError};
use htap_storage::Value;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicU64, Ordering};

/// Parameters of one `NewOrder` transaction.
#[derive(Debug, Clone, PartialEq)]
pub struct NewOrderParams {
    /// Warehouse the ordering customer belongs to (the worker's warehouse).
    pub w_id: u64,
    /// District of the customer.
    pub d_id: u64,
    /// Customer id.
    pub c_id: u64,
    /// Items ordered: `(item id, supplying warehouse, quantity)`.
    pub lines: Vec<(u64, u64, u32)>,
    /// Entry date of the order.
    pub entry_d: i64,
}

/// Aggregate statistics of a transaction driver.
#[derive(Debug, Default)]
pub struct TxnStats {
    committed: AtomicU64,
    aborted: AtomicU64,
    orderlines_inserted: AtomicU64,
}

impl TxnStats {
    /// Committed transactions.
    pub fn committed(&self) -> u64 {
        self.committed.load(Ordering::Relaxed)
    }

    /// Aborted transactions.
    pub fn aborted(&self) -> u64 {
        self.aborted.load(Ordering::Relaxed)
    }

    /// Order lines inserted by committed transactions.
    pub fn orderlines_inserted(&self) -> u64 {
        self.orderlines_inserted.load(Ordering::Relaxed)
    }
}

/// Generates and executes CH-benCHmark transactions against an OLTP engine.
#[derive(Debug)]
pub struct TransactionDriver {
    warehouses: u64,
    districts_per_warehouse: u64,
    customers_per_district: u64,
    items: u64,
    stats: TxnStats,
}

impl TransactionDriver {
    /// Driver for a database generated with the given dimensions.
    pub fn new(
        warehouses: u64,
        districts_per_warehouse: u64,
        customers_per_district: u64,
        items: u64,
    ) -> Self {
        TransactionDriver {
            warehouses,
            districts_per_warehouse,
            customers_per_district,
            items,
            stats: TxnStats::default(),
        }
    }

    /// Driver matching a generator configuration.
    pub fn for_config(config: &crate::generator::ChConfig) -> Self {
        Self::new(
            config.warehouses,
            config.districts_per_warehouse,
            config.customers_per_district,
            config.items,
        )
    }

    /// Execution statistics.
    pub fn stats(&self) -> &TxnStats {
        &self.stats
    }

    /// Generate the parameters of a `NewOrder` transaction for a worker bound
    /// to `w_id` (5–15 order lines, per the TPC-C specification).
    pub fn generate_new_order(&self, w_id: u64, rng: &mut StdRng) -> NewOrderParams {
        let d_id = rng.random_range(1..=self.districts_per_warehouse);
        let c_id = rng.random_range(1..=self.customers_per_district);
        let n_lines = rng.random_range(5..=15usize);
        let lines = (0..n_lines)
            .map(|_| {
                let item = rng.random_range(1..=self.items);
                // 1% remote warehouse, as in TPC-C.
                let supply_w = if self.warehouses > 1 && rng.random_range(0..100) == 0 {
                    1 + (w_id % self.warehouses)
                } else {
                    w_id
                };
                (item, supply_w, rng.random_range(1..=10u32))
            })
            .collect();
        NewOrderParams {
            w_id,
            d_id,
            c_id,
            lines,
            entry_d: rng.random_range(1_000..3_000),
        }
    }

    /// Execute one `NewOrder` transaction. Returns `Ok(order_key)` on commit.
    pub fn execute_new_order(
        &self,
        engine: &OltpEngine,
        params: &NewOrderParams,
    ) -> Result<u64, TxnError> {
        let result = engine.execute(|mut txn| -> Result<u64, TxnError> {
            let d_key = keys::district(params.w_id, params.d_id);
            // Read and bump the district's next order id (contended hot spot).
            let next_o_id = txn.read_for_update("district", d_key, 5)?.as_i64() as u64;
            txn.update("district", d_key, 5, Value::I64(next_o_id as i64 + 1))?;

            let o_key = keys::order(params.w_id, params.d_id, next_o_id);
            txn.insert(
                "orders",
                o_key,
                vec![
                    Value::I64(o_key as i64),
                    Value::I64(params.w_id as i64),
                    Value::I64(params.d_id as i64),
                    Value::I64(next_o_id as i64),
                    Value::I64(params.c_id as i64),
                    Value::I64(params.entry_d),
                    Value::I32(0),
                    Value::I32(params.lines.len() as i32),
                ],
            )?;
            txn.insert(
                "neworder",
                keys::neworder(params.w_id, params.d_id, next_o_id),
                vec![
                    Value::I64(keys::neworder(params.w_id, params.d_id, next_o_id) as i64),
                    Value::I64(params.w_id as i64),
                    Value::I64(params.d_id as i64),
                    Value::I64(next_o_id as i64),
                ],
            )?;

            for (number, &(item, supply_w, quantity)) in params.lines.iter().enumerate() {
                // Item price lookup (read-only).
                let price = txn.read("item", item, 2)?.as_f64();
                // Stock update.
                let s_key = keys::stock(supply_w, item);
                let s_qty = txn.read_for_update("stock", s_key, 3)?.as_i32();
                let new_qty = if s_qty >= quantity as i32 + 10 {
                    s_qty - quantity as i32
                } else {
                    s_qty - quantity as i32 + 91
                };
                txn.update("stock", s_key, 3, Value::I32(new_qty))?;
                txn.update(
                    "stock",
                    s_key,
                    5,
                    Value::I32(txn.read("stock", s_key, 5)?.as_i32() + 1),
                )?;

                let ol_key =
                    keys::orderline(params.w_id, params.d_id, next_o_id, number as u64 + 1);
                txn.insert(
                    "orderline",
                    ol_key,
                    vec![
                        Value::I64(ol_key as i64),
                        Value::I64(params.w_id as i64),
                        Value::I64(params.d_id as i64),
                        Value::I64(next_o_id as i64),
                        Value::I32(number as i32 + 1),
                        Value::I64(item as i64),
                        Value::I64(supply_w as i64),
                        Value::I64(params.entry_d),
                        Value::I32(quantity as i32),
                        Value::F64(price * quantity as f64),
                    ],
                )?;
            }
            let lines = params.lines.len() as u64;
            txn.commit()?;
            self.stats
                .orderlines_inserted
                .fetch_add(lines, Ordering::Relaxed);
            Ok(o_key)
        });
        match &result {
            Ok(_) => {
                self.stats.committed.fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => {
                self.stats.aborted.fetch_add(1, Ordering::Relaxed);
            }
        }
        result
    }

    /// Execute one `Payment` transaction: add to warehouse/district YTD and
    /// the customer's balance.
    pub fn execute_payment(
        &self,
        engine: &OltpEngine,
        w_id: u64,
        d_id: u64,
        c_id: u64,
        amount: f64,
    ) -> Result<(), TxnError> {
        let result = engine.execute(|mut txn| -> Result<(), TxnError> {
            let w_ytd = txn.read_for_update("warehouse", w_id, 2)?.as_f64();
            txn.update("warehouse", w_id, 2, Value::F64(w_ytd + amount))?;
            let d_key = keys::district(w_id, d_id);
            let d_ytd = txn.read_for_update("district", d_key, 4)?.as_f64();
            txn.update("district", d_key, 4, Value::F64(d_ytd + amount))?;
            let c_key = keys::customer(w_id, d_id, c_id);
            let balance = txn.read_for_update("customer", c_key, 4)?.as_f64();
            txn.update("customer", c_key, 4, Value::F64(balance - amount))?;
            let cnt = txn.read("customer", c_key, 6)?.as_i32();
            txn.update("customer", c_key, 6, Value::I32(cnt + 1))?;
            txn.commit()?;
            Ok(())
        });
        match &result {
            Ok(()) => {
                self.stats.committed.fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => {
                self.stats.aborted.fetch_add(1, Ordering::Relaxed);
            }
        }
        result
    }

    /// Generate and execute a single `NewOrder` transaction on behalf of
    /// worker `worker_id`, deterministically parameterised by
    /// `(seed, worker_id, txn_index)`. Returns whether it committed — the
    /// body shape the continuous ingest pool runs, where aborted
    /// transactions are *counted* rather than retried.
    pub fn run_one_new_order(
        &self,
        engine: &OltpEngine,
        worker_id: u64,
        seed: u64,
        txn_index: u64,
    ) -> bool {
        let mut rng = StdRng::seed_from_u64(
            seed ^ (worker_id + 1).wrapping_mul(0x9E37_79B9)
                ^ (txn_index + 1).wrapping_mul(0x85EB_CA6B),
        );
        let w_id = 1 + worker_id % self.warehouses;
        let params = self.generate_new_order(w_id, &mut rng);
        self.execute_new_order(engine, &params).is_ok()
    }

    /// Run `count` `NewOrder` transactions on behalf of worker `worker_id`
    /// (bound to warehouse `1 + worker_id % warehouses`), retrying aborted
    /// transactions with new parameters. Returns the number of commits.
    pub fn run_new_orders(
        &self,
        engine: &OltpEngine,
        worker_id: u64,
        count: u64,
        seed: u64,
    ) -> u64 {
        let mut rng = StdRng::seed_from_u64(seed ^ (worker_id + 1).wrapping_mul(0x9E3779B9));
        let w_id = 1 + worker_id % self.warehouses;
        let mut committed = 0;
        while committed < count {
            let params = self.generate_new_order(w_id, &mut rng);
            if self.execute_new_order(engine, &params).is_ok() {
                committed += 1;
            }
        }
        committed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{ChConfig, ChGenerator};
    use htap_rde::{RdeConfig, RdeEngine};

    fn setup() -> (RdeEngine, TransactionDriver) {
        let rde = RdeEngine::bootstrap(RdeConfig::default());
        let config = ChConfig::tiny();
        ChGenerator::new(config.clone()).build(&rde).unwrap();
        (rde, TransactionDriver::for_config(&config))
    }

    #[test]
    fn new_order_inserts_order_lines_and_updates_stock() {
        let (rde, driver) = setup();
        let before = rde.oltp().table("orderline").unwrap().twin().row_count();
        let mut rng = StdRng::seed_from_u64(1);
        let params = driver.generate_new_order(1, &mut rng);
        let o_key = driver.execute_new_order(rde.oltp(), &params).unwrap();
        let after = rde.oltp().table("orderline").unwrap().twin().row_count();
        assert_eq!(after - before, params.lines.len() as u64);
        assert!(params.lines.len() >= 5 && params.lines.len() <= 15);
        assert_eq!(driver.stats().committed(), 1);
        assert_eq!(
            driver.stats().orderlines_inserted(),
            params.lines.len() as u64
        );

        // The order is readable through the transactional API.
        let ol_cnt = rde
            .oltp()
            .begin()
            .read("orders", o_key, 7)
            .unwrap()
            .as_i32();
        assert_eq!(ol_cnt as usize, params.lines.len());

        // The district's next order id advanced.
        let d_key = keys::district(params.w_id, params.d_id);
        let next = rde
            .oltp()
            .begin()
            .read("district", d_key, 5)
            .unwrap()
            .as_i64();
        assert_eq!(next, 3002);
    }

    #[test]
    fn new_orders_generate_fresh_data_for_the_analytical_side() {
        let (rde, driver) = setup();
        driver.run_new_orders(rde.oltp(), 0, 10, 99);
        rde.switch_and_sync();
        // Fresh rows include the inserted orders/orderlines/neworders and the
        // updated stock/district records.
        let fresh = rde.oltp().fresh_rows_vs_olap();
        assert!(
            fresh >= rde.oltp().total_rows().min(10 * 5),
            "expected fresh rows, got {fresh}"
        );
        assert!(driver.stats().committed() >= 10);
    }

    #[test]
    fn payment_updates_balances_consistently() {
        let (rde, driver) = setup();
        driver.execute_payment(rde.oltp(), 1, 1, 5, 100.0).unwrap();
        let w_ytd = rde.oltp().begin().read("warehouse", 1, 2).unwrap().as_f64();
        assert_eq!(w_ytd, 300_100.0);
        let c_key = keys::customer(1, 1, 5);
        let balance = rde
            .oltp()
            .begin()
            .read("customer", c_key, 4)
            .unwrap()
            .as_f64();
        assert_eq!(balance, -110.0);
        let cnt = rde
            .oltp()
            .begin()
            .read("customer", c_key, 6)
            .unwrap()
            .as_i32();
        assert_eq!(cnt, 2);
    }

    #[test]
    fn concurrent_new_orders_on_different_warehouses_all_commit() {
        let (rde, driver) = setup();
        let rde = std::sync::Arc::new(rde);
        let driver = std::sync::Arc::new(driver);
        let handles: Vec<_> = (0..2u64)
            .map(|worker| {
                let rde = std::sync::Arc::clone(&rde);
                let driver = std::sync::Arc::clone(&driver);
                std::thread::spawn(move || driver.run_new_orders(rde.oltp(), worker, 20, 7))
            })
            .collect();
        let total: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 40);
        assert_eq!(driver.stats().committed(), 40);
    }

    #[test]
    fn run_one_new_order_commits_and_counts() {
        let (rde, driver) = setup();
        assert!(driver.run_one_new_order(rde.oltp(), 0, 42, 0));
        assert!(driver.run_one_new_order(rde.oltp(), 1, 42, 1));
        assert_eq!(driver.stats().committed(), 2);
        assert_eq!(driver.stats().aborted(), 0);
    }

    #[test]
    fn deterministic_parameter_generation() {
        let (_, driver) = setup();
        let mut a = StdRng::seed_from_u64(5);
        let mut b = StdRng::seed_from_u64(5);
        assert_eq!(
            driver.generate_new_order(1, &mut a),
            driver.generate_new_order(1, &mut b)
        );
    }
}
