//! The freshness-rate metric (§2.1) and its per-query specialisation (§4.2).
//!
//! Following the paper, freshness is measured as the rate of tuples that are
//! identical between the OLAP engine's private storage and the current OLTP
//! snapshot. Algorithm 2 needs two absolute quantities besides the rate:
//!
//! * `Nfq` — the amount of fresh data the query would have to fetch from the
//!   OLTP instance to reach freshness-rate 1 (computed only over the columns
//!   the query accesses);
//! * `Nft` — the amount of fresh data in the whole database (what a full ETL
//!   would have to move).

use htap_olap::QueryPlan;
use htap_rde::RdeEngine;

/// Freshness of one relation with respect to the OLAP instance.
#[derive(Debug, Clone, PartialEq)]
pub struct FreshnessReport {
    /// Relation name.
    pub table: String,
    /// Rows visible in the current OLTP snapshot.
    pub snapshot_rows: u64,
    /// Rows of the relation that are fresh (not yet propagated to OLAP).
    pub fresh_rows: u64,
    /// Fresh bytes over all columns of the relation.
    pub fresh_bytes: u64,
}

impl FreshnessReport {
    /// The freshness-rate metric of the relation: identical tuples over total
    /// tuples (1.0 when the OLAP instance is fully up to date). With
    /// concurrent ingest, rows committed between the snapshot and the
    /// fresh-row sample can push `fresh_rows` past `snapshot_rows`; the rate
    /// is clamped to `[0, 1]` so the race never yields a negative rate.
    pub fn freshness_rate(&self) -> f64 {
        if self.snapshot_rows == 0 {
            1.0
        } else {
            (1.0 - self.fresh_rows as f64 / self.snapshot_rows as f64).clamp(0.0, 1.0)
        }
    }
}

/// The per-query freshness quantities Algorithm 2 consumes.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct QueryFreshness {
    /// Fresh bytes the query needs from the OLTP instance (`Nfq` in bytes),
    /// restricted to the columns the query accesses.
    pub query_fresh_bytes: u64,
    /// Fresh bytes in the whole database (`Nft` in bytes), over all columns.
    pub total_fresh_bytes: u64,
    /// Fresh tuples in the relations the query accesses (`Nfq` in tuples).
    pub query_fresh_rows: u64,
    /// Fresh tuples in the whole database (`Nft` in tuples).
    pub total_fresh_rows: u64,
    /// Total tuples the query touches.
    pub query_total_rows: u64,
    /// Per-relation breakdown.
    pub per_table: Vec<FreshnessReport>,
}

impl QueryFreshness {
    /// Freshness-rate over the relations the query accesses, clamped to
    /// `[0, 1]` (concurrent ingest can commit rows between the snapshot and
    /// the fresh-row sample, making `query_fresh_rows` momentarily exceed
    /// `query_total_rows`).
    pub fn freshness_rate(&self) -> f64 {
        if self.query_total_rows == 0 {
            1.0
        } else {
            (1.0 - self.query_fresh_rows as f64 / self.query_total_rows as f64).clamp(0.0, 1.0)
        }
    }

    /// `Nfq / Nft` in bytes — used for cost estimates and reporting.
    pub fn query_share_of_fresh(&self) -> f64 {
        if self.total_fresh_bytes == 0 {
            0.0
        } else {
            self.query_fresh_bytes as f64 / self.total_fresh_bytes as f64
        }
    }

    /// `Nfq / Nft` in tuples — the fraction Algorithm 2 compares against α
    /// (the paper measures fresh data in tuples, §2.1).
    pub fn row_share_of_fresh(&self) -> f64 {
        if self.total_fresh_rows == 0 {
            0.0
        } else {
            self.query_fresh_rows as f64 / self.total_fresh_rows as f64
        }
    }
}

/// Measure the freshness quantities for `plan` against the current state of
/// the engines (OLTP snapshot vs. OLAP instance).
pub fn measure(rde: &RdeEngine, plan: &QueryPlan) -> QueryFreshness {
    let accessed = plan.accessed_columns();
    let mut out = QueryFreshness::default();

    // Nft: fresh tuples/bytes across the whole database (all relations, all columns).
    for twin in rde.oltp().store().tables() {
        let fresh_rows = twin.fresh_rows_vs_olap();
        out.total_fresh_rows += fresh_rows;
        out.total_fresh_bytes += fresh_rows * twin.schema().row_width_bytes();
    }

    // Nfq: fresh bytes over the columns the query accesses.
    for (table, columns) in &accessed {
        let Some(twin) = rde.oltp().store().table(table) else {
            continue;
        };
        let schema = twin.schema();
        let width: u64 = columns
            .iter()
            .filter_map(|c| schema.column_index(c))
            .map(|i| schema.column(i).dtype.width_bytes())
            .sum();
        let fresh_rows = twin.fresh_rows_vs_olap();
        let snapshot_rows = twin.snapshot().rows();
        out.query_fresh_bytes += fresh_rows * width;
        out.query_fresh_rows += fresh_rows;
        out.query_total_rows += snapshot_rows;
        out.per_table.push(FreshnessReport {
            table: table.clone(),
            snapshot_rows,
            fresh_rows,
            fresh_bytes: fresh_rows * schema.row_width_bytes(),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use htap_olap::{AggExpr, ScalarExpr};
    use htap_rde::RdeConfig;
    use htap_storage::{ColumnDef, DataType, TableSchema, Value};

    fn plan() -> QueryPlan {
        QueryPlan::Aggregate {
            table: "sales".into(),
            filters: vec![],
            aggregates: vec![AggExpr::Sum(ScalarExpr::col("amount"))],
        }
    }

    fn rde_with_rows(rows: u64) -> RdeEngine {
        let rde = RdeEngine::bootstrap(RdeConfig::default());
        for name in ["sales", "other"] {
            rde.create_table(TableSchema::new(
                name,
                vec![
                    ColumnDef::new("id", DataType::I64),
                    ColumnDef::new("amount", DataType::F64),
                ],
                Some(0),
            ))
            .unwrap();
        }
        for i in 0..rows {
            rde.oltp()
                .bulk_load("sales", i, vec![Value::I64(i as i64), Value::F64(1.0)])
                .unwrap();
            rde.oltp()
                .bulk_load("other", i, vec![Value::I64(i as i64), Value::F64(1.0)])
                .unwrap();
        }
        rde
    }

    #[test]
    fn everything_fresh_before_first_etl() {
        let rde = rde_with_rows(100);
        rde.switch_and_sync();
        let f = measure(&rde, &plan());
        assert_eq!(f.query_fresh_rows, 100);
        assert_eq!(f.query_total_rows, 100);
        assert_eq!(f.freshness_rate(), 0.0);
        // Nfq counts only the accessed column (amount, 8 bytes/row); Nft counts
        // both relations over all columns (16 bytes/row each).
        assert_eq!(f.query_fresh_bytes, 100 * 8);
        assert_eq!(f.total_fresh_bytes, 2 * 100 * 16);
        assert!(f.query_share_of_fresh() < 0.5);
    }

    #[test]
    fn nothing_fresh_after_etl() {
        let rde = rde_with_rows(50);
        rde.switch_and_sync();
        rde.etl_to_olap();
        let f = measure(&rde, &plan());
        assert_eq!(f.query_fresh_rows, 0);
        assert_eq!(f.freshness_rate(), 1.0);
        assert_eq!(f.query_share_of_fresh(), 0.0);
        assert_eq!(f.total_fresh_bytes, 0);
    }

    #[test]
    fn fresh_share_tracks_new_inserts() {
        let rde = rde_with_rows(80);
        rde.switch_and_sync();
        rde.etl_to_olap();
        // 20 new rows into the queried relation only.
        for i in 80..100u64 {
            rde.oltp()
                .bulk_load("sales", i, vec![Value::I64(i as i64), Value::F64(1.0)])
                .unwrap();
        }
        rde.switch_and_sync();
        let f = measure(&rde, &plan());
        assert_eq!(f.query_fresh_rows, 20);
        assert_eq!(f.query_total_rows, 100);
        assert!((f.freshness_rate() - 0.8).abs() < 1e-9);
        // The query accesses the only relation with fresh data, so Nfq/Nft is
        // the column-width fraction (8 of 16 bytes).
        assert!((f.query_share_of_fresh() - 0.5).abs() < 1e-9);
        assert_eq!(f.per_table.len(), 1);
        assert!((f.per_table[0].freshness_rate() - 0.8).abs() < 1e-9);
    }

    #[test]
    fn freshness_rate_is_clamped_under_concurrent_ingest() {
        // Rows committed between the snapshot and the fresh-row sample can
        // make fresh exceed the snapshot; the rate must clamp, not go
        // negative.
        let table = FreshnessReport {
            table: "sales".into(),
            snapshot_rows: 100,
            fresh_rows: 130,
            fresh_bytes: 130 * 16,
        };
        assert_eq!(table.freshness_rate(), 0.0);

        let query = QueryFreshness {
            query_fresh_rows: 130,
            query_total_rows: 100,
            ..QueryFreshness::default()
        };
        assert_eq!(query.freshness_rate(), 0.0);
    }

    #[test]
    fn empty_database_is_fully_fresh() {
        let rde = rde_with_rows(0);
        rde.switch_and_sync();
        let f = measure(&rde, &plan());
        assert_eq!(f.freshness_rate(), 1.0);
        assert_eq!(f.query_share_of_fresh(), 0.0);
        assert_eq!(f.per_table[0].freshness_rate(), 1.0);
    }

    /// A three-table RDE: fact(16 B/row: id + amount), mid(16 B), far(16 B),
    /// plus an untouched `bystander` relation, with `rows` rows each.
    fn rde_three_tables(rows: u64) -> RdeEngine {
        let rde = RdeEngine::bootstrap(RdeConfig::default());
        for (name, cols) in [
            ("fact", vec!["id", "amount"]),
            ("mid", vec!["m_id", "m_fk"]),
            ("far", vec!["r_id", "r_v"]),
            ("bystander", vec!["b_id", "b_v"]),
        ] {
            rde.create_table(TableSchema::new(
                name,
                vec![
                    ColumnDef::new(cols[0], DataType::I64),
                    ColumnDef::new(cols[1], DataType::F64),
                ],
                Some(0),
            ))
            .unwrap();
            for i in 0..rows {
                rde.oltp()
                    .bulk_load(name, i, vec![Value::I64(i as i64), Value::F64(1.0)])
                    .unwrap();
            }
        }
        rde
    }

    fn three_table_plan() -> QueryPlan {
        use htap_olap::{BuildSide, CmpOp, Predicate};
        QueryPlan::MultiJoinAggregate {
            fact: "fact".into(),
            fact_key: ScalarExpr::col("id"),
            fact_filters: vec![],
            mid: BuildSide::new("mid", ScalarExpr::col("m_id"), vec![]),
            mid_fk: ScalarExpr::col("m_fk"),
            far: BuildSide::new(
                "far",
                ScalarExpr::col("r_id"),
                vec![Predicate::new("r_v", CmpOp::Ge, 0.0)],
            ),
            aggregates: vec![AggExpr::Sum(ScalarExpr::col("amount"))],
        }
    }

    /// Algorithm 2 computes Nfq "only for the columns which will be accessed
    /// by every query": a three-table plan reports exactly its three
    /// relations, with per-relation byte accounting restricted to the
    /// accessed columns.
    #[test]
    fn three_table_plan_reports_freshness_for_exactly_its_tables() {
        let rde = rde_three_tables(50);
        rde.switch_and_sync();
        let f = measure(&rde, &three_table_plan());
        let names: Vec<&str> = f.per_table.iter().map(|t| t.table.as_str()).collect();
        assert_eq!(
            names,
            vec!["fact", "far", "mid"],
            "BTreeMap order, no bystander"
        );
        // Nfq in rows: the three accessed relations, all fresh.
        assert_eq!(f.query_fresh_rows, 3 * 50);
        assert_eq!(f.query_total_rows, 3 * 50);
        // Nfq in bytes counts only accessed columns: fact reads id (key
        // expr, 8 B) + amount (8 B); mid reads m_id + m_fk (16 B); far reads
        // r_id + r_v (16 B).
        assert_eq!(f.query_fresh_bytes, 50 * (16 + 16 + 16));
        // Nft spans all four relations over all columns.
        assert_eq!(f.total_fresh_rows, 4 * 50);
        assert_eq!(f.total_fresh_bytes, 4 * 50 * 16);
        assert!(f.row_share_of_fresh() < 1.0, "bystander keeps Nfq < Nft");
    }

    /// Fresh rows landing only in relations the plan does not read leave the
    /// per-query freshness untouched (that is the whole point of the
    /// per-query metric: a query over stale-but-unchanged relations can run
    /// elastically while the database at large is dirty).
    #[test]
    fn fresh_rows_in_unaccessed_tables_do_not_change_query_freshness() {
        let rde = rde_three_tables(40);
        rde.switch_and_sync();
        rde.etl_to_olap();
        // Dirty only the bystander.
        for i in 40..140u64 {
            rde.oltp()
                .bulk_load("bystander", i, vec![Value::I64(i as i64), Value::F64(2.0)])
                .unwrap();
        }
        rde.switch_and_sync();
        let f = measure(&rde, &three_table_plan());
        assert_eq!(f.query_fresh_rows, 0);
        assert_eq!(f.freshness_rate(), 1.0, "the plan's tables are all synced");
        assert_eq!(f.total_fresh_rows, 100, "Nft still sees the bystander");
        assert_eq!(f.row_share_of_fresh(), 0.0);
        for t in &f.per_table {
            assert_eq!(t.fresh_rows, 0, "{} must be clean", t.table);
            assert_eq!(t.freshness_rate(), 1.0);
        }
    }

    /// Fresh rows in one of the three accessed relations surface in that
    /// relation's report — and only there.
    #[test]
    fn fresh_rows_in_one_joined_dimension_are_attributed_to_it() {
        let rde = rde_three_tables(40);
        rde.switch_and_sync();
        rde.etl_to_olap();
        for i in 40..60u64 {
            rde.oltp()
                .bulk_load("far", i, vec![Value::I64(i as i64), Value::F64(3.0)])
                .unwrap();
        }
        rde.switch_and_sync();
        let f = measure(&rde, &three_table_plan());
        assert_eq!(f.query_fresh_rows, 20);
        assert_eq!(f.query_total_rows, 40 + 60 + 40);
        let far = f.per_table.iter().find(|t| t.table == "far").unwrap();
        assert_eq!(far.fresh_rows, 20);
        assert!((far.freshness_rate() - 40.0 / 60.0).abs() < 1e-9);
        for t in f.per_table.iter().filter(|t| t.table != "far") {
            assert_eq!(t.fresh_rows, 0, "{} must be clean", t.table);
        }
        // Nfq in bytes: 20 fresh far rows × the 16 accessed bytes per row.
        assert_eq!(f.query_fresh_bytes, 20 * 16);
    }
}
