//! Adaptive HTAP system facade.
//!
//! This crate assembles the paper's full system — OLTP engine, OLAP engine,
//! RDE engine and the elastic scheduler — behind one public API:
//!
//! ```no_run
//! use htap_core::{HtapConfig, HtapSystem};
//! use htap_chbench::QueryId;
//!
//! let mut system = HtapSystem::build(HtapConfig::tiny()).unwrap();
//! system.run_oltp(100);                       // NewOrder transactions
//! let report = system.execute_query(QueryId::Q6).unwrap(); // scheduled + executed
//! println!("{} in {:.3}s under {}", report.query, report.total_time(), report.state);
//! ```
//!
//! The facade owns the CH-benCHmark population and transaction driver, so a
//! downstream user gets a runnable HTAP system in a few lines; every
//! underlying component remains reachable for advanced use
//! ([`HtapSystem::rde`], [`HtapSystem::scheduler`]).

pub mod config;
pub mod report;
pub mod system;
pub mod workload;

pub use config::{DurabilityConfig, HtapConfig};
pub use report::{ExperimentTable, QueryReport, SequenceReport};
pub use system::{HtapSystem, SqlRunError};
pub use workload::{
    run_mixed_workload, run_mixed_workload_concurrent, ConcurrentOptions, MixedWorkload,
    MixedWorkloadReport,
};

// Re-export the vocabulary types users need alongside the facade.
pub use htap_chbench::{ChConfig, QueryId, QuerySequence};
pub use htap_durability::{DurableStorage, FsStorage, MemStorage};
pub use htap_olap::QueryPlan;
pub use htap_oltp::RetryPolicy;
pub use htap_rde::{AccessMethod, ElasticityMode, SystemState};
pub use htap_scheduler::{Schedule, SchedulerPolicy};
pub use htap_sim::Topology;
pub use htap_sql::SqlError;
