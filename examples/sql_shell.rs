//! SQL shell: the zero-to-aha demo of the SQL frontend.
//!
//! Builds a small CH-benCHmark HTAP system, ingests a transactional queue,
//! then compiles and runs ad-hoc SQL — printing the bound physical plan
//! shape, the result rows and the `WorkProfile` the vectorized morsel engine
//! measured. Frontend errors are rendered with a caret pointing at the
//! offending token.
//!
//! Run one-shot queries from the command line:
//!
//! ```text
//! cargo run --release --example sql_shell -- \
//!   "SELECT ol_number, SUM(ol_amount), COUNT(*) FROM orderline \
//!    WHERE ol_delivery_d >= 0 GROUP BY ol_number ORDER BY ol_number"
//! ```
//!
//! Or pipe/type queries on stdin (one per line, blank line or EOF to quit):
//!
//! ```text
//! echo "SELECT SUM(ol_amount) FROM orderline" | cargo run --example sql_shell
//! ```

use adaptive_htap::olap::QueryResult;
use adaptive_htap::{HtapConfig, HtapSystem};
use std::io::{BufRead, Write};

/// Rows printed per grouped result before truncating.
const MAX_ROWS: usize = 20;

fn main() -> Result<(), String> {
    let queries: Vec<String> = std::env::args().skip(1).collect();
    let system = HtapSystem::build(HtapConfig::small())?;
    println!(
        "CH-benCHmark loaded: {} rows, resources: {}",
        system.population().total_rows,
        system.rde().describe_resources()
    );
    // A transactional queue so freshness and fresh-row counts are non-trivial.
    let committed = system.run_oltp(100);
    println!("ingested {committed} transactions; OLAP instance is now stale\n");

    if queries.is_empty() {
        let stdin = std::io::stdin();
        let interactive = atty_stdin();
        loop {
            if interactive {
                print!("sql> ");
                std::io::stdout().flush().ok();
            }
            let mut line = String::new();
            match stdin.lock().read_line(&mut line) {
                Ok(0) => break,
                Ok(_) => {
                    let line = line.trim();
                    if line.is_empty() || line.eq_ignore_ascii_case("quit") {
                        break;
                    }
                    run_query(&system, line);
                }
                Err(e) => return Err(format!("stdin: {e}")),
            }
        }
    } else {
        for sql in &queries {
            run_query(&system, sql);
        }
    }
    Ok(())
}

/// Whether stdin looks interactive (no reliable libc-free check; a terminal
/// user gets the prompt, piped input just skips it).
fn atty_stdin() -> bool {
    std::env::var_os("TERM").is_some() && std::env::var_os("SQL_SHELL_NO_PROMPT").is_none()
}

fn run_query(system: &HtapSystem, sql: &str) {
    println!("query: {sql}");
    // Compile once; the plan is printed and then executed as-is.
    let plan = match system.plan_sql(sql) {
        Ok(plan) => plan,
        Err(e) => {
            // Point at the offending token. `pos()` is a byte offset;
            // `caret_column` converts it to a character column so multi-byte
            // UTF-8 earlier in the line does not push the caret right.
            println!("  {sql}");
            println!("  {}^", " ".repeat(e.caret_column(sql)));
            println!("error: {e}\n");
            return;
        }
    };
    match system.execute_planned_sql(sql, &plan) {
        Err(e) => println!("engine error: {e}\n"),
        Ok((report, output)) => {
            println!(
                "plan:  {} over [{}] in state {}",
                plan.label(),
                plan.tables().join(" \u{22c8} "),
                report.state.label()
            );
            match &output.result {
                QueryResult::Scalars(values) => {
                    println!(
                        "row:   ({})",
                        values
                            .iter()
                            .map(|v| format!("{v:.4}"))
                            .collect::<Vec<_>>()
                            .join(", ")
                    );
                }
                QueryResult::Groups(groups) => {
                    for (keys, aggs) in groups.iter().take(MAX_ROWS) {
                        println!(
                            "row:   key=({}) -> ({})",
                            keys.iter()
                                .map(i64::to_string)
                                .collect::<Vec<_>>()
                                .join(", "),
                            aggs.iter()
                                .map(|v| format!("{v:.4}"))
                                .collect::<Vec<_>>()
                                .join(", ")
                        );
                    }
                    if groups.len() > MAX_ROWS {
                        println!("       ... {} more rows", groups.len() - MAX_ROWS);
                    }
                }
            }
            println!(
                "work:  {} rows scanned, {} selected, {} probes, {} fresh rows, {} bytes",
                output.work.tuples_scanned,
                output.work.tuples_selected,
                output.work.probes,
                output.work.fresh_rows,
                output.work.total_bytes()
            );
            println!(
                "time:  exec={:.4}s sched={:.4}s freshness={:.3}{}\n",
                report.execution_time,
                report.scheduling_time,
                report.freshness_rate,
                if report.performed_etl { " (ETL)" } else { "" }
            );
        }
    }
}
