//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! The API subset this workspace uses is provided with `parking_lot`
//! semantics: `lock()` / `read()` / `write()` return guards directly (no
//! `Result`), and a poisoned `std` lock is recovered transparently — a
//! panicking thread must not poison simulation state for every other thread.
//! Swap the workspace dependency for the real crate when network access is
//! available; no call site needs to change.

use std::fmt;
use std::sync::{self, LockResult, TryLockError};

/// A mutual-exclusion primitive with `parking_lot`'s panic-free API.
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

fn recover<G>(result: LockResult<G>) -> G {
    match result {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        recover(self.inner.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        recover(self.inner.lock())
    }

    /// Try to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        recover(self.inner.get_mut())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// A reader-writer lock with `parking_lot`'s panic-free API.
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// RAII guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// RAII guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        recover(self.inner.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        recover(self.inner.read())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        recover(self.inner.write())
    }

    /// Try to acquire a shared read guard without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(guard) => Some(guard),
            Err(TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Try to acquire an exclusive write guard without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(guard) => Some(guard),
            Err(TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        recover(self.inner.get_mut())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_read() {
            Some(guard) => f.debug_struct("RwLock").field("data", &&*guard).finish(),
            None => f.debug_struct("RwLock").field("data", &"<locked>").finish(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(format!("{m:?}").contains('2'));
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }
}
