//! Fixture tests: every rule's true positives AND the look-alikes that must
//! *not* fire. Fixtures are inline strings fed through [`lint_source`] /
//! [`lint_files`] with synthetic workspace paths, so scope decisions (which
//! crate, test file or not) are exercised exactly as on disk.

use htap_lint::{lint_files, lint_source, Rule};

/// Diagnostics of one rule as (line, message) pairs.
fn hits(path: &str, src: &str, rule: Rule) -> Vec<(u32, String)> {
    lint_source(path, src)
        .diagnostics
        .into_iter()
        .filter(|d| d.rule == rule)
        .map(|d| (d.line, d.message))
        .collect()
}

fn count(path: &str, src: &str, rule: Rule) -> usize {
    hits(path, src, rule).len()
}

// ---------------------------------------------------------------- L1

#[test]
fn l1_flags_unordered_containers_in_result_producing_crates() {
    let src = "use std::collections::HashMap;\n\
               fn agg() { let m: HashMap<i64, f64> = HashMap::new(); }\n";
    let found = hits("crates/olap/src/widget.rs", src, Rule::UnorderedContainer);
    assert_eq!(found.len(), 3, "{found:?}");
    assert_eq!(found[0].0, 1, "use statement line");
    assert_eq!(found[1].0, 2, "type annotation and constructor lines");
    assert!(found[0].1.contains("HashMap"));

    assert_eq!(
        count(
            "crates/sql/src/binder.rs",
            "fn f(s: &HashSet<u32>) {}\n",
            Rule::UnorderedContainer
        ),
        1,
        "HashSet in crates/sql is in scope too"
    );
}

#[test]
fn l1_ignores_out_of_scope_crates_strings_comments_and_tests() {
    // OLTP ingest code may use hash containers: order never reaches results.
    assert_eq!(
        count(
            "crates/oltp/src/worker.rs",
            "use std::collections::HashMap;\n",
            Rule::UnorderedContainer
        ),
        0
    );
    // The word inside a string or comment is not a token.
    let src = "// a HashMap would be wrong here\n\
               fn f() -> &'static str { \"HashMap\" }\n";
    assert_eq!(
        count("crates/olap/src/widget.rs", src, Rule::UnorderedContainer),
        0
    );
    // Test modules may use whatever container they like.
    let src = "#[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n}\n";
    assert_eq!(
        count("crates/olap/src/widget.rs", src, Rule::UnorderedContainer),
        0
    );
    // Whole-file exemption for tests/ and benches/ paths.
    assert_eq!(
        count(
            "crates/olap/tests/exec.rs",
            "use std::collections::HashMap;\n",
            Rule::UnorderedContainer
        ),
        0
    );
}

#[test]
fn l1_allow_is_honored_and_marked_used() {
    let src = "// lint:allow(unordered-container): membership set, contains() only\n\
               fn f(s: &HashSet<u32>) {}\n";
    let report = lint_source("crates/olap/src/widget.rs", src);
    assert!(report.diagnostics.is_empty(), "{:?}", report.diagnostics);
}

// ---------------------------------------------------------------- L2

#[test]
fn l2_flags_undocumented_unsafe_with_position() {
    let src = "fn f(p: *const u8) -> u8 {\n    unsafe { *p }\n}\n";
    let found = hits("crates/core/src/x.rs", src, Rule::UndocumentedUnsafe);
    assert_eq!(found.len(), 1);
    assert_eq!(found[0].0, 2);
    assert!(found[0].1.contains("SAFETY"));
}

#[test]
fn l2_applies_even_inside_test_code() {
    // Unlike L1/L3/L5, test modules get no pass on undocumented unsafe.
    let src = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { unsafe { core::hint::unreachable_unchecked() } }\n}\n";
    assert_eq!(
        count("crates/core/src/x.rs", src, Rule::UndocumentedUnsafe),
        1
    );
}

#[test]
fn l2_accepts_safety_comment_above_or_on_the_statement() {
    let above = "fn f(p: *const u8) -> u8 {\n    // SAFETY: caller guarantees p is valid\n    unsafe { *p }\n}\n";
    assert_eq!(
        count("crates/core/src/x.rs", above, Rule::UndocumentedUnsafe),
        0
    );
    let doc = "/// # Safety\n/// `p` must be valid for reads.\npub unsafe fn read(p: *const u8) -> u8 { unsafe { *p } }\n";
    // The doc header covers both the fn and the block inside the same item
    // statement... the inner block starts a fresh statement, so it still
    // needs its own comment:
    let found = hits("crates/core/src/x.rs", doc, Rule::UndocumentedUnsafe);
    assert!(found.len() <= 1, "{found:?}");
    let both = "/// # Safety\n/// `p` must be valid for reads.\npub unsafe fn read(p: *const u8) -> u8 {\n    // SAFETY: contract forwarded to the caller\n    unsafe { *p }\n}\n";
    assert_eq!(
        count("crates/core/src/x.rs", both, Rule::UndocumentedUnsafe),
        0
    );
}

#[test]
fn l2_inventory_records_every_site_with_kind_and_doc_state() {
    let src =
        "// SAFETY: documented impl\nunsafe impl Send for X {}\nfn f() { unsafe { danger() } }\n";
    let report = lint_source("crates/core/src/x.rs", src);
    assert_eq!(report.unsafe_sites.len(), 2);
    assert_eq!(report.unsafe_sites[0].kind, "impl");
    assert!(report.unsafe_sites[0].safety.is_some());
    assert_eq!(report.unsafe_sites[1].kind, "block");
    assert!(report.unsafe_sites[1].safety.is_none());

    let json = htap_lint::unsafe_inventory_json(&report.unsafe_sites);
    assert!(json.contains("\"total\": 2"), "{json}");
    assert!(json.contains("\"documented\": 1"), "{json}");
    assert!(json.contains("\"kind\": \"impl\""), "{json}");
}

// ---------------------------------------------------------------- L3

#[test]
fn l3_flags_the_whole_panic_family_with_lines() {
    let src = "fn f(o: Option<u32>) -> u32 {\n\
               let a = o.unwrap();\n\
               let b = o.expect(\"present\");\n\
               if a > b { panic!(\"impossible\") }\n\
               todo!()\n\
               }\n";
    let found = hits("crates/sql/src/widget.rs", src, Rule::NoPanic);
    let lines: Vec<u32> = found.iter().map(|(l, _)| *l).collect();
    assert_eq!(lines, vec![2, 3, 4, 5], "{found:?}");
    assert!(found[0].1.contains("unwrap"));
    assert!(found[2].1.contains("panic"));
}

#[test]
fn l3_ignores_look_alikes_out_of_scope_and_test_code() {
    // Strings and comments mentioning unwrap( are not calls; unwrap_or is a
    // different identifier, not a prefix match.
    let src = "// never .unwrap() here\n\
               fn f(o: Option<u32>) -> u32 { o.unwrap_or_default() }\n\
               fn g() -> &'static str { \"x.unwrap()\" }\n\
               fn h(o: Option<u32>) -> u32 { o.unwrap_or_else(|| 0) }\n";
    assert_eq!(count("crates/olap/src/widget.rs", src, Rule::NoPanic), 0);
    // `unwrap` as a free function name (no `.`/`::` receiver) is not the
    // panicking method.
    assert_eq!(
        count(
            "crates/olap/src/widget.rs",
            "fn unwrap() {}\nfn f() { unwrap() }\n",
            Rule::NoPanic
        ),
        0
    );
    // Out-of-scope crate: the scheduler may unwrap.
    assert_eq!(
        count(
            "crates/scheduler/src/policy.rs",
            "fn f(o: Option<u32>) -> u32 { o.unwrap() }\n",
            Rule::NoPanic
        ),
        0
    );
    // Test module exemption.
    let src = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { Some(1).unwrap(); }\n}\n";
    assert_eq!(count("crates/sql/src/widget.rs", src, Rule::NoPanic), 0);
    // ... but #[cfg(not(test))] is production code.
    let src = "#[cfg(not(test))]\nfn f(o: Option<u32>) -> u32 { o.unwrap() }\n";
    assert_eq!(count("crates/sql/src/widget.rs", src, Rule::NoPanic), 1);
}

#[test]
fn l3_allow_needs_a_justification_and_must_suppress_something() {
    let ok = "// lint:allow(no-panic): dtype checked by caller\n\
              fn f(o: Option<u32>) -> u32 { o.unwrap() }\n";
    assert!(lint_source("crates/storage/src/widget.rs", ok)
        .diagnostics
        .is_empty());

    // Same-line allow works too.
    let same = "fn f(o: Option<u32>) -> u32 { o.unwrap() } // lint:allow(no-panic): checked\n";
    assert!(lint_source("crates/storage/src/widget.rs", same)
        .diagnostics
        .is_empty());

    // Short rule id accepted.
    let by_id = "// lint:allow(L3): checked\nfn f(o: Option<u32>) -> u32 { o.unwrap() }\n";
    assert!(lint_source("crates/storage/src/widget.rs", by_id)
        .diagnostics
        .is_empty());

    // No justification: the allow still suppresses (so the author sees one
    // actionable diagnostic, not two), but is itself flagged — the gate
    // fails either way.
    let bare = "// lint:allow(no-panic)\nfn f(o: Option<u32>) -> u32 { o.unwrap() }\n";
    let report = lint_source("crates/storage/src/widget.rs", bare);
    let rules: Vec<Rule> = report.diagnostics.iter().map(|d| d.rule).collect();
    assert_eq!(rules, vec![Rule::UnjustifiedAllow], "{rules:?}");

    // An allow with nothing to suppress is sediment.
    let unused = "// lint:allow(no-panic): stale\nfn f() {}\n";
    let report = lint_source("crates/storage/src/widget.rs", unused);
    assert_eq!(report.diagnostics.len(), 1);
    assert_eq!(report.diagnostics[0].rule, Rule::UnusedAllow);

    // An allow for rule X does not suppress rule Y.
    let wrong = "// lint:allow(no-panic): wrong rule\nfn f(s: &HashSet<u32>) {}\n";
    let report = lint_source("crates/olap/src/widget.rs", wrong);
    let rules: Vec<Rule> = report.diagnostics.iter().map(|d| d.rule).collect();
    assert!(rules.contains(&Rule::UnorderedContainer), "{rules:?}");
    assert!(rules.contains(&Rule::UnusedAllow), "{rules:?}");
}

// ---------------------------------------------------------------- L4

#[test]
fn l4_reports_a_cycle_across_files_with_both_sites() {
    let ingest = "fn ingest(&self) {\n\
                  let a = self.catalog.lock();\n\
                  let b = self.stats.lock();\n\
                  drop(b); drop(a);\n\
                  }\n";
    let report_fn = "fn report(&self) {\n\
                     let b = self.stats.lock();\n\
                     let a = self.catalog.lock();\n\
                     drop(a); drop(b);\n\
                     }\n";
    let files = vec![
        ("crates/oltp/src/ingest.rs".to_string(), ingest.to_string()),
        (
            "crates/oltp/src/report.rs".to_string(),
            report_fn.to_string(),
        ),
    ];
    let report = lint_files(&files);
    let cycles: Vec<_> = report
        .diagnostics
        .iter()
        .filter(|d| d.rule == Rule::LockOrder)
        .collect();
    assert_eq!(cycles.len(), 1, "{:?}", report.diagnostics);
    let msg = &cycles[0].message;
    assert!(msg.contains("catalog") && msg.contains("stats"), "{msg}");
    assert!(
        msg.contains("ingest.rs") || msg.contains("report.rs"),
        "{msg}"
    );
}

#[test]
fn l4_consistent_order_transient_guards_and_test_code_are_clean() {
    // Same nesting order everywhere: acyclic.
    let consistent = "fn a(&self) { let g = self.x.lock(); let h = self.y.lock(); drop(h); drop(g); }\n\
                      fn b(&self) { let g = self.x.lock(); let h = self.y.lock(); drop(h); drop(g); }\n";
    let files = vec![("crates/oltp/src/a.rs".to_string(), consistent.to_string())];
    assert!(lint_files(&files).diagnostics.is_empty());

    // A guard consumed within one statement is released before the next
    // acquisition: no edge, so reversed transient uses stay clean.
    let transient = "fn a(&self) { let n = self.x.lock().len(); let m = self.y.lock().len(); let _ = n + m; }\n\
                     fn b(&self) { let m = self.y.lock().len(); let n = self.x.lock().len(); let _ = n + m; }\n";
    let files = vec![("crates/oltp/src/b.rs".to_string(), transient.to_string())];
    assert!(lint_files(&files).diagnostics.is_empty());

    // drop() releases: y is no longer held when x is re-acquired.
    let dropped = "fn a(&self) { let g = self.x.lock(); drop(g); let h = self.y.lock(); drop(h); }\n\
                   fn b(&self) { let h = self.y.lock(); drop(h); let g = self.x.lock(); drop(g); }\n";
    let files = vec![("crates/oltp/src/c.rs".to_string(), dropped.to_string())];
    assert!(lint_files(&files).diagnostics.is_empty());

    // Deliberate inversions inside tests/ files (like the shim's own runtime
    // checker tests) contribute no edges.
    let inverted = "fn a(&self) { let g = self.x.lock(); let h = self.y.lock(); drop(h); drop(g); }\n\
                    fn b(&self) { let h = self.y.lock(); let g = self.x.lock(); drop(g); drop(h); }\n";
    let files = vec![(
        "crates/oltp/tests/inversion.rs".to_string(),
        inverted.to_string(),
    )];
    assert!(lint_files(&files).diagnostics.is_empty());
}

#[test]
fn l4_read_write_nesting_participates_in_the_graph() {
    let src = "fn a(&self) { let g = self.x.write(); let h = self.y.read(); drop(h); drop(g); }\n\
               fn b(&self) { let h = self.y.write(); let g = self.x.read(); drop(g); drop(h); }\n";
    let files = vec![("crates/storage/src/d.rs".to_string(), src.to_string())];
    let report = lint_files(&files);
    assert_eq!(
        report
            .diagnostics
            .iter()
            .filter(|d| d.rule == Rule::LockOrder)
            .count(),
        1,
        "{:?}",
        report.diagnostics
    );
}

// ---------------------------------------------------------------- L5

#[test]
fn l5_flags_clock_and_rng_in_deterministic_path_files_only() {
    let src = "fn f() { let t = Instant::now(); }\n";
    let found = hits(
        "crates/olap/src/kernels.rs",
        src,
        Rule::NondeterministicSource,
    );
    assert_eq!(found.len(), 1);
    assert_eq!(found[0].0, 1);

    assert_eq!(
        count(
            "crates/olap/src/exec.rs",
            "fn f() { let s = SystemTime::now(); }\n",
            Rule::NondeterministicSource
        ),
        1
    );
    assert_eq!(
        count(
            "crates/olap/src/hashtable.rs",
            "fn f() { let r = rand::thread_rng(); }\n",
            Rule::NondeterministicSource
        ),
        2,
        "both the rand:: path and thread_rng flag"
    );
    // The same construct in a non-deterministic-path file is fine (the
    // scheduler is *supposed* to read the clock).
    assert_eq!(
        count(
            "crates/scheduler/src/tick.rs",
            "fn f() { let t = Instant::now(); }\n",
            Rule::NondeterministicSource
        ),
        0
    );
    assert_eq!(
        count(
            "crates/olap/src/routing.rs",
            "fn f() { let t = Instant::now(); }\n",
            Rule::NondeterministicSource
        ),
        0
    );
}

#[test]
fn l5_ignores_look_alike_identifiers_and_strings() {
    // `operand` contains "rand" as a substring; tokens compare exactly.
    let src = "fn f(operand: u32) -> u32 { operand }\n\
               fn g() -> &'static str { \"Instant::now\" }\n\
               // Instant would be wrong here\n";
    assert_eq!(
        count(
            "crates/olap/src/kernels.rs",
            src,
            Rule::NondeterministicSource
        ),
        0
    );
    // A local named `rand` not followed by `::` is not the crate.
    assert_eq!(
        count(
            "crates/olap/src/kernels.rs",
            "fn f(rand: u32) -> u32 { rand + 1 }\n",
            Rule::NondeterministicSource
        ),
        0
    );
}

// ---------------------------------------------------------------- meta

#[test]
fn diagnostics_render_file_line_and_rule() {
    let report = lint_source(
        "crates/sql/src/widget.rs",
        "fn f(o: Option<u32>) -> u32 { o.unwrap() }\n",
    );
    assert_eq!(report.diagnostics.len(), 1);
    let rendered = report.diagnostics[0].to_string();
    assert!(
        rendered.starts_with("crates/sql/src/widget.rs:1: [L3/no-panic]"),
        "{rendered}"
    );
}

#[test]
fn rule_parsing_accepts_names_and_ids_case_insensitively() {
    assert_eq!(Rule::parse("no-panic"), Some(Rule::NoPanic));
    assert_eq!(Rule::parse("L3"), Some(Rule::NoPanic));
    assert_eq!(Rule::parse("l1"), Some(Rule::UnorderedContainer));
    assert_eq!(Rule::parse("Lock-Order"), Some(Rule::LockOrder));
    assert_eq!(Rule::parse("nonsense"), None);
}
