//! Schema definitions: data types, column definitions, table schemas and the
//! dynamically-typed [`Value`] used at the storage API boundary.
//!
//! The engines execute over typed column slices for speed; `Value` only
//! appears on the transactional read/write path and in tests, where clarity
//! matters more than raw throughput.

/// Physical type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer (also used for keys and dates encoded as days).
    I64,
    /// 64-bit IEEE float (amounts, prices).
    F64,
    /// 32-bit signed integer (small enumerations, quantities).
    I32,
    /// Variable-length UTF-8 string (names, addresses).
    Str,
}

impl DataType {
    /// Bytes one value of this type occupies in the columnar representation.
    /// Strings are accounted with their average CH-benCHmark width.
    pub fn width_bytes(self) -> u64 {
        match self {
            DataType::I64 => 8,
            DataType::F64 => 8,
            DataType::I32 => 4,
            DataType::Str => 24,
        }
    }
}

impl std::fmt::Display for DataType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            DataType::I64 => "i64",
            DataType::F64 => "f64",
            DataType::I32 => "i32",
            DataType::Str => "str",
        };
        f.write_str(s)
    }
}

/// A single dynamically-typed value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// 64-bit integer value.
    I64(i64),
    /// 64-bit float value.
    F64(f64),
    /// 32-bit integer value.
    I32(i32),
    /// String value.
    Str(String),
}

impl Value {
    /// The data type of this value.
    pub fn data_type(&self) -> DataType {
        match self {
            Value::I64(_) => DataType::I64,
            Value::F64(_) => DataType::F64,
            Value::I32(_) => DataType::I32,
            Value::Str(_) => DataType::Str,
        }
    }

    /// Integer accessor; panics if the value is not an `I64`.
    pub fn as_i64(&self) -> i64 {
        match self {
            Value::I64(v) => *v,
            // lint:allow(no-panic): dtype contract documented on the accessor; callers match dtype() before converting
            other => panic!("expected I64, found {other:?}"),
        }
    }

    /// Float accessor; panics if the value is not an `F64`.
    pub fn as_f64(&self) -> f64 {
        match self {
            Value::F64(v) => *v,
            // lint:allow(no-panic): dtype contract documented on the accessor; callers match dtype() before converting
            other => panic!("expected F64, found {other:?}"),
        }
    }

    /// 32-bit integer accessor; panics if the value is not an `I32`.
    pub fn as_i32(&self) -> i32 {
        match self {
            Value::I32(v) => *v,
            // lint:allow(no-panic): dtype contract documented on the accessor; callers match dtype() before converting
            other => panic!("expected I32, found {other:?}"),
        }
    }

    /// String accessor; panics if the value is not a `Str`.
    pub fn as_str(&self) -> &str {
        match self {
            Value::Str(v) => v,
            // lint:allow(no-panic): dtype contract documented on the accessor; callers match dtype() before converting
            other => panic!("expected Str, found {other:?}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::I32(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

/// Definition of one column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnDef {
    /// Column name.
    pub name: String,
    /// Column type.
    pub dtype: DataType,
}

impl ColumnDef {
    /// Construct a column definition.
    pub fn new(name: impl Into<String>, dtype: DataType) -> Self {
        ColumnDef {
            name: name.into(),
            dtype,
        }
    }
}

/// Schema of a table: an ordered list of columns plus the primary-key column
/// (always an `I64` column whose value is unique per row).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableSchema {
    /// Table name.
    pub name: String,
    /// Ordered column definitions.
    pub columns: Vec<ColumnDef>,
    /// Index (into `columns`) of the primary-key column, if the table has one.
    pub primary_key: Option<usize>,
}

impl TableSchema {
    /// Create a schema. Panics if `primary_key` is out of range or not `I64`.
    pub fn new(
        name: impl Into<String>,
        columns: Vec<ColumnDef>,
        primary_key: Option<usize>,
    ) -> Self {
        if let Some(pk) = primary_key {
            assert!(pk < columns.len(), "primary key column index out of range");
            assert_eq!(
                columns[pk].dtype,
                DataType::I64,
                "primary key must be an i64 column"
            );
        }
        TableSchema {
            name: name.into(),
            columns,
            primary_key,
        }
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Find a column index by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// The definition of column `idx`.
    pub fn column(&self, idx: usize) -> &ColumnDef {
        &self.columns[idx]
    }

    /// Bytes one full row occupies in the columnar representation.
    pub fn row_width_bytes(&self) -> u64 {
        self.columns.iter().map(|c| c.dtype.width_bytes()).sum()
    }

    /// Validate that a row of values matches the schema.
    pub fn check_row(&self, row: &[Value]) -> Result<(), crate::StorageError> {
        if row.len() != self.columns.len() {
            return Err(crate::StorageError::ArityMismatch {
                table: self.name.clone(),
                expected: self.columns.len(),
                got: row.len(),
            });
        }
        for (i, (v, c)) in row.iter().zip(&self.columns).enumerate() {
            if v.data_type() != c.dtype {
                return Err(crate::StorageError::TypeMismatch {
                    table: self.name.clone(),
                    column: i,
                    expected: c.dtype,
                    got: v.data_type(),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> TableSchema {
        TableSchema::new(
            "item",
            vec![
                ColumnDef::new("i_id", DataType::I64),
                ColumnDef::new("i_price", DataType::F64),
                ColumnDef::new("i_name", DataType::Str),
                ColumnDef::new("i_im_id", DataType::I32),
            ],
            Some(0),
        )
    }

    #[test]
    fn column_lookup_and_widths() {
        let s = schema();
        assert_eq!(s.arity(), 4);
        assert_eq!(s.column_index("i_price"), Some(1));
        assert_eq!(s.column_index("missing"), None);
        assert_eq!(s.row_width_bytes(), 8 + 8 + 24 + 4);
        assert_eq!(s.column(2).dtype, DataType::Str);
    }

    #[test]
    fn check_row_accepts_matching_and_rejects_mismatched() {
        let s = schema();
        let good = vec![
            Value::I64(1),
            Value::F64(9.99),
            Value::from("widget"),
            Value::I32(7),
        ];
        assert!(s.check_row(&good).is_ok());

        let short = vec![Value::I64(1)];
        assert!(s.check_row(&short).is_err());

        let wrong_type = vec![
            Value::I64(1),
            Value::I64(9),
            Value::from("widget"),
            Value::I32(7),
        ];
        assert!(s.check_row(&wrong_type).is_err());
    }

    #[test]
    #[should_panic(expected = "primary key must be an i64 column")]
    fn non_i64_primary_key_is_rejected() {
        TableSchema::new("bad", vec![ColumnDef::new("x", DataType::F64)], Some(0));
    }

    #[test]
    fn value_accessors_and_conversions() {
        assert_eq!(Value::from(3i64).as_i64(), 3);
        assert_eq!(Value::from(2.5f64).as_f64(), 2.5);
        assert_eq!(Value::from(7i32).as_i32(), 7);
        assert_eq!(Value::from("abc").as_str(), "abc");
        assert_eq!(Value::from("abc".to_string()).data_type(), DataType::Str);
    }

    #[test]
    #[should_panic(expected = "expected I64")]
    fn wrong_accessor_panics() {
        Value::F64(1.0).as_i64();
    }

    #[test]
    fn display_of_types() {
        assert_eq!(DataType::I64.to_string(), "i64");
        assert_eq!(DataType::Str.to_string(), "str");
    }
}
