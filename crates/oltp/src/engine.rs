//! The OLTP engine facade: storage manager + transaction manager + worker
//! manager, plus the hooks the RDE engine drives (§3.2, §3.4).

use crate::durability::DurabilityController;
use crate::txn::{Transaction, TxnManager};
use crate::worker::WorkerManager;
use htap_durability::DurabilityError;
use htap_storage::{
    CuckooIndex, DeltaStorage, RecordLocation, SnapshotHandle, StorageError, SwitchOutcome,
    SyncOutcome, TableSchema, TwinStore, TwinTable, Value,
};
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Per-relation runtime state owned by the OLTP engine: the twin columnar
/// instances, the MVCC delta storage and the primary-key cuckoo index.
#[derive(Debug)]
pub struct TableRuntime {
    twin: Arc<TwinTable>,
    delta: DeltaStorage,
    index: CuckooIndex<RecordLocation>,
}

impl TableRuntime {
    /// Create the runtime for a new relation.
    pub fn new(schema: TableSchema) -> Self {
        TableRuntime {
            twin: Arc::new(TwinTable::new(schema)),
            delta: DeltaStorage::new(),
            index: CuckooIndex::with_capacity(1 << 16),
        }
    }

    /// Create the runtime around an existing twin table (used when the twin
    /// store is shared with the RDE engine).
    pub fn from_twin(twin: Arc<TwinTable>) -> Self {
        TableRuntime {
            twin,
            delta: DeltaStorage::new(),
            index: CuckooIndex::with_capacity(1 << 16),
        }
    }

    /// Relation name.
    pub fn name(&self) -> &str {
        &self.twin.schema().name
    }

    /// The twin-instance storage of the relation.
    pub fn twin(&self) -> &Arc<TwinTable> {
        &self.twin
    }

    /// The MVCC delta storage of the relation.
    pub fn delta(&self) -> &DeltaStorage {
        &self.delta
    }

    /// The primary-key index of the relation.
    pub fn index(&self) -> &CuckooIndex<RecordLocation> {
        &self.index
    }
}

/// The in-memory OLTP engine.
///
/// The engine is deliberately thin: it wires the storage manager (twin store),
/// the transaction manager and the worker manager together and exposes the
/// operations the RDE engine needs — switching the active instance,
/// synchronising the twins, and reporting fresh-data statistics — without
/// interfering with the design of either component.
#[derive(Debug)]
pub struct OltpEngine {
    store: Arc<TwinStore>,
    txn_manager: TxnManager,
    worker_manager: WorkerManager,
    runtimes: RwLock<BTreeMap<String, Arc<TableRuntime>>>,
    /// Switch gate: transactions hold a read lock while executing; an
    /// instance switch takes the write lock, which gives the quiescence point
    /// the storage manager requires ("when no active OLTP worker thread is
    /// using it any more", §3.2).
    switch_gate: RwLock<()>,
    /// Durability controller, when persistence is enabled. Checkpoints run
    /// inside the switch quiescence window (see [`Self::switch_and_sync_instances`]).
    persistence: RwLock<Option<Arc<DurabilityController>>>,
}

impl Default for OltpEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl OltpEngine {
    /// Create an engine with an empty database.
    pub fn new() -> Self {
        OltpEngine {
            store: Arc::new(TwinStore::new()),
            txn_manager: TxnManager::new(),
            worker_manager: WorkerManager::new(),
            runtimes: RwLock::new(BTreeMap::new()),
            switch_gate: RwLock::new(()),
            persistence: RwLock::new(None),
        }
    }

    /// Enable durability: commits start appending to the controller's WAL
    /// (group-committed, durable before apply) and instance switches
    /// periodically checkpoint the store.
    pub fn attach_durability(&self, controller: Arc<DurabilityController>) {
        self.txn_manager.attach_wal(controller.wal().clone());
        *self.persistence.write() = Some(controller);
    }

    /// Disable durability (commits become memory-only again).
    pub fn detach_durability(&self) {
        self.txn_manager.detach_wal();
        *self.persistence.write() = None;
    }

    /// The attached durability controller, if any.
    pub fn durability(&self) -> Option<Arc<DurabilityController>> {
        self.persistence.read().clone()
    }

    /// Take a checkpoint immediately, inside its own quiescence window
    /// (blocks until in-flight transactions drain). Returns `Ok(false)` when
    /// no durability controller is attached.
    pub fn checkpoint_now(&self) -> Result<bool, DurabilityError> {
        let _guard = self.switch_gate.write();
        match self.persistence.read().clone() {
            Some(ctl) => ctl.checkpoint_quiesced(self).map(|()| true),
            None => Ok(false),
        }
    }

    /// The underlying twin store (shared with the RDE engine).
    pub fn store(&self) -> &Arc<TwinStore> {
        &self.store
    }

    /// The transaction manager.
    pub fn txn_manager(&self) -> &TxnManager {
        &self.txn_manager
    }

    /// The worker manager.
    pub fn worker_manager(&self) -> &WorkerManager {
        &self.worker_manager
    }

    /// Create a relation and register it with the transaction manager.
    pub fn create_table(&self, schema: TableSchema) -> Result<Arc<TableRuntime>, StorageError> {
        let twin = self.store.create_table(schema)?;
        let runtime = Arc::new(TableRuntime::from_twin(twin));
        self.txn_manager.register_table(Arc::clone(&runtime));
        self.runtimes
            .write()
            .insert(runtime.name().to_string(), Arc::clone(&runtime));
        Ok(runtime)
    }

    /// Look up a relation runtime.
    pub fn table(&self, name: &str) -> Option<Arc<TableRuntime>> {
        self.runtimes.read().get(name).cloned()
    }

    /// Names of all relations.
    pub fn table_names(&self) -> Vec<String> {
        self.runtimes.read().keys().cloned().collect()
    }

    /// Begin an interactive transaction.
    pub fn begin(&self) -> Transaction<'_> {
        self.txn_manager.begin()
    }

    /// Execute a transaction body under the switch gate. The closure receives
    /// a fresh transaction and must either commit or abort it (returning the
    /// closure's result). Worker threads use this entry point so that instance
    /// switches observe a quiesced engine.
    pub fn execute<R>(&self, body: impl FnOnce(Transaction<'_>) -> R) -> R {
        let _guard = self.switch_gate.read();
        body(self.txn_manager.begin())
    }

    /// Bulk-load a row into a relation outside of any transaction (initial
    /// database population). The index is updated and both twin instances
    /// receive the row; update bits are not touched.
    pub fn bulk_load(
        &self,
        table: &str,
        key: u64,
        values: Vec<Value>,
    ) -> Result<u64, StorageError> {
        let rt = self
            .table(table)
            .ok_or_else(|| StorageError::TableMissing {
                table: table.to_string(),
            })?;
        let row = rt.twin().insert(&values)?;
        rt.index().insert(key, RecordLocation::new(row, 0));
        Ok(row)
    }

    /// Switch the active instance of every relation. Blocks until in-flight
    /// transactions drain (switch gate), then performs the switch. Returns the
    /// per-relation outcomes (the RDE engine uses them to size the
    /// synchronisation work).
    pub fn switch_instance(&self) -> BTreeMap<String, SwitchOutcome> {
        let _guard = self.switch_gate.write();
        self.store.switch_all()
    }

    /// Synchronise the active instance of every relation from its snapshot
    /// twin (consumes the update-indication bits). Usually invoked by the RDE
    /// engine immediately after [`Self::switch_instance`]. The caller must
    /// guarantee no transactions run concurrently; with a live worker pool
    /// use [`Self::switch_and_sync_instances`] instead.
    pub fn sync_instances(&self) -> BTreeMap<String, SyncOutcome> {
        self.runtimes
            .read()
            .iter()
            .map(|(name, rt)| (name.clone(), rt.twin().sync_active_from_snapshot()))
            .collect()
    }

    /// Switch the active instance of every relation *and* synchronise the new
    /// active instance from the snapshot, inside one quiescence window: the
    /// switch gate is held across both steps so no transaction can execute
    /// against the un-synced active instance — it would read pre-switch
    /// values (e.g. a stale district order counter) or have its committed
    /// writes overwritten by the sync copy. This is the entry point the RDE
    /// engine uses while the continuous ingest pool runs.
    pub fn switch_and_sync_instances(
        &self,
    ) -> (
        BTreeMap<String, SwitchOutcome>,
        BTreeMap<String, SyncOutcome>,
    ) {
        let _guard = self.switch_gate.write();
        let switched = self.store.switch_all();
        let synced = self
            .runtimes
            .read()
            .iter()
            .map(|(name, rt)| (name.clone(), rt.twin().sync_active_from_snapshot()))
            .collect();
        // Checkpoints piggyback on the quiescence window the switch already
        // paid for: the twins are synced and no transaction is in flight.
        if let Some(ctl) = self.persistence.read().clone() {
            ctl.note_switch(self);
        }
        (switched, synced)
    }

    /// A consistent snapshot handle over the inactive instance of every
    /// relation (what the RDE engine passes to the OLAP engine).
    pub fn snapshot(&self) -> SnapshotHandle {
        let mut handle = SnapshotHandle::new();
        for rt in self.runtimes.read().values() {
            handle.insert(rt.twin().snapshot());
        }
        handle
    }

    /// Total fresh rows (inserted or updated since the last propagation to the
    /// OLAP instance), across all relations.
    pub fn fresh_rows_vs_olap(&self) -> u64 {
        self.store.fresh_rows_vs_olap()
    }

    /// Total rows across all relations.
    pub fn total_rows(&self) -> u64 {
        self.store.total_rows()
    }

    /// Size in bytes of one instance of the database.
    pub fn instance_bytes(&self) -> u64 {
        self.store.instance_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use htap_storage::{ColumnDef, DataType};

    fn schema(name: &str) -> TableSchema {
        TableSchema::new(
            name,
            vec![
                ColumnDef::new("id", DataType::I64),
                ColumnDef::new("qty", DataType::I32),
            ],
            Some(0),
        )
    }

    #[test]
    fn create_table_and_transact() {
        let engine = OltpEngine::new();
        engine.create_table(schema("stock")).unwrap();
        assert_eq!(engine.table_names(), vec!["stock".to_string()]);
        assert!(engine.table("stock").is_some());
        assert!(engine.create_table(schema("stock")).is_err());

        let committed = engine.execute(|mut txn| {
            txn.insert("stock", 1, vec![Value::I64(1), Value::I32(5)])
                .unwrap();
            txn.commit().is_ok()
        });
        assert!(committed);
        assert_eq!(engine.total_rows(), 1);
        assert_eq!(engine.begin().read("stock", 1, 1).unwrap(), Value::I32(5));
    }

    #[test]
    fn bulk_load_populates_both_instances_and_index() {
        let engine = OltpEngine::new();
        engine.create_table(schema("stock")).unwrap();
        for k in 0..100u64 {
            engine
                .bulk_load("stock", k, vec![Value::I64(k as i64), Value::I32(1)])
                .unwrap();
        }
        assert_eq!(engine.total_rows(), 100);
        let rt = engine.table("stock").unwrap();
        assert_eq!(rt.index().len(), 100);
        assert_eq!(rt.twin().instance(0).row_count(), 100);
        assert_eq!(rt.twin().instance(1).row_count(), 100);
        assert!(engine.bulk_load("missing", 0, vec![]).is_err());
    }

    #[test]
    fn switch_and_snapshot_expose_committed_data() {
        let engine = OltpEngine::new();
        engine.create_table(schema("stock")).unwrap();
        engine
            .bulk_load("stock", 1, vec![Value::I64(1), Value::I32(10)])
            .unwrap();
        engine.execute(|mut txn| {
            txn.update("stock", 1, 1, Value::I32(42)).unwrap();
            txn.commit().unwrap();
        });

        let outcomes = engine.switch_instance();
        assert_eq!(outcomes["stock"].pending_sync_records, 1);
        let snapshot = engine.snapshot();
        let stock = snapshot.table("stock").unwrap();
        assert_eq!(stock.rows(), 1);
        assert_eq!(stock.table().get_value(0, 1), Some(Value::I32(42)));

        let sync = engine.sync_instances();
        assert_eq!(sync["stock"].copied_records, 1);
        // After sync both instances agree.
        let rt = engine.table("stock").unwrap();
        assert_eq!(rt.twin().get_from(0, 0, 1), Some(Value::I32(42)));
        assert_eq!(rt.twin().get_from(1, 0, 1), Some(Value::I32(42)));
    }

    #[test]
    fn fresh_row_accounting_spans_tables() {
        let engine = OltpEngine::new();
        engine.create_table(schema("a")).unwrap();
        engine.create_table(schema("b")).unwrap();
        engine
            .bulk_load("a", 1, vec![Value::I64(1), Value::I32(1)])
            .unwrap();
        engine
            .bulk_load("b", 1, vec![Value::I64(1), Value::I32(1)])
            .unwrap();
        engine.switch_instance();
        assert_eq!(engine.fresh_rows_vs_olap(), 2);
        assert!(engine.instance_bytes() > 0);
    }

    #[test]
    fn switch_and_sync_instances_is_one_quiescence_window() {
        let engine = OltpEngine::new();
        engine.create_table(schema("stock")).unwrap();
        engine
            .bulk_load("stock", 1, vec![Value::I64(1), Value::I32(10)])
            .unwrap();
        engine.execute(|mut txn| {
            txn.update("stock", 1, 1, Value::I32(42)).unwrap();
            txn.commit().unwrap();
        });
        let (switched, synced) = engine.switch_and_sync_instances();
        assert_eq!(switched["stock"].pending_sync_records, 1);
        assert_eq!(synced["stock"].copied_records, 1);
        // Both instances agree immediately after the combined step — no
        // transaction can ever observe the in-between state.
        let rt = engine.table("stock").unwrap();
        assert_eq!(rt.twin().get_from(0, 0, 1), Some(Value::I32(42)));
        assert_eq!(rt.twin().get_from(1, 0, 1), Some(Value::I32(42)));
    }

    #[test]
    fn switch_waits_for_inflight_transactions() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let engine = Arc::new(OltpEngine::new());
        engine.create_table(schema("stock")).unwrap();
        engine
            .bulk_load("stock", 1, vec![Value::I64(1), Value::I32(0)])
            .unwrap();

        let in_txn = Arc::new(AtomicBool::new(false));
        let release = Arc::new(AtomicBool::new(false));
        let worker = {
            let engine = Arc::clone(&engine);
            let in_txn = Arc::clone(&in_txn);
            let release = Arc::clone(&release);
            std::thread::spawn(move || {
                engine.execute(|mut txn| {
                    txn.update("stock", 1, 1, Value::I32(7)).unwrap();
                    in_txn.store(true, Ordering::SeqCst);
                    while !release.load(Ordering::SeqCst) {
                        std::hint::spin_loop();
                    }
                    txn.commit().unwrap();
                });
            })
        };
        while !in_txn.load(Ordering::SeqCst) {
            std::hint::spin_loop();
        }
        // The switch must block until the worker commits; verify by running it
        // on another thread and checking it has not finished while the
        // transaction is still open.
        let switcher = {
            let engine = Arc::clone(&engine);
            std::thread::spawn(move || engine.switch_instance())
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert!(
            !switcher.is_finished(),
            "switch must wait for the open transaction"
        );
        release.store(true, Ordering::SeqCst);
        worker.join().unwrap();
        let outcomes = switcher.join().unwrap();
        // The committed update is part of the snapshot.
        assert_eq!(outcomes["stock"].pending_sync_records, 1);
        let snap = engine.snapshot();
        assert_eq!(
            snap.table("stock").unwrap().table().get_value(0, 1),
            Some(Value::I32(7))
        );
    }
}
