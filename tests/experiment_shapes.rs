//! Shape tests: small-scale versions of the paper's experimental claims.
//! Absolute numbers differ from the paper (the substrate is a simulated
//! machine and the database is tiny), but the qualitative relationships —
//! who wins, what amortises, what interferes — must hold.

use adaptive_htap::baselines::{CowBaseline, EtlBaseline};
use adaptive_htap::chbench::{ch_q1, ch_q6, ChConfig, ChGenerator, TransactionDriver};
use adaptive_htap::core::{run_mixed_workload, MixedWorkload, SchedulerPolicy};
use adaptive_htap::rde::{AccessMethod, RdeConfig, RdeEngine};
use adaptive_htap::sim::SocketId;
use adaptive_htap::{HtapConfig, HtapSystem, QueryId, Schedule, SystemState};

fn populated_rde() -> (RdeEngine, TransactionDriver) {
    let rde = RdeEngine::bootstrap(RdeConfig::default());
    let config = ChConfig::tiny();
    ChGenerator::new(config.clone()).build(&rde).unwrap();
    (rde, TransactionDriver::for_config(&config))
}

/// Figure 1: the ETL baseline's per-query cost falls as the batch grows,
/// while the CoW baseline's OLTP throughput stays below the ETL baseline's.
#[test]
fn figure1_shape_etl_amortises_and_cow_taxes_oltp() {
    let (rde, driver) = populated_rde();
    let etl = EtlBaseline;
    let cow = CowBaseline::default();

    // Settle the initial load.
    etl.run_snapshot(&rde, &ch_q6(), 1);

    driver.run_new_orders(rde.oltp(), 0, 30, 1);
    let etl_single = etl.run_snapshot(&rde, &ch_q6(), 1);
    driver.run_new_orders(rde.oltp(), 0, 30, 2);
    let etl_batch = etl.run_snapshot(&rde, &ch_q6(), 16);
    assert!(
        etl_batch.avg_query_time() < etl_single.avg_query_time(),
        "ETL cost must amortise with batch size: {} vs {}",
        etl_batch.avg_query_time(),
        etl_single.avg_query_time()
    );

    let txns = driver.run_new_orders(rde.oltp(), 0, 30, 3);
    let cow_point = cow.run_snapshot(&rde, &ch_q6(), 16, txns);
    assert_eq!(
        cow_point.data_transfer_time, 0.0,
        "CoW takes instant snapshots"
    );
    assert!(
        cow_point.oltp_tps < etl_batch.oltp_tps,
        "CoW must cost OLTP throughput relative to decoupled ETL: {} vs {}",
        cow_point.oltp_tps,
        etl_batch.oltp_tps
    );
}

/// Figure 3(a): lending OLTP cores to the OLAP engine lowers OLTP throughput,
/// and the loss with concurrent analytics exceeds the loss without.
#[test]
fn figure3a_shape_trading_cpus_costs_oltp_throughput() {
    let (rde, _) = populated_rde();
    let mut last_idle = f64::INFINITY;
    for traded in [0usize, 4, 8] {
        let keep = 14 - traded;
        rde.migrate_state_s1_with(&[(SocketId(0), keep), (SocketId(1), traded)]);
        let idle = rde.modeled_oltp_throughput_idle();
        assert!(
            idle <= last_idle + 1.0,
            "OLTP-only throughput must not increase as CPUs are traded"
        );
        last_idle = idle;

        // With a concurrent scan of the OLTP socket the throughput drops further.
        let sources = rde.sources_for(&["orderline"], AccessMethod::OltpSnapshot);
        let bytes = sources["orderline"].bytes_per_socket(&["ol_amount", "ol_quantity"]);
        let busy = rde.modeled_oltp_throughput(&rde.olap_traffic_for(&bytes));
        assert!(
            busy < idle,
            "analytics must add interference (traded={traded})"
        );
    }
}

/// Figure 3(b): with socket isolation the data-transfer cost dominates single
/// queries and amortises across a batch, while OLTP throughput stays at its
/// isolated level.
#[test]
fn figure3b_shape_batching_amortises_the_transfer() {
    let system = HtapSystem::build(HtapConfig::tiny()).unwrap();
    system.set_schedule(Schedule::Static(SystemState::S2Isolated));

    system.run_oltp(10);
    let single =
        run_mixed_workload(&system, &MixedWorkload::batches(QueryId::Q6, 1, 1, 0)).unwrap();
    system.run_oltp(10);
    let batch = run_mixed_workload(&system, &MixedWorkload::batches(QueryId::Q6, 8, 1, 0)).unwrap();

    let per_query_single = single.sequences[0].total_time();
    let per_query_batch = batch.sequences[0].total_time() / 8.0;
    assert!(
        per_query_batch < per_query_single,
        "batched S2 must be cheaper per query: {per_query_batch} vs {per_query_single}"
    );
    assert!(
        batch.sequences[0].oltp_mtps() > 0.5,
        "isolated OLTP keeps most of its throughput"
    );
}

/// Figure 4: for a small fresh fraction, split access beats re-reading
/// everything remotely, and the gap closes as the fresh share grows.
#[test]
fn figure4_shape_split_access_beats_full_remote_until_fresh_data_grows() {
    let (rde, driver) = populated_rde();
    // Bring the OLAP instance up to date first.
    rde.switch_and_sync();
    rde.etl_to_olap();

    let q1 = ch_q1();
    let tables: Vec<&str> = q1.tables();

    let mut previous_gap = f64::INFINITY;
    for round in 0..3 {
        // Each round adds more fresh data before comparing the two methods.
        driver.run_new_orders(rde.oltp(), 0, 15 * (round + 1), 10 + round);
        rde.switch_and_sync();

        let split_sources = rde.sources_for(&tables, AccessMethod::Split);
        let remote_sources = rde.sources_for(&tables, AccessMethod::OltpSnapshot);
        let split = rde
            .olap()
            .run_query(&q1, &split_sources, None)
            .unwrap()
            .modeled
            .total;
        let remote = rde
            .olap()
            .run_query(&q1, &remote_sources, None)
            .unwrap()
            .modeled
            .total;
        assert!(
            split < remote,
            "split access must beat full remote while fresh data is small: {split} vs {remote}"
        );
        let gap = remote - split;
        assert!(
            gap <= previous_gap * 1.5,
            "the advantage should not explode as fresh data grows"
        );
        previous_gap = gap;
    }
}

/// Figure 5: over a long enough run the adaptive schedule beats the static
/// S3-IS schedule on cumulative analytical time while keeping OLTP throughput
/// in the same range, and it does so by paying for a bounded number of ETLs.
#[test]
fn figure5_shape_adaptive_beats_static_s3is_cumulatively() {
    // Enough sequences and ingest volume that data movement (not fixed
    // scheduling overheads) dominates, as in the paper's setting.
    let sequences = 20;
    let run = |schedule: Schedule| {
        let system = HtapSystem::build(HtapConfig::tiny().with_schedule(schedule)).unwrap();
        let report = run_mixed_workload(&system, &MixedWorkload::figure5(sequences, 400)).unwrap();
        (
            report.total_query_time(),
            report.mean_oltp_mtps(),
            report.etl_count(),
        )
    };

    let (static_time, static_mtps, static_etls) =
        run(Schedule::Static(SystemState::S3HybridIsolated));
    let (adaptive_time, adaptive_mtps, adaptive_etls) =
        run(Schedule::Adaptive(SchedulerPolicy::adaptive_isolated(0.5)));

    assert_eq!(static_etls, 0);
    assert!(
        adaptive_etls >= 1,
        "the adaptive run must pay at least one ETL"
    );
    assert!(
        adaptive_time < static_time,
        "adaptive must win cumulatively: {adaptive_time} vs {static_time}"
    );
    // OLTP throughput stays in the same ballpark (isolated schedules).
    assert!((adaptive_mtps - static_mtps).abs() / static_mtps < 0.25);
}

/// §5.2 insight: the elastic states (borrowed cores) hurt OLTP more than the
/// isolated ones — the trade-off the DBA's thresholds bound.
#[test]
fn elasticity_trades_oltp_throughput_for_olap_locality() {
    let system = HtapSystem::build(HtapConfig::tiny()).unwrap();
    system.run_oltp(5);

    system.set_schedule(Schedule::Static(SystemState::S3HybridIsolated));
    let isolated = system.execute_query(QueryId::Q1).unwrap();
    system.run_oltp(5);
    system.set_schedule(Schedule::Static(SystemState::S3HybridNonIsolated));
    let elastic = system.execute_query(QueryId::Q1).unwrap();

    assert!(
        elastic.oltp_tps < isolated.oltp_tps,
        "borrowing OLTP cores must cost transactional throughput"
    );
}
