//! Chrome `trace_event` JSON export: one self-contained string covering the
//! span log, every ring lane, and the RDE decision log, loadable in
//! `chrome://tracing` or Perfetto.
//!
//! Layout: pid 1, with tid 0 carrying the query span trees, tid `lane+1`
//! carrying that ring lane's events (named after the lane:
//! `olap-worker-3`, `oltp-ingest-0`, `aux-1`), and the final tid carrying
//! RDE decisions as instant events. Interval events (`ph: "X"`) come out of
//! single completion-records (`ts` = start, `dur` = the payload word);
//! packed `txn-commit` events are re-inflated into a commit span with
//! lock/wal-wait/apply children, so commit trees cost nothing on the hot
//! path. The JSON is hand-rolled (the repo's serde shim has no serializer)
//! and escapes every dynamic string.
//!
//! Ring lanes are *drained* by the export (successive exports carry only
//! new events); spans and decisions are snapshotted without draining.

use crate::event::{unpack_morsel, unpack_phases, Event, EventKind};
use crate::span::Span;

/// Escape a string for a JSON literal (quotes, backslashes, control bytes).
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Format an f64 for JSON (never NaN/Inf — those are not valid JSON).
fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

struct TraceWriter {
    out: String,
    first: bool,
}

impl TraceWriter {
    fn new() -> Self {
        TraceWriter {
            out: String::from("{\"traceEvents\":[\n"),
            first: true,
        }
    }

    fn push(&mut self, event_json: String) {
        if !self.first {
            self.out.push_str(",\n");
        }
        self.first = false;
        self.out.push_str(&event_json);
    }

    fn thread_name(&mut self, tid: usize, name: &str) {
        self.push(format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\
             \"args\":{{\"name\":\"{}\"}}}}",
            esc(name)
        ));
    }

    fn complete(&mut self, name: &str, tid: usize, ts: u64, dur: u64, args: &str) {
        self.push(format!(
            "{{\"name\":\"{}\",\"ph\":\"X\",\"pid\":1,\"tid\":{tid},\"ts\":{ts},\
             \"dur\":{dur},\"args\":{{{args}}}}}",
            esc(name)
        ));
    }

    fn instant(&mut self, name: &str, tid: usize, ts: u64, args: &str) {
        self.push(format!(
            "{{\"name\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":{tid},\
             \"ts\":{ts},\"args\":{{{args}}}}}",
            esc(name)
        ));
    }

    fn finish(mut self) -> String {
        self.out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
        self.out
    }
}

/// Span trees go on tid 0 as nested complete events (Chrome nests `X`
/// events on one tid by time containment).
fn write_span(w: &mut TraceWriter, span: &Span) {
    let mut args = String::new();
    if !span.detail.is_empty() {
        args.push_str(&format!("\"detail\":\"{}\"", esc(&span.detail)));
    }
    for (k, v) in &span.args {
        if !args.is_empty() {
            args.push(',');
        }
        args.push_str(&format!("\"{}\":{}", esc(k), num(*v)));
    }
    // Zero-duration spans still need dur >= 1 to be visible/nestable.
    let dur = span.duration_us().max(1);
    w.complete(span.name, 0, span.start_us, dur, &args);
    for child in &span.children {
        write_span(w, child);
    }
}

/// One drained ring event onto its lane's tid.
fn write_event(w: &mut TraceWriter, tid: usize, e: &Event) {
    match e.kind {
        EventKind::Morsel => {
            let (pipeline, morsel) = unpack_morsel(e.a);
            w.complete(
                e.kind.name(),
                tid,
                e.ts_us,
                e.b.max(1),
                &format!("\"pipeline\":{pipeline},\"morsel\":{morsel}"),
            );
        }
        EventKind::PipelineBuild | EventKind::PipelineProbe | EventKind::PipelineMerge => {
            w.complete(
                e.kind.name(),
                tid,
                e.ts_us,
                e.b.max(1),
                &format!("\"morsels\":{}", e.a),
            );
        }
        EventKind::WalFsyncBatch => {
            w.complete(
                e.kind.name(),
                tid,
                e.ts_us,
                e.b.max(1),
                &format!("\"records\":{}", e.a),
            );
        }
        EventKind::TxnCommit => {
            // Re-inflate the packed phases into a commit span tree.
            let (lock_us, wal_us, apply_us) = unpack_phases(e.b);
            let total = (lock_us + wal_us + apply_us).max(1);
            w.complete(
                "txn-commit",
                tid,
                e.ts_us,
                total,
                &format!("\"ops\":{}", e.a),
            );
            let mut at = e.ts_us;
            for (name, dur) in [
                ("commit.lock", lock_us),
                ("commit.wal-wait", wal_us),
                ("commit.apply", apply_us),
            ] {
                if dur > 0 {
                    w.complete(name, tid, at, dur, "");
                    at += dur;
                }
            }
        }
        EventKind::TxnAbort => {
            w.instant(e.kind.name(), tid, e.ts_us, &format!("\"worker\":{}", e.a));
        }
        EventKind::TxnRetry => {
            w.instant(
                e.kind.name(),
                tid,
                e.ts_us,
                &format!("\"worker\":{},\"attempt\":{}", e.a, e.b),
            );
        }
        EventKind::CheckpointBegin => {
            w.instant(
                e.kind.name(),
                tid,
                e.ts_us,
                &format!("\"switches\":{}", e.a),
            );
        }
        EventKind::CheckpointEnd => {
            w.complete(
                e.kind.name(),
                tid,
                e.ts_us,
                e.b.max(1),
                &format!("\"tables\":{}", e.a),
            );
        }
    }
}

/// Export everything recorded so far as Chrome `trace_event` JSON. Ring
/// lanes are drained (a second export carries only newer events); spans
/// and RDE decisions are snapshotted.
pub fn chrome_trace_json() -> String {
    let mut w = TraceWriter::new();
    w.push(
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\
         \"args\":{\"name\":\"adaptive-htap\"}}"
            .to_string(),
    );
    w.thread_name(0, "queries");

    for span in crate::spans_snapshot() {
        write_span(&mut w, &span);
    }

    let (lanes, _dropped) = crate::drain_events();
    for (lane, events) in &lanes {
        let tid = lane + 1;
        w.thread_name(tid, &crate::lane_name(*lane));
        for e in events {
            write_event(&mut w, tid, e);
        }
    }

    let rde_tid = crate::OLAP_LANES + crate::OLTP_LANES + crate::AUX_LANES + 1;
    let decisions = crate::decisions_snapshot();
    if !decisions.is_empty() {
        w.thread_name(rde_tid, "rde-scheduler");
    }
    for d in decisions {
        let name = format!("rde-{}", d.action);
        let args = format!(
            "\"query\":\"{}\",\"freshness\":{},\"pending_delta_rows\":{},\
             \"active_oltp_workers\":{},\"state\":\"{}\",\"oltp_cores\":{},\
             \"olap_cores\":{},\"modeled_time_s\":{}",
            esc(&d.query),
            num(d.freshness),
            d.pending_delta_rows,
            d.active_oltp_workers,
            esc(&d.state),
            d.oltp_cores,
            d.olap_cores,
            num(d.modeled_time_s),
        );
        w.instant(&name, rde_tid, d.ts_us, &args);
    }

    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::pack_phases;

    /// Minimal JSON well-formedness checker: values, objects, arrays,
    /// strings with escapes, numbers, bools, null. Returns the remaining
    /// input on success.
    fn skip_ws(s: &[u8], mut i: usize) -> usize {
        while i < s.len() && (s[i] as char).is_ascii_whitespace() {
            i += 1;
        }
        i
    }

    fn parse_value(s: &[u8], i: usize) -> Result<usize, String> {
        let i = skip_ws(s, i);
        match s.get(i) {
            Some(b'{') => {
                let mut i = skip_ws(s, i + 1);
                if s.get(i) == Some(&b'}') {
                    return Ok(i + 1);
                }
                loop {
                    i = parse_string(s, skip_ws(s, i))?;
                    i = skip_ws(s, i);
                    if s.get(i) != Some(&b':') {
                        return Err(format!("expected ':' at {i}"));
                    }
                    i = parse_value(s, i + 1)?;
                    i = skip_ws(s, i);
                    match s.get(i) {
                        Some(b',') => i += 1,
                        Some(b'}') => return Ok(i + 1),
                        other => return Err(format!("expected ',' or '}}' at {i}: {other:?}")),
                    }
                }
            }
            Some(b'[') => {
                let mut i = skip_ws(s, i + 1);
                if s.get(i) == Some(&b']') {
                    return Ok(i + 1);
                }
                loop {
                    i = parse_value(s, i)?;
                    i = skip_ws(s, i);
                    match s.get(i) {
                        Some(b',') => i += 1,
                        Some(b']') => return Ok(i + 1),
                        other => return Err(format!("expected ',' or ']' at {i}: {other:?}")),
                    }
                }
            }
            Some(b'"') => parse_string(s, i),
            Some(c) if c.is_ascii_digit() || *c == b'-' => {
                let mut i = i + 1;
                while i < s.len()
                    && (s[i].is_ascii_digit() || matches!(s[i], b'.' | b'e' | b'E' | b'+' | b'-'))
                {
                    i += 1;
                }
                Ok(i)
            }
            Some(b't') => expect(s, i, b"true"),
            Some(b'f') => expect(s, i, b"false"),
            Some(b'n') => expect(s, i, b"null"),
            other => Err(format!("unexpected {other:?} at {i}")),
        }
    }

    fn expect(s: &[u8], i: usize, word: &[u8]) -> Result<usize, String> {
        if s.len() >= i + word.len() && &s[i..i + word.len()] == word {
            Ok(i + word.len())
        } else {
            Err(format!("bad literal at {i}"))
        }
    }

    fn parse_string(s: &[u8], i: usize) -> Result<usize, String> {
        if s.get(i) != Some(&b'"') {
            return Err(format!("expected '\"' at {i}"));
        }
        let mut i = i + 1;
        while let Some(&c) = s.get(i) {
            match c {
                b'"' => return Ok(i + 1),
                b'\\' => i += 2,
                _ => i += 1,
            }
        }
        Err("unterminated string".to_string())
    }

    fn assert_valid_json(text: &str) {
        let bytes = text.as_bytes();
        let end = parse_value(bytes, 0).unwrap_or_else(|e| panic!("invalid JSON: {e}"));
        assert_eq!(skip_ws(bytes, end), bytes.len(), "trailing garbage");
    }

    #[test]
    fn escaping_handles_quotes_and_control_bytes() {
        assert_eq!(esc("a\"b\\c\nd\te\u{1}"), "a\\\"b\\\\c\\nd\\te\\u0001");
        assert_eq!(num(f64::NAN), "0");
        assert_eq!(num(1.5), "1.5");
    }

    #[test]
    fn export_is_valid_json_and_carries_all_sources() {
        let _g = crate::test_lock();
        crate::set_enabled(true);
        // A span tree with hostile characters in the detail.
        {
            let g = crate::span("query");
            g.detail("SELECT \"x\"\n\t\\");
            g.arg("freshness", 0.25);
            let _child = crate::span("query.execute");
        }
        // Ring events of every kind.
        crate::record_olap(
            0,
            EventKind::Morsel,
            crate::now_us(),
            crate::pack_morsel(7, 3),
            12,
        );
        crate::record_thread(EventKind::PipelineBuild, crate::now_us(), 4, 100);
        crate::record_thread(EventKind::PipelineProbe, crate::now_us(), 8, 200);
        crate::record_thread(EventKind::PipelineMerge, crate::now_us(), 8, 5);
        crate::record_thread(EventKind::WalFsyncBatch, crate::now_us(), 6, 800);
        crate::record_thread(
            EventKind::TxnCommit,
            crate::now_us(),
            3,
            pack_phases(10, 500, 20),
        );
        crate::record_thread(EventKind::TxnAbort, crate::now_us(), 2, 0);
        crate::record_thread(EventKind::TxnRetry, crate::now_us(), 2, 1);
        crate::record_thread(EventKind::CheckpointBegin, crate::now_us(), 5, 0);
        crate::record_thread(EventKind::CheckpointEnd, crate::now_us(), 9, 3000);
        // One decision.
        crate::record_decision(crate::DecisionInputs {
            query: "Q1".into(),
            freshness: 0.5,
            pending_delta_rows: 123,
            active_oltp_workers: 4,
            state: "S3-NI".into(),
            oltp_cores: 12,
            olap_cores: 4,
            modeled_time_s: 0.05,
        });

        let json = chrome_trace_json();
        assert_valid_json(&json);
        for needle in [
            "\"traceEvents\"",
            "\"morsel\"",
            "\"pipeline-build\"",
            "\"wal-fsync-batch\"",
            "\"txn-commit\"",
            "\"commit.wal-wait\"",
            "\"checkpoint-end\"",
            "\"query\"",
            "rde-",
            "\"pending_delta_rows\":123",
            "olap-worker-0",
        ] {
            assert!(json.contains(needle), "export lacks {needle}: {json}");
        }
    }
}
