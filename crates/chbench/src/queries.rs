//! The analytical queries of the paper's evaluation: CH-Q1, CH-Q6 and CH-Q19
//! (§5.3), expressed as plans of the OLAP engine.
//!
//! Following the paper: date conditions use 100 % selectivity (the worst case
//! for join and group-by operators), and the `LIKE` condition of Q19 is
//! removed because the engine does not support it.

use htap_olap::{AggExpr, CmpOp, Predicate, QueryPlan, ScalarExpr};

/// Identifier of a CH-benCHmark analytical query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueryId {
    /// CH-Q1: scan–filter–group-by over `orderline`.
    Q1,
    /// CH-Q6: scan–filter–reduce over `orderline`.
    Q6,
    /// CH-Q19: `orderline` ⋈ `item` with aggregation.
    Q19,
}

impl QueryId {
    /// Build the plan for this query.
    pub fn plan(self) -> QueryPlan {
        match self {
            QueryId::Q1 => ch_q1(),
            QueryId::Q6 => ch_q6(),
            QueryId::Q19 => ch_q19(),
        }
    }

    /// Short label ("Q1", "Q6", "Q19").
    pub fn label(self) -> &'static str {
        match self {
            QueryId::Q1 => "Q1",
            QueryId::Q6 => "Q6",
            QueryId::Q19 => "Q19",
        }
    }
}

/// CH-Q1 — pricing summary report: group order lines by `ol_number` and
/// report quantity/amount sums, averages and counts. Scan-filter-group-by;
/// the grouping and aggregation stress CPU caches (§5.3).
pub fn ch_q1() -> QueryPlan {
    QueryPlan::GroupByAggregate {
        table: "orderline".into(),
        // ol_delivery_d > some date: 100% selectivity per the paper's setup.
        filters: vec![Predicate::new("ol_delivery_d", CmpOp::Ge, 0.0)],
        group_by: vec!["ol_number".into()],
        aggregates: vec![
            AggExpr::Sum(ScalarExpr::col("ol_quantity")),
            AggExpr::Sum(ScalarExpr::col("ol_amount")),
            AggExpr::Avg(ScalarExpr::col("ol_quantity")),
            AggExpr::Avg(ScalarExpr::col("ol_amount")),
            AggExpr::Count,
        ],
    }
}

/// CH-Q6 — revenue forecast: a single filtered aggregate over `orderline`.
/// Memory-bandwidth bound (§5.3).
pub fn ch_q6() -> QueryPlan {
    QueryPlan::Aggregate {
        table: "orderline".into(),
        filters: vec![
            // ol_delivery_d between dates: 100% selectivity.
            Predicate::new("ol_delivery_d", CmpOp::Ge, 0.0),
            // ol_quantity between 1 and 100000 (CH-benCHmark text).
            Predicate::new("ol_quantity", CmpOp::Ge, 1.0),
        ],
        aggregates: vec![AggExpr::Sum(
            ScalarExpr::col("ol_amount") * ScalarExpr::col("ol_quantity"),
        )],
    }
}

/// CH-Q19 — discounted revenue: join `orderline` with `item` and aggregate
/// the revenue of matching lines. Broadcast hash join dominated by random
/// probes (§5.3); the `LIKE` condition is removed as in the paper.
pub fn ch_q19() -> QueryPlan {
    QueryPlan::JoinAggregate {
        fact: "orderline".into(),
        dim: "item".into(),
        fact_key: "ol_i_id".into(),
        dim_key: "i_id".into(),
        fact_filters: vec![
            Predicate::new("ol_quantity", CmpOp::Ge, 1.0),
            Predicate::new("ol_quantity", CmpOp::Le, 10.0),
        ],
        dim_filters: vec![Predicate::new("i_price", CmpOp::Ge, 1.0)],
        aggregates: vec![AggExpr::Sum(ScalarExpr::col("ol_amount"))],
    }
}

/// The query mix the paper uses for the adaptive experiment (Figure 5): Q1,
/// Q6 and Q19 executed one after the other per sequence.
pub fn query_mix() -> Vec<QueryId> {
    vec![QueryId::Q1, QueryId::Q6, QueryId::Q19]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn q1_is_a_group_by_over_orderline() {
        let plan = ch_q1();
        assert_eq!(plan.label(), "group-by");
        assert_eq!(plan.tables(), vec!["orderline"]);
        let cols = &plan.accessed_columns()["orderline"];
        for c in ["ol_delivery_d", "ol_number", "ol_quantity", "ol_amount"] {
            assert!(cols.contains(&c.to_string()));
        }
    }

    #[test]
    fn q6_is_a_scan_reduce_over_orderline() {
        let plan = ch_q6();
        assert_eq!(plan.label(), "aggregate");
        let cols = &plan.accessed_columns()["orderline"];
        assert!(cols.contains(&"ol_amount".to_string()));
        assert!(cols.contains(&"ol_quantity".to_string()));
    }

    #[test]
    fn q19_joins_orderline_with_item() {
        let plan = ch_q19();
        assert_eq!(plan.label(), "join");
        assert_eq!(plan.tables(), vec!["orderline", "item"]);
        let cols = plan.accessed_columns();
        assert!(cols["item"].contains(&"i_price".to_string()));
        assert!(cols["orderline"].contains(&"ol_i_id".to_string()));
    }

    #[test]
    fn mix_matches_paper_order() {
        let mix = query_mix();
        assert_eq!(mix.len(), 3);
        assert_eq!(mix[0].label(), "Q1");
        assert_eq!(mix[1].label(), "Q6");
        assert_eq!(mix[2].label(), "Q19");
        for q in mix {
            // Every query's plan builds without panicking.
            let _ = q.plan();
        }
    }
}
