//! The `lint:allow` suppression syntax.
//!
//! A diagnostic on line *N* is suppressed by a comment on line *N* or *N-1*
//! of the form:
//!
//! ```text
//! // lint:allow(<rule>): <justification>
//! ```
//!
//! `<rule>` is a rule name (`no-panic`) or its short id (`L3`), matched
//! case-insensitively. The justification is mandatory: an allow without one
//! is itself a diagnostic (`unjustified-allow`), and an allow that suppresses
//! nothing is one too (`unused-allow`) — the allow-list must stay an honest
//! inventory of *current*, *argued* exceptions, not sediment.

use crate::lexer::Token;
use crate::rules::Rule;

/// One parsed `lint:allow` entry.
#[derive(Debug)]
pub struct Allow {
    /// The rule this entry suppresses, if the name parsed.
    pub rule: Option<Rule>,
    /// The raw rule name as written.
    pub rule_text: String,
    /// 1-based line of the comment.
    pub line: u32,
    /// Justification text after `):`. Empty means unjustified.
    pub justification: String,
    /// Set when a diagnostic was actually suppressed by this entry.
    pub used: std::cell::Cell<bool>,
}

/// Scan comment tokens for `lint:allow(...)` entries.
///
/// Doc comments (`///`, `//!`, `/**`, `/*!`) are excluded: they *describe*
/// the syntax (as this one does) without invoking it. An entry must start
/// its comment line — `lint:allow` mentioned mid-sentence is prose.
pub fn collect(tokens: &[Token]) -> Vec<Allow> {
    let mut allows = Vec::new();
    for tok in tokens.iter().filter(|t| t.is_comment()) {
        let text = tok.text.as_str();
        if ["///", "//!", "/**", "/*!"]
            .iter()
            .any(|doc| text.starts_with(doc))
        {
            continue;
        }
        // A block comment can carry one entry per line.
        for (offset, line_text) in text.lines().enumerate() {
            let body = line_text
                .trim_start()
                .trim_start_matches(['/', '*'])
                .trim_start();
            let Some(after) = body.strip_prefix("lint:allow(") else {
                continue;
            };
            let Some(close) = after.find(')') else {
                continue;
            };
            let rule_text = after[..close].trim().to_string();
            let justification = after[close + 1..]
                .strip_prefix(':')
                .map(|j| j.trim().trim_end_matches("*/").trim().to_string())
                .unwrap_or_default();
            allows.push(Allow {
                rule: Rule::parse(&rule_text),
                rule_text,
                line: tok.line + offset as u32,
                justification,
                used: std::cell::Cell::new(false),
            });
        }
    }
    allows
}

/// Find an allow entry covering `rule` at `line` (same line or the line
/// above) and mark it used.
pub fn suppressed(allows: &[Allow], rule: Rule, line: u32) -> bool {
    for allow in allows {
        if allow.rule == Some(rule) && (allow.line == line || allow.line + 1 == line) {
            allow.used.set(true);
            return true;
        }
    }
    false
}
