//! Figure 1 — HTAP with ETL and CoW (the motivation experiment).
//!
//! Sixteen aggregate queries (CH-Q6) are executed per configuration; the
//! snapshotting frequency varies from one snapshot per query to one snapshot
//! per sixteen queries. The ETL baseline transfers the fresh delta before the
//! queries of each snapshot; the CoW baseline snapshots instantly but pays
//! page copies for every page the concurrent NewOrder stream dirties.
//!
//! `cargo run --release -p htap-bench --bin fig1_etl_vs_cow -- --scale 0.02`

use htap_baselines::{BaselinePoint, CowBaseline, EtlBaseline};
use htap_bench::{fmt_mtps, fmt_secs, Harness, HarnessArgs};
use htap_chbench::ch_q6;
use htap_core::ExperimentTable;

const TOTAL_QUERIES: usize = 16;
const TXNS_PER_WINDOW: u64 = 400;

fn run_etl(harness: &Harness, queries_per_snapshot: usize, seed: u64) -> Vec<BaselinePoint> {
    let plan = ch_q6();
    // Settle the initial bulk load into the analytical store so the measured
    // windows reflect steady-state delta transfers, as in the paper.
    EtlBaseline.run_snapshot(&harness.rde, &plan, 1);
    let snapshots = TOTAL_QUERIES / queries_per_snapshot;
    (0..snapshots)
        .map(|i| {
            harness.ingest(TXNS_PER_WINDOW / snapshots as u64, 4, seed + i as u64);
            EtlBaseline.run_snapshot(&harness.rde, &plan, queries_per_snapshot)
        })
        .collect()
}

fn run_cow(harness: &Harness, queries_per_snapshot: usize, seed: u64) -> Vec<BaselinePoint> {
    let plan = ch_q6();
    let cow = CowBaseline::default();
    // Settle the initial bulk load so page-copy counting starts from a clean
    // snapshot window.
    cow.run_snapshot(&harness.rde, &plan, 1, 1);
    let snapshots = TOTAL_QUERIES / queries_per_snapshot;
    (0..snapshots)
        .map(|i| {
            let txns = harness.ingest(TXNS_PER_WINDOW / snapshots as u64, 4, seed + 100 + i as u64);
            cow.run_snapshot(&harness.rde, &plan, queries_per_snapshot, txns)
        })
        .collect()
}

fn summarise(points: &[BaselinePoint]) -> (f64, f64, f64, f64, u64) {
    let exec: f64 = points.iter().map(|p| p.query_exec_time).sum();
    let transfer: f64 = points.iter().map(|p| p.data_transfer_time).sum();
    let tps: f64 = points.iter().map(|p| p.oltp_tps).sum::<f64>() / points.len() as f64;
    let avg_query = (exec + transfer) / TOTAL_QUERIES as f64;
    let pages: u64 = points.iter().map(|p| p.pages_copied).sum();
    (avg_query, exec, transfer, tps, pages)
}

fn main() {
    let args = HarnessArgs::parse();
    println!(
        "Figure 1: ETL vs CoW, {TOTAL_QUERIES} CH-Q6 queries per configuration, scale factor {}",
        args.scale
    );

    let mut table = ExperimentTable::new(
        "Figure 1 — avg query time (exec+transfer) and OLTP throughput vs queries per snapshot",
        &[
            "queries_per_snapshot",
            "etl_avg_query_s",
            "etl_exec_s",
            "etl_transfer_s",
            "etl_oltp_mtps",
            "cow_avg_query_s",
            "cow_exec_s",
            "cow_oltp_mtps",
            "cow_pages_copied",
        ],
    );

    for (i, qps) in [1usize, 2, 4, 8, 16].into_iter().enumerate() {
        // Separate, identically populated stacks for each baseline so neither
        // inherits the other's propagation state.
        let etl_harness = Harness::four_socket(&args);
        let cow_harness = Harness::four_socket(&args);
        let etl_points = run_etl(&etl_harness, qps, i as u64 * 1000);
        let cow_points = run_cow(&cow_harness, qps, i as u64 * 1000);
        let (etl_avg, etl_exec, etl_transfer, etl_tps, _) = summarise(&etl_points);
        let (cow_avg, cow_exec, _, cow_tps, cow_pages) = summarise(&cow_points);
        table.push_row(vec![
            qps.to_string(),
            fmt_secs(etl_avg),
            fmt_secs(etl_exec),
            fmt_secs(etl_transfer),
            fmt_mtps(etl_tps),
            fmt_secs(cow_avg),
            fmt_secs(cow_exec),
            fmt_mtps(cow_tps),
            cow_pages.to_string(),
        ]);
    }

    if args.csv {
        print!("{}", table.to_csv());
    } else {
        print!("{}", table.render());
    }
    println!();
    println!(
        "Expected shape (paper): ETL pays a transfer that amortises as queries-per-snapshot grow;\n\
         CoW has no transfer but its OLTP throughput stays below ETL's and recovers as snapshots\n\
         become less frequent."
    );
}
