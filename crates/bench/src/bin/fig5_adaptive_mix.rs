//! Figure 5 — adaptive HTAP scheduling versus the static schedules.
//!
//! The widened {Q1, Q3, Q4, Q6, Q12, Q14, Q19} mix (or, with `--paper-mix`,
//! the paper's original {Q1, Q6, Q19}) runs for `--sequences` sequences (the
//! paper uses 100) while transactions keep arriving, under six schedules:
//! static S1, S2, S3-IS, S3-NI and the adaptive variants Adaptive-S3-IS and
//! Adaptive-S3-NI (α = 0.5). Figure 5(a) plots the per-sequence execution
//! time; Figure 5(b) the corresponding OLTP throughput.
//!
//! `cargo run --release -p htap-bench --bin fig5_adaptive_mix -- --sequences 100`
//!
//! With `--concurrent`, OLTP ingest (the NewOrder/Payment/Delivery/StockLevel
//! mix) runs *continuously* on the OLTP-granted cores while each sequence
//! executes: freshness is measured per query against the live delta stream
//! and the Figure 5(b) throughput comes from real commit counters sampled
//! around each query. `--smoke` bounds the run to a few seconds for CI.

use htap_bench::HarnessArgs;
use htap_core::{
    run_mixed_workload, run_mixed_workload_concurrent, ConcurrentOptions, ExperimentTable,
    HtapConfig, HtapSystem, MixedWorkload, Schedule,
};

const TXNS_PER_WORKER_BETWEEN: u64 = 150;

/// Per-schedule results: sequence times, sequence MTPS, ETL count, aborted
/// transactions, and the query legend (label → SQL) taken from the executed
/// reports themselves, so the printed mix is exactly what ran.
type ScheduleRun = (Vec<f64>, Vec<f64>, usize, u64, Vec<(String, String)>);

fn run_schedule(args: &HarnessArgs, schedule: Schedule) -> ScheduleRun {
    let config = HtapConfig::small()
        .with_chbench(args.chbench())
        .with_schedule(schedule);
    let system = HtapSystem::build(config).expect("system builds");
    let workload = if args.paper_mix {
        MixedWorkload::figure5(args.sequences, TXNS_PER_WORKER_BETWEEN)
    } else {
        MixedWorkload::figure5_wide(args.sequences, TXNS_PER_WORKER_BETWEEN)
    };
    let report = if args.concurrent {
        let options = if args.smoke {
            ConcurrentOptions::smoke()
        } else {
            ConcurrentOptions::default()
        };
        run_mixed_workload_concurrent(&system, &workload, &options)
    } else {
        run_mixed_workload(&system, &workload)
    }
    .expect("CH workload matches the CH schema");
    let legend: Vec<(String, String)> = report
        .sequences
        .first()
        .map(|seq| {
            seq.queries
                .iter()
                .map(|q| {
                    (
                        q.query.clone(),
                        q.sql.clone().unwrap_or_else(|| "<hand-built plan>".into()),
                    )
                })
                .collect()
        })
        .unwrap_or_default();
    (
        report.sequence_times(),
        report.sequence_mtps(),
        report.etl_count(),
        report.transactions_aborted,
        legend,
    )
}

fn main() {
    let mut args = HarnessArgs::parse();
    if args.smoke {
        // CI-bounded: tiny population, two sequences per schedule.
        args.scale = args.scale.min(0.002);
        args.sequences = args.sequences.min(2);
    }
    println!(
        "Figure 5: adaptive vs static schedules, {} sequences of the {} mix, alpha=0.5{}",
        args.sequences,
        if args.paper_mix {
            "{Q1, Q6, Q19}"
        } else {
            "{Q1, Q3, Q4, Q6, Q12, Q14, Q19}"
        },
        if args.concurrent {
            " [concurrent ingest]"
        } else {
            ""
        }
    );

    let schedules = Schedule::figure5_set(0.5);
    let print_legend = |legend: &[(String, String)]| {
        println!();
        println!("query mix (from the executed reports):");
        for (label, sql) in legend {
            println!("  {label:<4} {sql}");
        }
        println!();
    };
    let mut times: Vec<(String, Vec<f64>)> = Vec::new();
    let mut mtps: Vec<(String, Vec<f64>)> = Vec::new();
    let mut etls: Vec<(String, usize)> = Vec::new();
    let mut legend: Vec<(String, String)> = Vec::new();
    for (label, schedule) in &schedules {
        let (t, m, e, aborted, l) = run_schedule(&args, *schedule);
        if legend.is_empty() {
            legend = l;
        }
        println!(
            "  {label:<15} total={:.4}s mean_oltp={:.3} MTPS etls={e} aborted={aborted}",
            t.iter().sum::<f64>(),
            m.iter().sum::<f64>() / m.len().max(1) as f64
        );
        times.push((label.clone(), t));
        mtps.push((label.clone(), m));
        etls.push((label.clone(), e));
    }

    print_legend(&legend);

    // Figure 5(a): sequence execution time per schedule.
    let mut header: Vec<&str> = vec!["sequence"];
    header.extend(times.iter().map(|(l, _)| l.as_str()));
    let mut fig5a = ExperimentTable::new("Figure 5(a) — OLAP sequence execution time (s)", &header);
    for i in 0..args.sequences {
        let mut row = vec![i.to_string()];
        row.extend(times.iter().map(|(_, t)| format!("{:.6}", t[i])));
        fig5a.push_row(row);
    }

    // Figure 5(b): OLTP throughput per schedule.
    let mut fig5b = ExperimentTable::new("Figure 5(b) — OLTP throughput (MTPS)", &header);
    for i in 0..args.sequences {
        let mut row = vec![i.to_string()];
        row.extend(mtps.iter().map(|(_, m)| format!("{:.3}", m[i])));
        fig5b.push_row(row);
    }

    if args.csv {
        print!("{}", fig5a.to_csv());
        println!();
        print!("{}", fig5b.to_csv());
    } else {
        print!("{}", fig5a.render());
        println!();
        print!("{}", fig5b.render());
    }

    // Summary: cumulative gap between adaptive and static counterparts.
    println!();
    let total = |label: &str| -> f64 {
        times
            .iter()
            .find(|(l, _)| l == label)
            .map(|(_, t)| t.iter().sum())
            .unwrap_or(0.0)
    };
    let gap = |a: &str, b: &str| -> f64 {
        let (ta, tb) = (total(a), total(b));
        if tb == 0.0 {
            0.0
        } else {
            (tb - ta) / tb * 100.0
        }
    };
    println!(
        "cumulative gain of Adaptive-S3-IS over S3-IS: {:.1}%",
        gap("Adaptive-S3-IS", "S3-IS")
    );
    println!(
        "cumulative gain of Adaptive-S3-NI over S3-NI: {:.1}%",
        gap("Adaptive-S3-NI", "S3-NI")
    );
    println!(
        "cumulative gain of Adaptive-S3-NI over S3-IS: {:.1}%",
        gap("Adaptive-S3-NI", "S3-IS")
    );
    for (label, e) in etls {
        println!("ETLs performed by {label}: {e}");
    }
    println!();
    println!(
        "Expected shape (paper): S2 is the slowest per-query schedule early on; the hybrid states\n\
         grow slower over time as fresh data accumulates; each adaptive schedule tracks its static\n\
         counterpart, pays for a bounded number of ETLs, and the gap widens with the sequence\n\
         count (up to ~50% across states at 100 sequences). OLTP throughput recovers after every\n\
         ETL and is lowest for the core-borrowing schedules."
    );

    // --trace: export everything the run recorded (spans, per-worker events,
    // RDE decisions) as Chrome trace_event JSON for chrome://tracing.
    if let Some(path) = &args.trace {
        let json = htap_obs::chrome::chrome_trace_json();
        std::fs::write(path, &json).expect("trace file is writable");
        let totals = htap_obs::obs().event_totals();
        let decisions = htap_obs::decisions_snapshot();
        println!();
        println!(
            "trace: wrote {} ({} bytes, {} ring events recorded / {} dropped, \
             {} spans, {} RDE decisions)",
            path,
            json.len(),
            totals.recorded,
            totals.dropped,
            htap_obs::spans_snapshot().len(),
            decisions.len()
        );
        let snapshot = htap_obs::metrics_snapshot();
        for (name, value) in &snapshot.counters {
            println!("  counter {name} = {value}");
        }
        for (name, summary) in &snapshot.histograms {
            println!(
                "  histogram {name}: n={} p50={} p99={} max={}",
                summary.count, summary.p50, summary.p99, summary.max
            );
        }
    }
}
