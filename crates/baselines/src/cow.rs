//! The copy-on-write baseline (unified storage, Figure 1 "CoW").
//!
//! The analytical side gets an instant snapshot of the transactional storage
//! (the paper's HyPer-fork / Caldera class). While a snapshot is live, the
//! first write to a page forces the transactional engine to copy that page,
//! so transactional throughput degrades with the number of pages dirtied per
//! snapshot window — and the more snapshots are taken (small query batches),
//! the more copies are paid. Analytical queries read the unified storage on
//! the transactional engine's socket, so they also contend for its memory
//! bandwidth.

use crate::BaselinePoint;
use htap_olap::QueryPlan;
use htap_rde::{AccessMethod, RdeEngine};
use std::collections::BTreeSet;

/// The copy-on-write baseline.
#[derive(Debug, Clone, Copy)]
pub struct CowBaseline {
    /// Copy-on-write page size in bytes (the paper's RDE uses 2 MB huge
    /// pages; OS-level CoW typically works at 4 KB–2 MB granularity).
    pub page_bytes: u64,
}

impl Default for CowBaseline {
    fn default() -> Self {
        CowBaseline {
            page_bytes: 2 * 1024 * 1024,
        }
    }
}

impl CowBaseline {
    /// Number of pages the transactional engine dirtied since the previous
    /// snapshot, i.e. the pages a live snapshot forces it to copy.
    /// Computed from the per-relation delta (updated rows + inserted range).
    pub fn dirty_pages(&self, rde: &RdeEngine) -> u64 {
        let mut pages = 0u64;
        for twin in rde.oltp().store().tables() {
            let row_bytes = twin.schema().row_width_bytes().max(1);
            let rows_per_page = (self.page_bytes / row_bytes).max(1);
            let (updated, inserted) = twin.olap_delta();
            let mut dirty: BTreeSet<u64> = updated.iter().map(|r| r / rows_per_page).collect();
            let mut row = inserted.start;
            while row < inserted.end {
                dirty.insert(row / rows_per_page);
                row = (row / rows_per_page + 1) * rows_per_page;
            }
            pages += dirty.len() as u64;
        }
        pages
    }

    /// Take an instant snapshot and execute `queries_per_snapshot` copies of
    /// `plan` over it, with `txns_in_window` transactions having run since the
    /// previous snapshot (they determine the page-copy cost).
    pub fn run_snapshot(
        &self,
        rde: &RdeEngine,
        plan: &QueryPlan,
        queries_per_snapshot: usize,
        txns_in_window: u64,
    ) -> BaselinePoint {
        // Pages the live snapshot will force the OLTP engine to copy.
        let pages_copied = self.dirty_pages(rde);
        // The snapshot is instant (fork): no transfer, but the window resets.
        rde.switch_and_sync();
        for twin in rde.oltp().store().tables() {
            twin.mark_olap_synced();
        }

        // Queries read the unified storage on the OLTP socket.
        let tables: Vec<&str> = plan.tables();
        let sources = rde.sources_for(&tables, AccessMethod::OltpSnapshot);
        let txn = rde.txn_work();
        let mut query_exec_time = 0.0;
        let mut bytes_per_socket = std::collections::BTreeMap::new();
        for _ in 0..queries_per_snapshot {
            let exec = rde
                .olap()
                .run_query(plan, &sources, Some(&txn))
                .expect("baseline plans always match their snapshot sources");
            query_exec_time += exec.modeled.total;
            for (&socket, &bytes) in &exec.output.work.bytes_per_socket {
                *bytes_per_socket.entry(socket).or_insert(0) += bytes;
            }
        }

        // OLTP throughput: bandwidth/cache interference from the scans plus
        // the page-copy tax of the copy-on-write mechanism.
        let interfered = rde.modeled_oltp_throughput(&rde.olap_traffic_for(&bytes_per_socket));
        let workers = rde.txn_work().total_workers().max(1) as f64;
        let per_worker = interfered / workers;
        let copies_per_txn = if txns_in_window == 0 {
            0.0
        } else {
            pages_copied as f64 / txns_in_window as f64
        };
        let copy_time = rde.cost_model().cow_page_copy_time(self.page_bytes);
        let per_worker_with_cow = if per_worker > 0.0 {
            1.0 / (1.0 / per_worker + copies_per_txn * copy_time)
        } else {
            0.0
        };
        let oltp_tps = per_worker_with_cow * workers;

        BaselinePoint {
            label: "CoW".into(),
            queries_per_snapshot,
            query_exec_time,
            data_transfer_time: 0.0,
            oltp_tps,
            pages_copied,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use htap_chbench::{ch_q6, ChConfig, ChGenerator, TransactionDriver};
    use htap_rde::RdeConfig;

    fn populated_rde() -> (RdeEngine, TransactionDriver) {
        let rde = RdeEngine::bootstrap(RdeConfig::default());
        let config = ChConfig::tiny();
        ChGenerator::new(config.clone()).build(&rde).unwrap();
        (rde, TransactionDriver::for_config(&config))
    }

    #[test]
    fn snapshots_have_no_transfer_cost_but_tax_the_oltp_engine() {
        let (rde, driver) = populated_rde();
        let cow = CowBaseline::default();
        // Settle the initial load into a first snapshot.
        cow.run_snapshot(&rde, &ch_q6(), 1, 1);
        // Dirty some pages with transactions.
        let txns = driver.run_new_orders(rde.oltp(), 0, 30, 11);
        rde.switch_and_sync();
        let point = cow.run_snapshot(&rde, &ch_q6(), 4, txns);
        assert_eq!(point.label, "CoW");
        assert_eq!(point.data_transfer_time, 0.0);
        assert!(
            point.pages_copied > 0,
            "transactions must have dirtied pages"
        );
        assert!(point.query_exec_time > 0.0);
        // Paying page copies keeps throughput below the isolated baseline.
        assert!(point.oltp_tps < rde.modeled_oltp_throughput_idle());
    }

    #[test]
    fn smaller_pages_mean_more_copies_but_each_is_cheaper() {
        let (rde, driver) = populated_rde();
        let small = CowBaseline {
            page_bytes: 4 * 1024,
        };
        let large = CowBaseline {
            page_bytes: 2 * 1024 * 1024,
        };
        driver.run_new_orders(rde.oltp(), 0, 30, 5);
        rde.switch_and_sync();
        let pages_small = small.dirty_pages(&rde);
        let pages_large = large.dirty_pages(&rde);
        assert!(pages_small >= pages_large, "{pages_small} vs {pages_large}");
    }

    #[test]
    fn fewer_snapshots_preserve_more_oltp_throughput() {
        // Figure 1's CoW trend: one snapshot per 16 queries beats one snapshot
        // per query, because the page-copy tax is paid less often.
        let (rde, driver) = populated_rde();
        let cow = CowBaseline::default();
        cow.run_snapshot(&rde, &ch_q6(), 1, 1);

        // Frequent snapshots: one per query, each after a small txn window.
        let mut frequent_tps = Vec::new();
        for round in 0..4 {
            let txns = driver.run_new_orders(rde.oltp(), 0, 10, 100 + round);
            let p = cow.run_snapshot(&rde, &ch_q6(), 1, txns);
            frequent_tps.push(p.oltp_tps);
        }
        // Rare snapshots: the same amount of transactional work, one snapshot.
        let txns = driver.run_new_orders(rde.oltp(), 0, 40, 200);
        let rare = cow.run_snapshot(&rde, &ch_q6(), 4, txns);

        let frequent_avg: f64 = frequent_tps.iter().sum::<f64>() / frequent_tps.len() as f64;
        assert!(
            rare.oltp_tps >= frequent_avg * 0.99,
            "rare snapshots should not pay more page copies per transaction: rare={} frequent={}",
            rare.oltp_tps,
            frequent_avg
        );
    }
}
