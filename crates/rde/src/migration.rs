//! State migration — Algorithm 1 of the paper.
//!
//! Each migration distributes CPUs (socket- or core-granular), switches the
//! active OLTP instance so the OLAP engine gets a fresh snapshot, performs an
//! ETL when the target state requires it, and records the access method the
//! OLAP engine must use for subsequent queries. The scheduler only *selects*
//! the state; enforcement happens here.

use crate::engine::{AccessMethod, EtlReport, RdeEngine, SwitchReport};
use crate::state::SystemState;
use htap_sim::SocketId;

/// Outcome of a state migration.
#[derive(Debug, Clone, PartialEq)]
pub struct MigrationReport {
    /// The state the system migrated to.
    pub state: SystemState,
    /// The access method the OLAP engine uses in this state.
    pub access: AccessMethod,
    /// Instance switch + synchronisation outcome.
    pub switch: SwitchReport,
    /// ETL outcome (only for states that perform one).
    pub etl: Option<EtlReport>,
    /// OLTP cores after the migration.
    pub oltp_cores: usize,
    /// OLAP cores after the migration.
    pub olap_cores: usize,
    /// Modelled time of the whole migration (switch + ETL).
    pub modeled_time: f64,
}

impl RdeEngine {
    /// `MigrateStateS1`: co-locate the engines. On every socket the OLTP
    /// engine keeps its configured minimum number of CPUs and the OLAP engine
    /// receives the rest; the OLAP engine then reads the freshly switched
    /// (now inactive) OLTP instance directly.
    pub fn migrate_state_s1(&self) -> MigrationReport {
        let min = self.config().oltp_min_cores_per_socket;
        let per_socket: Vec<(SocketId, usize)> = self
            .config()
            .topology
            .socket_ids()
            .into_iter()
            .map(|s| (s, min))
            .collect();
        self.set_oltp_cores_per_socket(&per_socket);
        let switch = self.switch_and_sync();
        self.set_current_state(SystemState::S1Colocated);
        self.finish_report(
            SystemState::S1Colocated,
            AccessMethod::OltpSnapshot,
            switch,
            None,
        )
    }

    /// `MigrateStateS1` with an explicit per-socket OLTP CPU distribution
    /// (used by the sensitivity sweeps of Figure 3(a)).
    pub fn migrate_state_s1_with(&self, oltp_per_socket: &[(SocketId, usize)]) -> MigrationReport {
        self.set_oltp_cores_per_socket(oltp_per_socket);
        let switch = self.switch_and_sync();
        self.set_current_state(SystemState::S1Colocated);
        self.finish_report(
            SystemState::S1Colocated,
            AccessMethod::OltpSnapshot,
            switch,
            None,
        )
    }

    /// `MigrateStateS2`: socket-level isolation plus ETL. The OLTP engine
    /// keeps its configured minimum number of sockets, the OLAP engine gets
    /// the remaining ones, the fresh delta is copied into the OLAP instance
    /// and queries run OLAP-local.
    pub fn migrate_state_s2(&self) -> MigrationReport {
        self.assign_sockets(self.config().oltp_min_sockets);
        let switch = self.switch_and_sync();
        let etl = self.etl_to_olap();
        self.set_current_state(SystemState::S2Isolated);
        self.finish_report(
            SystemState::S2Isolated,
            AccessMethod::OlapLocal,
            switch,
            Some(etl),
        )
    }

    /// `MigrateStateS3(ISOLATED)`: socket-level compute isolation; the OLAP
    /// engine reads only the fresh records it needs from the OLTP socket over
    /// the interconnect (split access), without updating its own instance.
    pub fn migrate_state_s3_isolated(&self) -> MigrationReport {
        self.assign_sockets(self.config().oltp_min_sockets);
        let switch = self.switch_and_sync();
        self.set_current_state(SystemState::S3HybridIsolated);
        self.finish_report(
            SystemState::S3HybridIsolated,
            AccessMethod::Split,
            switch,
            None,
        )
    }

    /// `MigrateStateS3(NON-ISOLATED)`: the OLAP engine borrows
    /// `elastic_cores` CPUs on the OLTP socket (bounded by the OLTP minimum)
    /// and uses split access so the borrowed cores reach fresh data at full
    /// memory bandwidth.
    pub fn migrate_state_s3_non_isolated(&self) -> MigrationReport {
        self.migrate_state_s3_non_isolated_with(self.config().elastic_cores)
    }

    /// `MigrateStateS3(NON-ISOLATED)` with an explicit number of borrowed
    /// cores (used by the sensitivity sweep of Figure 3(c)).
    pub fn migrate_state_s3_non_isolated_with(&self, borrowed: usize) -> MigrationReport {
        let topo = &self.config().topology;
        let oltp_socket = self.config().oltp_socket;
        let min = self.config().oltp_min_cores_per_socket;
        let keep = (topo.cores_per_socket as usize)
            .saturating_sub(borrowed)
            .max(min);
        // OLTP keeps `keep` cores on its own socket and nothing elsewhere; the
        // OLAP engine owns its socket plus the borrowed OLTP-socket cores.
        self.set_oltp_cores_per_socket(&[(oltp_socket, keep)]);
        let switch = self.switch_and_sync();
        self.set_current_state(SystemState::S3HybridNonIsolated);
        self.finish_report(
            SystemState::S3HybridNonIsolated,
            AccessMethod::Split,
            switch,
            None,
        )
    }

    /// Migrate to a state using the configured defaults.
    pub fn migrate(&self, state: SystemState) -> MigrationReport {
        match state {
            SystemState::S1Colocated => self.migrate_state_s1(),
            SystemState::S2Isolated => self.migrate_state_s2(),
            SystemState::S3HybridIsolated => self.migrate_state_s3_isolated(),
            SystemState::S3HybridNonIsolated => self.migrate_state_s3_non_isolated(),
        }
    }

    fn finish_report(
        &self,
        state: SystemState,
        access: AccessMethod,
        switch: SwitchReport,
        etl: Option<EtlReport>,
    ) -> MigrationReport {
        let oltp_cores = self.txn_work().total_workers();
        let olap_cores = self.olap_placement().total_cores();
        let modeled_time = switch.modeled_time + etl.map(|e| e.modeled_time).unwrap_or(0.0);
        MigrationReport {
            state,
            access,
            switch,
            etl,
            oltp_cores,
            olap_cores,
            modeled_time,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::RdeConfig;
    use htap_storage::{ColumnDef, DataType, TableSchema, Value};

    fn rde_with_data(rows: u64) -> RdeEngine {
        let rde = RdeEngine::bootstrap(RdeConfig::default());
        let schema = TableSchema::new(
            "sales",
            vec![
                ColumnDef::new("id", DataType::I64),
                ColumnDef::new("amount", DataType::F64),
            ],
            Some(0),
        );
        rde.create_table(schema).unwrap();
        for i in 0..rows {
            rde.oltp()
                .bulk_load("sales", i, vec![Value::I64(i as i64), Value::F64(i as f64)])
                .unwrap();
        }
        rde
    }

    #[test]
    fn s1_colocates_and_reads_the_oltp_snapshot() {
        let rde = rde_with_data(100);
        let report = rde.migrate(SystemState::S1Colocated);
        assert_eq!(report.state, SystemState::S1Colocated);
        assert_eq!(report.access, AccessMethod::OltpSnapshot);
        assert!(report.etl.is_none());
        // OLTP keeps the minimum (4) on each of the two sockets.
        assert_eq!(report.oltp_cores, 8);
        assert_eq!(report.olap_cores, 28 - 8);
        assert!(
            rde.olap_placement().cores_on(SocketId(0)) > 0,
            "OLAP co-located on the OLTP socket"
        );
        assert_eq!(rde.current_state(), Some(SystemState::S1Colocated));
    }

    #[test]
    fn s2_isolates_and_performs_etl() {
        let rde = rde_with_data(200);
        let report = rde.migrate(SystemState::S2Isolated);
        assert_eq!(report.access, AccessMethod::OlapLocal);
        let etl = report.etl.expect("S2 performs an ETL");
        assert_eq!(etl.copied_rows, 200);
        assert!(report.modeled_time >= etl.modeled_time);
        assert_eq!(report.oltp_cores, 14);
        assert_eq!(report.olap_cores, 14);
        // The OLAP instance can now serve the data locally.
        assert_eq!(rde.olap().store().table("sales").unwrap().rows(), 200);
        // Queries in S2 need no fresh rows from OLTP.
        let sources = rde.sources_for(&["sales"], report.access);
        assert_eq!(sources["sales"].fresh_rows(), 0);
    }

    #[test]
    fn s3_isolated_keeps_sockets_but_uses_split_access() {
        let rde = rde_with_data(150);
        // First bring OLAP up to date, then add fresh rows.
        rde.migrate(SystemState::S2Isolated);
        for i in 150..200u64 {
            rde.oltp()
                .bulk_load("sales", i, vec![Value::I64(i as i64), Value::F64(0.0)])
                .unwrap();
        }
        let report = rde.migrate(SystemState::S3HybridIsolated);
        assert_eq!(report.access, AccessMethod::Split);
        assert!(report.etl.is_none());
        assert_eq!(report.oltp_cores, 14);
        assert_eq!(report.olap_cores, 14);
        let sources = rde.sources_for(&["sales"], report.access);
        assert_eq!(sources["sales"].total_rows(), 200);
        assert_eq!(sources["sales"].fresh_rows(), 50);
    }

    #[test]
    fn s3_non_isolated_borrows_elastic_cores() {
        let rde = rde_with_data(100);
        let report = rde.migrate(SystemState::S3HybridNonIsolated);
        assert_eq!(report.access, AccessMethod::Split);
        // Default elastic_cores = 4: OLTP keeps 10, OLAP has 14 + 4.
        assert_eq!(report.oltp_cores, 10);
        assert_eq!(report.olap_cores, 18);
        assert_eq!(rde.olap_placement().cores_on(SocketId(0)), 4);

        // Borrowing more than the minimum allows is clamped.
        let report = rde.migrate_state_s3_non_isolated_with(13);
        assert_eq!(report.oltp_cores, 4, "OLTP never drops below its minimum");
    }

    #[test]
    fn sweeping_s1_cpu_distribution() {
        let rde = rde_with_data(100);
        let report = rde.migrate_state_s1_with(&[(SocketId(0), 7), (SocketId(1), 7)]);
        assert_eq!(report.oltp_cores, 14);
        assert_eq!(report.olap_cores, 14);
        assert_eq!(rde.txn_work().remote_worker_fraction(), 0.5);
        assert_eq!(rde.olap_placement().cores_on(SocketId(0)), 7);
    }

    #[test]
    fn every_state_is_reachable_via_migrate() {
        let rde = rde_with_data(50);
        for state in SystemState::all() {
            let report = rde.migrate(state);
            assert_eq!(report.state, state);
            assert_eq!(rde.current_state(), Some(state));
            assert!(report.oltp_cores > 0);
        }
    }
}
