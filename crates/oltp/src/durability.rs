//! Engine-side durability orchestration: periodic column-segment checkpoints
//! inside the switch-gate quiescence window, and replay of recovered state
//! through the normal twin-table insert/update path.
//!
//! The byte formats, group-commit WAL and fault-injection plumbing live in
//! `htap-durability`; this module owns the *coordination* with the OLTP
//! engine — when a checkpoint may run (only while the instance-switch write
//! gate is held, so no transaction is mid-commit), what it captures (every
//! registered relation, key-ordered), and how a [`RecoveredState`] is applied
//! back onto a freshly created schema.
//!
//! See `ARCHITECTURE.md` ("Durability & crash recovery").

use crate::engine::OltpEngine;
use htap_durability::{
    CheckpointData, CheckpointTable, DurabilityError, DurableStorage, RecoveredState, Wal, WalOp,
};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Default WAL file name inside the durable storage root.
pub const WAL_FILE: &str = "wal.log";
/// Default checkpoint file name inside the durable storage root.
pub const CHECKPOINT_FILE: &str = "checkpoint.bin";

/// Running counters of the checkpoint machinery.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DurabilityStats {
    /// Instance switches observed since attach.
    pub switches_seen: u64,
    /// Checkpoints successfully written (and WAL truncated).
    pub checkpoints_taken: u64,
    /// Checkpoint attempts that failed (the WAL keeps its tail; the engine
    /// keeps running — durability degrades to replay-from-older-checkpoint).
    pub checkpoint_errors: u64,
}

/// Coordinates the WAL and periodic checkpoints with the OLTP engine.
///
/// Attached to an [`OltpEngine`] via [`OltpEngine::attach_durability`]; the
/// engine calls [`DurabilityController::note_switch`] from inside
/// `switch_and_sync_instances` while the switch-gate write lock is held, so a
/// checkpoint always observes a quiesced, fully-synced store.
pub struct DurabilityController {
    storage: Arc<dyn DurableStorage>,
    wal: Wal,
    checkpoint_file: String,
    /// Take a checkpoint every N instance switches; 0 disables periodic
    /// checkpoints (explicit [`OltpEngine::checkpoint_now`] still works).
    checkpoint_interval_switches: u64,
    switches_seen: AtomicU64,
    checkpoints_taken: AtomicU64,
    checkpoint_errors: AtomicU64,
}

impl std::fmt::Debug for DurabilityController {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DurabilityController")
            .field("checkpoint_file", &self.checkpoint_file)
            .field(
                "checkpoint_interval_switches",
                &self.checkpoint_interval_switches,
            )
            .field("stats", &self.stats())
            .finish()
    }
}

impl DurabilityController {
    /// Wrap an open WAL and its backing storage. `checkpoint_interval_switches`
    /// of 0 disables periodic checkpoints.
    pub fn new(
        storage: Arc<dyn DurableStorage>,
        wal: Wal,
        checkpoint_interval_switches: u64,
    ) -> Self {
        DurabilityController {
            storage,
            wal,
            checkpoint_file: CHECKPOINT_FILE.to_string(),
            checkpoint_interval_switches,
            switches_seen: AtomicU64::new(0),
            checkpoints_taken: AtomicU64::new(0),
            checkpoint_errors: AtomicU64::new(0),
        }
    }

    /// The write-ahead log this controller truncates at checkpoints.
    pub fn wal(&self) -> &Wal {
        &self.wal
    }

    /// Counter snapshot.
    pub fn stats(&self) -> DurabilityStats {
        DurabilityStats {
            switches_seen: self.switches_seen.load(Ordering::Relaxed),
            checkpoints_taken: self.checkpoints_taken.load(Ordering::Relaxed),
            checkpoint_errors: self.checkpoint_errors.load(Ordering::Relaxed),
        }
    }

    /// Called by the engine from inside the switch quiescence window (switch
    /// gate held for writing, twins synced). Takes a checkpoint every
    /// `checkpoint_interval_switches` switches.
    ///
    /// A failed checkpoint is counted and swallowed: the engine keeps
    /// serving transactions and the WAL keeps its tail, so recovery falls
    /// back to the previous checkpoint plus a longer replay.
    pub(crate) fn note_switch(&self, engine: &OltpEngine) {
        let seen = self.switches_seen.fetch_add(1, Ordering::AcqRel) + 1;
        if self.checkpoint_interval_switches == 0
            || !seen.is_multiple_of(self.checkpoint_interval_switches)
        {
            return;
        }
        if self.checkpoint_quiesced(engine).is_err() {
            self.checkpoint_errors.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Write a checkpoint of the current store and truncate the WAL to it.
    /// The caller must hold the switch gate for writing (quiesced engine).
    pub(crate) fn checkpoint_quiesced(&self, engine: &OltpEngine) -> Result<(), DurabilityError> {
        let on = htap_obs::enabled();
        let t_ckpt = if on { htap_obs::now_us() } else { 0 };
        if on {
            htap_obs::record_thread(htap_obs::EventKind::CheckpointBegin, t_ckpt, 0, 0);
        }
        // No transaction is in flight, so every durable record is also
        // applied and `next_lsn` covers exactly the captured state.
        let lsn = self.wal.next_lsn();
        let last_ts = engine.txn_manager().now();
        let mut tables = Vec::new();
        for name in engine.table_names() {
            let rt = engine
                .table(&name)
                .ok_or_else(|| DurabilityError::corrupt(format!("table {name} vanished")))?;
            let dtypes: Vec<_> = rt.twin().schema().columns.iter().map(|c| c.dtype).collect();
            let entries = rt.index().entries();
            let mut keys = Vec::with_capacity(entries.len());
            let mut columns = vec![Vec::with_capacity(entries.len()); dtypes.len()];
            for (key, loc) in entries {
                keys.push(key);
                for (c, col) in columns.iter_mut().enumerate() {
                    let value = rt.twin().get(loc.row, c).ok_or_else(|| {
                        DurabilityError::corrupt(format!(
                            "row {} column {c} of table {name} unreadable",
                            loc.row
                        ))
                    })?;
                    col.push(value);
                }
            }
            tables.push(CheckpointTable {
                name,
                dtypes,
                keys,
                columns,
            });
        }
        let data = CheckpointData {
            lsn,
            last_ts,
            tables,
        };
        // Checkpoint first, truncate second: a crash between the two leaves
        // an un-truncated WAL prefix that recovery simply skips, because
        // replay starts at the checkpoint LSN.
        let table_count = data.tables.len() as u64;
        self.storage
            .write_atomic(&self.checkpoint_file, &data.encode())?;
        self.wal.truncate_to(lsn)?;
        self.checkpoints_taken.fetch_add(1, Ordering::Relaxed);
        if on {
            htap_obs::record_thread(
                htap_obs::EventKind::CheckpointEnd,
                t_ckpt,
                table_count,
                htap_obs::now_us().saturating_sub(t_ckpt),
            );
        }
        Ok(())
    }
}

/// Apply a [`RecoveredState`] onto an engine whose relations have already
/// been created (empty). Checkpoint rows are bulk-loaded, then the WAL tail
/// is replayed through the normal twin-table insert/update path, and the
/// logical clock is advanced past the last recovered commit.
///
/// Returns the number of replayed WAL records.
pub fn apply_recovered(
    engine: &OltpEngine,
    state: &RecoveredState,
) -> Result<u64, DurabilityError> {
    if let Some(ckpt) = &state.checkpoint {
        for table in &ckpt.tables {
            for (i, &key) in table.keys.iter().enumerate() {
                engine
                    .bulk_load(&table.name, key, table.row(i))
                    .map_err(|e| {
                        DurabilityError::corrupt(format!(
                            "checkpoint row {key} of {} rejected: {e}",
                            table.name
                        ))
                    })?;
            }
        }
    }
    let mut replayed = 0u64;
    for (lsn, record) in &state.tail {
        for op in &record.ops {
            match op {
                WalOp::Insert { table, key, values } => {
                    engine.bulk_load(table, *key, values.clone()).map_err(|e| {
                        DurabilityError::corrupt(format!(
                            "replay of insert {key} into {table} (lsn {lsn}) rejected: {e}"
                        ))
                    })?;
                }
                WalOp::Update {
                    table,
                    key,
                    column,
                    value,
                } => {
                    let rt = engine.table(table).ok_or_else(|| {
                        DurabilityError::corrupt(format!(
                            "replay references unknown table {table} (lsn {lsn})"
                        ))
                    })?;
                    let loc = rt.index().get(*key).ok_or_else(|| {
                        DurabilityError::corrupt(format!(
                            "replay updates missing key {key} in {table} (lsn {lsn})"
                        ))
                    })?;
                    rt.twin()
                        .update(loc.row, *column as usize, value)
                        .map_err(|e| {
                            DurabilityError::corrupt(format!(
                                "replay of update {key} in {table} (lsn {lsn}) rejected: {e}"
                            ))
                        })?;
                }
            }
        }
        replayed += 1;
    }
    engine.txn_manager().advance_clock(state.last_commit_ts);
    Ok(replayed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use htap_durability::{load_state, MemStorage, WalConfig};
    use htap_storage::{ColumnDef, DataType, TableSchema, Value};

    fn schema(name: &str) -> TableSchema {
        TableSchema::new(
            name,
            vec![
                ColumnDef::new("id", DataType::I64),
                ColumnDef::new("qty", DataType::I32),
                ColumnDef::new("note", DataType::Str),
            ],
            Some(0),
        )
    }

    fn durable_engine(disk: &MemStorage, interval: u64) -> (OltpEngine, Arc<DurabilityController>) {
        let storage: Arc<dyn DurableStorage> = Arc::new(disk.clone());
        let (wal, _seg) = Wal::open(Arc::clone(&storage), WAL_FILE, WalConfig::default()).unwrap();
        let engine = OltpEngine::new();
        engine.create_table(schema("stock")).unwrap();
        let ctl = Arc::new(DurabilityController::new(storage, wal, interval));
        engine.attach_durability(Arc::clone(&ctl));
        (engine, ctl)
    }

    fn insert(engine: &OltpEngine, key: u64, qty: i32) {
        engine.execute(|mut txn| {
            txn.insert(
                "stock",
                key,
                vec![
                    Value::I64(key as i64),
                    Value::I32(qty),
                    Value::Str(format!("row-{key}")),
                ],
            )
            .unwrap();
            txn.commit().unwrap();
        });
    }

    #[test]
    fn commits_reach_the_wal_and_replay_restores_them() {
        let disk = MemStorage::new();
        {
            let (engine, _ctl) = durable_engine(&disk, 0);
            insert(&engine, 1, 10);
            insert(&engine, 2, 20);
            engine.execute(|mut txn| {
                txn.update("stock", 1, 1, Value::I32(11)).unwrap();
                txn.commit().unwrap();
            });
        }
        // "Reboot": fresh engine, schemas recreated, state replayed.
        let storage: Arc<dyn DurableStorage> = Arc::new(disk.clone());
        let state = load_state(storage.as_ref(), WAL_FILE, CHECKPOINT_FILE).unwrap();
        assert!(state.checkpoint.is_none());
        assert_eq!(state.tail_len(), 3);
        let engine = OltpEngine::new();
        engine.create_table(schema("stock")).unwrap();
        assert_eq!(apply_recovered(&engine, &state).unwrap(), 3);
        let t = engine.begin();
        assert_eq!(t.read("stock", 1, 1).unwrap(), Value::I32(11));
        assert_eq!(t.read("stock", 2, 1).unwrap(), Value::I32(20));
        assert_eq!(
            t.read("stock", 1, 2).unwrap(),
            Value::Str("row-1".to_string())
        );
        // New commits get timestamps after the recovered history.
        assert!(engine.txn_manager().now() >= state.last_commit_ts);
    }

    #[test]
    fn checkpoint_truncates_wal_and_recovery_uses_it() {
        let disk = MemStorage::new();
        {
            let (engine, ctl) = durable_engine(&disk, 1);
            insert(&engine, 1, 10);
            insert(&engine, 2, 20);
            // Every switch checkpoints (interval 1).
            engine.switch_and_sync_instances();
            assert_eq!(ctl.stats().checkpoints_taken, 1);
            // Post-checkpoint traffic stays in the WAL tail.
            insert(&engine, 3, 30);
        }
        let storage: Arc<dyn DurableStorage> = Arc::new(disk.clone());
        let state = load_state(storage.as_ref(), WAL_FILE, CHECKPOINT_FILE).unwrap();
        let ckpt = state.checkpoint.as_ref().unwrap();
        assert_eq!(ckpt.tables[0].keys, vec![1, 2]);
        assert_eq!(state.tail_len(), 1);
        let engine = OltpEngine::new();
        engine.create_table(schema("stock")).unwrap();
        apply_recovered(&engine, &state).unwrap();
        let t = engine.begin();
        for (key, qty) in [(1u64, 10), (2, 20), (3, 30)] {
            assert_eq!(t.read("stock", key, 1).unwrap(), Value::I32(qty));
        }
    }

    #[test]
    fn explicit_checkpoint_now_works_without_interval() {
        let disk = MemStorage::new();
        let (engine, ctl) = durable_engine(&disk, 0);
        insert(&engine, 7, 70);
        engine.switch_and_sync_instances();
        assert_eq!(ctl.stats().checkpoints_taken, 0);
        assert!(engine.checkpoint_now().unwrap());
        assert_eq!(ctl.stats().checkpoints_taken, 1);
        // The WAL was truncated to the checkpoint LSN.
        let storage: Arc<dyn DurableStorage> = Arc::new(disk.clone());
        let state = load_state(storage.as_ref(), WAL_FILE, CHECKPOINT_FILE).unwrap();
        assert_eq!(state.tail_len(), 0);
        assert_eq!(state.checkpoint.unwrap().tables[0].keys, vec![7]);
    }

    #[test]
    fn engine_without_durability_reports_no_checkpoint() {
        let engine = OltpEngine::new();
        engine.create_table(schema("stock")).unwrap();
        assert!(!engine.checkpoint_now().unwrap());
    }
}
