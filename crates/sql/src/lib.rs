//! SQL frontend for the vectorized morsel engine: lexer → recursive-descent
//! parser → AST → binder → cost-aware planner.
//!
//! The pipeline turns query text into the same physical [`QueryPlan`]s the
//! hand-built CH-benCHmark queries use, so SQL automatically gets the full
//! vectorized + selection-vector execution path (compiled register programs,
//! open-addressing hash tables, per-worker scratch — see PR 4):
//!
//! ```text
//! SQL text ──lex──▶ tokens ──parse──▶ SelectStmt (AST)
//!          ──bind(catalog)──▶ BoundQuery (resolved names, typed errors)
//!          ──lower──▶ QueryPlan (a named shape or an explicit operator DAG)
//! ```
//!
//! Supported grammar (see the "SQL frontend" section of ARCHITECTURE.md for
//! the full table and the lowering rules): `SELECT` of grouping keys and
//! `SUM`/`AVG`/`MIN`/`MAX`/`COUNT(*)` aggregates, `FROM` any number of
//! relations chained by inner joins (comma list or `JOIN ... ON`),
//! conjunctive `WHERE` predicates (`column op literal`, `+`/`-`/`*`
//! arithmetic in join keys and aggregate arguments), `LIKE` on encoded
//! columns, `GROUP BY`, `HAVING` (key or `SELECT`-list aggregate vs a
//! literal), `ORDER BY` and `LIMIT` (lowering to the engine's deterministic
//! top-k).
//!
//! Everything outside the subset — and every unknown table/column, ambiguous
//! name, unclosed string or malformed number — is a typed [`SqlError`] with
//! the byte offset of the offending token. No input panics this crate.
//!
//! The planner is *cost-aware*: the probe side of a join is pinned by where
//! the aggregates and grouping keys live; a free (`COUNT(*)`-only) choice
//! follows the catalog's relation cardinalities alone — probe the largest
//! relation, build the hash table from the smallest. The choice is pure
//! cost because the engine's hash probe preserves multiplicities (duplicate
//! build keys contribute every matching tuple), so statistics can never
//! change an answer (see [`planner`]).

pub mod ast;
pub mod binder;
pub mod catalog;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod planner;

pub use binder::{bind, BoundQuery};
pub use catalog::{Catalog, LikeRewrite, TableInfo};
pub use error::SqlError;
pub use parser::parse;
pub use planner::lower;

use htap_olap::QueryPlan;

/// Compile one SQL `SELECT` into a physical [`QueryPlan`]: parse, bind
/// against `catalog`, lower. The single entry point most callers need.
///
/// Each phase opens an `sql.parse` / `sql.bind` / `sql.plan` tracing span
/// (inert when tracing is off), so `execute_sql` traces show where
/// compilation time goes relative to execution.
pub fn plan(sql: &str, catalog: &Catalog) -> Result<QueryPlan, SqlError> {
    let stmt = {
        let _s = htap_obs::span("sql.parse");
        parser::parse(sql)?
    };
    let bound = {
        let _s = htap_obs::span("sql.bind");
        binder::bind(&stmt, catalog)?
    };
    let _s = htap_obs::span("sql.plan");
    planner::lower(&bound)
}

#[cfg(test)]
mod tests {
    use super::*;
    use htap_olap::{
        AggExpr, BuildSide, CmpOp, DagOp, HavingPred, Predicate, QueryPlan, RowSlot, ScalarExpr,
        TopK,
    };
    use htap_storage::{ColumnDef, DataType, TableSchema};

    /// fact(3000 rows) ⋈ mid(30) ⋈ far(12) ⋈ deep(4), plus an encoded LIKE
    /// on mid.
    fn catalog() -> Catalog {
        Catalog::new()
            .with_table(
                TableSchema::new(
                    "fact",
                    vec![
                        ColumnDef::new("f_id", DataType::I64),
                        ColumnDef::new("f_mid", DataType::I64),
                        ColumnDef::new("f_g", DataType::I32),
                        ColumnDef::new("f_a", DataType::F64),
                    ],
                    Some(0),
                ),
                3_000,
            )
            .with_table(
                TableSchema::new(
                    "mid",
                    vec![
                        ColumnDef::new("m_id", DataType::I64),
                        ColumnDef::new("m_far", DataType::I64),
                        ColumnDef::new("m_v", DataType::F64),
                        ColumnDef::new("m_name", DataType::Str),
                    ],
                    Some(0),
                ),
                30,
            )
            .with_table(
                TableSchema::new(
                    "far",
                    vec![
                        ColumnDef::new("r_id", DataType::I64),
                        ColumnDef::new("r_v", DataType::F64),
                        ColumnDef::new("r_deep", DataType::I64),
                    ],
                    Some(0),
                ),
                12,
            )
            .with_table(
                TableSchema::new("deep", vec![ColumnDef::new("d_id", DataType::I64)], Some(0)),
                4,
            )
            .with_like_rewrite(
                "mid",
                "m_data",
                "PR%",
                Predicate::new("m_v", CmpOp::Lt, 50.0),
            )
    }

    #[test]
    fn scalar_aggregate_lowers_to_aggregate_shape() {
        let plan = plan(
            "SELECT SUM(f_a * f_a), COUNT(*) FROM fact WHERE f_a >= 1 AND f_g < 4",
            &catalog(),
        )
        .unwrap();
        assert_eq!(
            plan,
            QueryPlan::Aggregate {
                table: "fact".into(),
                filters: vec![
                    Predicate::new("f_a", CmpOp::Ge, 1.0),
                    Predicate::new("f_g", CmpOp::Lt, 4.0),
                ],
                aggregates: vec![
                    AggExpr::Sum(ScalarExpr::col("f_a") * ScalarExpr::col("f_a")),
                    AggExpr::Count,
                ],
            }
        );
    }

    #[test]
    fn group_by_lowers_with_keys_leading_the_select_list() {
        let plan = plan(
            "SELECT f_g, AVG(f_a), COUNT(*) FROM fact GROUP BY f_g ORDER BY f_g",
            &catalog(),
        )
        .unwrap();
        assert_eq!(
            plan,
            QueryPlan::GroupByAggregate {
                table: "fact".into(),
                filters: vec![],
                group_by: vec!["f_g".into()],
                aggregates: vec![AggExpr::Avg(ScalarExpr::col("f_a")), AggExpr::Count],
            }
        );
    }

    #[test]
    fn plain_key_join_lowers_to_join_aggregate() {
        let plan = plan(
            "SELECT SUM(f_a) FROM fact JOIN mid ON f_mid = m_id WHERE m_v >= 10",
            &catalog(),
        )
        .unwrap();
        assert_eq!(
            plan,
            QueryPlan::JoinAggregate {
                fact: "fact".into(),
                dim: "mid".into(),
                fact_key: "f_mid".into(),
                dim_key: "m_id".into(),
                fact_filters: vec![],
                dim_filters: vec![Predicate::new("m_v", CmpOp::Ge, 10.0)],
                aggregates: vec![AggExpr::Sum(ScalarExpr::col("f_a"))],
            }
        );
    }

    #[test]
    fn comma_join_with_where_condition_is_equivalent() {
        let a = plan(
            "SELECT SUM(f_a) FROM fact, mid WHERE f_mid = m_id",
            &catalog(),
        )
        .unwrap();
        let b = plan(
            "SELECT SUM(f_a) FROM fact JOIN mid ON f_mid = m_id",
            &catalog(),
        )
        .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn group_by_join_lowers_with_top_k() {
        let plan = plan(
            "SELECT f_g, COUNT(*) FROM fact JOIN mid ON f_mid = m_id \
             GROUP BY f_g ORDER BY COUNT(*) DESC LIMIT 5",
            &catalog(),
        )
        .unwrap();
        assert_eq!(
            plan,
            QueryPlan::JoinGroupByAggregate {
                fact: "fact".into(),
                fact_key: ScalarExpr::col("f_mid"),
                fact_filters: vec![],
                dim: BuildSide::new("mid", ScalarExpr::col("m_id"), vec![]),
                group_by: vec!["f_g".into()],
                aggregates: vec![AggExpr::Count],
                top_k: Some(TopK { agg_index: 0, k: 5 }),
            }
        );
    }

    #[test]
    fn three_table_chain_lowers_to_multi_join() {
        let plan = plan(
            "SELECT SUM(f_a), COUNT(*) FROM fact \
             JOIN mid ON f_mid = m_id JOIN far ON m_far = r_id \
             WHERE f_a >= 0 AND m_v >= 1 AND r_v < 40",
            &catalog(),
        )
        .unwrap();
        assert_eq!(
            plan,
            QueryPlan::MultiJoinAggregate {
                fact: "fact".into(),
                fact_key: ScalarExpr::col("f_mid"),
                fact_filters: vec![Predicate::new("f_a", CmpOp::Ge, 0.0)],
                mid: BuildSide::new(
                    "mid",
                    ScalarExpr::col("m_id"),
                    vec![Predicate::new("m_v", CmpOp::Ge, 1.0)],
                ),
                mid_fk: ScalarExpr::col("m_far"),
                far: BuildSide::new(
                    "far",
                    ScalarExpr::col("r_id"),
                    vec![Predicate::new("r_v", CmpOp::Lt, 40.0)],
                ),
                aggregates: vec![AggExpr::Sum(ScalarExpr::col("f_a")), AggExpr::Count],
            }
        );
    }

    #[test]
    fn chain_order_in_the_text_does_not_matter() {
        // far listed first: the chain is still discovered from the graph.
        let a = plan(
            "SELECT SUM(f_a) FROM far, mid, fact WHERE m_far = r_id AND f_mid = m_id",
            &catalog(),
        )
        .unwrap();
        let b = plan(
            "SELECT SUM(f_a) FROM fact JOIN mid ON f_mid = m_id JOIN far ON m_far = r_id",
            &catalog(),
        )
        .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn count_only_join_probes_the_larger_side() {
        // Nothing in the SELECT list pins the fact side, so cost decides:
        // fact (3000 rows) probes, mid (30 rows) builds — whatever order
        // the relations are written in.
        for sql in [
            "SELECT COUNT(*) FROM fact JOIN mid ON f_mid = m_id",
            "SELECT COUNT(*) FROM mid JOIN fact ON m_id = f_mid",
        ] {
            let plan = plan(sql, &catalog()).unwrap();
            let QueryPlan::JoinAggregate { fact, dim, .. } = &plan else {
                panic!("{sql}: expected a join, got {plan:?}");
            };
            assert_eq!(fact, "fact", "{sql}");
            assert_eq!(dim, "mid", "{sql}");
        }
    }

    #[test]
    fn free_join_probe_side_is_pure_cost() {
        let schemas = |pk: Option<usize>, fact_rows: u64, mid_rows: u64| {
            Catalog::new()
                .with_table(
                    TableSchema::new(
                        "fact",
                        vec![
                            ColumnDef::new("f_id", DataType::I64),
                            ColumnDef::new("f_mid", DataType::I64),
                        ],
                        pk,
                    ),
                    fact_rows,
                )
                .with_table(
                    TableSchema::new("mid", vec![ColumnDef::new("m_id", DataType::I64)], pk),
                    mid_rows,
                )
        };
        let probe = |catalog: &Catalog| {
            let plan = plan(
                "SELECT COUNT(*) FROM fact JOIN mid ON f_mid = m_id",
                catalog,
            )
            .unwrap();
            let QueryPlan::JoinAggregate { fact, .. } = plan else {
                panic!("expected a join");
            };
            fact
        };
        // The hash probe preserves multiplicities, so either probe order
        // returns the same COUNT(*): the planner follows cost alone — probe
        // the larger relation — and a declared primary key no longer pins
        // the build side (the retired key-set semijoin needed that).
        assert_eq!(probe(&schemas(Some(0), 3_000, 30)), "fact");
        assert_eq!(probe(&schemas(Some(0), 30, 3_000)), "mid");
        assert_eq!(probe(&schemas(None, 3_000, 30)), "fact");
        assert_eq!(probe(&schemas(None, 30, 3_000)), "mid");
    }

    #[test]
    fn count_only_chain_picks_an_endpoint_even_when_the_middle_is_largest() {
        // mid (the chain's middle relation) dwarfs both endpoints: the
        // planner must still probe an endpoint — the engine has no shape
        // that probes the middle — instead of rejecting the query.
        let big_mid = Catalog::new()
            .with_table(
                TableSchema::new(
                    "fact",
                    vec![
                        ColumnDef::new("f_id", DataType::I64),
                        ColumnDef::new("f_mid", DataType::I64),
                    ],
                    Some(0),
                ),
                3_000,
            )
            .with_table(
                TableSchema::new(
                    "mid",
                    vec![
                        ColumnDef::new("m_id", DataType::I64),
                        ColumnDef::new("m_far", DataType::I64),
                    ],
                    Some(0),
                ),
                1_000_000,
            )
            .with_table(
                TableSchema::new("far", vec![ColumnDef::new("r_id", DataType::I64)], Some(0)),
                12,
            );
        let plan = plan(
            "SELECT COUNT(*) FROM fact JOIN mid ON f_mid = m_id JOIN far ON m_far = r_id",
            &big_mid,
        )
        .unwrap();
        let QueryPlan::MultiJoinAggregate { fact, mid, far, .. } = &plan else {
            panic!("expected a chain join, got {plan:?}");
        };
        // Cost chooses among the *endpoints* only (fact: 3000 vs far: 12),
        // so the fact endpoint probes; mid stays the middle build no matter
        // how large it is.
        assert_eq!(fact, "fact");
        assert_eq!(mid.table, "mid");
        assert_eq!(far.table, "far");
    }

    #[test]
    fn aggregates_over_the_chain_middle_are_rejected_with_a_clear_error() {
        let err = plan(
            "SELECT SUM(m_v) FROM fact JOIN mid ON f_mid = m_id JOIN far ON m_far = r_id",
            &catalog(),
        )
        .unwrap_err();
        assert!(
            matches!(err, SqlError::Unsupported { ref what, .. } if what.contains("middle")),
            "expected a middle-relation error, got {err:?}"
        );
    }

    #[test]
    fn expression_join_keys_compile_to_scalar_exprs() {
        let plan = plan(
            "SELECT f_g, SUM(f_a) FROM fact JOIN mid ON f_g * 4 + f_id = m_id GROUP BY f_g \
             ORDER BY f_g",
            &catalog(),
        )
        .unwrap();
        let QueryPlan::JoinGroupByAggregate { fact_key, .. } = &plan else {
            panic!("expected join-group-by, got {plan:?}");
        };
        assert_eq!(
            *fact_key,
            ScalarExpr::col("f_g") * ScalarExpr::lit(4.0) + ScalarExpr::col("f_id")
        );
    }

    #[test]
    fn having_lowers_to_a_dag_having_finisher() {
        let plan = plan(
            "SELECT f_g, COUNT(*) FROM fact GROUP BY f_g HAVING COUNT(*) > 10 AND f_g >= 2",
            &catalog(),
        )
        .unwrap();
        let QueryPlan::Dag(dag) = &plan else {
            panic!("expected a DAG plan, got {plan:?}");
        };
        let having: Vec<_> = dag
            .ops
            .iter()
            .filter_map(|op| match op {
                DagOp::Having { predicates, .. } => Some(predicates.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(
            having,
            vec![vec![
                HavingPred {
                    slot: RowSlot::Agg(0),
                    op: CmpOp::Gt,
                    literal: 10.0,
                },
                HavingPred {
                    slot: RowSlot::Key(0),
                    op: CmpOp::Ge,
                    literal: 2.0,
                },
            ]]
        );
    }

    #[test]
    fn join_with_having_and_top_k_lowers_to_dag_finishers() {
        let plan = plan(
            "SELECT f_g, COUNT(*) FROM fact JOIN mid ON f_mid = m_id GROUP BY f_g \
             HAVING COUNT(*) >= 3 ORDER BY COUNT(*) DESC LIMIT 2",
            &catalog(),
        )
        .unwrap();
        let QueryPlan::Dag(dag) = &plan else {
            panic!("expected a DAG plan, got {plan:?}");
        };
        // Scans listed probe side first, then the build side.
        assert_eq!(plan.tables(), ["fact", "mid"]);
        // The finishers run in clause order: having → sort → limit.
        let n = dag.ops.len();
        assert!(matches!(&dag.ops[n - 3], DagOp::Having { predicates, .. }
            if predicates.len() == 1));
        assert!(matches!(&dag.ops[n - 2], DagOp::Sort { keys, .. }
            if keys.len() == 1 && keys[0].desc && keys[0].slot == RowSlot::Agg(0)));
        assert!(matches!(&dag.ops[n - 1], DagOp::Limit { rows: 2, .. }));
    }

    #[test]
    fn having_binding_errors_are_typed() {
        let c = catalog();
        for (sql, needle) in [
            (
                "SELECT COUNT(*) FROM fact HAVING COUNT(*) > 1",
                "HAVING without GROUP BY",
            ),
            (
                "SELECT f_g, COUNT(*) FROM fact GROUP BY f_g HAVING f_a > 1",
                "not a GROUP BY key",
            ),
            (
                "SELECT f_g, COUNT(*) FROM fact GROUP BY f_g HAVING SUM(f_a) > 1",
                "not in the SELECT list",
            ),
        ] {
            let err = plan(sql, &c).unwrap_err();
            match &err {
                SqlError::Unsupported { what, .. } => {
                    assert!(what.contains(needle), "{sql}: {what:?} lacks {needle:?}")
                }
                other => panic!("{sql}: expected Unsupported, got {other:?}"),
            }
        }
    }

    #[test]
    fn four_relation_chains_lower_onto_an_operator_dag() {
        // No named shape goes past three relations; the chain lowers onto an
        // explicit DAG with a build/probe cascade from the far end inward.
        let plan = plan(
            "SELECT SUM(f_a), COUNT(*) FROM fact \
             JOIN mid ON f_mid = m_id JOIN far ON m_far = r_id JOIN deep ON r_deep = d_id \
             WHERE m_v >= 1",
            &catalog(),
        )
        .unwrap();
        let QueryPlan::Dag(dag) = &plan else {
            panic!("expected a DAG plan, got {plan:?}");
        };
        // Probe side first, then the builds walking down the chain.
        assert_eq!(plan.tables(), ["fact", "mid", "far", "deep"]);
        let builds = dag
            .ops
            .iter()
            .filter(|op| matches!(op, DagOp::HashBuild { .. }))
            .count();
        let probes = dag
            .ops
            .iter()
            .filter(|op| matches!(op, DagOp::HashProbe { .. }))
            .count();
        assert_eq!((builds, probes), (3, 3));
    }

    #[test]
    fn four_relation_chain_order_in_the_text_does_not_matter() {
        // The graph, not the FROM order, determines the chain roles.
        let a = plan(
            "SELECT SUM(f_a) FROM deep, far, mid, fact \
             WHERE r_deep = d_id AND m_far = r_id AND f_mid = m_id",
            &catalog(),
        )
        .unwrap();
        let b = plan(
            "SELECT SUM(f_a) FROM fact \
             JOIN mid ON f_mid = m_id JOIN far ON m_far = r_id JOIN deep ON r_deep = d_id",
            &catalog(),
        )
        .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn four_relation_non_chains_are_rejected() {
        let c = catalog();
        // Three conditions that do not touch `deep` at all: m_id is joined
        // twice, so the graph is a multi-edge plus an isolated relation.
        let err = plan(
            "SELECT COUNT(*) FROM fact, mid, far, deep \
             WHERE f_mid = m_id AND f_id = m_id AND m_far = r_id",
            &c,
        )
        .unwrap_err();
        assert!(
            matches!(err, SqlError::Unsupported { ref what, .. } if what.contains("chain")),
            "expected a chain error, got {err:?}"
        );
    }

    #[test]
    fn like_on_encoded_column_rewrites_to_the_registered_predicate() {
        let plan = plan(
            "SELECT SUM(f_a) FROM fact JOIN mid ON f_mid = m_id WHERE m_data LIKE 'PR%'",
            &catalog(),
        )
        .unwrap();
        let QueryPlan::JoinAggregate { dim_filters, .. } = &plan else {
            panic!("expected a join, got {plan:?}");
        };
        assert_eq!(dim_filters, &vec![Predicate::new("m_v", CmpOp::Lt, 50.0)]);
    }

    #[test]
    fn like_errors_are_typed() {
        let c = catalog();
        // Unknown pattern on a registered encoded column.
        let err = plan(
            "SELECT SUM(f_a) FROM fact JOIN mid ON f_mid = m_id WHERE m_data LIKE 'XX%'",
            &c,
        )
        .unwrap_err();
        assert!(matches!(err, SqlError::Unsupported { ref what, .. } if what.contains("PR%")));
        // LIKE on a real numeric column (no rewrite).
        let err = plan("SELECT SUM(f_a) FROM fact WHERE f_a LIKE 'x'", &c).unwrap_err();
        assert!(matches!(err, SqlError::Unsupported { ref what, .. } if what.contains("LIKE")));
        // LIKE on a column that exists nowhere.
        let err = plan("SELECT SUM(f_a) FROM fact WHERE ghost LIKE 'x'", &c).unwrap_err();
        assert!(matches!(err, SqlError::UnknownColumn { .. }));
        // LIKE on an encoded column whose relation is not in scope.
        let err = plan("SELECT SUM(f_a) FROM fact WHERE m_data LIKE 'PR%'", &c).unwrap_err();
        assert!(matches!(err, SqlError::UnknownColumn { .. }));
        // A qualified LIKE naming an out-of-scope table blames the *table*,
        // not the column — the qualifier is the actual problem.
        let err = plan("SELECT SUM(f_a) FROM fact WHERE mid.m_data LIKE 'PR%'", &c).unwrap_err();
        assert!(
            matches!(err, SqlError::UnknownTable { ref name, .. } if name == "mid"),
            "expected UnknownTable(mid), got {err:?}"
        );
    }

    #[test]
    fn name_resolution_errors_are_typed_with_positions() {
        let c = catalog();
        let err = plan("SELECT COUNT(*) FROM nope", &c).unwrap_err();
        assert_eq!(
            err,
            SqlError::UnknownTable {
                name: "nope".into(),
                pos: 21
            }
        );
        let err = plan("SELECT COUNT(*) FROM fact WHERE ghost > 1", &c).unwrap_err();
        assert!(matches!(err, SqlError::UnknownColumn { ref name, pos: 32 } if name == "ghost"));
        // m_v exists only in mid; referencing it from a fact-only scope fails.
        let err = plan("SELECT COUNT(*) FROM fact WHERE m_v > 1", &c).unwrap_err();
        assert!(matches!(err, SqlError::UnknownColumn { .. }));
        // r_v is unambiguous; a column carried by two relations is not.
        let two = Catalog::new()
            .with_table(
                TableSchema::new("a", vec![ColumnDef::new("x", DataType::I64)], Some(0)),
                10,
            )
            .with_table(
                TableSchema::new("b", vec![ColumnDef::new("x", DataType::I64)], Some(0)),
                10,
            );
        let err = plan("SELECT COUNT(*) FROM a, b WHERE x > 1", &two).unwrap_err();
        assert!(
            matches!(err, SqlError::AmbiguousColumn { ref name, ref tables, .. }
                if name == "x" && tables == &vec!["a".to_string(), "b".into()])
        );
        // Qualification resolves the ambiguity — but a cross join is still
        // out of the subset, which is the next typed error in line.
        let err = plan("SELECT COUNT(*) FROM a, b WHERE a.x > 1", &two).unwrap_err();
        assert!(matches!(err, SqlError::Unsupported { ref what, .. } if what.contains("cross")));
        let ok = plan(
            "SELECT COUNT(*) FROM a, b WHERE a.x = b.x AND a.x > 1",
            &two,
        )
        .unwrap();
        assert_eq!(ok.label(), "join");
    }

    #[test]
    fn duplicate_tables_and_string_columns_are_rejected() {
        let c = catalog();
        let err = plan("SELECT COUNT(*) FROM fact, fact", &c).unwrap_err();
        assert!(matches!(err, SqlError::DuplicateTable { ref name, .. } if name == "fact"));
        let err = plan("SELECT COUNT(*) FROM mid WHERE m_name = 1", &c).unwrap_err();
        assert!(matches!(err, SqlError::Unsupported { ref what, .. } if what.contains("string")));
    }

    #[test]
    fn shape_mismatches_are_unsupported_not_panics() {
        let c = catalog();
        for (sql, needle) in [
            // Aggregates from the build side.
            (
                "SELECT f_g, SUM(m_v) FROM fact JOIN mid ON f_mid = m_id GROUP BY f_g",
                "probe side",
            ),
            // Top-k without a join.
            (
                "SELECT f_g, COUNT(*) FROM fact GROUP BY f_g ORDER BY COUNT(*) DESC LIMIT 3",
                "GROUP BY",
            ),
            // LIMIT without the aggregate ordering.
            (
                "SELECT f_g, COUNT(*) FROM fact JOIN mid ON f_mid = m_id GROUP BY f_g LIMIT 3",
                "LIMIT",
            ),
            // Aggregate ordering without LIMIT.
            (
                "SELECT f_g, COUNT(*) FROM fact JOIN mid ON f_mid = m_id GROUP BY f_g \
                 ORDER BY COUNT(*) DESC",
                "LIMIT",
            ),
            // GROUP BY over three relations.
            (
                "SELECT f_g, COUNT(*) FROM fact JOIN mid ON f_mid = m_id \
                 JOIN far ON m_far = r_id GROUP BY f_g",
                "three-relation",
            ),
            // Non-equi join.
            (
                "SELECT COUNT(*) FROM fact JOIN mid ON f_mid < m_id",
                "non-equality",
            ),
            // Cross join of three relations.
            (
                "SELECT SUM(f_a) FROM fact, mid, far WHERE f_mid = m_id",
                "chain",
            ),
            // Both conditions touch the aggregate-bearing relation: the
            // chain puts it in the middle, which no physical shape probes.
            (
                "SELECT SUM(f_a) FROM fact, mid, far WHERE f_mid = m_id AND f_id = r_id",
                "middle",
            ),
            // Computed filter.
            ("SELECT SUM(f_a) FROM fact WHERE f_a * 2 > 1", "computed"),
            // Constant comparison.
            ("SELECT SUM(f_a) FROM fact WHERE 1 < 2", "constants"),
            // Non-integer group key.
            ("SELECT f_a, COUNT(*) FROM fact GROUP BY f_a", "non-integer"),
            // Grouped select list not led by the keys.
            ("SELECT COUNT(*) FROM fact GROUP BY f_g", "GROUP BY key"),
            // ORDER BY a non-key column.
            (
                "SELECT f_g, COUNT(*) FROM fact GROUP BY f_g ORDER BY f_id",
                "GROUP BY order",
            ),
            // Four relations.
            (
                "SELECT COUNT(*) FROM fact, mid, far, fact WHERE f_mid = m_id",
                "",
            ),
        ] {
            let err = plan(sql, &c).unwrap_err();
            match &err {
                SqlError::Unsupported { what, .. } => {
                    assert!(what.contains(needle), "{sql}: {what:?} lacks {needle:?}")
                }
                SqlError::DuplicateTable { .. } if sql.contains("fact, mid, far, fact") => {}
                other => panic!("{sql}: expected Unsupported, got {other:?}"),
            }
        }
    }

    #[test]
    fn literal_on_the_left_flips_the_operator() {
        let plan = plan("SELECT SUM(f_a) FROM fact WHERE 10 >= f_a", &catalog()).unwrap();
        assert_eq!(
            plan,
            QueryPlan::Aggregate {
                table: "fact".into(),
                filters: vec![Predicate::new("f_a", CmpOp::Le, 10.0)],
                aggregates: vec![AggExpr::Sum(ScalarExpr::col("f_a"))],
            }
        );
    }

    #[test]
    fn constant_arithmetic_folds_into_the_literal() {
        let plan = plan(
            "SELECT SUM(f_a) FROM fact WHERE f_a < 2 * 3 + 1",
            &catalog(),
        )
        .unwrap();
        let QueryPlan::Aggregate { filters, .. } = &plan else {
            panic!("expected aggregate");
        };
        assert_eq!(filters, &vec![Predicate::new("f_a", CmpOp::Lt, 7.0)]);
    }
}
