//! Typed, append-friendly columns.
//!
//! Each column stores its values contiguously (one `Vec` per type), which is
//! what gives the OLAP engine sequential scans at memory bandwidth over the
//! inactive twin instance (§3.2: "each instance keeps data in a columnar
//! layout, to allow the OLAP engine to perform fast scans"). Columns are
//! individually lockable so that transactional appends/updates on the active
//! instance never conflict with scans of the inactive one.

use crate::schema::{DataType, Value};
use parking_lot::{RwLock, RwLockReadGuard};

/// A read guard over a whole typed column, exposing its values as a
/// contiguous slice for the guard's lifetime.
///
/// This is the zero-copy access path of the OLAP executor: instead of
/// copying a row range out of the column under the lock (the `with_*`
/// closures), a scan holds the guard for the duration of one morsel and
/// reads the slice in place.
pub enum ColumnGuard<'a> {
    /// Guard over a 64-bit integer column.
    I64(RwLockReadGuard<'a, Vec<i64>>),
    /// Guard over a 64-bit float column.
    F64(RwLockReadGuard<'a, Vec<f64>>),
    /// Guard over a 32-bit integer column.
    I32(RwLockReadGuard<'a, Vec<i32>>),
    /// Guard over a string column.
    Str(RwLockReadGuard<'a, Vec<String>>),
}

/// Typed column storage.
#[derive(Debug)]
pub enum Column {
    /// 64-bit integer column.
    I64(RwLock<Vec<i64>>),
    /// 64-bit float column.
    F64(RwLock<Vec<f64>>),
    /// 32-bit integer column.
    I32(RwLock<Vec<i32>>),
    /// String column.
    Str(RwLock<Vec<String>>),
}

impl Column {
    /// Create an empty column of the given type.
    pub fn new(dtype: DataType) -> Self {
        match dtype {
            DataType::I64 => Column::I64(RwLock::new(Vec::new())),
            DataType::F64 => Column::F64(RwLock::new(Vec::new())),
            DataType::I32 => Column::I32(RwLock::new(Vec::new())),
            DataType::Str => Column::Str(RwLock::new(Vec::new())),
        }
    }

    /// Create an empty column with pre-allocated capacity (the RDE engine
    /// pre-faults memory before handing it to the engines).
    pub fn with_capacity(dtype: DataType, capacity: usize) -> Self {
        match dtype {
            DataType::I64 => Column::I64(RwLock::new(Vec::with_capacity(capacity))),
            DataType::F64 => Column::F64(RwLock::new(Vec::with_capacity(capacity))),
            DataType::I32 => Column::I32(RwLock::new(Vec::with_capacity(capacity))),
            DataType::Str => Column::Str(RwLock::new(Vec::with_capacity(capacity))),
        }
    }

    /// The column's data type.
    pub fn dtype(&self) -> DataType {
        match self {
            Column::I64(_) => DataType::I64,
            Column::F64(_) => DataType::F64,
            Column::I32(_) => DataType::I32,
            Column::Str(_) => DataType::Str,
        }
    }

    /// Number of values stored.
    pub fn len(&self) -> usize {
        match self {
            Column::I64(v) => v.read().len(),
            Column::F64(v) => v.read().len(),
            Column::I32(v) => v.read().len(),
            Column::Str(v) => v.read().len(),
        }
    }

    /// Whether the column is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes occupied by the stored values (columnar accounting, used by the
    /// cost model and the freshness metric).
    pub fn bytes(&self) -> u64 {
        self.len() as u64 * self.dtype().width_bytes()
    }

    /// Append a value. Panics on type mismatch (schema violations are caught
    /// at the table layer; reaching this with a wrong type is a logic error).
    pub fn append(&self, value: &Value) {
        match (self, value) {
            (Column::I64(v), Value::I64(x)) => v.write().push(*x),
            (Column::F64(v), Value::F64(x)) => v.write().push(*x),
            (Column::I32(v), Value::I32(x)) => v.write().push(*x),
            (Column::Str(v), Value::Str(x)) => v.write().push(x.clone()),
            // lint:allow(no-panic): dtype contract documented on the method; the table layer validates values against the schema before dispatch
            (col, val) => panic!("type mismatch: column {:?} value {val:?}", col.dtype()),
        }
    }

    /// Overwrite the value at `row`. Panics on type mismatch or out-of-range row.
    pub fn update(&self, row: usize, value: &Value) {
        match (self, value) {
            (Column::I64(v), Value::I64(x)) => v.write()[row] = *x,
            (Column::F64(v), Value::F64(x)) => v.write()[row] = *x,
            (Column::I32(v), Value::I32(x)) => v.write()[row] = *x,
            (Column::Str(v), Value::Str(x)) => v.write()[row] = x.clone(),
            // lint:allow(no-panic): dtype contract documented on the method; the table layer validates values against the schema before dispatch
            (col, val) => panic!("type mismatch: column {:?} value {val:?}", col.dtype()),
        }
    }

    /// Read the value at `row`, or `None` if out of range.
    pub fn get(&self, row: usize) -> Option<Value> {
        match self {
            Column::I64(v) => v.read().get(row).map(|x| Value::I64(*x)),
            Column::F64(v) => v.read().get(row).map(|x| Value::F64(*x)),
            Column::I32(v) => v.read().get(row).map(|x| Value::I32(*x)),
            Column::Str(v) => v.read().get(row).map(|x| Value::Str(x.clone())),
        }
    }

    /// Copy the value at `row` from `src` into `self` at the same row,
    /// growing `self` with default values if needed. Used by twin-instance
    /// synchronisation and ETL.
    pub fn copy_row_from(&self, src: &Column, row: usize) {
        match (self, src) {
            (Column::I64(dst), Column::I64(s)) => {
                let val = s.read()[row];
                let mut d = dst.write();
                if d.len() <= row {
                    d.resize(row + 1, 0);
                }
                d[row] = val;
            }
            (Column::F64(dst), Column::F64(s)) => {
                let val = s.read()[row];
                let mut d = dst.write();
                if d.len() <= row {
                    d.resize(row + 1, 0.0);
                }
                d[row] = val;
            }
            (Column::I32(dst), Column::I32(s)) => {
                let val = s.read()[row];
                let mut d = dst.write();
                if d.len() <= row {
                    d.resize(row + 1, 0);
                }
                d[row] = val;
            }
            (Column::Str(dst), Column::Str(s)) => {
                let val = s.read()[row].clone();
                let mut d = dst.write();
                if d.len() <= row {
                    d.resize(row + 1, String::new());
                }
                d[row] = val;
            }
            // lint:allow(no-panic): migration only pairs columns cloned from one schema, so the dtypes always match
            _ => panic!("copy_row_from between mismatched column types"),
        }
    }

    /// Take a typed read guard over the column's storage. The caller can
    /// borrow contiguous value slices from the guard for as long as it is
    /// held (writers block for that duration; readers do not).
    pub fn read_guard(&self) -> ColumnGuard<'_> {
        match self {
            Column::I64(v) => ColumnGuard::I64(v.read()),
            Column::F64(v) => ColumnGuard::F64(v.read()),
            Column::I32(v) => ColumnGuard::I32(v.read()),
            Column::Str(v) => ColumnGuard::Str(v.read()),
        }
    }

    /// Run `f` over the column's `i64` values limited to the first `limit`
    /// rows. Panics if the column is not `I64`.
    pub fn with_i64<R>(&self, limit: usize, f: impl FnOnce(&[i64]) -> R) -> R {
        match self {
            Column::I64(v) => {
                let guard = v.read();
                let n = limit.min(guard.len());
                f(&guard[..n])
            }
            // lint:allow(no-panic): dtype contract documented on the method; callers dispatch on dtype() first
            other => panic!("expected i64 column, found {:?}", other.dtype()),
        }
    }

    /// Run `f` over the column's `f64` values limited to the first `limit`
    /// rows. Panics if the column is not `F64`.
    pub fn with_f64<R>(&self, limit: usize, f: impl FnOnce(&[f64]) -> R) -> R {
        match self {
            Column::F64(v) => {
                let guard = v.read();
                let n = limit.min(guard.len());
                f(&guard[..n])
            }
            // lint:allow(no-panic): dtype contract documented on the method; callers dispatch on dtype() first
            other => panic!("expected f64 column, found {:?}", other.dtype()),
        }
    }

    /// Run `f` over the column's `i32` values limited to the first `limit`
    /// rows. Panics if the column is not `I32`.
    pub fn with_i32<R>(&self, limit: usize, f: impl FnOnce(&[i32]) -> R) -> R {
        match self {
            Column::I32(v) => {
                let guard = v.read();
                let n = limit.min(guard.len());
                f(&guard[..n])
            }
            // lint:allow(no-panic): dtype contract documented on the method; callers dispatch on dtype() first
            other => panic!("expected i32 column, found {:?}", other.dtype()),
        }
    }

    /// Run `f` over the column's string values limited to the first `limit`
    /// rows. Panics if the column is not `Str`.
    pub fn with_str<R>(&self, limit: usize, f: impl FnOnce(&[String]) -> R) -> R {
        match self {
            Column::Str(v) => {
                let guard = v.read();
                let n = limit.min(guard.len());
                f(&guard[..n])
            }
            // lint:allow(no-panic): dtype contract documented on the method; callers dispatch on dtype() first
            other => panic!("expected str column, found {:?}", other.dtype()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_get_update_roundtrip() {
        let col = Column::new(DataType::I64);
        col.append(&Value::I64(10));
        col.append(&Value::I64(20));
        assert_eq!(col.len(), 2);
        assert_eq!(col.get(1), Some(Value::I64(20)));
        col.update(1, &Value::I64(25));
        assert_eq!(col.get(1), Some(Value::I64(25)));
        assert_eq!(col.get(5), None);
    }

    #[test]
    fn string_column_roundtrip() {
        let col = Column::new(DataType::Str);
        col.append(&Value::from("a"));
        col.append(&Value::from("b"));
        col.update(0, &Value::from("z"));
        assert_eq!(col.get(0), Some(Value::from("z")));
        col.with_str(10, |s| assert_eq!(s, &["z".to_string(), "b".to_string()]));
    }

    #[test]
    fn bytes_accounting_uses_type_width() {
        let col = Column::new(DataType::I32);
        for i in 0..10 {
            col.append(&Value::I32(i));
        }
        assert_eq!(col.bytes(), 40);
        assert!(!col.is_empty());
    }

    #[test]
    fn slice_access_respects_limit() {
        let col = Column::new(DataType::F64);
        for i in 0..100 {
            col.append(&Value::F64(i as f64));
        }
        let sum = col.with_f64(10, |s| s.iter().sum::<f64>());
        assert_eq!(sum, 45.0);
        let all = col.with_f64(1000, |s| s.len());
        assert_eq!(all, 100);
    }

    #[test]
    fn copy_row_from_grows_destination() {
        let src = Column::new(DataType::I64);
        for i in 0..5 {
            src.append(&Value::I64(i * 100));
        }
        let dst = Column::new(DataType::I64);
        dst.append(&Value::I64(0));
        dst.copy_row_from(&src, 3);
        assert_eq!(dst.len(), 4);
        assert_eq!(dst.get(3), Some(Value::I64(300)));
        // Rows that were never written are zero-filled placeholders.
        assert_eq!(dst.get(1), Some(Value::I64(0)));
    }

    #[test]
    #[should_panic(expected = "type mismatch")]
    fn append_type_mismatch_panics() {
        Column::new(DataType::I64).append(&Value::F64(1.0));
    }

    #[test]
    #[should_panic(expected = "expected i64 column")]
    fn wrong_slice_accessor_panics() {
        Column::new(DataType::F64).with_i64(1, |_| ());
    }

    #[test]
    fn read_guard_borrows_contiguous_slices() {
        let col = Column::new(DataType::F64);
        for i in 0..8 {
            col.append(&Value::F64(i as f64));
        }
        match col.read_guard() {
            ColumnGuard::F64(g) => assert_eq!(&g[2..5], &[2.0, 3.0, 4.0]),
            _ => panic!("expected an F64 guard"),
        }
        let keys = Column::new(DataType::I64);
        keys.append(&Value::I64(7));
        match keys.read_guard() {
            ColumnGuard::I64(g) => assert_eq!(g.as_slice(), &[7]),
            _ => panic!("expected an I64 guard"),
        };
    }

    #[test]
    fn with_capacity_preallocates() {
        let col = Column::with_capacity(DataType::I64, 1000);
        assert_eq!(col.len(), 0);
        if let Column::I64(v) = &col {
            assert!(v.read().capacity() >= 1000);
        } else {
            unreachable!();
        }
    }
}
