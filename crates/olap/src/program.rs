//! Compiled expression and predicate programs — the bind-time half of the
//! vectorized executor.
//!
//! At plan-bind time every [`ScalarExpr`] and [`Predicate`] a pipeline needs
//! is compiled into a flat register program: column names are resolved to
//! indices into the pipeline's load lists exactly once, literals are interned
//! into a constant pool, and the expression tree is flattened into a sequence
//! of three-address instructions over per-worker register buffers. The
//! steady-state morsel loop then never touches a `String`, never walks a
//! tree, and never allocates — registers live in the worker's
//! [`crate::scratch::ExecScratch`] and are reused across morsels.
//!
//! Selection vectors (`u32` row ids) replace the old `Vec<bool>` masks:
//! filters *compact* the selection in place, and every downstream operator
//! (join probe, aggregation, group-by) iterates only the surviving rows.

use crate::error::OlapError;
use crate::expr::{AggExpr, CmpOp, Predicate, ScalarExpr};
use crate::kernels;
use crate::scratch::MorselData;

/// Where a compiled operand reads from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Src {
    /// A numeric column of the morsel (index into the pipeline's numeric
    /// load list).
    Num(u32),
    /// An evaluation register.
    Reg(u32),
    /// An interned constant.
    Const(u32),
}

/// A three-address instruction: `reg[dst] = a op b` for every selected row.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Instr {
    pub op: BinOp,
    pub dst: u32,
    pub a: Src,
    pub b: Src,
}

/// Arithmetic of the expression language.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum BinOp {
    Add,
    Sub,
    Mul,
}

impl BinOp {
    #[inline(always)]
    fn apply(self, a: f64, b: f64) -> f64 {
        match self {
            BinOp::Add => a + b,
            BinOp::Sub => a - b,
            BinOp::Mul => a * b,
        }
    }
}

/// A compiled scalar expression: instructions plus the source its value ends
/// up in. A plain column reference compiles to zero instructions and reads
/// the column slice directly (zero copies).
#[derive(Debug, Clone)]
pub(crate) struct CompiledExpr {
    pub instrs: Vec<Instr>,
    pub output: Src,
}

/// Resolves column names against the pipeline's load lists during
/// compilation. Numeric and key lists are the exact lists handed to the
/// morsel reader, so a compiled index is valid for every morsel.
pub(crate) struct ColumnResolver<'a> {
    numeric: &'a [String],
    keys: &'a [String],
}

/// A resolved column reference: numeric slot or key slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ColRef {
    Num(u32),
    Key(u32),
}

impl<'a> ColumnResolver<'a> {
    pub fn new(numeric: &'a [String], keys: &'a [String]) -> Self {
        ColumnResolver { numeric, keys }
    }

    /// Numeric slot of `name` (expressions evaluate over numeric loads only,
    /// mirroring [`ScalarExpr::evaluate`]).
    fn numeric_slot(&self, name: &str) -> Result<u32, OlapError> {
        self.numeric
            .iter()
            .position(|c| c == name)
            .map(|i| i as u32)
            .ok_or_else(|| OlapError::MissingColumn {
                column: name.to_string(),
            })
    }

    /// Predicate column resolution: numeric first, then key — the same
    /// precedence [`Predicate::evaluate`] applies on blocks.
    fn col_ref(&self, name: &str) -> Result<ColRef, OlapError> {
        if let Some(i) = self.numeric.iter().position(|c| c == name) {
            return Ok(ColRef::Num(i as u32));
        }
        self.keys
            .iter()
            .position(|c| c == name)
            .map(|i| ColRef::Key(i as u32))
            .ok_or_else(|| OlapError::MissingColumn {
                column: name.to_string(),
            })
    }
}

/// A full pipeline program: shared constant pool and register budget for all
/// the compiled expressions of one pipeline.
#[derive(Debug, Clone, Default)]
pub(crate) struct ProgramPool {
    pub consts: Vec<f64>,
    pub n_regs: u32,
}

impl ProgramPool {
    fn intern(&mut self, v: f64) -> u32 {
        // Constant pools are tiny; linear scan with bitwise equality (NaN
        // literals each get their own slot, which is still correct).
        if let Some(i) = self.consts.iter().position(|c| c.to_bits() == v.to_bits()) {
            return i as u32;
        }
        self.consts.push(v);
        (self.consts.len() - 1) as u32
    }

    fn fresh_reg(&mut self) -> u32 {
        self.n_regs += 1;
        self.n_regs - 1
    }

    /// Compile `expr` against the resolver, appending to this pool.
    pub fn compile_expr(
        &mut self,
        expr: &ScalarExpr,
        resolver: &ColumnResolver<'_>,
    ) -> Result<CompiledExpr, OlapError> {
        let mut instrs = Vec::new();
        let output = self.compile_node(expr, resolver, &mut instrs)?;
        Ok(CompiledExpr { instrs, output })
    }

    fn compile_node(
        &mut self,
        expr: &ScalarExpr,
        resolver: &ColumnResolver<'_>,
        instrs: &mut Vec<Instr>,
    ) -> Result<Src, OlapError> {
        Ok(match expr {
            ScalarExpr::Col(name) => Src::Num(resolver.numeric_slot(name)?),
            ScalarExpr::Literal(v) => Src::Const(self.intern(*v)),
            ScalarExpr::Add(a, b) => self.compile_bin(BinOp::Add, a, b, resolver, instrs)?,
            ScalarExpr::Sub(a, b) => self.compile_bin(BinOp::Sub, a, b, resolver, instrs)?,
            ScalarExpr::Mul(a, b) => self.compile_bin(BinOp::Mul, a, b, resolver, instrs)?,
        })
    }

    fn compile_bin(
        &mut self,
        op: BinOp,
        a: &ScalarExpr,
        b: &ScalarExpr,
        resolver: &ColumnResolver<'_>,
        instrs: &mut Vec<Instr>,
    ) -> Result<Src, OlapError> {
        let a = self.compile_node(a, resolver, instrs)?;
        let b = self.compile_node(b, resolver, instrs)?;
        let dst = self.fresh_reg();
        instrs.push(Instr { op, dst, a, b });
        Ok(Src::Reg(dst))
    }

    /// Compile a predicate list; each predicate resolves its column once.
    pub fn compile_filters(
        &mut self,
        filters: &[Predicate],
        resolver: &ColumnResolver<'_>,
    ) -> Result<Vec<CompiledPredicate>, OlapError> {
        filters
            .iter()
            .map(|p| {
                Ok(CompiledPredicate {
                    col: resolver.col_ref(&p.column)?,
                    op: p.op,
                    literal: p.literal,
                })
            })
            .collect()
    }

    /// Compile an aggregate list: `COUNT(*)` carries no input program.
    pub fn compile_aggregates(
        &mut self,
        aggregates: &[AggExpr],
        resolver: &ColumnResolver<'_>,
    ) -> Result<Vec<CompiledAgg>, OlapError> {
        aggregates
            .iter()
            .map(|agg| {
                Ok(match agg {
                    AggExpr::Count => CompiledAgg::Count,
                    AggExpr::Sum(e) => {
                        CompiledAgg::Fold(AggKind::Sum, self.compile_expr(e, resolver)?)
                    }
                    AggExpr::Avg(e) => {
                        CompiledAgg::Fold(AggKind::Avg, self.compile_expr(e, resolver)?)
                    }
                    AggExpr::Min(e) => {
                        CompiledAgg::Fold(AggKind::Min, self.compile_expr(e, resolver)?)
                    }
                    AggExpr::Max(e) => {
                        CompiledAgg::Fold(AggKind::Max, self.compile_expr(e, resolver)?)
                    }
                })
            })
            .collect()
    }

    /// Compile a join-key expression. A plain column reference that is key-
    /// loaded takes the exact `i64` path (full `i64` range, no `f64`
    /// round-trip); computed expressions evaluate in `f64` and cast (exact
    /// below 2^53) — the same rule the interpreter applied.
    pub fn compile_key(
        &mut self,
        expr: &ScalarExpr,
        resolver: &ColumnResolver<'_>,
    ) -> Result<CompiledKey, OlapError> {
        if let ScalarExpr::Col(name) = expr {
            if let Some(i) = resolver.keys.iter().position(|c| c == name) {
                return Ok(CompiledKey::Key(i as u32));
            }
        }
        Ok(CompiledKey::Expr(self.compile_expr(expr, resolver)?))
    }
}

/// One compiled filter predicate: resolved column, operator, literal.
#[derive(Debug, Clone, Copy)]
pub(crate) struct CompiledPredicate {
    pub col: ColRef,
    pub op: CmpOp,
    pub literal: f64,
}

/// The fold kind of a compiled aggregate (decides which [`AggState`]
/// fields the kernel updates — see `AggState::fold_sum` and friends).
///
/// [`AggState`]: crate::expr::AggState
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum AggKind {
    Sum,
    Avg,
    Min,
    Max,
}

/// A compiled aggregate: `COUNT(*)` or a kind-specialised fold over a
/// compiled input.
#[derive(Debug, Clone)]
pub(crate) enum CompiledAgg {
    Count,
    Fold(AggKind, CompiledExpr),
}

/// A compiled join key: an exact `i64` key column or a computed expression.
#[derive(Debug, Clone)]
pub(crate) enum CompiledKey {
    Key(u32),
    Expr(CompiledExpr),
}

/// The value view a compiled source resolves to for one morsel: a dense
/// column/register slice or a broadcast constant.
#[derive(Debug, Clone, Copy)]
pub(crate) enum ValView<'a> {
    Slice(&'a [f64]),
    Const(f64),
}

impl ValView<'_> {
    #[inline(always)]
    pub fn get(&self, i: usize) -> f64 {
        match self {
            ValView::Slice(s) => s[i],
            ValView::Const(c) => *c,
        }
    }
}

/// Resolve a compiled source against the current morsel's data and register
/// file.
#[inline]
pub(crate) fn resolve<'a>(
    src: Src,
    data: &'a MorselData<'_>,
    regs: &'a [Vec<f64>],
    consts: &[f64],
) -> ValView<'a> {
    match src {
        Src::Num(c) => ValView::Slice(data.numeric(c as usize)),
        Src::Reg(r) => ValView::Slice(&regs[r as usize]),
        Src::Const(c) => ValView::Const(consts[c as usize]),
    }
}

/// Evaluate a compiled expression's instructions over the selected rows,
/// leaving the result reachable through [`CompiledExpr::output`]. Registers
/// are written only at selected positions (sparse evaluation): post-filter
/// operators never touch eliminated rows.
pub(crate) fn eval_expr(
    expr: &CompiledExpr,
    data: &MorselData<'_>,
    regs: &mut [Vec<f64>],
    consts: &[f64],
    rows: usize,
    sel: Option<&[u32]>,
) {
    for instr in &expr.instrs {
        // Split the register file around `dst` so the operands can read
        // sibling registers while `dst` is written.
        let (before, rest) = regs.split_at_mut(instr.dst as usize);
        // The register allocator hands out dst indices below n_regs for every
        // compiled program, so the split always finds the dst register.
        // lint:allow(no-panic): dst < regs.len() by construction in compile()
        let (dst, after) = rest.split_first_mut().expect("register allocated");
        let read = |src: Src| -> ValView<'_> {
            match src {
                Src::Num(c) => ValView::Slice(data.numeric(c as usize)),
                Src::Reg(r) => {
                    let r = r as usize;
                    ValView::Slice(if r < before.len() {
                        &before[r]
                    } else {
                        &after[r - before.len() - 1]
                    })
                }
                Src::Const(c) => ValView::Const(consts[c as usize]),
            }
        };
        let a = read(instr.a);
        let b = read(instr.b);
        match sel {
            None => {
                for (i, lane) in dst.iter_mut().enumerate().take(rows) {
                    *lane = instr.op.apply(a.get(i), b.get(i));
                }
            }
            Some(ids) => {
                for &i in ids {
                    let i = i as usize;
                    dst[i] = instr.op.apply(a.get(i), b.get(i));
                }
            }
        }
    }
}

/// Apply a compiled conjunction to one morsel, producing a selection vector.
///
/// Returns `None` when the pipeline has no filters (the caller iterates the
/// dense row range without materialising ids); otherwise fills `sel` with the
/// surviving row ids, compacting in place predicate by predicate. The first
/// predicate runs the dense chunked filter kernel; every further predicate
/// refines the selection in place with the gather kernel (see
/// [`crate::kernels`] — key columns compare as `f64`, the same fallback the
/// block interpreter applies).
pub(crate) fn apply_filters<'s>(
    filters: &[CompiledPredicate],
    data: &MorselData<'_>,
    rows: usize,
    sel: &'s mut Vec<u32>,
) -> Option<&'s [u32]> {
    let (first, rest) = filters.split_first()?;
    match first.col {
        ColRef::Num(c) => kernels::filter_dense_f64(
            &data.numeric(c as usize)[..rows],
            first.op,
            first.literal,
            sel,
        ),
        ColRef::Key(c) => {
            kernels::filter_dense_i64(&data.key(c as usize)[..rows], first.op, first.literal, sel)
        }
    }
    for pred in rest {
        match pred.col {
            ColRef::Num(c) => {
                kernels::filter_refine_f64(data.numeric(c as usize), pred.op, pred.literal, sel)
            }
            ColRef::Key(c) => {
                kernels::filter_refine_i64(data.key(c as usize), pred.op, pred.literal, sel)
            }
        }
    }
    Some(sel.as_slice())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scratch::ExecScratch;

    fn resolver_lists() -> (Vec<String>, Vec<String>) {
        (
            vec!["price".to_string(), "discount".into()],
            vec!["id".to_string()],
        )
    }

    fn test_data(scratch: &mut ExecScratch) {
        scratch.data.set_test_columns(
            vec![vec![10.0, 20.0, 30.0, 40.0], vec![0.1, 0.2, 0.0, 0.5]],
            vec![vec![1, 2, 3, 4]],
        );
    }

    #[test]
    fn plain_column_compiles_to_zero_instructions() {
        let (num, keys) = resolver_lists();
        let resolver = ColumnResolver::new(&num, &keys);
        let mut pool = ProgramPool::default();
        let compiled = pool
            .compile_expr(&ScalarExpr::col("price"), &resolver)
            .unwrap();
        assert!(compiled.instrs.is_empty());
        assert_eq!(compiled.output, Src::Num(0));
        assert_eq!(pool.n_regs, 0);
    }

    #[test]
    fn compiled_expression_matches_interpreter() {
        let (num, keys) = resolver_lists();
        let resolver = ColumnResolver::new(&num, &keys);
        let mut pool = ProgramPool::default();
        let expr = ScalarExpr::col("price") * (ScalarExpr::lit(1.0) - ScalarExpr::col("discount"));
        let compiled = pool.compile_expr(&expr, &resolver).unwrap();
        let mut scratch = ExecScratch::new(pool.n_regs as usize);
        test_data(&mut scratch);
        scratch.ensure_regs(4);
        eval_expr(
            &compiled,
            &scratch.data,
            &mut scratch.regs,
            &pool.consts,
            4,
            None,
        );
        let out = resolve(compiled.output, &scratch.data, &scratch.regs, &pool.consts);
        let got: Vec<f64> = (0..4).map(|i| out.get(i)).collect();
        assert_eq!(got, vec![9.0, 16.0, 30.0, 20.0]);
    }

    #[test]
    fn sparse_evaluation_only_touches_selected_rows() {
        let (num, keys) = resolver_lists();
        let resolver = ColumnResolver::new(&num, &keys);
        let mut pool = ProgramPool::default();
        let expr = ScalarExpr::col("price") + ScalarExpr::lit(1.0);
        let compiled = pool.compile_expr(&expr, &resolver).unwrap();
        let mut scratch = ExecScratch::new(pool.n_regs as usize);
        test_data(&mut scratch);
        scratch.ensure_regs(4);
        // Poison the register, then evaluate rows {1, 3} only.
        scratch.regs[0].iter_mut().for_each(|v| *v = f64::NAN);
        eval_expr(
            &compiled,
            &scratch.data,
            &mut scratch.regs,
            &pool.consts,
            4,
            Some(&[1, 3]),
        );
        assert_eq!(scratch.regs[0][1], 21.0);
        assert_eq!(scratch.regs[0][3], 41.0);
        assert!(scratch.regs[0][0].is_nan() && scratch.regs[0][2].is_nan());
    }

    #[test]
    fn filters_compact_selection_vectors() {
        let (num, keys) = resolver_lists();
        let resolver = ColumnResolver::new(&num, &keys);
        let mut pool = ProgramPool::default();
        let filters = pool
            .compile_filters(
                &[
                    Predicate::new("price", CmpOp::Ge, 20.0),
                    Predicate::new("id", CmpOp::Le, 3.0),
                ],
                &resolver,
            )
            .unwrap();
        let mut scratch = ExecScratch::new(0);
        test_data(&mut scratch);
        let sel = apply_filters(&filters, &scratch.data, 4, &mut scratch.sel).unwrap();
        assert_eq!(sel, &[1, 2]);
        // Empty filter list means dense iteration (no selection vector).
        assert!(apply_filters(&[], &scratch.data, 4, &mut scratch.sel2).is_none());
    }

    #[test]
    fn unknown_columns_fail_at_compile_time() {
        let (num, keys) = resolver_lists();
        let resolver = ColumnResolver::new(&num, &keys);
        let mut pool = ProgramPool::default();
        assert_eq!(
            pool.compile_expr(&ScalarExpr::col("ghost"), &resolver)
                .unwrap_err(),
            OlapError::MissingColumn {
                column: "ghost".into()
            }
        );
        assert!(pool
            .compile_filters(&[Predicate::new("ghost", CmpOp::Lt, 0.0)], &resolver)
            .is_err());
    }

    #[test]
    fn key_compilation_prefers_the_exact_path() {
        let (num, keys) = resolver_lists();
        let resolver = ColumnResolver::new(&num, &keys);
        let mut pool = ProgramPool::default();
        match pool.compile_key(&ScalarExpr::col("id"), &resolver).unwrap() {
            CompiledKey::Key(0) => {}
            other => panic!("expected exact key slot, got {other:?}"),
        }
        match pool
            .compile_key(
                &(ScalarExpr::col("price") * ScalarExpr::lit(2.0)),
                &resolver,
            )
            .unwrap()
        {
            CompiledKey::Expr(_) => {}
            other => panic!("expected computed key, got {other:?}"),
        }
    }

    #[test]
    fn constants_are_interned_once() {
        let (num, keys) = resolver_lists();
        let resolver = ColumnResolver::new(&num, &keys);
        let mut pool = ProgramPool::default();
        let e = ScalarExpr::col("price") * ScalarExpr::lit(2.0)
            + ScalarExpr::col("discount") * ScalarExpr::lit(2.0);
        pool.compile_expr(&e, &resolver).unwrap();
        assert_eq!(pool.consts, vec![2.0]);
    }
}
