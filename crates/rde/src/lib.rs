//! Resource and Data Exchange (RDE) engine — the integration layer between
//! the OLTP and the OLAP engine (§3.4 of the paper).
//!
//! The RDE engine owns all compute and memory resources and distributes them
//! to the two engines; it drives the operations HTAP needs:
//!
//! * **instance switching and synchronisation** — instructing the OLTP engine
//!   to switch its active twin instance, then copying the records flagged by
//!   the update-indication bits into the new active instance;
//! * **ETL** — transferring the delta (inserted + updated records) from the
//!   OLTP snapshot to the OLAP engine's own instance, using OLAP-side compute
//!   resources (the transfer time is charged to the query);
//! * **resource exchange** — granting, revoking and lending CPU cores between
//!   the engines at core and socket granularity, subject to the
//!   administrator-set OLTP minimums;
//! * **state migration** — the `MigrateStateS1/S2/S3` procedures of
//!   Algorithm 1, which move the system between the co-located (S1), isolated
//!   (S2) and hybrid (S3) designs.

pub mod engine;
pub mod exchange;
pub mod migration;
pub mod state;

pub use engine::{AccessMethod, EtlReport, RdeConfig, RdeEngine, SwitchReport};
pub use exchange::ExchangeReport;
pub use migration::MigrationReport;
pub use state::{ElasticityMode, SystemState};
