//! Columnar tables: a schema plus one [`Column`] per attribute.
//!
//! A `ColumnarTable` is one *instance* of a relation. The twin-instance
//! machinery in [`crate::twin`] owns two of them per relation plus the OLAP
//! engine's own instance.

use crate::column::Column;
use crate::schema::{TableSchema, Value};
use crate::stats::ColumnStats;
use crate::RowId;
use std::sync::atomic::{AtomicU64, Ordering};

/// One columnar instance of a relation.
#[derive(Debug)]
pub struct ColumnarTable {
    schema: TableSchema,
    columns: Vec<Column>,
    column_stats: Vec<ColumnStats>,
    /// Number of fully appended rows (published after all columns are written).
    row_count: AtomicU64,
}

impl ColumnarTable {
    /// Create an empty instance for `schema`.
    pub fn new(schema: TableSchema) -> Self {
        let columns = schema
            .columns
            .iter()
            .map(|c| Column::new(c.dtype))
            .collect();
        let column_stats = schema.columns.iter().map(|_| ColumnStats::new()).collect();
        ColumnarTable {
            schema,
            columns,
            column_stats,
            row_count: AtomicU64::new(0),
        }
    }

    /// Create an empty instance with per-column capacity pre-allocated.
    pub fn with_capacity(schema: TableSchema, rows: usize) -> Self {
        let columns = schema
            .columns
            .iter()
            .map(|c| Column::with_capacity(c.dtype, rows))
            .collect();
        let column_stats = schema.columns.iter().map(|_| ColumnStats::new()).collect();
        ColumnarTable {
            schema,
            columns,
            column_stats,
            row_count: AtomicU64::new(0),
        }
    }

    /// The table schema.
    pub fn schema(&self) -> &TableSchema {
        &self.schema
    }

    /// Number of committed rows.
    pub fn row_count(&self) -> u64 {
        self.row_count.load(Ordering::Acquire)
    }

    /// Column accessor by index.
    pub fn column(&self, idx: usize) -> &Column {
        &self.columns[idx]
    }

    /// Column accessor by name.
    pub fn column_by_name(&self, name: &str) -> Option<&Column> {
        self.schema.column_index(name).map(|i| &self.columns[i])
    }

    /// Statistics of column `idx`.
    pub fn column_stats(&self, idx: usize) -> &ColumnStats {
        &self.column_stats[idx]
    }

    /// All columns.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Total bytes of the instance in columnar representation.
    pub fn bytes(&self) -> u64 {
        self.row_count() * self.schema.row_width_bytes()
    }

    /// Append a row; returns its [`RowId`]. The row must match the schema.
    pub fn append_row(&self, row: &[Value]) -> Result<RowId, crate::StorageError> {
        self.schema.check_row(row)?;
        for (col, val) in self.columns.iter().zip(row) {
            col.append(val);
        }
        // Publish the row only after every column holds it.
        let id = self.row_count.fetch_add(1, Ordering::AcqRel);
        Ok(id)
    }

    /// Append a row that is known to match the schema (skips validation);
    /// used on the bulk-load path.
    pub fn append_row_unchecked(&self, row: &[Value]) -> RowId {
        for (col, val) in self.columns.iter().zip(row) {
            col.append(val);
        }
        self.row_count.fetch_add(1, Ordering::AcqRel)
    }

    /// Overwrite one attribute of an existing row.
    pub fn update_value(
        &self,
        row: RowId,
        column: usize,
        value: &Value,
    ) -> Result<(), crate::StorageError> {
        if row >= self.row_count() {
            return Err(crate::StorageError::RowOutOfRange {
                table: self.schema.name.clone(),
                row,
                rows: self.row_count(),
            });
        }
        if value.data_type() != self.schema.columns[column].dtype {
            return Err(crate::StorageError::TypeMismatch {
                table: self.schema.name.clone(),
                column,
                expected: self.schema.columns[column].dtype,
                got: value.data_type(),
            });
        }
        self.columns[column].update(row as usize, value);
        self.column_stats[column].mark_updated();
        Ok(())
    }

    /// Read one attribute of a row.
    pub fn get_value(&self, row: RowId, column: usize) -> Option<Value> {
        if row >= self.row_count() {
            return None;
        }
        self.columns[column].get(row as usize)
    }

    /// Read a whole row.
    pub fn get_row(&self, row: RowId) -> Option<Vec<Value>> {
        if row >= self.row_count() {
            return None;
        }
        Some(
            self.columns
                .iter()
                // lint:allow(no-panic): row < row_count was checked above, and values are appended to every column before row_count is published
                .map(|c| c.get(row as usize).expect("row published but column short"))
                .collect(),
        )
    }

    /// Copy row `row` of `src` into this instance (all columns), growing this
    /// instance if necessary. Both instances must share the same schema.
    /// Used by twin synchronisation and ETL.
    pub fn copy_row_from(&self, src: &ColumnarTable, row: RowId) {
        debug_assert_eq!(self.schema.arity(), src.schema.arity());
        for (dst_col, src_col) in self.columns.iter().zip(src.columns.iter()) {
            dst_col.copy_row_from(src_col, row as usize);
        }
        // Publishing: the row count only grows, never shrinks.
        let mut current = self.row_count.load(Ordering::Acquire);
        while row + 1 > current {
            match self.row_count.compare_exchange(
                current,
                row + 1,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => break,
                Err(actual) => current = actual,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnDef, DataType};

    fn item_schema() -> TableSchema {
        TableSchema::new(
            "item",
            vec![
                ColumnDef::new("i_id", DataType::I64),
                ColumnDef::new("i_price", DataType::F64),
                ColumnDef::new("i_name", DataType::Str),
            ],
            Some(0),
        )
    }

    fn row(id: i64, price: f64, name: &str) -> Vec<Value> {
        vec![Value::I64(id), Value::F64(price), Value::from(name)]
    }

    #[test]
    fn append_and_read_rows() {
        let t = ColumnarTable::new(item_schema());
        let r0 = t.append_row(&row(1, 9.5, "bolt")).unwrap();
        let r1 = t.append_row(&row(2, 3.25, "nut")).unwrap();
        assert_eq!((r0, r1), (0, 1));
        assert_eq!(t.row_count(), 2);
        assert_eq!(t.get_value(1, 1), Some(Value::F64(3.25)));
        assert_eq!(t.get_row(0).unwrap()[2], Value::from("bolt"));
        assert_eq!(t.get_row(5), None);
    }

    #[test]
    fn append_rejects_schema_violation() {
        let t = ColumnarTable::new(item_schema());
        assert!(t.append_row(&[Value::I64(1)]).is_err());
        assert!(t
            .append_row(&[Value::F64(1.0), Value::F64(1.0), Value::from("x")])
            .is_err());
        assert_eq!(t.row_count(), 0);
    }

    #[test]
    fn update_marks_column_stats() {
        let t = ColumnarTable::new(item_schema());
        t.append_row(&row(1, 9.5, "bolt")).unwrap();
        assert!(!t.column_stats(1).is_updated());
        t.update_value(0, 1, &Value::F64(10.0)).unwrap();
        assert!(t.column_stats(1).is_updated());
        assert_eq!(t.get_value(0, 1), Some(Value::F64(10.0)));
    }

    #[test]
    fn update_rejects_bad_row_or_type() {
        let t = ColumnarTable::new(item_schema());
        t.append_row(&row(1, 9.5, "bolt")).unwrap();
        assert!(t.update_value(3, 1, &Value::F64(1.0)).is_err());
        assert!(t.update_value(0, 1, &Value::I64(1)).is_err());
    }

    #[test]
    fn bytes_accounting_scales_with_rows() {
        let t = ColumnarTable::new(item_schema());
        assert_eq!(t.bytes(), 0);
        for i in 0..10 {
            t.append_row(&row(i, 1.0, "x")).unwrap();
        }
        assert_eq!(t.bytes(), 10 * (8 + 8 + 24));
    }

    #[test]
    fn copy_row_from_replicates_and_publishes() {
        let schema = item_schema();
        let src = ColumnarTable::new(schema.clone());
        let dst = ColumnarTable::new(schema);
        for i in 0..5 {
            src.append_row(&row(i, i as f64, "n")).unwrap();
        }
        dst.copy_row_from(&src, 4);
        assert_eq!(dst.row_count(), 5);
        assert_eq!(dst.get_value(4, 0), Some(Value::I64(4)));
        // Earlier rows exist as zero-filled placeholders until copied.
        dst.copy_row_from(&src, 2);
        assert_eq!(dst.get_value(2, 1), Some(Value::F64(2.0)));
        assert_eq!(dst.row_count(), 5, "row count must not shrink");
    }

    #[test]
    fn column_by_name_lookup() {
        let t = ColumnarTable::new(item_schema());
        assert!(t.column_by_name("i_price").is_some());
        assert!(t.column_by_name("nope").is_none());
    }
}
