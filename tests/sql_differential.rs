//! SQL differential suite: the frontend's plans versus the hand-built plans
//! and the row-at-a-time oracle.
//!
//! Three layers of evidence that the SQL path is exactly the engine path:
//!
//! 1. Every CH query's SQL text plans to a `QueryPlan` structurally equal to
//!    the hand-built plan (also asserted in `htap-chbench`'s unit tests).
//! 2. Executing the SQL-derived plan over the populated CH database yields a
//!    `QueryOutput` — results *and* `WorkProfile` accounting — bit-for-bit
//!    identical to the hand-built plan's output at 1, 2 and 4 workers, on
//!    both the contiguous-snapshot and the split (fresh-tail) access paths.
//! 3. Randomized SQL texts over a synthetic star schema round-trip
//!    parse → bind → plan → vectorized execution and agree with the
//!    independent reference executor (`htap_olap::reference`), with the
//!    engine bit-identical across worker counts.

use adaptive_htap::chbench::query_mix_wide;
use adaptive_htap::olap::{execute_reference, QueryExecutor, QueryResult, ScanSource, WorkerTeam};
use adaptive_htap::sim::{CoreId, SocketId};
use adaptive_htap::sql::{plan as plan_sql, Catalog, SqlError};
use adaptive_htap::storage::{
    ColumnDef, ColumnarTable, DataType, TableSchema, TableSnapshot, Value,
};
use adaptive_htap::{HtapConfig, HtapSystem};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::sync::Arc;

// ---------------------------------------------------------------------------
// Layer 1 + 2: the seven CH queries, SQL vs hand-built, over real data.
// ---------------------------------------------------------------------------

/// Executing each CH query's SQL-derived plan must be indistinguishable from
/// the hand-built plan: same `QueryResult`, same `WorkProfile`, at 1/2/4
/// workers, on contiguous and split access paths, with fresh OLTP rows in
/// the mix.
#[test]
fn ch_sql_outputs_bit_identical_to_hand_built_at_1_2_4_workers() {
    use adaptive_htap::{Schedule, SystemState};
    let system = HtapSystem::build(HtapConfig::tiny()).unwrap();
    // Ingest so the split path has a fresh tail to account for.
    system.run_oltp(10);
    // Two access regimes: S2 (ETL, OLAP-local contiguous scan) and S3-NI
    // (split access — OLAP-local head plus the fresh OLTP tail).
    for state in [SystemState::S2Isolated, SystemState::S3HybridNonIsolated] {
        system.set_schedule(Schedule::Static(state));
        for query in query_mix_wide() {
            let hand = query.plan();
            let sql_plan = query
                .sql_plan()
                .unwrap_or_else(|e| panic!("{}: SQL failed to plan: {e}", query.label()));
            assert_eq!(
                sql_plan,
                hand,
                "{}: plans differ structurally",
                query.label()
            );
            // Schedule once and execute both plans over the same access
            // paths, at every worker count.
            let scheduled = system.with_scheduler(|s| s.schedule_query(&hand, false));
            let executor = QueryExecutor::with_block_rows(257);
            for workers in [1u16, 2, 4] {
                let team = WorkerTeam::from_cores((0..workers).map(CoreId).collect());
                let ctx = format!("{} {state:?} {workers}w", query.label());
                let from_hand = executor
                    .execute_parallel(&hand, &scheduled.sources, &team)
                    .unwrap_or_else(|e| panic!("{ctx}: hand-built failed: {e}"));
                let from_sql = executor
                    .execute_parallel(&sql_plan, &scheduled.sources, &team)
                    .unwrap_or_else(|e| panic!("{ctx}: SQL plan failed: {e}"));
                // Results AND WorkProfile (bytes per socket, tuples, probes,
                // fresh rows): the whole QueryOutput must match bit for bit.
                assert_eq!(from_sql, from_hand, "{ctx}: outputs diverged");
                assert!(
                    from_hand.work.tuples_scanned > 0,
                    "{ctx}: vacuous comparison"
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Layer 3: randomized SQL round-trips against the oracle.
// ---------------------------------------------------------------------------

const FACT_ROWS: u64 = 2_000;
const MID_ROWS: u64 = 30;
const FAR_ROWS: u64 = 12;

struct Dataset {
    fact: Arc<ColumnarTable>,
    mid: Arc<ColumnarTable>,
    far: Arc<ColumnarTable>,
}

impl Dataset {
    fn build() -> Self {
        let mut rng = StdRng::seed_from_u64(0x50_51);
        let fact = {
            let schema = TableSchema::new(
                "fact",
                vec![
                    ColumnDef::new("f_id", DataType::I64),
                    ColumnDef::new("f_mid", DataType::I64),
                    ColumnDef::new("f_g", DataType::I32),
                    ColumnDef::new("f_h", DataType::I32),
                    ColumnDef::new("f_a", DataType::F64),
                    ColumnDef::new("f_b", DataType::F64),
                ],
                Some(0),
            );
            let t = ColumnarTable::new(schema);
            for i in 0..FACT_ROWS {
                t.append_row(&[
                    Value::I64(i as i64),
                    Value::I64(rng.random_range(0..MID_ROWS) as i64),
                    Value::I32(rng.random_range(0..6)),
                    Value::I32(rng.random_range(0..4)),
                    Value::F64(rng.random_range(0.0..25.0)),
                    Value::F64(rng.random_range(-10.0..10.0)),
                ])
                .unwrap();
            }
            Arc::new(t)
        };
        let mid = {
            let schema = TableSchema::new(
                "mid",
                vec![
                    ColumnDef::new("m_id", DataType::I64),
                    ColumnDef::new("m_far", DataType::I64),
                    ColumnDef::new("m_v", DataType::F64),
                ],
                Some(0),
            );
            let t = ColumnarTable::new(schema);
            for i in 0..MID_ROWS {
                t.append_row(&[
                    Value::I64(i as i64),
                    Value::I64(rng.random_range(0..FAR_ROWS) as i64),
                    Value::F64(rng.random_range(0.0..100.0)),
                ])
                .unwrap();
            }
            Arc::new(t)
        };
        let far = {
            let schema = TableSchema::new(
                "far",
                vec![
                    ColumnDef::new("r_id", DataType::I64),
                    ColumnDef::new("r_v", DataType::F64),
                ],
                Some(0),
            );
            let t = ColumnarTable::new(schema);
            for i in 0..FAR_ROWS {
                t.append_row(&[
                    Value::I64(i as i64),
                    Value::F64(rng.random_range(0.0..50.0)),
                ])
                .unwrap();
            }
            Arc::new(t)
        };
        Dataset { fact, mid, far }
    }

    fn sources(&self, split_fact: bool) -> BTreeMap<String, ScanSource> {
        let mut sources = BTreeMap::new();
        let fact_snap = TableSnapshot::new("fact".into(), Arc::clone(&self.fact), FACT_ROWS, 0);
        let fact_source = if split_fact {
            ScanSource::split(
                Arc::clone(&self.fact),
                FACT_ROWS / 2,
                SocketId(1),
                &fact_snap,
                SocketId(0),
            )
        } else {
            ScanSource::contiguous_snapshot(&fact_snap, SocketId(0))
        };
        sources.insert("fact".to_string(), fact_source);
        let mid_snap = TableSnapshot::new("mid".into(), Arc::clone(&self.mid), MID_ROWS, 0);
        sources.insert(
            "mid".to_string(),
            ScanSource::contiguous_snapshot(&mid_snap, SocketId(1)),
        );
        let far_snap = TableSnapshot::new("far".into(), Arc::clone(&self.far), FAR_ROWS, 0);
        sources.insert(
            "far".to_string(),
            ScanSource::contiguous_snapshot(&far_snap, SocketId(1)),
        );
        sources
    }

    /// The SQL catalog over this star schema, with an encoded LIKE on `mid`
    /// (`m_tag LIKE 'HI%'` ≡ `m_v >= 50` — the upper half of the range).
    fn catalog(&self) -> Catalog {
        Catalog::new()
            .with_table(self.fact.schema().clone(), FACT_ROWS)
            .with_table(self.mid.schema().clone(), MID_ROWS)
            .with_table(self.far.schema().clone(), FAR_ROWS)
            .with_like_rewrite(
                "mid",
                "m_tag",
                "HI%",
                adaptive_htap::olap::Predicate::new("m_v", adaptive_htap::olap::CmpOp::Ge, 50.0),
            )
    }
}

/// Random `column op literal` filter text over a column pool.
fn rand_filters(rng: &mut StdRng, pool: &[(&str, f64, f64)], max: u32) -> Vec<String> {
    (0..rng.random_range(0..=max))
        .map(|_| {
            let (col, lo, hi) = pool[rng.random_range(0..pool.len())];
            let op = ["=", "<>", "<", "<=", ">", ">="][rng.random_range(0..6usize)];
            let mut literal = rng.random_range(lo..hi);
            if matches!(op, "=" | "<>") {
                literal = literal.round();
            }
            // Rust's f64 Display is shortest-round-trip, so the parsed
            // literal is bit-identical to the generated one.
            format!("{col} {op} {literal}")
        })
        .collect()
}

const FACT_COLS: [(&str, f64, f64); 6] = [
    ("f_id", 0.0, 2_000.0),
    ("f_mid", 0.0, 30.0),
    ("f_g", 0.0, 6.0),
    ("f_h", 0.0, 4.0),
    ("f_a", 0.0, 25.0),
    ("f_b", -10.0, 10.0),
];
const MID_COLS: [(&str, f64, f64); 3] = [
    ("m_id", 0.0, 30.0),
    ("m_far", 0.0, 12.0),
    ("m_v", 0.0, 100.0),
];
const FAR_COLS: [(&str, f64, f64); 2] = [("r_id", 0.0, 12.0), ("r_v", 0.0, 50.0)];

/// 1..=3 random aggregate call texts over the fact measures; `count_first`
/// puts COUNT(*) first for top-k plans (counts are exact in both executors).
fn rand_aggregates(rng: &mut StdRng, count_first: bool) -> Vec<String> {
    let mut aggs: Vec<String> = Vec::new();
    if count_first {
        aggs.push("COUNT(*)".into());
    }
    let measures = ["f_a", "f_b"];
    for _ in 0..rng.random_range(1..=3usize) {
        let col = measures[rng.random_range(0..measures.len())];
        aggs.push(match rng.random_range(0..6u32) {
            0 => "COUNT(*)".to_string(),
            1 => format!("SUM({col})"),
            2 => format!("AVG({col})"),
            3 => format!("MIN({col})"),
            4 => format!("MAX({col})"),
            _ => format!("SUM(f_a * {col})"),
        });
    }
    aggs
}

fn rand_group_by(rng: &mut StdRng) -> Vec<&'static str> {
    if rng.random_range(0..3u32) == 0 {
        vec!["f_g", "f_h"]
    } else {
        vec![["f_g", "f_h"][rng.random_range(0..2usize)]]
    }
}

/// The fact-side join key text: usually the plain fk column, sometimes an
/// expression landing in the mid id range.
fn rand_fact_key(rng: &mut StdRng) -> &'static str {
    if rng.random_range(0..4u32) == 0 {
        "f_g * 4 + f_h"
    } else {
        "f_mid"
    }
}

fn where_clause(terms: &[String]) -> String {
    if terms.is_empty() {
        String::new()
    } else {
        format!(" WHERE {}", terms.join(" AND "))
    }
}

/// Generate one random valid SQL text of the given shape.
fn rand_sql(rng: &mut StdRng, shape: u32) -> String {
    match shape {
        0 => {
            let aggs = rand_aggregates(rng, false).join(", ");
            format!(
                "SELECT {aggs} FROM fact{}",
                where_clause(&rand_filters(rng, &FACT_COLS, 2))
            )
        }
        1 => {
            let group = rand_group_by(rng);
            let aggs = rand_aggregates(rng, false).join(", ");
            format!(
                "SELECT {}, {aggs} FROM fact{} GROUP BY {}",
                group.join(", "),
                where_clause(&rand_filters(rng, &FACT_COLS, 2)),
                group.join(", ")
            )
        }
        2 => {
            let aggs = rand_aggregates(rng, false).join(", ");
            let mut terms = rand_filters(rng, &FACT_COLS, 2);
            terms.extend(rand_filters(rng, &MID_COLS, 2));
            if rng.random_range(0..3u32) == 0 {
                terms.push("m_tag LIKE 'HI%'".into());
            }
            format!(
                "SELECT {aggs} FROM fact JOIN mid ON f_mid = m_id{}",
                where_clause(&terms)
            )
        }
        3 => {
            let aggs = rand_aggregates(rng, false).join(", ");
            let mut terms = rand_filters(rng, &FACT_COLS, 2);
            terms.extend(rand_filters(rng, &MID_COLS, 2));
            terms.extend(rand_filters(rng, &FAR_COLS, 2));
            format!(
                "SELECT {aggs} FROM fact JOIN mid ON {} = m_id JOIN far ON m_far = r_id{}",
                rand_fact_key(rng),
                where_clause(&terms)
            )
        }
        _ => {
            let group = rand_group_by(rng);
            let top_k = rng.random_range(0..2u32) == 0;
            let aggs = rand_aggregates(rng, top_k).join(", ");
            let mut terms = rand_filters(rng, &FACT_COLS, 2);
            terms.extend(rand_filters(rng, &MID_COLS, 2));
            let tail = if top_k {
                format!(
                    " ORDER BY COUNT(*) DESC LIMIT {}",
                    rng.random_range(1..=6u32)
                )
            } else {
                String::new()
            };
            format!(
                "SELECT {}, {aggs} FROM fact JOIN mid ON {} = m_id{} GROUP BY {}{tail}",
                group.join(", "),
                rand_fact_key(rng),
                where_clause(&terms),
                group.join(", ")
            )
        }
    }
}

/// Relative tolerance for SUM/AVG associativity differences between the
/// engine's morsel-merge order and the oracle's scan order.
fn assert_close(a: f64, b: f64, ctx: &str) {
    let tol = 1e-9 * a.abs().max(b.abs()).max(1.0);
    assert!((a - b).abs() <= tol, "{ctx}: engine {a} vs reference {b}");
}

fn assert_matches_reference(engine: &QueryResult, reference: &QueryResult, ctx: &str) {
    match (engine, reference) {
        (QueryResult::Scalars(e), QueryResult::Scalars(r)) => {
            assert_eq!(e.len(), r.len(), "{ctx}: scalar arity");
            for (i, (a, b)) in e.iter().zip(r).enumerate() {
                assert_close(*a, *b, &format!("{ctx} scalar {i}"));
            }
        }
        (QueryResult::Groups(e), QueryResult::Groups(r)) => {
            assert_eq!(e.len(), r.len(), "{ctx}: group count");
            for (i, ((ek, ea), (rk, ra))) in e.iter().zip(r).enumerate() {
                assert_eq!(ek, rk, "{ctx}: group {i} key");
                assert_eq!(ea.len(), ra.len(), "{ctx}: group {i} arity");
                for (j, (a, b)) in ea.iter().zip(ra).enumerate() {
                    assert_close(*a, *b, &format!("{ctx} group {i} agg {j}"));
                }
            }
        }
        _ => panic!("{ctx}: result shapes differ"),
    }
}

/// 100 randomized SQL texts (20 per shape): parse → bind → plan → execute.
/// The engine must be bit-identical across 1/2/4 workers and agree with the
/// independent row-at-a-time oracle on every plan.
#[test]
fn randomized_sql_round_trips_match_the_oracle() {
    let dataset = Dataset::build();
    let catalog = dataset.catalog();
    let mut rng = StdRng::seed_from_u64(0x5EED_05A1);
    for case in 0..100u32 {
        let shape = case % 5;
        let sql = rand_sql(&mut rng, shape);
        let ctx = format!("case {case}: {sql}");
        let plan = plan_sql(&sql, &catalog).unwrap_or_else(|e| panic!("{ctx}: plan: {e}"));
        let sources = dataset.sources(case % 3 == 0);
        let executor = QueryExecutor::with_block_rows(rng.random_range(16..512));

        let baseline = executor
            .execute_parallel(&plan, &sources, &WorkerTeam::from_cores(vec![CoreId(0)]))
            .unwrap_or_else(|e| panic!("{ctx}: engine failed: {e}"));
        for workers in [2u16, 4] {
            let team = WorkerTeam::from_cores((0..workers).map(CoreId).collect());
            let parallel = executor.execute_parallel(&plan, &sources, &team).unwrap();
            assert_eq!(baseline, parallel, "{ctx}: {workers} workers diverged");
        }
        let reference = execute_reference(&plan, &sources)
            .unwrap_or_else(|e| panic!("{ctx}: reference failed: {e}"));
        assert_matches_reference(&baseline.result, &reference, &ctx);
    }
}

/// The join-order choice must never change a query's answer. The planner
/// picks the probe side purely by cost (probe the relation the catalog
/// claims is larger), and that is safe because the hash probe preserves
/// join multiplicities whichever side builds — so flipping the statistics
/// flips the physical plan but the executed count stays the SQL inner-join
/// count (2000: every fact row has a mid match), and primary-key metadata
/// plays no part (the semijoin era's PK pin is retired).
#[test]
fn join_order_is_cost_based_and_statistics_cannot_change_the_answer() {
    let dataset = Dataset::build();
    let sources = dataset.sources(false);
    let sql = "SELECT COUNT(*) FROM mid JOIN fact ON m_id = f_mid";
    let honest = dataset.catalog();
    let inverted = Catalog::new()
        .with_table(dataset.fact.schema().clone(), 10)
        .with_table(dataset.mid.schema().clone(), 10_000);
    // PK metadata must be irrelevant: stripping it changes no choice.
    let strip = |s: &adaptive_htap::storage::TableSchema| {
        TableSchema::new(s.name.clone(), s.columns.clone(), None)
    };
    let honest_free = Catalog::new()
        .with_table(strip(dataset.fact.schema()), FACT_ROWS)
        .with_table(strip(dataset.mid.schema()), MID_ROWS);
    let inverted_free = Catalog::new()
        .with_table(strip(dataset.fact.schema()), 10)
        .with_table(strip(dataset.mid.schema()), 10_000);
    let executor = QueryExecutor::with_block_rows(128);
    let team = WorkerTeam::from_cores(vec![CoreId(0)]);
    let mut counts = Vec::new();
    for (catalog, probe_side) in [
        (&honest, "fact"),
        (&inverted, "mid"),
        (&honest_free, "fact"),
        (&inverted_free, "mid"),
    ] {
        let plan = plan_sql(sql, catalog).unwrap();
        let adaptive_htap::olap::QueryPlan::JoinAggregate { fact, .. } = &plan else {
            panic!("expected a join plan, got {plan:?}");
        };
        // Pure cost: the claimed-larger relation is probed.
        assert_eq!(fact, probe_side);
        let out = executor.execute_parallel(&plan, &sources, &team).unwrap();
        let reference = execute_reference(&plan, &sources).unwrap();
        assert_matches_reference(&out.result, &reference, "cost-ordered join");
        counts.push(out.result.scalars().unwrap()[0]);
    }
    // Same SQL, four statistics regimes, two physical plans, one answer —
    // the SQL inner-join count (every one of the 2000 fact rows joins one
    // mid row; probing mid folds each mid row once per matching fact row).
    assert!(counts.iter().all(|&c| c == FACT_ROWS as f64), "{counts:?}");
}

/// End-to-end malformed/unsupported SQL against the real CH catalog: typed
/// errors with positions, no panics, and the system stays usable afterwards.
#[test]
fn malformed_sql_is_rejected_with_typed_errors() {
    type ErrCheck = fn(&SqlError) -> bool;
    let system = HtapSystem::build(HtapConfig::tiny()).unwrap();
    let cases: Vec<(&str, ErrCheck)> = vec![
        ("", |e| matches!(e, SqlError::UnexpectedToken { .. })),
        ("SELECT", |e| matches!(e, SqlError::UnexpectedToken { .. })),
        ("SELECT COUNT(*) FROM nowhere", |e| {
            matches!(e, SqlError::UnknownTable { .. })
        }),
        ("SELECT SUM(nope) FROM orderline", |e| {
            matches!(e, SqlError::UnknownColumn { .. })
        }),
        ("SELECT COUNT(*) FROM item WHERE i_data LIKE 'PR", |e| {
            matches!(e, SqlError::UnclosedString { .. })
        }),
        ("SELECT COUNT(*) FROM item WHERE i_data LIKE 'ZZ%'", |e| {
            matches!(e, SqlError::Unsupported { .. })
        }),
        (
            "SELECT COUNT(*) FROM orderline WHERE ol_amount = 1 OR ol_amount = 2",
            |e| matches!(e, SqlError::Unsupported { .. }),
        ),
        (
            "SELECT COUNT(*) FROM orders JOIN orderline ON o_key < ol_o_id",
            |e| matches!(e, SqlError::Unsupported { .. }),
        ),
        (
            "SELECT o_id, COUNT(*) FROM orders GROUP BY o_id LIMIT 3",
            |e| matches!(e, SqlError::Unsupported { .. }),
        ),
    ];
    for (sql, check) in cases {
        match system.plan_sql(sql) {
            Err(e) => {
                assert!(check(&e), "{sql:?}: unexpected error {e:?}");
                assert!(e.pos() <= sql.len() + 1, "{sql:?}: position out of range");
            }
            Ok(plan) => panic!("{sql:?}: expected an error, planned {plan:?}"),
        }
    }
    // The system is unharmed: a valid query still runs.
    let report = system
        .execute_sql("SELECT SUM(ol_amount) FROM orderline")
        .unwrap();
    assert!(report.result_rows >= 1);
}
