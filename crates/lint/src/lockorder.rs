//! L4: the static lock-order graph.
//!
//! For every function, the scan extracts blocking lock acquisitions —
//! `.lock()`, `.read()`, `.write()` with no arguments — and tracks which
//! guards are still live when the next acquisition happens:
//!
//! * a `let`-bound guard lives to the end of its enclosing block (or to an
//!   explicit `drop(name)`),
//! * a temporary guard (`counter.lock().push(x)`) lives to the end of its
//!   statement.
//!
//! Every acquisition B performed while guard A is live contributes a
//! directed edge A→B, named by the *receiver path* with a leading `self.`
//! stripped (`commits.lock()` inside two different methods is the same
//! node). The union of all files' edges must be acyclic; a cycle is the
//! static shadow of an AB/BA deadlock.
//!
//! This is a lexical approximation, and deliberately so: it cannot see
//! through guards returned from functions, aliased receivers, or two
//! distinct structs with an identically-named field. False positives are
//! expected to be rare (receiver names in this workspace are distinctive)
//! and are suppressed edge-by-edge with `// lint:allow(lock-order): why`.
//! The authority on real interleavings is the runtime checker in
//! `shims/parking_lot`, which sees actual lock instances; this rule exists
//! to flag suspicious nesting *before* any test has to interleave.
//!
//! `try_lock`/`try_read`/`try_write` are ignored here: they cannot block,
//! so they never complete a cycle on their own (the runtime checker still
//! accounts for guards they return).

use crate::allow::{self, Allow};
use crate::lexer::Token;
use crate::rules::{Diagnostic, Rule};
use std::collections::BTreeMap;

/// One `A held while acquiring B` observation.
#[derive(Debug, Clone)]
pub struct LockEdge {
    /// Receiver path of the lock already held.
    pub held: String,
    /// Receiver path of the lock being acquired.
    pub acquired: String,
    /// File of the acquisition.
    pub file: String,
    /// Line of the acquisition.
    pub line: u32,
    /// Function the nesting occurs in.
    pub function: String,
}

const ACQUIRE_METHODS: [&str; 3] = ["lock", "read", "write"];

#[derive(Debug)]
struct Hold {
    node: String,
    /// `let`-bound variable name, when one could be determined.
    var: Option<String>,
    /// Brace depth the binding lives at; `None` for statement temporaries.
    block_depth: Option<i32>,
    /// For temporaries: the depth of the statement they belong to.
    stmt_depth: i32,
}

/// Extract lock-order edges from one file. `mask` marks test-only tokens
/// (skipped — deliberate inversions live in tests of the runtime checker).
pub fn extract(
    file: &str,
    tokens: &[Token],
    sig: &[usize],
    mask: &[bool],
    allows: &[Allow],
) -> Vec<LockEdge> {
    let mut edges = Vec::new();
    let mut depth = 0i32;
    // Stack of (function name, depth its body opened at).
    let mut fn_stack: Vec<(String, i32)> = Vec::new();
    let mut pending_fn: Option<String> = None;
    let mut pending_paren = 0i32;
    let mut holds: Vec<Hold> = Vec::new();
    // `let [mut] name` seen since the last statement boundary.
    let mut stmt_let: Option<String> = None;
    let mut after_let = false;
    // Paren/bracket nesting, to tell a match-arm `,` from an argument `,`.
    let mut paren = 0i32;

    for (s, &i) in sig.iter().enumerate() {
        let tok = &tokens[i];
        if tok.is_ident("fn") && !mask[i] {
            let name = sig
                .get(s + 1)
                .map(|&n| tokens[n].text.clone())
                .unwrap_or_else(|| "<anon>".into());
            pending_fn = Some(name);
            pending_paren = 0;
            continue;
        }
        if pending_fn.is_some() {
            if tok.is_punct('(') {
                pending_paren += 1;
            } else if tok.is_punct(')') {
                pending_paren -= 1;
            } else if tok.is_punct(';') && pending_paren == 0 {
                pending_fn = None; // trait method declaration, no body
            } else if tok.is_punct('{') && pending_paren == 0 {
                depth += 1;
                if let Some(name) = pending_fn.take() {
                    fn_stack.push((name, depth));
                }
                continue;
            }
            if !tok.is_punct('{') {
                continue;
            }
        }
        if tok.is_punct('(') || tok.is_punct('[') {
            paren += 1;
        } else if tok.is_punct(')') || tok.is_punct(']') {
            paren -= 1;
        }
        if tok.is_punct('{') {
            depth += 1;
            stmt_let = None;
            after_let = false;
            continue;
        }
        if tok.is_punct('}') {
            depth -= 1;
            holds.retain(|h| match h.block_depth {
                Some(bd) => bd <= depth,
                None => h.stmt_depth <= depth,
            });
            if let Some((_, body_depth)) = fn_stack.last() {
                if depth < *body_depth {
                    fn_stack.pop();
                    holds.clear();
                }
            }
            stmt_let = None;
            after_let = false;
            continue;
        }
        // `;` ends the statement; a `,` outside parens/brackets separates
        // match arms or struct-literal fields, which also ends the
        // temporary's expression for our purposes (a match over guard
        // alternatives must not look like nested holds).
        if tok.is_punct(';') || (tok.is_punct(',') && paren <= 0) {
            holds.retain(|h| h.block_depth.is_some() || h.stmt_depth < depth);
            stmt_let = None;
            after_let = false;
            continue;
        }
        if tok.is_ident("let") {
            after_let = true;
            stmt_let = None;
            continue;
        }
        if after_let {
            if tok.is_ident("mut") {
                continue;
            }
            if tok.kind == crate::lexer::Kind::Ident {
                stmt_let = Some(tok.text.clone());
            }
            after_let = false;
            continue;
        }
        // drop(name) releases a named guard.
        if tok.is_ident("drop") {
            if let (Some(&n1), Some(&n2), Some(&n3)) =
                (sig.get(s + 1), sig.get(s + 2), sig.get(s + 3))
            {
                if tokens[n1].is_punct('(') && tokens[n3].is_punct(')') {
                    let name = &tokens[n2].text;
                    if let Some(pos) = holds
                        .iter()
                        .rposition(|h| h.var.as_deref() == Some(name.as_str()))
                    {
                        holds.remove(pos);
                    }
                }
            }
            continue;
        }
        // Blocking acquisition: `.lock()` / `.read()` / `.write()`.
        let is_acquire = ACQUIRE_METHODS.contains(&tok.text.as_str())
            && s >= 1
            && tokens[sig[s - 1]].is_punct('.')
            && matches!(sig.get(s + 1), Some(&n) if tokens[n].is_punct('('))
            && matches!(sig.get(s + 2), Some(&n) if tokens[n].is_punct(')'));
        if !is_acquire || mask[i] || fn_stack.is_empty() {
            continue;
        }
        let Some(node) = receiver_path(tokens, sig, s - 1) else {
            continue;
        };
        let function = fn_stack
            .last()
            .map(|(n, _)| n.clone())
            .unwrap_or_else(|| "<anon>".into());
        if !allow::suppressed(allows, Rule::LockOrder, tok.line) {
            for hold in &holds {
                edges.push(LockEdge {
                    held: hold.node.clone(),
                    acquired: node.clone(),
                    file: file.to_string(),
                    line: tok.line,
                    function: function.clone(),
                });
            }
        }
        // The guard binds to the `let` only when the acquisition *ends* the
        // initializer (`let g = x.lock();`). In `let n = x.read().len();`
        // the guard is a temporary of the expression — the `let` binds the
        // value extracted through it — and dies at the statement end.
        let binds_let =
            stmt_let.is_some() && matches!(sig.get(s + 3), Some(&n) if tokens[n].is_punct(';'));
        holds.push(Hold {
            node,
            var: if binds_let { stmt_let.clone() } else { None },
            block_depth: if binds_let { Some(depth) } else { None },
            stmt_depth: depth,
        });
    }
    edges
}

/// Reconstruct the receiver path ending at the `.` token `sig[dot_s]`.
/// `self.gate.switch_lock` → `gate.switch_lock`; `inner().state` keeps the
/// call parens; unnameable receivers (`(*a).lock()`) return `None`.
fn receiver_path(tokens: &[Token], sig: &[usize], dot_s: usize) -> Option<String> {
    let mut parts: Vec<String> = Vec::new();
    let mut s = dot_s; // index in sig of the '.' before the method
    loop {
        let prev = s.checked_sub(1)?;
        let tok = &tokens[sig[prev]];
        if tok.is_punct(')') {
            // Walk back over the call's parens to its callee name.
            let mut depth = 0i32;
            let mut p = prev;
            loop {
                let t = &tokens[sig[p]];
                if t.is_punct(')') {
                    depth += 1;
                } else if t.is_punct('(') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                p = p.checked_sub(1)?;
            }
            let callee = p.checked_sub(1)?;
            if tokens[sig[callee]].kind != crate::lexer::Kind::Ident {
                return None;
            }
            parts.push(format!("{}()", tokens[sig[callee]].text));
            s = callee;
        } else if tok.is_punct(']') {
            // Indexing: name the container, drop the index expression.
            let mut depth = 0i32;
            let mut p = prev;
            loop {
                let t = &tokens[sig[p]];
                if t.is_punct(']') {
                    depth += 1;
                } else if t.is_punct('[') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                p = p.checked_sub(1)?;
            }
            let container = p.checked_sub(1)?;
            if tokens[sig[container]].kind != crate::lexer::Kind::Ident {
                return None;
            }
            parts.push(tokens[sig[container]].text.clone());
            s = container;
        } else if tok.kind == crate::lexer::Kind::Ident {
            parts.push(tok.text.clone());
            s = prev;
        } else {
            break;
        }
        // Continue only through a field access `.`; a NumLit before the dot
        // (tuple index) or anything else ends the path.
        match s.checked_sub(1) {
            Some(p) if tokens[sig[p]].is_punct('.') => s = p,
            _ => break,
        }
    }
    parts.reverse();
    if parts.first().map(String::as_str) == Some("self") {
        parts.remove(0);
    }
    if parts.is_empty() {
        None
    } else {
        Some(parts.join("."))
    }
}

/// Detect cycles in the union of all files' edges. Each distinct cycle
/// yields one diagnostic anchored at its first edge's acquisition site.
pub fn cycles(edges: &[LockEdge]) -> Vec<Diagnostic> {
    // Deduplicated adjacency, deterministic order.
    let mut adj: BTreeMap<&str, BTreeMap<&str, &LockEdge>> = BTreeMap::new();
    for e in edges {
        adj.entry(&e.held)
            .or_default()
            .entry(&e.acquired)
            .or_insert(e);
    }
    let mut color: BTreeMap<&str, u8> = BTreeMap::new(); // 0 white 1 grey 2 black
    let mut diags = Vec::new();
    let nodes: Vec<&str> = adj.keys().copied().collect();
    let mut path: Vec<&str> = Vec::new();
    for &start in &nodes {
        dfs(start, &adj, &mut color, &mut path, &mut diags);
    }
    diags
}

fn dfs<'a>(
    node: &'a str,
    adj: &BTreeMap<&'a str, BTreeMap<&'a str, &'a LockEdge>>,
    color: &mut BTreeMap<&'a str, u8>,
    path: &mut Vec<&'a str>,
    diags: &mut Vec<Diagnostic>,
) {
    if color.get(node).copied().unwrap_or(0) != 0 {
        return;
    }
    color.insert(node, 1);
    path.push(node);
    let succs: Vec<&str> = adj
        .get(node)
        .map(|m| m.keys().copied().collect())
        .unwrap_or_default();
    for succ in succs {
        match color.get(succ).copied().unwrap_or(0) {
            1 => {
                // Back edge: the cycle is path[pos..] closed by node→succ.
                let pos = path.iter().position(|&n| n == succ).unwrap_or(0);
                let mut desc = String::new();
                for win in path[pos..].windows(2) {
                    let e = adj[win[0]][win[1]];
                    desc.push_str(&format!(
                        "{} -> {} (in {} at {}:{}), ",
                        win[0], win[1], e.function, e.file, e.line
                    ));
                }
                let closing = adj[node][succ];
                desc.push_str(&format!(
                    "{} -> {} (in {} at {}:{})",
                    node, succ, closing.function, closing.file, closing.line
                ));
                diags.push(Diagnostic {
                    file: closing.file.clone(),
                    line: closing.line,
                    rule: Rule::LockOrder,
                    message: format!(
                        "lock-order cycle: {desc}; a concurrent schedule can deadlock \
                         here — pick one global order or justify why the schedules \
                         cannot overlap"
                    ),
                });
            }
            0 => dfs(succ, adj, color, path, diags),
            _ => {}
        }
    }
    path.pop();
    color.insert(node, 2);
}
