//! The morsel-driven, vectorized query executor.
//!
//! Every plan is executed as a set of pipelines over [`Morsel`]s — NUMA-tagged
//! row ranges cut from the query's [`ScanSource`]s (§3.3 processes "one block
//! of tuples at a time"; here a block is the unit a worker *claims*, not just
//! the unit it processes). The [`crate::worker::WorkerTeam`] — one pipeline
//! worker per core the RDE engine has granted — pulls morsels from a shared
//! cursor, folds each one into a private partial result, and the partials are
//! merged in morsel-index order.
//!
//! The per-core execution path is vectorized end to end:
//!
//! * **Compiled programs** — every [`ScalarExpr`]/predicate is compiled at
//!   plan-bind time into a flat register program over column *indices*
//!   ([`crate::program`]); the morsel loop never resolves a name or walks a
//!   tree.
//! * **Selection vectors** — filters produce compacted `u32` row-id vectors
//!   instead of `Vec<bool>` masks; join probes and aggregations only touch
//!   surviving rows, and a filterless scan iterates the dense range without
//!   materialising ids at all.
//! * **Open-addressing tables** — the group-by operator and the join build
//!   sides use the linear-probing tables of [`crate::hashtable`] with inline
//!   flat keys; group keys are sorted exactly once, at final merge.
//! * **Zero steady-state allocation** — each worker carries one
//!   [`crate::scratch::ExecScratch`] per pipeline; column data is borrowed
//!   from storage where the dtype allows and converted into reused buffers
//!   otherwise, so after warm-up the morsel loop does not allocate
//!   (`tests/alloc_steady_state.rs` counts).
//!
//! Two properties are preserved from the interpreted engine (kept frozen in
//! [`crate::baseline`] for measured before/after comparisons):
//!
//! * **Determinism** — partial aggregation states are per *morsel*, and the
//!   merge order is the morsel order, so the result is bit-for-bit identical
//!   for every worker count (including the solo worker), no matter how the
//!   workers interleave their claims. The vectorized kernels fold rows in
//!   the same order the interpreter did, so the two engines agree exactly.
//! * **Exact accounting** — every worker tracks its own [`WorkProfile`]
//!   (bytes per socket, tuples, fresh rows) from the morsels it actually
//!   processed; the per-worker profiles are summed, and the totals equal what
//!   the old sequential executor reported. The scheduler and the cost model
//!   consume those totals unchanged.

use crate::dag::{BuildSpec, DagPlan, DagSpec, Finisher, ProbeSpec, RowSlot};
use crate::error::OlapError;
use crate::expr::{AggExpr, AggState, ScalarExpr};
use crate::hashtable::{GroupTable, JoinTable};
use crate::kernels;
use crate::morsel::Morsel;
use crate::plan::QueryPlan;
use crate::program::{
    apply_filters, eval_expr, resolve, AggKind, ColumnResolver, CompiledAgg, CompiledKey,
    CompiledPredicate, ProgramPool, ValView,
};
use crate::scratch::{load_morsel, ExecScratch, MorselData};
use crate::source::{BoundLayout, ScanSource};
use crate::worker::WorkerTeam;
use htap_sim::{JoinWork, ScanSegment, ScanWork, SocketId};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// One grouped result row: the group key values followed by the aggregates.
pub type GroupRow = (Vec<i64>, Vec<f64>);

/// Result rows of a query.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryResult {
    /// One value per aggregate expression (no grouping).
    Scalars(Vec<f64>),
    /// One row per group.
    Groups(Vec<GroupRow>),
}

impl QueryResult {
    fn shape(&self) -> &'static str {
        match self {
            QueryResult::Scalars(_) => "scalar",
            QueryResult::Groups(_) => "grouped",
        }
    }

    /// The scalar results, or an error if the result is grouped.
    pub fn scalars(&self) -> Result<&[f64], OlapError> {
        match self {
            QueryResult::Scalars(v) => Ok(v),
            QueryResult::Groups(_) => Err(OlapError::WrongResultShape {
                expected: "scalar",
                found: self.shape(),
            }),
        }
    }

    /// The grouped results, or an error if the result is scalar.
    pub fn groups(&self) -> Result<&[GroupRow], OlapError> {
        match self {
            QueryResult::Groups(g) => Ok(g),
            QueryResult::Scalars(_) => Err(OlapError::WrongResultShape {
                expected: "grouped",
                found: self.shape(),
            }),
        }
    }

    /// Number of result rows.
    pub fn row_count(&self) -> usize {
        match self {
            QueryResult::Scalars(_) => 1,
            QueryResult::Groups(g) => g.len(),
        }
    }
}

/// Measured work of one query execution, used as cost-model input.
///
/// Under parallel execution each worker accumulates its own profile from the
/// morsels it processed; [`WorkProfile::merge`] sums them.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct WorkProfile {
    /// Bytes read from each socket (columnar accounting over accessed columns).
    pub bytes_per_socket: BTreeMap<SocketId, u64>,
    /// Tuples that flowed through the scan pipelines.
    pub tuples_scanned: u64,
    /// Tuples that passed the filters.
    pub tuples_selected: u64,
    /// Rows read from OLTP snapshots (fresh data touched by the query).
    pub fresh_rows: u64,
    /// Join build side size in bytes (0 when the plan has no join). For a
    /// three-table plan this is the *mid* (first) build side.
    pub build_bytes: u64,
    /// Number of hash-join probes, across all probe pipelines (for a
    /// three-table plan: mid-build membership probes plus fact probes).
    pub probes: u64,
    /// Size of the join hash table in bytes (first build side).
    pub hash_table_bytes: u64,
    /// Bytes of the second (far) build side of a three-table plan
    /// (0 for plans with at most one join).
    pub far_build_bytes: u64,
    /// Hash-table bytes of the second build side.
    pub far_hash_table_bytes: u64,
}

impl WorkProfile {
    /// Total bytes read across sockets.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_per_socket.values().sum()
    }

    /// Sum another profile into this one (partial profiles of workers or
    /// pipeline phases).
    pub fn merge(&mut self, other: &WorkProfile) {
        for (&socket, &bytes) in &other.bytes_per_socket {
            *self.bytes_per_socket.entry(socket).or_insert(0) += bytes;
        }
        self.tuples_scanned += other.tuples_scanned;
        self.tuples_selected += other.tuples_selected;
        self.fresh_rows += other.fresh_rows;
        self.build_bytes += other.build_bytes;
        self.probes += other.probes;
        self.hash_table_bytes += other.hash_table_bytes;
        self.far_build_bytes += other.far_build_bytes;
        self.far_hash_table_bytes += other.far_hash_table_bytes;
    }

    /// Convert the profile into the cost model's scan-work descriptor.
    pub fn scan_work(&self, cpu_ns_per_tuple: f64) -> ScanWork {
        ScanWork {
            segments: self
                .bytes_per_socket
                .iter()
                .map(|(&socket, &bytes)| ScanSegment { socket, bytes })
                .collect(),
            tuples: self.tuples_scanned,
            cpu_ns_per_tuple,
        }
    }

    /// Convert the profile into the cost model's join-work descriptor, if the
    /// plan had a join phase. Both build sides of a three-table plan are
    /// broadcast and probed, so their bytes are summed into one descriptor.
    pub fn join_work(&self) -> Option<JoinWork> {
        let build_bytes = self.build_bytes + self.far_build_bytes;
        if build_bytes == 0 && self.probes == 0 {
            None
        } else {
            Some(JoinWork {
                build_bytes,
                probes: self.probes,
                hash_table_bytes: self.hash_table_bytes + self.far_hash_table_bytes,
            })
        }
    }

    /// Account one processed morsel: bytes on its socket, tuples, freshness.
    /// The block-interpreted [`crate::baseline::BaselineExecutor`] path: byte
    /// widths are re-summed per morsel from the column names.
    pub(crate) fn absorb_morsel(&mut self, source: &ScanSource, morsel: &Morsel, columns: &[&str]) {
        *self.bytes_per_socket.entry(morsel.socket).or_insert(0) +=
            source.morsel_bytes(morsel, columns);
        self.tuples_scanned += morsel.row_count() as u64;
        if morsel.is_fresh() {
            self.fresh_rows += morsel.row_count() as u64;
        }
    }

    /// Account one processed morsel from a bind-time row width — the
    /// vectorized path: one multiplication, no per-morsel schema lookups.
    /// Produces exactly the bytes [`WorkProfile::absorb_morsel`] would.
    #[inline]
    pub(crate) fn absorb_morsel_rows(&mut self, morsel: &Morsel, row_bytes: u64) {
        *self.bytes_per_socket.entry(morsel.socket).or_insert(0) +=
            morsel.row_count() as u64 * row_bytes;
        self.tuples_scanned += morsel.row_count() as u64;
        if morsel.is_fresh() {
            self.fresh_rows += morsel.row_count() as u64;
        }
    }
}

/// Output of a query execution: the result plus the measured work.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryOutput {
    /// The query result.
    pub result: QueryResult,
    /// The measured work (cost-model input), summed over all workers.
    pub work: WorkProfile,
}

// ---------------------------------------------------------------------------
// Bind-time helpers shared with the frozen baseline executor.
// ---------------------------------------------------------------------------

/// Look up the access path of `table`.
pub(crate) fn source_for<'a>(
    sources: &'a BTreeMap<String, ScanSource>,
    table: &str,
) -> Result<&'a ScanSource, OlapError> {
    sources.get(table).ok_or_else(|| OlapError::MissingSource {
        table: table.to_string(),
    })
}

/// The sorted, deduplicated numeric load list of a scan: filter columns plus
/// aggregate inputs.
pub(crate) fn numeric_columns(
    filters: &[crate::expr::Predicate],
    aggregates: &[AggExpr],
) -> Vec<String> {
    let mut cols: Vec<String> = filters.iter().map(|p| p.column.clone()).collect();
    cols.extend(aggregates.iter().flat_map(AggExpr::columns));
    cols.sort();
    cols.dedup();
    cols
}

/// Bytes of a fully materialised build side over the accessed `columns`
/// (columnar accounting) — the broadcast size the cost model charges.
pub(crate) fn side_build_bytes<S: AsRef<str>>(source: &ScanSource, columns: &[S]) -> u64 {
    let Some(seg) = source.segments.first() else {
        return 0;
    };
    let schema = seg.table.schema();
    let width: u64 = columns
        .iter()
        .filter_map(|c| {
            schema
                .column_index(c.as_ref())
                .map(|i| schema.column(i).dtype.width_bytes())
        })
        .sum();
    source.total_rows() * width
}

/// The deduplicated union of the numeric and key column lists a pipeline
/// materialises — a column serving both as filter/aggregate input and as
/// group key must be byte-accounted once, not twice. Computed once at
/// plan-bind time and reused for every morsel's accounting.
pub(crate) fn accessed_refs<'a>(numeric_refs: &[&'a str], key_refs: &[&'a str]) -> Vec<&'a str> {
    let mut accessed: Vec<&'a str> = numeric_refs.to_vec();
    accessed.extend(key_refs);
    accessed.sort_unstable();
    accessed.dedup();
    accessed
}

/// Split the columns one pipeline side reads into `(numeric, keys)` load
/// lists. Plain-column join keys and `group_by` columns go through the
/// exact `i64` key path (full `i64` range); computed key expressions and
/// aggregate inputs must load as numeric — expression evaluation has no
/// key-column fallback — and evaluate in `f64` (exact below 2^53).
/// Filter-only columns that are already key-loaded are dropped from the
/// numeric list (predicates fall back to key columns); a column needed by
/// both paths is loaded in both representations and byte-accounted once via
/// [`accessed_refs`].
pub(crate) fn split_read_columns(
    filters: &[crate::expr::Predicate],
    aggregates: &[AggExpr],
    key_exprs: &[&ScalarExpr],
    group_by: &[String],
) -> (Vec<String>, Vec<String>) {
    let mut keys: Vec<String> = group_by.to_vec();
    let mut computed: Vec<String> = aggregates.iter().flat_map(AggExpr::columns).collect();
    for expr in key_exprs {
        match expr {
            ScalarExpr::Col(name) => keys.push(name.clone()),
            other => computed.extend(other.columns()),
        }
    }
    keys.sort();
    keys.dedup();
    let mut numeric: Vec<String> = filters.iter().map(|p| p.column.clone()).collect();
    numeric.retain(|c| !keys.contains(c));
    numeric.extend(computed);
    numeric.sort();
    numeric.dedup();
    (numeric, keys)
}

/// Fold one morsel's group table into the accumulated one. Callers
/// iterate partials in morsel order: the BTreeMap keeps group keys
/// sorted, and folding morsel `i` before morsel `i + 1` keeps every
/// group's aggregation order equal to the scan order — hence identical
/// floating-point results for every worker count.
pub(crate) fn merge_group_table(
    into: &mut BTreeMap<Vec<i64>, Vec<AggState>>,
    from: BTreeMap<Vec<i64>, Vec<AggState>>,
) {
    for (key, states) in from {
        match into.entry(key) {
            std::collections::btree_map::Entry::Vacant(slot) => {
                slot.insert(states);
            }
            std::collections::btree_map::Entry::Occupied(mut slot) => {
                for (merged, state) in slot.get_mut().iter_mut().zip(&states) {
                    merged.merge(state);
                }
            }
        }
    }
}

/// Finalise a merged group table into result rows, keys ascending — the
/// single point where group keys are sorted.
pub(crate) fn finalize_groups(
    groups: BTreeMap<Vec<i64>, Vec<AggState>>,
    aggregates: &[AggExpr],
) -> Vec<GroupRow> {
    groups
        .into_iter()
        .map(|(key, states)| {
            let aggs = aggregates
                .iter()
                .zip(&states)
                .map(|(agg, st)| st.finalize(agg))
                .collect();
            (key, aggs)
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Vectorized pipeline machinery.
// ---------------------------------------------------------------------------

/// The bind-time product of one scan pipeline: load lists, resolved segment
/// layout, and the compiled filter/aggregate programs. Built once per query;
/// shared read-only by every worker.
struct Pipeline {
    numeric: Vec<String>,
    keys: Vec<String>,
    layout: BoundLayout,
    pool: ProgramPool,
    filters: Vec<CompiledPredicate>,
    aggs: Vec<CompiledAgg>,
}

impl Pipeline {
    fn bind(
        source: &ScanSource,
        numeric: Vec<String>,
        keys: Vec<String>,
        filters: &[crate::expr::Predicate],
        aggregates: &[AggExpr],
    ) -> Result<Pipeline, OlapError> {
        let numeric_refs: Vec<&str> = numeric.iter().map(String::as_str).collect();
        let key_refs: Vec<&str> = keys.iter().map(String::as_str).collect();
        let accessed = accessed_refs(&numeric_refs, &key_refs);
        let layout = source.bind_columns(&numeric_refs, &key_refs, &accessed)?;
        let mut pool = ProgramPool::default();
        let resolver = ColumnResolver::new(&numeric, &keys);
        let filters = pool.compile_filters(filters, &resolver)?;
        let aggs = pool.compile_aggregates(aggregates, &resolver)?;
        Ok(Pipeline {
            numeric,
            keys,
            layout,
            pool,
            filters,
            aggs,
        })
    }

    fn compile_key(&mut self, expr: &ScalarExpr) -> Result<CompiledKey, OlapError> {
        let resolver = ColumnResolver::new(&self.numeric, &self.keys);
        self.pool.compile_key(expr, &resolver)
    }

    /// Key-list slot of a column loaded through the key path. The bind
    /// phase puts every group key on the key load list, so a miss means a
    /// mis-wired plan — reported as a typed error, not a worker abort.
    fn key_slot(&self, name: &str) -> Result<usize, OlapError> {
        self.keys
            .iter()
            .position(|c| c == name)
            .ok_or_else(|| OlapError::MissingColumn {
                column: name.to_string(),
            })
    }

    /// Fresh per-worker scratch sized for this pipeline.
    fn scratch<'env>(&self) -> ExecScratch<'env> {
        ExecScratch::for_pipeline(
            self.pool.n_regs as usize,
            self.numeric.len(),
            self.keys.len(),
        )
    }

    /// Row width of the accessed columns of `morsel`'s segment.
    #[inline]
    fn row_bytes(&self, morsel: &Morsel) -> u64 {
        self.layout.segments[morsel.segment].accessed_row_bytes
    }
}

/// The resolved join-key values of one morsel: the exact `i64` slice of a
/// key column, or the `f64` lanes of a computed expression (cast per probe,
/// exact below 2^53).
enum KeyVals<'a> {
    Exact(&'a [i64]),
    Computed(ValView<'a>),
}

impl KeyVals<'_> {
    #[inline(always)]
    fn get(&self, i: usize) -> i64 {
        match self {
            KeyVals::Exact(s) => s[i],
            KeyVals::Computed(v) => v.get(i) as i64,
        }
    }
}

/// Materialise a compiled key's computed lanes (if any) and return the
/// per-row accessor. `eval_expr` must have been driven for the same rows
/// already — this only resolves.
#[inline]
fn key_vals<'a>(
    key: &CompiledKey,
    data: &'a MorselData<'_>,
    regs: &'a [Vec<f64>],
    consts: &[f64],
) -> KeyVals<'a> {
    match key {
        CompiledKey::Key(slot) => KeyVals::Exact(data.key(*slot as usize)),
        CompiledKey::Expr(e) => KeyVals::Computed(resolve(e.output, data, regs, consts)),
    }
}

/// Run `f` over every selected row index.
#[inline(always)]
fn for_each_selected(rows: usize, sel: Option<&[u32]>, mut f: impl FnMut(usize)) {
    match sel {
        None => (0..rows).for_each(&mut f),
        Some(ids) => ids.iter().for_each(|&i| f(i as usize)),
    }
}

/// Fold one aggregate input over the selection into `state` — the
/// column-at-a-time inner loop of every aggregation pipeline, dispatched to
/// the chunked fold kernels of [`crate::kernels`]. Slice inputs run the
/// dense kernel (registers may be longer than the morsel, so the view is
/// clipped to `rows`) or the gather kernel over the selection; constant
/// inputs fold the literal once per surviving row. Every kernel accumulates
/// strictly sequentially, so the result is bit-for-bit the per-row loop's.
#[inline]
fn fold_agg(kind: AggKind, state: &mut AggState, v: ValView<'_>, rows: usize, sel: Option<&[u32]>) {
    match (v, sel) {
        (ValView::Slice(s), None) => {
            let s = &s[..rows];
            match kind {
                AggKind::Sum => kernels::fold_sum_dense(state, s),
                AggKind::Avg => kernels::fold_avg_dense(state, s),
                AggKind::Min => kernels::fold_min_dense(state, s),
                AggKind::Max => kernels::fold_max_dense(state, s),
            }
        }
        (ValView::Slice(s), Some(ids)) => match kind {
            AggKind::Sum => kernels::fold_sum_gather(state, s, ids),
            AggKind::Avg => kernels::fold_avg_gather(state, s, ids),
            AggKind::Min => kernels::fold_min_gather(state, s, ids),
            AggKind::Max => kernels::fold_max_gather(state, s, ids),
        },
        (ValView::Const(c), sel) => {
            let n = sel.map_or(rows, <[u32]>::len);
            match kind {
                AggKind::Sum => (0..n).for_each(|_| state.fold_sum(c)),
                AggKind::Avg => (0..n).for_each(|_| state.fold_avg(c)),
                AggKind::Min => (0..n).for_each(|_| state.fold_min(c)),
                AggKind::Max => (0..n).for_each(|_| state.fold_max(c)),
            }
        }
    }
}

/// Per-worker output of a scalar-aggregation pipeline: per-morsel states in
/// claim order plus the worker's accumulated profile. All buffers are
/// reserved up front so the morsel loop never reallocates.
struct ScalarOut {
    /// Morsel index of each processed morsel, in claim order.
    order: Vec<u32>,
    /// Flat per-morsel states, `n_aggs` per entry of `order`.
    states: Vec<AggState>,
    probes: u64,
    profile: WorkProfile,
    n_aggs: usize,
}

impl ScalarOut {
    fn new(n_aggs: usize, morsels: usize) -> Self {
        ScalarOut {
            order: Vec::with_capacity(morsels),
            states: Vec::with_capacity(morsels * n_aggs),
            probes: 0,
            profile: WorkProfile::default(),
            n_aggs,
        }
    }

    /// Append default states for morsel `idx` and return them for folding.
    fn push_morsel(&mut self, idx: usize) -> &mut [AggState] {
        self.order.push(idx as u32);
        let at = self.states.len();
        self.states.resize(at + self.n_aggs, AggState::default());
        &mut self.states[at..]
    }
}

/// Hash-radix fan-out of the partitioned group merge. The partition of a
/// group is the *top* `RADIX_BITS` of its key hash — the linear-probing
/// tables consume the hash from the low bits up, so the high bits stay
/// well-distributed and independent of any table's slot mask.
const RADIX_BITS: u32 = 4;
/// Number of radix partitions (16).
const RADIX_PARTS: usize = 1 << RADIX_BITS;

/// Radix partition of one key hash.
#[inline(always)]
fn radix_part(h: u64) -> usize {
    (h >> (64 - RADIX_BITS)) as usize
}

/// Per-worker output of a grouping pipeline: per-morsel flat group tables in
/// claim order, with each morsel's groups scattered into hash-radix
/// partition order so the final merge can process one disjoint partition at
/// a time (see [`merge_group_outs`]).
struct GroupOut {
    order: Vec<u32>,
    /// Groups per radix partition per processed morsel: `RADIX_PARTS`
    /// entries per entry of `order`.
    part_counts: Vec<u32>,
    /// Flat keys: `n_keys` per group, morsels concatenated in claim order,
    /// groups within a morsel in partition-then-first-seen order.
    keys: Vec<i64>,
    /// Flat states: `n_aggs` per group, same order as `keys`.
    states: Vec<AggState>,
    /// Key hash per group, same order as `keys` — reused by the merge's
    /// prehashed upserts.
    hashes: Vec<u64>,
    probes: u64,
    profile: WorkProfile,
}

impl GroupOut {
    fn new(morsels: usize) -> Self {
        GroupOut {
            order: Vec::with_capacity(morsels),
            part_counts: Vec::with_capacity(morsels * RADIX_PARTS),
            keys: Vec::new(),
            states: Vec::new(),
            hashes: Vec::new(),
            probes: 0,
            profile: WorkProfile::default(),
        }
    }

    /// Append morsel `idx`'s group table, counting-sort-scattered by radix
    /// partition. The scatter is stable, so within a partition the groups
    /// keep their first-seen (row) order — the merge folds partitions morsel
    /// by morsel, which therefore preserves the scan-order fold discipline
    /// that makes results bit-for-bit identical across worker counts.
    fn emit_morsel(&mut self, idx: usize, groups: &GroupTable, n_keys: usize, n_aggs: usize) {
        let count = groups.group_count();
        let hashes = groups.hashes_flat();
        let keys = groups.keys_flat();
        let states = groups.states_flat();
        let mut counts = [0u32; RADIX_PARTS];
        for &h in hashes {
            counts[radix_part(h)] += 1;
        }
        let mut offsets = [0u32; RADIX_PARTS];
        let mut at = 0u32;
        for (off, &c) in offsets.iter_mut().zip(&counts) {
            *off = at;
            at += c;
        }
        let key_base = self.keys.len();
        let state_base = self.states.len();
        let hash_base = self.hashes.len();
        self.keys.resize(key_base + count * n_keys, 0);
        self.states
            .resize(state_base + count * n_aggs, AggState::default());
        self.hashes.resize(hash_base + count, 0);
        for (g, &h) in hashes.iter().enumerate() {
            let p = radix_part(h);
            let dst = offsets[p] as usize;
            offsets[p] += 1;
            self.hashes[hash_base + dst] = h;
            self.keys[key_base + dst * n_keys..key_base + (dst + 1) * n_keys]
                .copy_from_slice(&keys[g * n_keys..(g + 1) * n_keys]);
            self.states[state_base + dst * n_aggs..state_base + (dst + 1) * n_aggs]
                .copy_from_slice(&states[g * n_aggs..(g + 1) * n_aggs]);
        }
        self.order.push(idx as u32);
        self.part_counts.extend_from_slice(&counts);
    }
}

/// Per-worker output of a join build pipeline: the worker's open-addressing
/// multiplicity table, reused across every morsel it claims (table union
/// across workers sums weights, which is order-insensitive, so determinism
/// is preserved).
struct BuildOut {
    table: JoinTable,
    probes: u64,
    profile: WorkProfile,
}

/// Per-worker morsel rollup for one pipeline, accumulated with relaxed
/// atomics from inside the worker loop and flattened into `worker` child
/// spans when the pipeline closes. One fixed-size vector per pipeline run —
/// constant per query, so the steady-state allocation count is unchanged.
#[derive(Debug, Default)]
struct LaneRollup {
    morsels: AtomicU64,
    busy_us: AtomicU64,
    first_us: AtomicU64,
    last_us: AtomicU64,
}

/// Drive one pipeline over `morsels`: the team's workers claim morsels from
/// a shared atomic cursor (dynamic load balancing); each worker builds its
/// scratch and output once via `make` and reuses them for every morsel it
/// claims; `step` processes one claimed morsel. Per-worker outputs are
/// returned in worker order — shape-specific merges then order the
/// per-morsel partials they carry by morsel index.
///
/// When tracing is enabled (checked once per pipeline, never per morsel),
/// each claimed morsel records one [`htap_obs::EventKind::Morsel`] interval
/// into the claiming worker's event ring — timestamps are taken around the
/// whole `step`, outside the kernel loops — and the pipeline publishes an
/// `olap.pipeline` span with per-worker rollup children.
fn run_morsel_pipeline<S, O, M, F>(
    team: &WorkerTeam,
    morsels: &[Morsel],
    make: M,
    step: F,
) -> Result<Vec<O>, OlapError>
where
    O: Send,
    M: Fn() -> (S, O) + Sync,
    F: Fn(usize, &Morsel, &mut S, &mut O) -> Result<(), OlapError> + Sync,
{
    let team = team.capped(morsels.len());
    let on = htap_obs::enabled();
    let pipeline = if on { htap_obs::pipeline_seq() } else { 0 };
    let guard = htap_obs::span("olap.pipeline");
    let rollups: Vec<LaneRollup> = if on {
        (0..team.size())
            .map(|_| LaneRollup {
                first_us: AtomicU64::new(u64::MAX),
                ..LaneRollup::default()
            })
            .collect()
    } else {
        Vec::new()
    };
    let cursor = AtomicUsize::new(0);
    let results = team.run(|w| {
        let (mut scratch, mut out) = make();
        loop {
            let idx = cursor.fetch_add(1, Ordering::Relaxed);
            if idx >= morsels.len() {
                break;
            }
            if on {
                let t0 = htap_obs::now_us();
                step(idx, &morsels[idx], &mut scratch, &mut out)?;
                let t1 = htap_obs::now_us();
                htap_obs::record_olap(
                    w,
                    htap_obs::EventKind::Morsel,
                    t0,
                    htap_obs::pack_morsel(pipeline, idx as u64),
                    t1.saturating_sub(t0),
                );
                if let Some(lane) = rollups.get(w) {
                    lane.morsels.fetch_add(1, Ordering::Relaxed);
                    lane.busy_us
                        .fetch_add(t1.saturating_sub(t0), Ordering::Relaxed);
                    lane.first_us.fetch_min(t0, Ordering::Relaxed);
                    lane.last_us.fetch_max(t1, Ordering::Relaxed);
                }
            } else {
                step(idx, &morsels[idx], &mut scratch, &mut out)?;
            }
        }
        Ok(out)
    });
    if guard.is_active() {
        guard.arg("pipeline", pipeline as f64);
        guard.arg("morsels", morsels.len() as f64);
        guard.arg("workers", team.size() as f64);
        for (w, lane) in rollups.iter().enumerate() {
            let claimed = lane.morsels.load(Ordering::Relaxed);
            if claimed == 0 {
                continue;
            }
            htap_obs::child_span(
                "worker",
                lane.first_us.load(Ordering::Relaxed),
                lane.last_us.load(Ordering::Relaxed),
                &[
                    ("worker", w as f64),
                    ("morsels", claimed as f64),
                    ("busy_us", lane.busy_us.load(Ordering::Relaxed) as f64),
                ],
            );
        }
    }
    results.into_iter().collect()
}

/// Merge per-worker scalar outputs: sort the per-morsel partials by morsel
/// index and fold them in that order (bit-for-bit identical for every worker
/// count), summing profiles and probes into `work`.
fn merge_scalar_outs(
    outs: Vec<ScalarOut>,
    n_aggs: usize,
    morsel_count: usize,
    work: &mut WorkProfile,
) -> Vec<AggState> {
    let mut parts: Vec<(u32, &[AggState])> = Vec::with_capacity(morsel_count);
    for out in &outs {
        for (k, &m) in out.order.iter().enumerate() {
            parts.push((m, &out.states[k * n_aggs..(k + 1) * n_aggs]));
        }
    }
    parts.sort_unstable_by_key(|(m, _)| *m);
    let mut states = vec![AggState::default(); n_aggs];
    for (_, chunk) in parts {
        for (state, partial) in states.iter_mut().zip(chunk) {
            state.merge(partial);
        }
    }
    for out in &outs {
        work.merge(&out.profile);
        work.probes += out.probes;
    }
    states
}

/// One morsel's partition-scattered group segment, borrowed from a
/// [`GroupOut`] for the radix merge.
struct MorselGroups<'a> {
    keys: &'a [i64],
    states: &'a [AggState],
    hashes: &'a [u64],
    /// Exclusive prefix offsets of the radix partitions within this
    /// morsel's segment (`offsets[p]..offsets[p + 1]` is partition `p`).
    offsets: [u32; RADIX_PARTS + 1],
}

/// Merge per-worker group outputs into the final sorted rows via the radix
/// partitioning the workers already applied at emission: every group key
/// lives in exactly one hash-radix partition, so the merge processes one
/// partition at a time through a single reused prehashed [`GroupTable`] —
/// re-hashing nothing, probing a table 16x smaller than a global one — and
/// the partitions concatenate disjointly. Within each partition the morsels
/// are folded in morsel-index order (first occurrence *copies* the partial
/// state; `AggState::default().merge` is not a bitwise identity), which
/// keeps every group's aggregation order equal to the scan order — hence
/// bit-for-bit identical results for every worker count. Keys are sorted
/// exactly once, over the final rows.
fn merge_group_outs(
    outs: Vec<GroupOut>,
    n_keys: usize,
    n_aggs: usize,
    morsel_count: usize,
    aggregates: &[AggExpr],
    work: &mut WorkProfile,
) -> Vec<GroupRow> {
    let mut parts: Vec<(u32, MorselGroups<'_>)> = Vec::with_capacity(morsel_count);
    for out in &outs {
        let mut key_at = 0usize;
        let mut state_at = 0usize;
        let mut hash_at = 0usize;
        for (k, &m) in out.order.iter().enumerate() {
            let counts = &out.part_counts[k * RADIX_PARTS..(k + 1) * RADIX_PARTS];
            let mut offsets = [0u32; RADIX_PARTS + 1];
            for (p, &c) in counts.iter().enumerate() {
                offsets[p + 1] = offsets[p] + c;
            }
            let groups = offsets[RADIX_PARTS] as usize;
            parts.push((
                m,
                MorselGroups {
                    keys: &out.keys[key_at..key_at + groups * n_keys],
                    states: &out.states[state_at..state_at + groups * n_aggs],
                    hashes: &out.hashes[hash_at..hash_at + groups],
                    offsets,
                },
            ));
            key_at += groups * n_keys;
            state_at += groups * n_aggs;
            hash_at += groups;
        }
    }
    parts.sort_unstable_by_key(|(m, _)| *m);
    let mut table = GroupTable::default();
    table.configure(n_keys, n_aggs);
    let mut rows: Vec<GroupRow> = Vec::new();
    for p in 0..RADIX_PARTS {
        table.begin_morsel();
        for (_, part) in &parts {
            let range = part.offsets[p] as usize..part.offsets[p + 1] as usize;
            for g in range {
                let key = &part.keys[g * n_keys..(g + 1) * n_keys];
                let chunk = &part.states[g * n_aggs..(g + 1) * n_aggs];
                let before = table.group_count();
                let gi = table.upsert_prehashed(part.hashes[g], key);
                let states = table.group_states_mut(gi);
                if table_grew(before, gi) {
                    states.copy_from_slice(chunk);
                } else {
                    for (merged, state) in states.iter_mut().zip(chunk) {
                        merged.merge(state);
                    }
                }
            }
        }
        for gi in 0..table.group_count() {
            let key = &table.keys_flat()[gi * n_keys..(gi + 1) * n_keys];
            let states = &table.states_flat()[gi * n_aggs..(gi + 1) * n_aggs];
            let aggs = aggregates
                .iter()
                .zip(states)
                .map(|(agg, st)| st.finalize(agg))
                .collect();
            rows.push((key.to_vec(), aggs));
        }
    }
    // Partitions are disjoint key sets, so one final sort restores the
    // ascending-key order the BTreeMap-based merge produced.
    rows.sort_unstable_by(|a, b| a.0.cmp(&b.0));
    for out in &outs {
        work.merge(&out.profile);
        work.probes += out.probes;
    }
    rows
}

/// Did the upsert that returned `gi` claim a fresh group? (New groups are
/// appended, so a fresh claim returns the previous count as its index.)
#[inline(always)]
fn table_grew(before: usize, gi: usize) -> bool {
    gi == before
}

/// The morsel-driven query executor.
#[derive(Debug, Clone)]
pub struct QueryExecutor {
    /// Tuples per morsel (the unit of work a pipeline worker claims).
    pub block_rows: usize,
}

impl Default for QueryExecutor {
    fn default() -> Self {
        QueryExecutor {
            block_rows: crate::block::DEFAULT_BLOCK_ROWS,
        }
    }
}

impl QueryExecutor {
    /// Executor with a custom morsel size (tests use small morsels).
    pub fn with_block_rows(block_rows: usize) -> Self {
        QueryExecutor { block_rows }
    }

    /// Execute `plan` sequentially (a solo worker team) over the given
    /// per-relation access paths.
    pub fn execute(
        &self,
        plan: &QueryPlan,
        sources: &BTreeMap<String, ScanSource>,
    ) -> Result<QueryOutput, OlapError> {
        self.execute_parallel(plan, sources, &WorkerTeam::solo())
    }

    /// Execute `plan` with one pipeline worker per core of `team`.
    ///
    /// Every plan — the five named shapes included — is first lowered onto
    /// the composable operator DAG ([`crate::dag`]) and executed by the one
    /// generic pipeline driver below; no shape retains a bespoke execution
    /// path. The result is identical — bit for bit — to the solo execution
    /// of the same plan over the same sources; only wall-clock time changes.
    pub fn execute_parallel(
        &self,
        plan: &QueryPlan,
        sources: &BTreeMap<String, ScanSource>,
        team: &WorkerTeam,
    ) -> Result<QueryOutput, OlapError> {
        let dag = DagPlan::lower(plan);
        let spec = dag.decompose()?;
        self.execute_dag(&spec, sources, team)
    }

    /// Execute one decomposed DAG: the build pipelines in dependency order,
    /// then the root (aggregating) pipeline, then the finishers over the
    /// finalised rows.
    fn execute_dag(
        &self,
        spec: &DagSpec,
        sources: &BTreeMap<String, ScanSource>,
        team: &WorkerTeam,
    ) -> Result<QueryOutput, OlapError> {
        let mut work = WorkProfile::default();
        let mut built: Vec<JoinTable> = Vec::with_capacity(spec.builds.len());
        for build in &spec.builds {
            let source = source_for(sources, &build.input.table)?;
            let table = self.run_build_pipeline(build, &built, source, team, &mut work)?;
            // Build sides are broadcast: account their bytes and hash-table
            // sizes — builds probed by the root pipeline on the near fields,
            // deeper (chained) builds on the far fields. 16 bytes per table
            // entry (key + bucket overhead); multiplicities share their
            // key's entry, so duplicate build keys do not grow the table.
            let bytes = side_build_bytes(source, &build_read_columns(build));
            let table_bytes = table.len() as u64 * 16;
            if build.feeds_root {
                work.build_bytes += bytes;
                work.hash_table_bytes += table_bytes;
            } else {
                work.far_build_bytes += bytes;
                work.far_hash_table_bytes += table_bytes;
            }
            built.push(table);
        }
        let result = match &spec.group_by {
            None => self.run_scalar_root(spec, &built, sources, team, &mut work)?,
            Some(group_by) => {
                let mut rows =
                    self.run_group_root(spec, group_by, &built, sources, team, &mut work)?;
                for finisher in &spec.finishers {
                    apply_finisher(finisher, &mut rows);
                }
                QueryResult::Groups(rows)
            }
        };
        Ok(QueryOutput { result, work })
    }

    /// Run one build pipeline (scan → filter → probes into earlier builds)
    /// into its multiplicity table: every surviving row inserts its build
    /// key with the weight accumulated along the probe chain, so chained
    /// builds carry join multiplicities all the way down. Each worker owns
    /// one [`JoinTable`] reused across all the morsels it claims; the
    /// per-worker tables are unioned by summing weights (order-insensitive).
    fn run_build_pipeline(
        &self,
        build: &BuildSpec,
        built: &[JoinTable],
        source: &ScanSource,
        team: &WorkerTeam,
        work: &mut WorkProfile,
    ) -> Result<JoinTable, OlapError> {
        let key_exprs: Vec<&ScalarExpr> = std::iter::once(&build.key)
            .chain(build.input.probes.iter().map(|p| &p.key))
            .collect();
        let (numeric, keys) = split_read_columns(&build.input.filters, &[], &key_exprs, &[]);
        let mut pipe = Pipeline::bind(source, numeric, keys, &build.input.filters, &[])?;
        let key = pipe.compile_key(&build.key)?;
        let probe_keys: Vec<CompiledKey> = build
            .input
            .probes
            .iter()
            .map(|p| pipe.compile_key(&p.key))
            .collect::<Result<_, _>>()?;
        let morsels = source.morsels(self.block_rows);
        let make = || {
            (
                pipe.scratch(),
                BuildOut {
                    table: JoinTable::new(),
                    probes: 0,
                    profile: WorkProfile::default(),
                },
            )
        };
        let on = htap_obs::enabled();
        let t_build = if on { htap_obs::now_us() } else { 0 };
        let outs = run_morsel_pipeline(team, &morsels, make, |_idx, morsel, scratch, out| {
            let rows = morsel.row_count();
            load_morsel(source, &pipe.layout, morsel, &mut scratch.data);
            scratch.ensure_regs(rows);
            let mut bufs = ProbeBufs::take(scratch);
            {
                let sel = apply_filters(&pipe.filters, &scratch.data, rows, &mut scratch.sel);
                let (probes, survivors) = probe_chain(
                    &probe_keys,
                    &build.input.probes,
                    built,
                    &pipe,
                    &scratch.data,
                    &mut scratch.regs,
                    rows,
                    sel,
                    &mut bufs,
                    &mut scratch.hashes,
                );
                if let CompiledKey::Expr(e) = &key {
                    eval_expr(
                        e,
                        &scratch.data,
                        &mut scratch.regs,
                        &pipe.pool.consts,
                        rows,
                        survivors.selection(),
                    );
                }
                let kv = key_vals(&key, &scratch.data, &scratch.regs, &pipe.pool.consts);
                match survivors {
                    Survivors::Plain(fin) => {
                        for_each_selected(rows, fin, |i| out.table.add(kv.get(i), 1));
                    }
                    Survivors::Weighted(ids, weights) => {
                        for (&i, &w) in ids.iter().zip(weights) {
                            out.table.add(kv.get(i as usize), w);
                        }
                    }
                }
                out.probes += probes;
                out.profile
                    .absorb_morsel_rows(morsel, pipe.row_bytes(morsel));
            }
            bufs.restore(scratch);
            Ok(())
        })?;
        let mut table = JoinTable::new();
        for out in outs {
            work.merge(&out.profile);
            work.probes += out.probes;
            table.union(&out.table);
        }
        if on {
            let t1 = htap_obs::now_us();
            htap_obs::record_thread(
                htap_obs::EventKind::PipelineBuild,
                t_build,
                morsels.len() as u64,
                t1.saturating_sub(t_build),
            );
        }
        Ok(table)
    }

    /// Run the root pipeline into the scalar sink.
    fn run_scalar_root(
        &self,
        spec: &DagSpec,
        built: &[JoinTable],
        sources: &BTreeMap<String, ScanSource>,
        team: &WorkerTeam,
        work: &mut WorkProfile,
    ) -> Result<QueryResult, OlapError> {
        let source = source_for(sources, &spec.root.table)?;
        let key_exprs: Vec<&ScalarExpr> = spec.root.probes.iter().map(|p| &p.key).collect();
        let (numeric, keys) =
            split_read_columns(&spec.root.filters, &spec.aggregates, &key_exprs, &[]);
        let mut pipe = Pipeline::bind(source, numeric, keys, &spec.root.filters, &spec.aggregates)?;
        let probe_keys: Vec<CompiledKey> = spec
            .root
            .probes
            .iter()
            .map(|p| pipe.compile_key(&p.key))
            .collect::<Result<_, _>>()?;
        let morsels = source.morsels(self.block_rows);
        let n_aggs = spec.aggregates.len();
        let make = || (pipe.scratch(), ScalarOut::new(n_aggs, morsels.len()));
        let on = htap_obs::enabled();
        let t_probe = if on { htap_obs::now_us() } else { 0 };
        let outs = run_morsel_pipeline(team, &morsels, make, |idx, morsel, scratch, out| {
            let rows = morsel.row_count();
            load_morsel(source, &pipe.layout, morsel, &mut scratch.data);
            scratch.ensure_regs(rows);
            let mut bufs = ProbeBufs::take(scratch);
            {
                let sel = apply_filters(&pipe.filters, &scratch.data, rows, &mut scratch.sel);
                let (probes, survivors) = probe_chain(
                    &probe_keys,
                    &spec.root.probes,
                    built,
                    &pipe,
                    &scratch.data,
                    &mut scratch.regs,
                    rows,
                    sel,
                    &mut bufs,
                    &mut scratch.hashes,
                );
                let selected = survivors.tuple_count(rows);
                let states = out.push_morsel(idx);
                for (agg, state) in pipe.aggs.iter().zip(states) {
                    match agg {
                        CompiledAgg::Count => state.update_count_n(selected),
                        CompiledAgg::Fold(kind, e) => {
                            eval_expr(
                                e,
                                &scratch.data,
                                &mut scratch.regs,
                                &pipe.pool.consts,
                                rows,
                                survivors.selection(),
                            );
                            let v =
                                resolve(e.output, &scratch.data, &scratch.regs, &pipe.pool.consts);
                            match survivors {
                                Survivors::Plain(fin) => fold_agg(*kind, state, v, rows, fin),
                                Survivors::Weighted(ids, weights) => {
                                    fold_weighted(*kind, state, v, ids, weights)
                                }
                            }
                        }
                    }
                }
                out.probes += probes;
                out.profile
                    .absorb_morsel_rows(morsel, pipe.row_bytes(morsel));
                out.profile.tuples_selected += selected;
            }
            bufs.restore(scratch);
            Ok(())
        })?;
        let t_merge = if on {
            let t1 = htap_obs::now_us();
            htap_obs::record_thread(
                htap_obs::EventKind::PipelineProbe,
                t_probe,
                morsels.len() as u64,
                t1.saturating_sub(t_probe),
            );
            t1
        } else {
            0
        };
        let states = merge_scalar_outs(outs, n_aggs, morsels.len(), work);
        if on {
            htap_obs::record_thread(
                htap_obs::EventKind::PipelineMerge,
                t_merge,
                morsels.len() as u64,
                htap_obs::now_us().saturating_sub(t_merge),
            );
        }
        Ok(QueryResult::Scalars(
            spec.aggregates
                .iter()
                .zip(&states)
                .map(|(agg, st)| st.finalize(agg))
                .collect(),
        ))
    }

    /// Run the root pipeline into the grouped sink. An empty `group_by` is
    /// the degenerate single global group — a grouped result with no key
    /// columns. Per-morsel group tables are merged in morsel order (same
    /// discipline as every other sink), so results stay identical across
    /// worker counts.
    fn run_group_root(
        &self,
        spec: &DagSpec,
        group_by: &[String],
        built: &[JoinTable],
        sources: &BTreeMap<String, ScanSource>,
        team: &WorkerTeam,
        work: &mut WorkProfile,
    ) -> Result<Vec<GroupRow>, OlapError> {
        let source = source_for(sources, &spec.root.table)?;
        let key_exprs: Vec<&ScalarExpr> = spec.root.probes.iter().map(|p| &p.key).collect();
        let (numeric, keys) =
            split_read_columns(&spec.root.filters, &spec.aggregates, &key_exprs, group_by);
        let mut pipe = Pipeline::bind(source, numeric, keys, &spec.root.filters, &spec.aggregates)?;
        let probe_keys: Vec<CompiledKey> = spec
            .root
            .probes
            .iter()
            .map(|p| pipe.compile_key(&p.key))
            .collect::<Result<_, _>>()?;
        let group_slots: Vec<usize> = group_by
            .iter()
            .map(|g| pipe.key_slot(g))
            .collect::<Result<_, _>>()?;
        let morsels = source.morsels(self.block_rows);
        let n_aggs = spec.aggregates.len();
        let n_keys = group_by.len();
        let make = || {
            let mut scratch = pipe.scratch();
            scratch.groups.configure(n_keys, n_aggs);
            (scratch, GroupOut::new(morsels.len()))
        };
        let on = htap_obs::enabled();
        let t_probe = if on { htap_obs::now_us() } else { 0 };
        let outs = run_morsel_pipeline(team, &morsels, make, |idx, morsel, scratch, out| {
            let rows = morsel.row_count();
            load_morsel(source, &pipe.layout, morsel, &mut scratch.data);
            scratch.ensure_regs(rows);
            let mut bufs = ProbeBufs::take(scratch);
            {
                let sel = apply_filters(&pipe.filters, &scratch.data, rows, &mut scratch.sel);
                let (probes, survivors) = probe_chain(
                    &probe_keys,
                    &spec.root.probes,
                    built,
                    &pipe,
                    &scratch.data,
                    &mut scratch.regs,
                    rows,
                    sel,
                    &mut bufs,
                    &mut scratch.hashes,
                );
                let selected = survivors.tuple_count(rows);
                match survivors {
                    Survivors::Plain(fin) => group_and_fold(
                        &pipe.aggs,
                        &pipe.pool.consts,
                        &group_slots,
                        &scratch.data,
                        &mut scratch.regs,
                        &mut scratch.groups,
                        &mut scratch.group_rows,
                        &mut scratch.key_tmp,
                        &mut scratch.hashes,
                        rows,
                        fin,
                    ),
                    Survivors::Weighted(ids, weights) => group_and_fold_weighted(
                        &pipe.aggs,
                        &pipe.pool.consts,
                        &group_slots,
                        &scratch.data,
                        &mut scratch.regs,
                        &mut scratch.groups,
                        &mut scratch.key_tmp,
                        rows,
                        ids,
                        weights,
                    ),
                }
                out.emit_morsel(idx, &scratch.groups, n_keys, n_aggs);
                out.probes += probes;
                out.profile
                    .absorb_morsel_rows(morsel, pipe.row_bytes(morsel));
                out.profile.tuples_selected += selected;
            }
            bufs.restore(scratch);
            Ok(())
        })?;
        let t_merge = if on {
            let t1 = htap_obs::now_us();
            htap_obs::record_thread(
                htap_obs::EventKind::PipelineProbe,
                t_probe,
                morsels.len() as u64,
                t1.saturating_sub(t_probe),
            );
            t1
        } else {
            0
        };
        let rows = merge_group_outs(outs, n_keys, n_aggs, morsels.len(), &spec.aggregates, work);
        if on {
            htap_obs::record_thread(
                htap_obs::EventKind::PipelineMerge,
                t_merge,
                morsels.len() as u64,
                htap_obs::now_us().saturating_sub(t_merge),
            );
        }
        Ok(rows)
    }
}

/// The sorted, deduplicated column list a build pipeline reads — filters,
/// probe keys, and the build key. The executor uses this same list for
/// scanning and for build-bytes accounting, so the two cannot drift.
fn build_read_columns(build: &BuildSpec) -> Vec<String> {
    let mut cols: Vec<String> = build
        .input
        .filters
        .iter()
        .map(|p| p.column.clone())
        .collect();
    for probe in &build.input.probes {
        cols.extend(probe.key.columns());
    }
    cols.extend(build.key.columns());
    cols.sort();
    cols.dedup();
    cols
}

/// The probe-chain ping-pong buffers, taken out of the worker scratch for
/// the duration of one morsel (so the chain can read the survivors of one
/// hop while writing the next) and restored afterwards — the buffers keep
/// their capacity, preserving the zero-steady-state-allocation discipline.
struct ProbeBufs {
    sel_a: Vec<u32>,
    sel_b: Vec<u32>,
    w_a: Vec<u64>,
    w_b: Vec<u64>,
}

impl ProbeBufs {
    fn take(scratch: &mut ExecScratch<'_>) -> ProbeBufs {
        ProbeBufs {
            sel_a: std::mem::take(&mut scratch.sel2),
            sel_b: std::mem::take(&mut scratch.sel3),
            w_a: std::mem::take(&mut scratch.weights),
            w_b: std::mem::take(&mut scratch.weights_b),
        }
    }

    fn restore(self, scratch: &mut ExecScratch<'_>) {
        scratch.sel2 = self.sel_a;
        scratch.sel3 = self.sel_b;
        scratch.weights = self.w_a;
        scratch.weights_b = self.w_b;
    }
}

/// Final survivors of one morsel's filter + probe chain.
#[derive(Clone, Copy)]
enum Survivors<'a> {
    /// Every weight is 1: a plain selection (`None` = all rows survive),
    /// which downstream sinks fold exactly like the legacy shapes did.
    Plain(Option<&'a [u32]>),
    /// At least one probed build has duplicate keys: the surviving rows and
    /// their join multiplicities, parallel slices.
    Weighted(&'a [u32], &'a [u64]),
}

impl<'a> Survivors<'a> {
    /// The surviving row ids as a plain selection (multiplicities dropped).
    fn selection(&self) -> Option<&'a [u32]> {
        match self {
            Survivors::Plain(sel) => *sel,
            Survivors::Weighted(ids, _) => Some(ids),
        }
    }

    /// Surviving *tuple* count: the sum of multiplicities — for a weighted
    /// join, one surviving probe row stands for `w` joined tuples.
    fn tuple_count(&self, rows: usize) -> u64 {
        match self {
            Survivors::Plain(sel) => sel.map_or(rows, <[u32]>::len) as u64,
            Survivors::Weighted(_, weights) => weights.iter().sum(),
        }
    }
}

/// Probe the morsel's rows through the pipeline's chain of build tables,
/// compacting survivors hop by hop (ping-ponging between the two buffer
/// pairs of `bufs`). Returns the probe count — one per input row of each
/// hop, the same accounting the interpreted engine used — and the final
/// survivors.
///
/// While every probed build is unique and no weights are in flight, each
/// hop runs the exact membership probe the legacy executors ran — exact
/// `i64` key columns take the batch path (the chunked hash kernels fill
/// `hashes` for the whole selection, then prehashed lookups) — so the
/// surviving selection, the folds it feeds, and the work accounting are
/// bit-for-bit the legacy ones. The first hop over a duplicate-key build
/// switches the chain to weight tracking: a surviving row's multiplicity is
/// the product of the matched build weights, and downstream sinks fold it
/// that many times.
#[allow(clippy::too_many_arguments)]
fn probe_chain<'s>(
    probe_keys: &[CompiledKey],
    probes: &[ProbeSpec],
    built: &[JoinTable],
    pipe: &Pipeline,
    data: &MorselData<'_>,
    regs: &mut [Vec<f64>],
    rows: usize,
    sel: Option<&'s [u32]>,
    bufs: &'s mut ProbeBufs,
    hashes: &mut Vec<u64>,
) -> (u64, Survivors<'s>) {
    let mut total_probes = 0u64;
    let mut weighted = false;
    let mut ran = false;
    for (key, probe) in probe_keys.iter().zip(probes) {
        let table = &built[probe.build];
        let track = weighted || !table.unique();
        // Swap so the current survivors sit in `sel_b`/`w_b` and this hop
        // writes fresh output into `sel_a`/`w_a`.
        std::mem::swap(&mut bufs.sel_a, &mut bufs.sel_b);
        std::mem::swap(&mut bufs.w_a, &mut bufs.w_b);
        let src: Option<&[u32]> = if ran { Some(&bufs.sel_b) } else { sel };
        let src_w: Option<&[u64]> = if ran && weighted {
            Some(&bufs.w_b)
        } else {
            None
        };
        total_probes += src.map_or(rows, <[u32]>::len) as u64;
        if let CompiledKey::Expr(e) = key {
            eval_expr(e, data, regs, &pipe.pool.consts, rows, src);
        }
        bufs.sel_a.clear();
        bufs.w_a.clear();
        if !track {
            if let CompiledKey::Key(slot) = key {
                let keys = &data.key(*slot as usize)[..rows];
                match src {
                    None => {
                        kernels::hash1_dense(keys, hashes);
                        for (i, &h) in hashes.iter().enumerate() {
                            if table.weight_hashed(h, keys[i]) != 0 {
                                bufs.sel_a.push(i as u32);
                            }
                        }
                    }
                    Some(ids) => {
                        kernels::hash1_gather(keys, ids, hashes);
                        for (&i, &h) in ids.iter().zip(hashes.iter()) {
                            if table.weight_hashed(h, keys[i as usize]) != 0 {
                                bufs.sel_a.push(i);
                            }
                        }
                    }
                }
            } else {
                let kv = key_vals(key, data, regs, &pipe.pool.consts);
                match src {
                    None => {
                        for i in 0..rows {
                            if table.weight(kv.get(i)) != 0 {
                                bufs.sel_a.push(i as u32);
                            }
                        }
                    }
                    Some(ids) => {
                        for &i in ids {
                            if table.weight(kv.get(i as usize)) != 0 {
                                bufs.sel_a.push(i);
                            }
                        }
                    }
                }
            }
        } else {
            let kv = key_vals(key, data, regs, &pipe.pool.consts);
            match src {
                None => {
                    for i in 0..rows {
                        let w = table.weight(kv.get(i));
                        if w != 0 {
                            bufs.sel_a.push(i as u32);
                            bufs.w_a.push(w);
                        }
                    }
                }
                Some(ids) => match src_w {
                    None => {
                        for &i in ids {
                            let w = table.weight(kv.get(i as usize));
                            if w != 0 {
                                bufs.sel_a.push(i);
                                bufs.w_a.push(w);
                            }
                        }
                    }
                    Some(ws) => {
                        for (&i, &w_in) in ids.iter().zip(ws) {
                            let w = w_in * table.weight(kv.get(i as usize));
                            if w != 0 {
                                bufs.sel_a.push(i);
                                bufs.w_a.push(w);
                            }
                        }
                    }
                },
            }
        }
        weighted = track;
        ran = true;
    }
    if !ran {
        return (0, Survivors::Plain(sel));
    }
    if weighted {
        (total_probes, Survivors::Weighted(&bufs.sel_a, &bufs.w_a))
    } else {
        (total_probes, Survivors::Plain(Some(&bufs.sel_a)))
    }
}

/// Fold one morsel's weighted survivors into a scalar aggregate state:
/// SUM/AVG scale each value by its multiplicity, MIN/MAX fold each
/// surviving row once (repeated folds of one value cannot move an
/// extremum).
fn fold_weighted(
    kind: AggKind,
    state: &mut AggState,
    v: ValView<'_>,
    ids: &[u32],
    weights: &[u64],
) {
    match kind {
        AggKind::Sum => {
            for (&i, &w) in ids.iter().zip(weights) {
                state.fold_sum_weighted(v.get(i as usize), w);
            }
        }
        AggKind::Avg => {
            for (&i, &w) in ids.iter().zip(weights) {
                state.fold_avg_weighted(v.get(i as usize), w);
            }
        }
        AggKind::Min => {
            for &i in ids {
                state.fold_min(v.get(i as usize));
            }
        }
        AggKind::Max => {
            for &i in ids {
                state.fold_max(v.get(i as usize));
            }
        }
    }
}

/// The weighted twin of [`group_and_fold`]: assign each surviving row to
/// its group and fold every aggregate with the row's join multiplicity
/// (COUNT advances by `w`, SUM/AVG scale by `w`, MIN/MAX fold once). Runs
/// row at a time — the weighted path only exists for duplicate-key joins,
/// where correctness, not peak throughput, is the point.
#[allow(clippy::too_many_arguments)]
fn group_and_fold_weighted(
    aggs: &[CompiledAgg],
    consts: &[f64],
    group_slots: &[usize],
    data: &MorselData<'_>,
    regs: &mut [Vec<f64>],
    groups: &mut GroupTable,
    key_tmp: &mut Vec<i64>,
    rows: usize,
    ids: &[u32],
    weights: &[u64],
) {
    groups.begin_morsel();
    for agg in aggs {
        if let CompiledAgg::Fold(_, e) = agg {
            eval_expr(e, data, regs, consts, rows, Some(ids));
        }
    }
    for (&i, &w) in ids.iter().zip(weights) {
        let i = i as usize;
        let g = match group_slots {
            [] => groups.upsert0(),
            [s0] => groups.upsert1(data.key(*s0)[i]),
            [s0, s1] => groups.upsert2(data.key(*s0)[i], data.key(*s1)[i]),
            slots => {
                key_tmp.resize(slots.len(), 0);
                for (part, &slot) in key_tmp.iter_mut().zip(slots) {
                    *part = data.key(slot)[i];
                }
                groups.upsert(key_tmp)
            }
        };
        for (j, agg) in aggs.iter().enumerate() {
            match agg {
                CompiledAgg::Count => groups.agg_state(g, j).update_count_n(w),
                CompiledAgg::Fold(kind, e) => {
                    let v = resolve(e.output, data, regs, consts).get(i);
                    let state = groups.agg_state(g, j);
                    match kind {
                        AggKind::Sum => state.fold_sum_weighted(v, w),
                        AggKind::Avg => state.fold_avg_weighted(v, w),
                        AggKind::Min => state.fold_min(v),
                        AggKind::Max => state.fold_max(v),
                    }
                }
            }
        }
    }
}

/// Apply one finisher to the finalised rows. Sort orders are total (ties
/// break by the ascending full group key), so the output is deterministic
/// for every worker count.
fn apply_finisher(finisher: &Finisher, rows: &mut Vec<GroupRow>) {
    match finisher {
        Finisher::Having(preds) => {
            rows.retain(|row| {
                preds
                    .iter()
                    .all(|p| p.op.apply(row_slot_value(row, p.slot), p.literal))
            });
        }
        Finisher::Sort(keys) => {
            rows.sort_by(|a, b| {
                for key in keys {
                    let (x, y) = (row_slot_value(a, key.slot), row_slot_value(b, key.slot));
                    let ord = if key.desc {
                        y.total_cmp(&x)
                    } else {
                        x.total_cmp(&y)
                    };
                    if ord != std::cmp::Ordering::Equal {
                        return ord;
                    }
                }
                a.0.cmp(&b.0)
            });
        }
        Finisher::Limit(n) => rows.truncate(*n),
    }
}

/// Read one slot of a finalised row. Group keys convert exactly — the
/// engine's integer keys stay far below 2^53.
fn row_slot_value(row: &GroupRow, slot: RowSlot) -> f64 {
    match slot {
        RowSlot::Key(i) => row.0[i] as f64,
        RowSlot::Agg(i) => row.1[i],
    }
}

/// Assign every surviving row to its group and fold all aggregate inputs in
/// a single row-wise pass: one upsert plus one state-slice fetch per row.
/// The per-state fold order is row order — exactly the order the two-phase
/// and interpreted variants produce — so results are bit-identical; only the
/// traversal count changes. Pipelines with more aggregates than the fused
/// view array holds fall back to a column-at-a-time second phase.
///
/// One- and two-column keys (the common shapes) batch-hash the whole
/// selection with the chunked kernels of [`crate::kernels`] into `hashes`
/// before the upsert loop; wider keys and the wide-aggregate fallback keep
/// the per-row hash (the documented scalar fallback).
#[allow(clippy::too_many_arguments)]
fn group_and_fold(
    aggs: &[CompiledAgg],
    consts: &[f64],
    group_slots: &[usize],
    data: &MorselData<'_>,
    regs: &mut [Vec<f64>],
    groups: &mut GroupTable,
    group_rows: &mut Vec<u32>,
    key_tmp: &mut Vec<i64>,
    hashes: &mut Vec<u64>,
    rows: usize,
    sel: Option<&[u32]>,
) {
    groups.begin_morsel();
    // Evaluate every fold input up front (each compiled expression writes
    // its own registers, so there is no aliasing between aggregates).
    for agg in aggs {
        if let CompiledAgg::Fold(_, e) = agg {
            eval_expr(e, data, regs, consts, rows, sel);
        }
    }
    const MAX_FUSED_AGGS: usize = 8;
    if aggs.len() <= MAX_FUSED_AGGS {
        let mut views = [ValView::Const(0.0); MAX_FUSED_AGGS];
        for (view, agg) in views.iter_mut().zip(aggs) {
            if let CompiledAgg::Fold(_, e) = agg {
                *view = resolve(e.output, data, regs, consts);
            }
        }
        match group_slots {
            [] => {
                // GROUP BY over no columns: one global group.
                for_each_selected(rows, sel, |i| {
                    let g = groups.upsert0();
                    fold_fused_row(groups, aggs, &views, g, i);
                });
            }
            [s0] => {
                let k0 = data.key(*s0);
                match sel {
                    None => {
                        kernels::hash1_dense(k0, hashes);
                        for i in 0..rows {
                            let g = groups.upsert1_prehashed(hashes[i], k0[i]);
                            fold_fused_row(groups, aggs, &views, g, i);
                        }
                    }
                    Some(ids) => {
                        kernels::hash1_gather(k0, ids, hashes);
                        for (pos, &i) in ids.iter().enumerate() {
                            let i = i as usize;
                            let g = groups.upsert1_prehashed(hashes[pos], k0[i]);
                            fold_fused_row(groups, aggs, &views, g, i);
                        }
                    }
                }
            }
            [s0, s1] => {
                let k0 = data.key(*s0);
                let k1 = data.key(*s1);
                match sel {
                    None => {
                        kernels::hash2_dense(k0, k1, hashes);
                        for i in 0..rows {
                            let g = groups.upsert2_prehashed(hashes[i], k0[i], k1[i]);
                            fold_fused_row(groups, aggs, &views, g, i);
                        }
                    }
                    Some(ids) => {
                        kernels::hash2_gather(k0, k1, ids, hashes);
                        for (pos, &i) in ids.iter().enumerate() {
                            let i = i as usize;
                            let g = groups.upsert2_prehashed(hashes[pos], k0[i], k1[i]);
                            fold_fused_row(groups, aggs, &views, g, i);
                        }
                    }
                }
            }
            slots => {
                key_tmp.resize(slots.len(), 0);
                for_each_selected(rows, sel, |i| {
                    for (part, &slot) in key_tmp.iter_mut().zip(slots) {
                        *part = data.key(slot)[i];
                    }
                    let g = groups.upsert(key_tmp);
                    fold_fused_row(groups, aggs, &views, g, i);
                });
            }
        }
        return;
    }

    // Fallback for very wide aggregate lists: phase A assigns groups into
    // the reused `group_rows` buffer, phase B folds column at a time.
    group_rows.clear();
    match group_slots {
        [] => {
            for_each_selected(rows, sel, |_| {
                let g = groups.upsert0();
                group_rows.push(g as u32);
            });
        }
        [s0] => {
            let k0 = data.key(*s0);
            for_each_selected(rows, sel, |i| {
                let g = groups.upsert1(k0[i]);
                group_rows.push(g as u32);
            });
        }
        [s0, s1] => {
            let k0 = data.key(*s0);
            let k1 = data.key(*s1);
            for_each_selected(rows, sel, |i| {
                let g = groups.upsert2(k0[i], k1[i]);
                group_rows.push(g as u32);
            });
        }
        slots => {
            key_tmp.resize(slots.len(), 0);
            for_each_selected(rows, sel, |i| {
                for (part, &slot) in key_tmp.iter_mut().zip(slots) {
                    *part = data.key(slot)[i];
                }
                let g = groups.upsert(key_tmp);
                group_rows.push(g as u32);
            });
        }
    }
    for (j, agg) in aggs.iter().enumerate() {
        match agg {
            CompiledAgg::Count => {
                for &g in group_rows.iter() {
                    groups.agg_state(g as usize, j).update_count();
                }
            }
            CompiledAgg::Fold(kind, e) => {
                let v = resolve(e.output, data, regs, consts);
                // Each (position, row) pair folds v[row] into its group's
                // state `j`, with the fold specialised per aggregate kind.
                macro_rules! fold_groups {
                    ($fold:ident) => {
                        match sel {
                            None => {
                                for (i, &g) in group_rows.iter().enumerate() {
                                    groups.agg_state(g as usize, j).$fold(v.get(i));
                                }
                            }
                            Some(ids) => {
                                for (pos, &i) in ids.iter().enumerate() {
                                    let g = group_rows[pos] as usize;
                                    groups.agg_state(g, j).$fold(v.get(i as usize));
                                }
                            }
                        }
                    };
                }
                match kind {
                    AggKind::Sum => fold_groups!(fold_sum),
                    AggKind::Avg => fold_groups!(fold_avg),
                    AggKind::Min => fold_groups!(fold_min),
                    AggKind::Max => fold_groups!(fold_max),
                }
            }
        }
    }
}

/// Fold one row's value of every aggregate into group `g` — the inner body
/// of the fused group-by pass.
#[inline(always)]
fn fold_fused_row(
    groups: &mut crate::hashtable::GroupTable,
    aggs: &[CompiledAgg],
    views: &[ValView<'_>],
    g: usize,
    i: usize,
) {
    for ((state, agg), view) in groups.group_states_mut(g).iter_mut().zip(aggs).zip(views) {
        match agg {
            CompiledAgg::Count => state.update_count(),
            CompiledAgg::Fold(AggKind::Sum, _) => state.fold_sum(view.get(i)),
            CompiledAgg::Fold(AggKind::Avg, _) => state.fold_avg(view.get(i)),
            CompiledAgg::Fold(AggKind::Min, _) => state.fold_min(view.get(i)),
            CompiledAgg::Fold(AggKind::Max, _) => state.fold_max(view.get(i)),
        }
    }
}

/// A keyed group-by helper exposed for reuse by custom plans and tests:
/// folds `(key, value)` pairs and returns groups sorted by key.
pub fn hash_group_sum(pairs: impl IntoIterator<Item = (i64, f64)>) -> Vec<(i64, f64)> {
    let mut map: BTreeMap<i64, f64> = BTreeMap::new();
    for (k, v) in pairs {
        *map.entry(k).or_insert(0.0) += v;
    }
    map.into_iter().collect()
}
#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{CmpOp, Predicate, ScalarExpr};
    use crate::plan::{BuildSide, TopK};
    use crate::source::ScanSource;
    use htap_sim::CoreId;
    use htap_storage::{ColumnDef, ColumnarTable, DataType, TableSchema, TableSnapshot, Value};
    use std::sync::Arc;

    /// orderline-like table: (ol_number i64, ol_quantity i32, ol_amount f64, ol_i_id i64)
    fn orderline(n: u64) -> Arc<ColumnarTable> {
        let schema = TableSchema::new(
            "orderline",
            vec![
                ColumnDef::new("ol_number", DataType::I64),
                ColumnDef::new("ol_quantity", DataType::I32),
                ColumnDef::new("ol_amount", DataType::F64),
                ColumnDef::new("ol_i_id", DataType::I64),
            ],
            Some(0),
        );
        let t = ColumnarTable::new(schema);
        for i in 0..n {
            t.append_row(&[
                Value::I64(i as i64),
                Value::I32((i % 10) as i32),
                Value::F64((i % 100) as f64 + 0.1),
                Value::I64((i % 5) as i64),
            ])
            .unwrap();
        }
        Arc::new(t)
    }

    /// item-like dimension table: (i_id i64, i_price f64)
    fn item(n: u64) -> Arc<ColumnarTable> {
        let schema = TableSchema::new(
            "item",
            vec![
                ColumnDef::new("i_id", DataType::I64),
                ColumnDef::new("i_price", DataType::F64),
            ],
            Some(0),
        );
        let t = ColumnarTable::new(schema);
        for i in 0..n {
            t.append_row(&[Value::I64(i as i64), Value::F64(i as f64 * 10.0)])
                .unwrap();
        }
        Arc::new(t)
    }

    fn sources_for(n: u64) -> BTreeMap<String, ScanSource> {
        let ol = orderline(n);
        let snap = TableSnapshot::new("orderline".into(), ol, n, 0);
        let mut m = BTreeMap::new();
        m.insert(
            "orderline".to_string(),
            ScanSource::contiguous_snapshot(&snap, SocketId(0)),
        );
        m
    }

    fn team_of(n: u16) -> WorkerTeam {
        WorkerTeam::from_cores((0..n).map(CoreId).collect())
    }

    /// mid dimension for the chain join: (m_id i64, m_c i64) with
    /// m_id in 0..n and m_c = m_id % 3.
    fn mid_dim(n: u64) -> Arc<ColumnarTable> {
        let schema = TableSchema::new(
            "mid",
            vec![
                ColumnDef::new("m_id", DataType::I64),
                ColumnDef::new("m_c", DataType::I64),
            ],
            Some(0),
        );
        let t = ColumnarTable::new(schema);
        for i in 0..n {
            t.append_row(&[Value::I64(i as i64), Value::I64((i % 3) as i64)])
                .unwrap();
        }
        Arc::new(t)
    }

    /// far dimension: (c_id i64, c_v f64) with c_id in 0..n, c_v = c_id * 1.5.
    fn far_dim(n: u64) -> Arc<ColumnarTable> {
        let schema = TableSchema::new(
            "far",
            vec![
                ColumnDef::new("c_id", DataType::I64),
                ColumnDef::new("c_v", DataType::F64),
            ],
            Some(0),
        );
        let t = ColumnarTable::new(schema);
        for i in 0..n {
            t.append_row(&[Value::I64(i as i64), Value::F64(i as f64 * 1.5)])
                .unwrap();
        }
        Arc::new(t)
    }

    /// orderline ⋈ mid ⋈ far sources: mid keys match ol_i_id (0..5), far keys
    /// match m_c (0..3).
    fn chain_sources(n: u64) -> BTreeMap<String, ScanSource> {
        let mut sources = sources_for(n);
        let mid = mid_dim(5);
        let snap = TableSnapshot::new("mid".into(), mid, 5, 0);
        sources.insert(
            "mid".into(),
            ScanSource::contiguous_snapshot(&snap, SocketId(1)),
        );
        let far = far_dim(3);
        let snap = TableSnapshot::new("far".into(), far, 3, 0);
        sources.insert(
            "far".into(),
            ScanSource::contiguous_snapshot(&snap, SocketId(1)),
        );
        sources
    }

    fn chain_plan() -> QueryPlan {
        QueryPlan::MultiJoinAggregate {
            fact: "orderline".into(),
            fact_key: ScalarExpr::col("ol_i_id"),
            fact_filters: vec![Predicate::new("ol_quantity", CmpOp::Lt, 5.0)],
            mid: BuildSide::new("mid", ScalarExpr::col("m_id"), vec![]),
            mid_fk: ScalarExpr::col("m_c"),
            // far keys with c_v >= 1.5 -> c_id in {1, 2}.
            far: BuildSide::new(
                "far",
                ScalarExpr::col("c_id"),
                vec![Predicate::new("c_v", CmpOp::Ge, 1.5)],
            ),
            aggregates: vec![AggExpr::Sum(ScalarExpr::col("ol_amount")), AggExpr::Count],
        }
    }

    #[test]
    fn multi_join_chain_filters_through_both_dims() {
        // far set = {1, 2}; mid rows with m_c in {1, 2} -> m_id in {1, 2, 4};
        // fact rows pass when ol_quantity < 5 and ol_i_id in {1, 2, 4}.
        let out = QueryExecutor::with_block_rows(64)
            .execute(&chain_plan(), &chain_sources(1000))
            .unwrap();
        let survives = |i: &u64| i % 10 < 5 && matches!(i % 5, 1 | 2 | 4);
        let expected_sum: f64 = (0..1000u64)
            .filter(survives)
            .map(|i| (i % 100) as f64 + 0.1)
            .sum();
        let expected_count = (0..1000u64).filter(survives).count() as f64;
        assert!((out.result.scalars().unwrap()[0] - expected_sum).abs() < 1e-9);
        assert_eq!(out.result.scalars().unwrap()[1], expected_count);
        // Probes: 5 mid rows checked against the far set + 500 filtered fact rows.
        assert_eq!(out.work.probes, 5 + 500);
    }

    #[test]
    fn multi_join_accounts_both_build_sides() {
        let out = QueryExecutor::with_block_rows(128)
            .execute(&chain_plan(), &chain_sources(500))
            .unwrap();
        assert!(out.work.build_bytes > 0, "mid build side accounted");
        assert!(out.work.far_build_bytes > 0, "far build side accounted");
        assert_eq!(out.work.hash_table_bytes, 3 * 16, "mid set {{1, 2, 4}}");
        assert_eq!(out.work.far_hash_table_bytes, 2 * 16, "far set {{1, 2}}");
        let jw = out.work.join_work().unwrap();
        assert_eq!(
            jw.build_bytes,
            out.work.build_bytes + out.work.far_build_bytes,
            "the cost model sees both broadcasts"
        );
        assert_eq!(
            jw.hash_table_bytes,
            out.work.hash_table_bytes + out.work.far_hash_table_bytes
        );
    }

    #[test]
    fn multi_join_is_bit_identical_across_worker_counts() {
        let sources = chain_sources(5_003);
        let executor = QueryExecutor::with_block_rows(97);
        let solo = executor.execute(&chain_plan(), &sources).unwrap();
        for workers in [2u16, 4, 7] {
            let parallel = executor
                .execute_parallel(&chain_plan(), &sources, &team_of(workers))
                .unwrap();
            assert_eq!(solo, parallel, "{workers} workers diverged from solo");
        }
    }

    fn join_group_by_plan(top_k: Option<TopK>) -> QueryPlan {
        QueryPlan::JoinGroupByAggregate {
            fact: "orderline".into(),
            fact_key: ScalarExpr::col("ol_i_id"),
            fact_filters: vec![Predicate::new("ol_amount", CmpOp::Ge, 10.0)],
            // mid keys with m_c == 1 -> m_id in {1, 4}.
            dim: BuildSide::new(
                "mid",
                ScalarExpr::col("m_id"),
                vec![Predicate::new("m_c", CmpOp::Eq, 1.0)],
            ),
            group_by: vec!["ol_quantity".into()],
            aggregates: vec![AggExpr::Count, AggExpr::Sum(ScalarExpr::col("ol_amount"))],
            top_k,
        }
    }

    #[test]
    fn join_group_by_groups_fact_rows_matching_dim() {
        let out = QueryExecutor::with_block_rows(128)
            .execute(&join_group_by_plan(None), &chain_sources(1000))
            .unwrap();
        let survives = |i: &u64| (i % 100) as f64 + 0.1 >= 10.0 && matches!(i % 5, 1 | 4);
        let groups = out.result.groups().unwrap();
        // One group per surviving quantity value, keys ascending.
        let mut expected: BTreeMap<i64, (f64, f64)> = BTreeMap::new();
        for i in (0..1000u64).filter(survives) {
            let e = expected.entry((i % 10) as i64).or_insert((0.0, 0.0));
            e.0 += 1.0;
            e.1 += (i % 100) as f64 + 0.1;
        }
        assert_eq!(groups.len(), expected.len());
        for ((key, aggs), (exp_key, (exp_count, exp_sum))) in groups.iter().zip(&expected) {
            assert_eq!(key[0], *exp_key);
            assert_eq!(aggs[0], *exp_count);
            assert!((aggs[1] - exp_sum).abs() < 1e-9);
        }
        assert!(out.work.probes > 0);
        assert!(out.work.build_bytes > 0);
        assert_eq!(out.work.far_build_bytes, 0, "only one build side");
    }

    #[test]
    fn join_group_by_top_k_orders_groups_descending_with_key_tiebreak() {
        let top_k = Some(TopK { agg_index: 0, k: 3 });
        let out = QueryExecutor::with_block_rows(64)
            .execute(&join_group_by_plan(top_k), &chain_sources(1000))
            .unwrap();
        let groups = out.result.groups().unwrap();
        assert_eq!(groups.len(), 3);
        for pair in groups.windows(2) {
            let (a, b) = (&pair[0], &pair[1]);
            assert!(
                a.1[0] > b.1[0] || (a.1[0] == b.1[0] && a.0 < b.0),
                "descending count with ascending key tie-break: {groups:?}"
            );
        }
        // The top-k rows are a prefix of the full descending ordering.
        let full = QueryExecutor::with_block_rows(64)
            .execute(&join_group_by_plan(None), &chain_sources(1000))
            .unwrap();
        let mut all = full.result.groups().unwrap().to_vec();
        all.sort_by(|a, b| b.1[0].total_cmp(&a.1[0]).then_with(|| a.0.cmp(&b.0)));
        assert_eq!(groups, &all[..3]);
    }

    #[test]
    fn join_group_by_is_bit_identical_across_worker_counts() {
        let sources = chain_sources(5_003);
        let plan = join_group_by_plan(Some(TopK { agg_index: 1, k: 4 }));
        let executor = QueryExecutor::with_block_rows(173);
        let solo = executor.execute(&plan, &sources).unwrap();
        for workers in [2u16, 4, 8] {
            let parallel = executor
                .execute_parallel(&plan, &sources, &team_of(workers))
                .unwrap();
            assert_eq!(solo, parallel, "{workers} workers diverged from solo");
        }
    }

    #[test]
    fn invalid_top_k_is_a_typed_error() {
        let plan = match join_group_by_plan(Some(TopK { agg_index: 9, k: 3 })) {
            p @ QueryPlan::JoinGroupByAggregate { .. } => p,
            _ => unreachable!(),
        };
        let err = QueryExecutor::default()
            .execute(&plan, &chain_sources(10))
            .unwrap_err();
        assert_eq!(
            err,
            OlapError::InvalidTopK {
                agg_index: 9,
                aggregates: 2
            }
        );
        assert!(err.to_string().contains("top-k"));
    }

    #[test]
    fn aggregate_plan_computes_filtered_sum_and_count() {
        let plan = QueryPlan::Aggregate {
            table: "orderline".into(),
            filters: vec![Predicate::new("ol_quantity", CmpOp::Lt, 5.0)],
            aggregates: vec![AggExpr::Sum(ScalarExpr::col("ol_amount")), AggExpr::Count],
        };
        let out = QueryExecutor::with_block_rows(64)
            .execute(&plan, &sources_for(1000))
            .unwrap();
        // Rows with quantity in 0..=4: i%10 < 5, i.e. 500 rows.
        let expected_sum: f64 = (0..1000u64)
            .filter(|i| i % 10 < 5)
            .map(|i| (i % 100) as f64 + 0.1)
            .sum();
        assert!((out.result.scalars().unwrap()[0] - expected_sum).abs() < 1e-9);
        assert_eq!(out.result.scalars().unwrap()[1], 500.0);
        assert_eq!(out.work.tuples_scanned, 1000);
        assert_eq!(out.work.tuples_selected, 500);
        assert!(out.work.total_bytes() > 0);
        assert_eq!(
            out.work.fresh_rows, 1000,
            "all rows came from an OLTP snapshot"
        );
        assert!(out.work.join_work().is_none());
    }

    #[test]
    fn group_by_plan_produces_one_row_per_group() {
        let plan = QueryPlan::GroupByAggregate {
            table: "orderline".into(),
            filters: vec![],
            group_by: vec!["ol_i_id".into()],
            aggregates: vec![AggExpr::Sum(ScalarExpr::col("ol_amount")), AggExpr::Count],
        };
        let out = QueryExecutor::with_block_rows(128)
            .execute(&plan, &sources_for(1000))
            .unwrap();
        let groups = out.result.groups().unwrap();
        assert_eq!(groups.len(), 5);
        // Every group has 200 rows.
        for (key, aggs) in groups {
            assert!(key[0] >= 0 && key[0] < 5);
            assert_eq!(aggs[1], 200.0);
        }
        let total: f64 = groups.iter().map(|(_, a)| a[0]).sum();
        let expected: f64 = (0..1000u64).map(|i| (i % 100) as f64 + 0.1).sum();
        assert!((total - expected).abs() < 1e-6);
        assert_eq!(out.result.row_count(), 5);
    }

    #[test]
    fn join_plan_filters_both_sides_and_counts_probes() {
        let mut sources = sources_for(1000);
        let it = item(5);
        let snap = TableSnapshot::new("item".into(), it, 5, 0);
        sources.insert(
            "item".into(),
            ScanSource::contiguous_snapshot(&snap, SocketId(1)),
        );

        let plan = QueryPlan::JoinAggregate {
            fact: "orderline".into(),
            dim: "item".into(),
            fact_key: "ol_i_id".into(),
            dim_key: "i_id".into(),
            fact_filters: vec![Predicate::new("ol_quantity", CmpOp::Lt, 5.0)],
            // Items with price >= 20 -> i_id in {2, 3, 4}.
            dim_filters: vec![Predicate::new("i_price", CmpOp::Ge, 20.0)],
            aggregates: vec![AggExpr::Sum(ScalarExpr::col("ol_amount")), AggExpr::Count],
        };
        let out = QueryExecutor::with_block_rows(100)
            .execute(&plan, &sources)
            .unwrap();
        let expected: f64 = (0..1000u64)
            .filter(|i| i % 10 < 5 && i % 5 >= 2)
            .map(|i| (i % 100) as f64 + 0.1)
            .sum();
        let expected_count = (0..1000u64).filter(|i| i % 10 < 5 && i % 5 >= 2).count() as f64;
        assert!((out.result.scalars().unwrap()[0] - expected).abs() < 1e-9);
        assert_eq!(out.result.scalars().unwrap()[1], expected_count);
        assert_eq!(out.work.probes, 500, "every filtered fact row probes");
        assert!(out.work.build_bytes > 0);
        assert!(out.work.hash_table_bytes > 0);
        let jw = out.work.join_work().unwrap();
        assert_eq!(jw.probes, 500);
        // Bytes are attributed to both sockets (fact on 0, dim on 1).
        assert!(out.work.bytes_per_socket.contains_key(&SocketId(0)));
        assert!(out.work.bytes_per_socket.contains_key(&SocketId(1)));
    }

    #[test]
    fn split_access_profile_reports_fresh_rows_only_for_oltp_segments() {
        let olap_part = orderline(800);
        let oltp_part = orderline(1000);
        let snap = TableSnapshot::new("orderline".into(), oltp_part, 1000, 0);
        let src = ScanSource::split(olap_part, 800, SocketId(1), &snap, SocketId(0));
        let mut sources = BTreeMap::new();
        sources.insert("orderline".to_string(), src);
        let plan = QueryPlan::Aggregate {
            table: "orderline".into(),
            filters: vec![],
            aggregates: vec![AggExpr::Count, AggExpr::Sum(ScalarExpr::col("ol_amount"))],
        };
        let out = QueryExecutor::default().execute(&plan, &sources).unwrap();
        assert_eq!(out.result.scalars().unwrap()[0], 1000.0);
        assert_eq!(out.work.fresh_rows, 200);
        assert!(out.work.bytes_per_socket[&SocketId(1)] > out.work.bytes_per_socket[&SocketId(0)]);
    }

    #[test]
    fn scan_work_conversion_preserves_bytes_and_tuples() {
        let plan = QueryPlan::Aggregate {
            table: "orderline".into(),
            filters: vec![],
            aggregates: vec![AggExpr::Sum(ScalarExpr::col("ol_amount"))],
        };
        let out = QueryExecutor::default()
            .execute(&plan, &sources_for(500))
            .unwrap();
        let sw = out.work.scan_work(1.0);
        assert_eq!(sw.tuples, 500);
        assert_eq!(sw.total_bytes(), out.work.total_bytes());
    }

    #[test]
    fn results_are_identical_across_block_sizes() {
        let plan = QueryPlan::GroupByAggregate {
            table: "orderline".into(),
            filters: vec![Predicate::new("ol_amount", CmpOp::Ge, 10.0)],
            group_by: vec!["ol_quantity".into()],
            aggregates: vec![AggExpr::Sum(ScalarExpr::col("ol_amount")), AggExpr::Count],
        };
        let small = QueryExecutor::with_block_rows(7)
            .execute(&plan, &sources_for(997))
            .unwrap();
        let large = QueryExecutor::with_block_rows(100_000)
            .execute(&plan, &sources_for(997))
            .unwrap();
        assert_eq!(small.result.row_count(), large.result.row_count());
        for (s, l) in small
            .result
            .groups()
            .unwrap()
            .iter()
            .zip(large.result.groups().unwrap())
        {
            assert_eq!(s.0, l.0);
            for (a, b) in s.1.iter().zip(&l.1) {
                assert!((a - b).abs() < 1e-9);
            }
        }
    }

    /// The determinism contract of the tentpole: the same plan over the same
    /// sources produces bit-for-bit identical results and work profiles for
    /// every worker count — for a CH-Q6 shape (scan-filter-reduce)...
    #[test]
    fn q6_shape_is_bit_identical_across_worker_counts() {
        let plan = QueryPlan::Aggregate {
            table: "orderline".into(),
            filters: vec![Predicate::new("ol_quantity", CmpOp::Lt, 7.0)],
            aggregates: vec![
                AggExpr::Sum(ScalarExpr::col("ol_amount") * ScalarExpr::col("ol_quantity")),
                AggExpr::Avg(ScalarExpr::col("ol_amount")),
                AggExpr::Min(ScalarExpr::col("ol_amount")),
                AggExpr::Max(ScalarExpr::col("ol_amount")),
                AggExpr::Count,
            ],
        };
        let sources = sources_for(10_007);
        let executor = QueryExecutor::with_block_rows(251);
        let solo = executor.execute(&plan, &sources).unwrap();
        for workers in [2u16, 3, 4, 8] {
            let parallel = executor
                .execute_parallel(&plan, &sources, &team_of(workers))
                .unwrap();
            assert_eq!(solo, parallel, "{workers} workers diverged from solo");
        }
    }

    /// ...and for a CH-Q1 shape (scan-filter-group-by).
    #[test]
    fn q1_shape_is_bit_identical_across_worker_counts() {
        let plan = QueryPlan::GroupByAggregate {
            table: "orderline".into(),
            filters: vec![Predicate::new("ol_amount", CmpOp::Ge, 3.0)],
            group_by: vec!["ol_quantity".into(), "ol_i_id".into()],
            aggregates: vec![
                AggExpr::Sum(ScalarExpr::col("ol_amount")),
                AggExpr::Avg(ScalarExpr::col("ol_amount")),
                AggExpr::Count,
            ],
        };
        let sources = sources_for(10_007);
        let executor = QueryExecutor::with_block_rows(173);
        let solo = executor.execute(&plan, &sources).unwrap();
        for workers in [2u16, 4, 8] {
            let parallel = executor
                .execute_parallel(&plan, &sources, &team_of(workers))
                .unwrap();
            assert_eq!(solo, parallel, "{workers} workers diverged from solo");
        }
    }

    #[test]
    fn join_shape_is_bit_identical_across_worker_counts() {
        let mut sources = sources_for(5_003);
        let it = item(5);
        let snap = TableSnapshot::new("item".into(), it, 5, 0);
        sources.insert(
            "item".into(),
            ScanSource::contiguous_snapshot(&snap, SocketId(1)),
        );
        let plan = QueryPlan::JoinAggregate {
            fact: "orderline".into(),
            dim: "item".into(),
            fact_key: "ol_i_id".into(),
            dim_key: "i_id".into(),
            fact_filters: vec![Predicate::new("ol_quantity", CmpOp::Lt, 6.0)],
            dim_filters: vec![Predicate::new("i_price", CmpOp::Ge, 10.0)],
            aggregates: vec![AggExpr::Sum(ScalarExpr::col("ol_amount")), AggExpr::Count],
        };
        let executor = QueryExecutor::with_block_rows(97);
        let solo = executor.execute(&plan, &sources).unwrap();
        for workers in [2u16, 4, 7] {
            let parallel = executor
                .execute_parallel(&plan, &sources, &team_of(workers))
                .unwrap();
            assert_eq!(solo, parallel, "{workers} workers diverged from solo");
        }
    }

    #[test]
    fn parallel_work_profile_sums_to_sequential_totals() {
        let plan = QueryPlan::Aggregate {
            table: "orderline".into(),
            filters: vec![Predicate::new("ol_quantity", CmpOp::Lt, 5.0)],
            aggregates: vec![AggExpr::Count],
        };
        let sources = sources_for(4_321);
        let executor = QueryExecutor::with_block_rows(100);
        let solo = executor.execute(&plan, &sources).unwrap();
        let parallel = executor
            .execute_parallel(&plan, &sources, &team_of(6))
            .unwrap();
        assert_eq!(solo.work, parallel.work);
        assert_eq!(parallel.work.tuples_scanned, 4_321);
    }

    #[test]
    fn empty_source_executes_to_empty_result() {
        let plan = QueryPlan::GroupByAggregate {
            table: "orderline".into(),
            filters: vec![],
            group_by: vec!["ol_i_id".into()],
            aggregates: vec![AggExpr::Count],
        };
        let out = QueryExecutor::default()
            .execute_parallel(&plan, &sources_for(0), &team_of(4))
            .unwrap();
        assert_eq!(out.result.row_count(), 0);
        assert_eq!(out.work.tuples_scanned, 0);
    }

    #[test]
    fn group_key_reused_as_filter_column_is_byte_accounted_once() {
        // ol_quantity serves as both filter input and group key: the morsel
        // byte accounting must charge its 4 bytes per row once, not twice.
        let plan = QueryPlan::GroupByAggregate {
            table: "orderline".into(),
            filters: vec![Predicate::new("ol_quantity", CmpOp::Lt, 5.0)],
            group_by: vec!["ol_quantity".into()],
            aggregates: vec![AggExpr::Count],
        };
        let out = QueryExecutor::with_block_rows(64)
            .execute(&plan, &sources_for(100))
            .unwrap();
        assert_eq!(out.work.total_bytes(), 100 * 4);
    }

    #[test]
    fn plain_column_join_keys_stay_exact_beyond_2_pow_53() {
        // 2^53 and 2^53 + 1 are distinct i64 keys but collapse to the same
        // f64; plain-column join keys must take the exact i64 path, so the
        // probe of 2^53 + 1 against a build set holding 2^53 finds nothing.
        const BIG: i64 = 1 << 53;
        let dim = ColumnarTable::new(TableSchema::new(
            "dim64",
            vec![ColumnDef::new("d_id", DataType::I64)],
            Some(0),
        ));
        dim.append_row(&[Value::I64(BIG)]).unwrap();
        let fact = ColumnarTable::new(TableSchema::new(
            "fact64",
            vec![
                ColumnDef::new("f_key", DataType::I64),
                ColumnDef::new("f_a", DataType::F64),
            ],
            Some(0),
        ));
        fact.append_row(&[Value::I64(BIG + 1), Value::F64(1.0)])
            .unwrap();
        let mut sources = BTreeMap::new();
        let snap = TableSnapshot::new("dim64".into(), Arc::new(dim), 1, 0);
        sources.insert(
            "dim64".to_string(),
            ScanSource::contiguous_snapshot(&snap, SocketId(0)),
        );
        let snap = TableSnapshot::new("fact64".into(), Arc::new(fact), 1, 0);
        sources.insert(
            "fact64".to_string(),
            ScanSource::contiguous_snapshot(&snap, SocketId(0)),
        );
        let plan = QueryPlan::JoinAggregate {
            fact: "fact64".into(),
            dim: "dim64".into(),
            fact_key: "f_key".into(),
            dim_key: "d_id".into(),
            fact_filters: vec![],
            dim_filters: vec![],
            aggregates: vec![AggExpr::Count],
        };
        let out = QueryExecutor::default().execute(&plan, &sources).unwrap();
        assert_eq!(
            out.result.scalars().unwrap()[0],
            0.0,
            "2^53 and 2^53 + 1 must not join"
        );

        // The expression-keyed shapes route plain-column keys through the
        // same exact path, on both the build and the probe side.
        let jgb = QueryPlan::JoinGroupByAggregate {
            fact: "fact64".into(),
            fact_key: ScalarExpr::col("f_key"),
            fact_filters: vec![],
            dim: BuildSide::new("dim64", ScalarExpr::col("d_id"), vec![]),
            group_by: vec!["f_key".into()],
            aggregates: vec![AggExpr::Count],
            top_k: None,
        };
        let out = QueryExecutor::default().execute(&jgb, &sources).unwrap();
        assert!(out.result.groups().unwrap().is_empty());
        let multi = QueryPlan::MultiJoinAggregate {
            fact: "fact64".into(),
            fact_key: ScalarExpr::col("f_key"),
            fact_filters: vec![],
            mid: BuildSide::new("dim64", ScalarExpr::col("d_id"), vec![]),
            mid_fk: ScalarExpr::col("d_id"),
            far: BuildSide::new("dim64", ScalarExpr::col("d_id"), vec![]),
            aggregates: vec![AggExpr::Count],
        };
        let out = QueryExecutor::default().execute(&multi, &sources).unwrap();
        assert_eq!(out.result.scalars().unwrap()[0], 0.0);
    }

    #[test]
    fn shared_column_between_plain_key_and_computed_expression_does_not_panic() {
        // mid.key loads m_id through the key path while mid_fk *computes*
        // over the same column: m_id must stay numeric-loaded too, because
        // ScalarExpr::evaluate has no key-column fallback.
        let plan = QueryPlan::MultiJoinAggregate {
            fact: "orderline".into(),
            fact_key: ScalarExpr::col("ol_i_id"),
            fact_filters: vec![],
            mid: BuildSide::new("mid", ScalarExpr::col("m_id"), vec![]),
            // fk = m_id * 0 + m_c == m_c, but references m_id in a
            // computed expression.
            mid_fk: ScalarExpr::col("m_id") * ScalarExpr::lit(0.0) + ScalarExpr::col("m_c"),
            far: BuildSide::new("far", ScalarExpr::col("c_id"), vec![]),
            aggregates: vec![AggExpr::Count],
        };
        let out = QueryExecutor::with_block_rows(64)
            .execute(&plan, &chain_sources(200))
            .unwrap();
        // far = {0, 1, 2} ⊇ m_c values, so every mid and fact row joins.
        assert_eq!(out.result.scalars().unwrap()[0], 200.0);
    }

    #[test]
    fn hash_group_sum_helper() {
        let groups = hash_group_sum(vec![(1, 1.0), (2, 2.0), (1, 3.0)]);
        assert_eq!(groups, vec![(1, 4.0), (2, 2.0)]);
    }

    #[test]
    fn missing_source_is_a_typed_error() {
        let plan = QueryPlan::Aggregate {
            table: "nope".into(),
            filters: vec![],
            aggregates: vec![AggExpr::Count],
        };
        let err = QueryExecutor::default()
            .execute(&plan, &BTreeMap::new())
            .unwrap_err();
        assert_eq!(
            err,
            OlapError::MissingSource {
                table: "nope".into()
            }
        );
        assert!(err.to_string().contains("no access path provided"));
    }

    #[test]
    fn unknown_plan_column_is_a_typed_error() {
        let plan = QueryPlan::Aggregate {
            table: "orderline".into(),
            filters: vec![Predicate::new("ol_ghost", CmpOp::Lt, 1.0)],
            aggregates: vec![AggExpr::Count],
        };
        let err = QueryExecutor::default()
            .execute(&plan, &sources_for(10))
            .unwrap_err();
        assert_eq!(
            err,
            OlapError::UnknownColumn {
                table: "orderline".into(),
                column: "ol_ghost".into()
            }
        );
    }

    #[test]
    fn wrong_shape_accessors_are_typed_errors() {
        let scalars = QueryResult::Scalars(vec![1.0]);
        assert!(scalars.scalars().is_ok());
        assert_eq!(
            scalars.groups().unwrap_err(),
            OlapError::WrongResultShape {
                expected: "grouped",
                found: "scalar"
            }
        );
        let groups = QueryResult::Groups(vec![]);
        assert!(groups.groups().is_ok());
        assert_eq!(
            groups.scalars().unwrap_err(),
            OlapError::WrongResultShape {
                expected: "scalar",
                found: "grouped"
            }
        );
    }
}
