//! Worker manager: an elastic pool of transaction workers.
//!
//! The paper's OLTP engine "uses one hardware thread per transaction. The WM
//! keeps a worker pool of active threads. We set each thread to first generate
//! a transaction and then execute it, simulating a full transaction queue. The
//! WM exposes an API to set the number of active worker threads and their CPU
//! affinities, thus enabling the OLTP engine to elastically scale up and down
//! upon request" (§3.2).
//!
//! CPU affinities are logical: each worker is associated with a simulated
//! [`CoreId`] from `htap-sim`, and the resulting placement is what the
//! interference model uses to compute modelled throughput. Pinning to host
//! OS cores is deliberately not performed — the evaluation machine is
//! simulated (see DESIGN.md).

use htap_sim::{CoreId, CpuSet};
use parking_lot::RwLock;
use std::sync::atomic::{AtomicU64, Ordering};

/// Result of a worker-pool run.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct WorkerReport {
    /// Transactions committed, per worker.
    pub committed_per_worker: Vec<u64>,
    /// Transactions aborted, per worker.
    pub aborted_per_worker: Vec<u64>,
}

impl WorkerReport {
    /// Total committed transactions.
    pub fn committed(&self) -> u64 {
        self.committed_per_worker.iter().sum()
    }

    /// Total aborted transactions.
    pub fn aborted(&self) -> u64 {
        self.aborted_per_worker.iter().sum()
    }
}

/// The elastic worker pool.
#[derive(Debug, Default)]
pub struct WorkerManager {
    /// Cores currently assigned to the pool, in worker order.
    affinity: RwLock<Vec<CoreId>>,
    /// Number of workers that are allowed to run (≤ `affinity.len()`).
    active_workers: AtomicU64,
}

impl WorkerManager {
    /// New manager with no workers.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the worker pool to one worker per core of `cores`, all active.
    /// This is the API the RDE engine calls when migrating states.
    pub fn set_workers(&self, cores: &CpuSet) {
        let cores: Vec<CoreId> = cores.iter().collect();
        self.active_workers
            .store(cores.len() as u64, Ordering::Release);
        *self.affinity.write() = cores;
    }

    /// Restrict the number of active workers without changing affinities
    /// (scale down); panics if `n` exceeds the pool size.
    pub fn set_active_workers(&self, n: usize) {
        let pool = self.affinity.read().len();
        assert!(
            n <= pool,
            "cannot activate {n} workers with a pool of {pool}"
        );
        self.active_workers.store(n as u64, Ordering::Release);
    }

    /// Number of active workers.
    pub fn active_workers(&self) -> usize {
        self.active_workers.load(Ordering::Acquire) as usize
    }

    /// The cores assigned to the active workers.
    pub fn affinity(&self) -> Vec<CoreId> {
        let all = self.affinity.read();
        all.iter().take(self.active_workers()).copied().collect()
    }

    /// Run `txns_per_worker` transactions on every active worker, in
    /// parallel. The body receives `(worker_id, core, txn_index)` and returns
    /// whether the transaction committed. Returns per-worker counts.
    pub fn run<F>(&self, txns_per_worker: u64, body: F) -> WorkerReport
    where
        F: Fn(usize, CoreId, u64) -> bool + Sync,
    {
        let cores = self.affinity();
        if cores.is_empty() {
            return WorkerReport::default();
        }
        let mut committed = vec![0u64; cores.len()];
        let mut aborted = vec![0u64; cores.len()];
        std::thread::scope(|scope| {
            let handles: Vec<_> = cores
                .iter()
                .enumerate()
                .map(|(worker_id, &core)| {
                    let body = &body;
                    scope.spawn(move || {
                        let mut c = 0u64;
                        let mut a = 0u64;
                        for txn_index in 0..txns_per_worker {
                            if body(worker_id, core, txn_index) {
                                c += 1;
                            } else {
                                a += 1;
                            }
                        }
                        (c, a)
                    })
                })
                .collect();
            for (i, h) in handles.into_iter().enumerate() {
                let (c, a) = h.join().expect("worker panicked");
                committed[i] = c;
                aborted[i] = a;
            }
        });
        WorkerReport {
            committed_per_worker: committed,
            aborted_per_worker: aborted,
        }
    }

    /// Run the workers sequentially on the calling thread (deterministic mode
    /// used by benchmarks on single-core hosts). Semantics match [`Self::run`].
    pub fn run_sequential<F>(&self, txns_per_worker: u64, mut body: F) -> WorkerReport
    where
        F: FnMut(usize, CoreId, u64) -> bool,
    {
        let cores = self.affinity();
        let mut committed = vec![0u64; cores.len()];
        let mut aborted = vec![0u64; cores.len()];
        for (worker_id, &core) in cores.iter().enumerate() {
            for txn_index in 0..txns_per_worker {
                if body(worker_id, core, txn_index) {
                    committed[worker_id] += 1;
                } else {
                    aborted[worker_id] += 1;
                }
            }
        }
        WorkerReport {
            committed_per_worker: committed,
            aborted_per_worker: aborted,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use htap_sim::{SocketId, Topology};

    fn cores(n: u16) -> CpuSet {
        CpuSet::from_cores((0..n).map(CoreId))
    }

    #[test]
    fn set_workers_and_scale_down() {
        let wm = WorkerManager::new();
        assert_eq!(wm.active_workers(), 0);
        wm.set_workers(&cores(8));
        assert_eq!(wm.active_workers(), 8);
        assert_eq!(wm.affinity().len(), 8);
        wm.set_active_workers(3);
        assert_eq!(wm.active_workers(), 3);
        assert_eq!(wm.affinity(), vec![CoreId(0), CoreId(1), CoreId(2)]);
    }

    #[test]
    #[should_panic(expected = "cannot activate")]
    fn scaling_beyond_pool_panics() {
        let wm = WorkerManager::new();
        wm.set_workers(&cores(2));
        wm.set_active_workers(5);
    }

    #[test]
    fn parallel_run_counts_commits_and_aborts() {
        let wm = WorkerManager::new();
        wm.set_workers(&cores(4));
        // Every third transaction "aborts".
        let report = wm.run(30, |_, _, i| i % 3 != 0);
        assert_eq!(report.committed_per_worker.len(), 4);
        assert_eq!(report.committed(), 4 * 20);
        assert_eq!(report.aborted(), 4 * 10);
    }

    #[test]
    fn sequential_run_matches_parallel_semantics() {
        let wm = WorkerManager::new();
        wm.set_workers(&cores(3));
        let report = wm.run_sequential(10, |_, _, i| i % 2 == 0);
        assert_eq!(report.committed(), 15);
        assert_eq!(report.aborted(), 15);
    }

    #[test]
    fn workers_receive_their_assigned_core() {
        let topology = Topology::two_socket();
        let wm = WorkerManager::new();
        wm.set_workers(&CpuSet::socket(&topology, SocketId(1)));
        let report = wm.run(1, |worker_id, core, _| {
            // Workers are enumerated over socket-1 cores in ascending order.
            core == CoreId(14 + worker_id as u16)
        });
        assert_eq!(report.committed(), 14, "every worker must see its own core");
    }

    #[test]
    fn empty_pool_runs_nothing() {
        let wm = WorkerManager::new();
        let report = wm.run(100, |_, _, _| true);
        assert_eq!(report.committed(), 0);
        assert_eq!(report.aborted(), 0);
    }
}
