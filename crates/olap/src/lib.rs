//! Vectorised, NUMA-aware OLAP query engine (§3.3 of the paper).
//!
//! The engine follows the Proteus design the paper builds on, with one
//! substitution documented in DESIGN.md: instead of JIT code generation, the
//! operators are specialised at compile time (monomorphised vectorised
//! kernels) and process one block of tuples at a time without materialising
//! intermediate results.
//!
//! Components:
//!
//! * [`source`] — access-path plugins. A query reads each relation through a
//!   [`source::ScanSource`], which is either a single contiguous memory area
//!   (the OLAP instance or an OLTP snapshot) or a partitioned set of areas
//!   (the *split-access* method: OLAP-local rows plus the fresh tail from the
//!   OLTP snapshot).
//! * [`morsel`] — NUMA-tagged morsels, the claimable work units every scan is
//!   split into (the scheduling granularity of the parallel pipelines).
//! * [`block`], [`expr`] — typed tuple blocks and scalar/predicate expressions
//!   evaluated over them (the interpreted path used by the oracle and the
//!   frozen baseline; production pipelines run the compiled programs below).
//! * [`program`] (private), [`hashtable`], [`scratch`] (private) — the
//!   vectorized hot path: bind-time register programs over column indices,
//!   open-addressing group/join tables with inline flat keys, and per-worker
//!   reusable execution scratch (selection vectors, registers, borrowed
//!   column slices) so the steady-state morsel loop does not allocate.
//! * [`kernels`] — the chunked, autovectorizer-friendly inner loops the hot
//!   path runs: filter comparisons producing selection vectors, batch
//!   multiplicative key hashing, and sequential-order aggregate folds, each
//!   with a scalar twin it must match bit for bit. Grouped partials are
//!   merged radix-partitioned by key hash (see ARCHITECTURE.md, "Chunked
//!   kernels & radix-partitioned aggregation").
//! * [`baseline`] — the pre-vectorization block interpreter, kept frozen as
//!   the measured before/after of the perf trajectory (`BENCH_exec.json`)
//!   and as a bit-for-bit differential partner; never on the query path.
//! * [`plan`] — the query plans the CH-benCHmark workload needs:
//!   scan-filter-reduce, scan-filter-group-by, fact–dimension hash joins,
//!   three-table chain joins ([`plan::BuildSide`]) and join-then-group-by
//!   with optional top-k ([`plan::TopK`]) — all of them convenience
//!   constructors over [`plan::QueryPlan::Dag`].
//! * [`dag`] — the composable operator DAG every plan is lowered onto:
//!   scan/filter/project/hash-build/hash-probe/hash-aggregate plus the
//!   having/sort/limit finishers, validated and flattened by
//!   [`dag::DagPlan::decompose`]. The hash probe is a true
//!   multiplicity-preserving inner join (duplicate build keys contribute
//!   every matching tuple), which is what retired both the five bespoke
//!   shape executors and the planner's PK-pinning workaround. See
//!   ARCHITECTURE.md, "Composable operator DAG".
//! * [`reference`] — a naive row-at-a-time interpreter over the same
//!   decomposed DAGs, the oracle of the differential test suite
//!   (`tests/differential_exec.rs`); shares plan lowering with the engine
//!   but none of its evaluation machinery, and is never used on the
//!   production query path.
//! * [`exec`] — the morsel-driven parallel executor; besides results it
//!   produces a [`exec::WorkProfile`] (bytes touched per socket, tuples
//!   processed, join probes), accumulated per worker and summed, that the
//!   cost model converts into modelled time.
//! * [`error`] — the typed [`OlapError`] every fallible query-path step
//!   reports.
//! * [`routing`] — block-routing policies (hash, load-aware, locality-aware)
//!   that decide which socket's workers consume which data segment.
//! * [`worker`], [`engine`] — the elastic worker manager (whose granted
//!   [`htap_sim::CpuSet`] sizes and pins the pipeline [`worker::WorkerTeam`])
//!   and the engine facade, including the engine-local OLAP storage instance
//!   that ETL fills.
//!
//! The crate layering and the execution flow are described in the repository's
//! `ARCHITECTURE.md`.

pub mod baseline;
pub mod block;
pub mod dag;
pub mod engine;
pub mod error;
pub mod exec;
pub mod expr;
pub mod hashtable;
pub mod kernels;
pub mod morsel;
pub mod plan;
mod program;
pub mod reference;
pub mod routing;
mod scratch;
pub mod source;
pub mod worker;

pub use baseline::BaselineExecutor;
pub use block::Block;
pub use dag::{DagBuilder, DagOp, DagPlan, HavingPred, RowSlot, SortKey};
pub use engine::{OlapEngine, OlapStore};
pub use error::OlapError;
pub use exec::{QueryExecutor, QueryOutput, QueryResult, WorkProfile};
pub use expr::{AggExpr, CmpOp, Predicate, ScalarExpr};
pub use hashtable::{GroupTable, JoinTable, KeySet};
pub use morsel::{split_morsels, Morsel};
pub use plan::{BuildSide, QueryPlan, TopK};
pub use reference::execute_reference;
pub use routing::{RoutingPolicy, SegmentAssignment};
pub use source::{BoundLayout, ScanSegmentSource, ScanSource};
pub use worker::{OlapWorkerManager, WorkerTeam};
