//! The scheduler driving the RDE engine query by query.
//!
//! For every arriving analytical query the scheduler: (1) asks the RDE engine
//! to switch the active OLTP instance so the query can observe all committed
//! data, (2) measures the per-query freshness quantities, (3) picks a target
//! state — fixed for static schedules, Algorithm 2 for adaptive ones — and
//! (4) migrates the system, returning the access paths and the scheduling
//! overhead (switch + optional ETL) that the query must absorb.

use crate::freshness::{measure, QueryFreshness};
use crate::schedule::Schedule;
use htap_olap::{QueryPlan, ScanSource};
use htap_rde::{AccessMethod, MigrationReport, RdeEngine, SystemState};
use htap_sim::Seconds;
use std::collections::BTreeMap;
use std::sync::Arc;

/// The outcome of scheduling one query: everything the executor needs.
#[derive(Debug, Clone)]
pub struct ScheduledQuery {
    /// The state the system is in for this query.
    pub state: SystemState,
    /// The access method the OLAP engine must use.
    pub access: AccessMethod,
    /// Per-relation access paths.
    pub sources: BTreeMap<String, ScanSource>,
    /// Pipeline workers the OLAP engine fields after the migration — the
    /// measured parallelism the query will execute with.
    pub olap_workers: usize,
    /// The freshness picture the decision was based on.
    pub freshness: QueryFreshness,
    /// Modelled scheduling overhead charged to this query (instance switch,
    /// synchronisation and — when applicable — ETL).
    pub scheduling_time: Seconds,
    /// The full migration report.
    pub migration: MigrationReport,
}

/// Scheduler bound to an RDE engine and a scheduling discipline.
#[derive(Debug)]
pub struct HtapScheduler {
    rde: Arc<RdeEngine>,
    schedule: Schedule,
    /// Number of ETLs the schedule has triggered so far.
    etl_count: std::sync::atomic::AtomicU64,
}

impl HtapScheduler {
    /// Create a scheduler over an RDE engine.
    pub fn new(rde: Arc<RdeEngine>, schedule: Schedule) -> Self {
        HtapScheduler {
            rde,
            schedule,
            etl_count: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// The RDE engine the scheduler drives.
    pub fn rde(&self) -> &Arc<RdeEngine> {
        &self.rde
    }

    /// The scheduling discipline.
    pub fn schedule(&self) -> Schedule {
        self.schedule
    }

    /// Change the scheduling discipline (e.g. between experiment runs).
    pub fn set_schedule(&mut self, schedule: Schedule) {
        self.schedule = schedule;
    }

    /// Number of ETLs performed so far.
    pub fn etl_count(&self) -> u64 {
        self.etl_count.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Schedule one query (or one query of a batch when `is_batch` is true).
    pub fn schedule_query(&self, plan: &QueryPlan, is_batch: bool) -> ScheduledQuery {
        let guard = htap_obs::span("rde.schedule");
        // 1. Make all committed data visible to the analytical side.
        let switch = self.rde.switch_and_sync();
        // 2. Measure freshness on the fresh snapshot.
        let freshness = measure(&self.rde, plan);
        // 3. Pick the target state.
        let state = match self.schedule {
            Schedule::Static(state) => state,
            Schedule::Adaptive(policy) => policy.decide(&freshness, is_batch).state,
        };
        // 4. Enforce it.
        let migration = self.rde.migrate(state);
        if migration.etl.is_some() {
            self.etl_count
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        }
        let tables: Vec<&str> = plan.tables();
        if guard.is_active() {
            guard.arg("freshness", freshness.freshness_rate());
            guard.arg("pending_delta_rows", freshness.total_fresh_rows as f64);
            guard.arg("olap_cores", migration.olap_cores as f64);
            guard.detail(state.label());
            htap_obs::record_decision(htap_obs::DecisionInputs {
                query: tables.join(","),
                freshness: freshness.freshness_rate(),
                pending_delta_rows: freshness.total_fresh_rows,
                active_oltp_workers: self.rde.oltp().worker_manager().active_workers() as u64,
                state: state.label().to_string(),
                oltp_cores: migration.oltp_cores,
                olap_cores: migration.olap_cores,
                modeled_time_s: switch.modeled_time + migration.modeled_time,
            });
        }
        let sources = self.rde.sources_for(&tables, migration.access);
        ScheduledQuery {
            state,
            access: migration.access,
            sources,
            olap_workers: self.rde.olap_worker_count(),
            freshness,
            scheduling_time: switch.modeled_time + migration.modeled_time,
            migration,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::SchedulerPolicy;
    use htap_olap::{AggExpr, ScalarExpr};
    use htap_rde::RdeConfig;
    use htap_storage::{ColumnDef, DataType, TableSchema, Value};

    fn plan() -> QueryPlan {
        QueryPlan::Aggregate {
            table: "sales".into(),
            filters: vec![],
            aggregates: vec![AggExpr::Sum(ScalarExpr::col("amount")), AggExpr::Count],
        }
    }

    fn rde_with_rows(rows: u64) -> Arc<RdeEngine> {
        let rde = RdeEngine::bootstrap(RdeConfig::default());
        rde.create_table(TableSchema::new(
            "sales",
            vec![
                ColumnDef::new("id", DataType::I64),
                ColumnDef::new("amount", DataType::F64),
            ],
            Some(0),
        ))
        .unwrap();
        for i in 0..rows {
            rde.oltp()
                .bulk_load("sales", i, vec![Value::I64(i as i64), Value::F64(1.0)])
                .unwrap();
        }
        Arc::new(rde)
    }

    #[test]
    fn static_schedule_always_uses_its_state() {
        let rde = rde_with_rows(100);
        let scheduler = HtapScheduler::new(rde, Schedule::Static(SystemState::S3HybridIsolated));
        for _ in 0..3 {
            let q = scheduler.schedule_query(&plan(), false);
            assert_eq!(q.state, SystemState::S3HybridIsolated);
            assert_eq!(q.access, AccessMethod::Split);
            assert!(q.sources.contains_key("sales"));
            assert!(q.scheduling_time >= 0.0);
        }
        assert_eq!(scheduler.etl_count(), 0);
    }

    #[test]
    fn static_s2_schedule_performs_an_etl_per_query() {
        let rde = rde_with_rows(50);
        let scheduler =
            HtapScheduler::new(Arc::clone(&rde), Schedule::Static(SystemState::S2Isolated));
        let q = scheduler.schedule_query(&plan(), false);
        assert_eq!(q.access, AccessMethod::OlapLocal);
        assert_eq!(scheduler.etl_count(), 1);
        assert_eq!(rde.olap().store().table("sales").unwrap().rows(), 50);
        // The second query still goes through the (now cheap) ETL path.
        scheduler.schedule_query(&plan(), false);
        assert_eq!(scheduler.etl_count(), 2);
    }

    #[test]
    fn adaptive_schedule_switches_to_etl_when_fresh_data_dominates() {
        let rde = rde_with_rows(100);
        let scheduler = HtapScheduler::new(
            Arc::clone(&rde),
            Schedule::Adaptive(SchedulerPolicy::adaptive_non_isolated(0.5)),
        );
        // All fresh data belongs to the queried relation, so Nfq == Nft and
        // the policy must take the ETL branch immediately.
        let q = scheduler.schedule_query(&plan(), false);
        assert_eq!(q.state, SystemState::S2Isolated);
        assert_eq!(scheduler.etl_count(), 1);
        assert!((q.freshness.row_share_of_fresh() - 1.0).abs() < 1e-9);

        // With no fresh data at all, Algorithm 2's condition `Nfq < α·Nft`
        // cannot hold, so the (now no-op) ETL branch is taken again.
        let q = scheduler.schedule_query(&plan(), false);
        assert_eq!(q.state, SystemState::S2Isolated);

        // Once fresh data accumulates mostly outside the queried relation,
        // the policy returns to the elastic branch.
        rde.create_table(TableSchema::new(
            "audit",
            vec![
                ColumnDef::new("id", DataType::I64),
                ColumnDef::new("x", DataType::F64),
            ],
            Some(0),
        ))
        .unwrap();
        for i in 0..500u64 {
            rde.oltp()
                .bulk_load("audit", i, vec![Value::I64(i as i64), Value::F64(0.0)])
                .unwrap();
        }
        for i in 100..110u64 {
            rde.oltp()
                .bulk_load("sales", i, vec![Value::I64(i as i64), Value::F64(1.0)])
                .unwrap();
        }
        let q = scheduler.schedule_query(&plan(), false);
        assert_eq!(q.state, SystemState::S3HybridNonIsolated);
        assert_eq!(q.access, AccessMethod::Split);
        assert!(q.freshness.row_share_of_fresh() < 0.5);
    }

    #[test]
    fn adaptive_schedule_prefers_elastic_states_when_query_touches_little_fresh_data() {
        let rde = rde_with_rows(10);
        // A second relation receives the bulk of the fresh data.
        rde.create_table(TableSchema::new(
            "audit",
            vec![
                ColumnDef::new("id", DataType::I64),
                ColumnDef::new("payload", DataType::F64),
            ],
            Some(0),
        ))
        .unwrap();
        for i in 0..1000u64 {
            rde.oltp()
                .bulk_load("audit", i, vec![Value::I64(i as i64), Value::F64(0.0)])
                .unwrap();
        }
        let scheduler = HtapScheduler::new(
            Arc::clone(&rde),
            Schedule::Adaptive(SchedulerPolicy::adaptive_non_isolated(0.5)),
        );
        let q = scheduler.schedule_query(&plan(), false);
        assert_eq!(q.state, SystemState::S3HybridNonIsolated);
        assert!(q.freshness.row_share_of_fresh() < 0.5);

        // The isolated adaptive variant picks S3-IS instead.
        let scheduler = HtapScheduler::new(
            Arc::clone(&rde),
            Schedule::Adaptive(SchedulerPolicy::adaptive_isolated(0.5)),
        );
        let q = scheduler.schedule_query(&plan(), false);
        assert_eq!(q.state, SystemState::S3HybridIsolated);
    }

    #[test]
    fn batch_queries_force_the_etl_branch() {
        let rde = rde_with_rows(10);
        rde.create_table(TableSchema::new(
            "audit",
            vec![
                ColumnDef::new("id", DataType::I64),
                ColumnDef::new("x", DataType::F64),
            ],
            Some(0),
        ))
        .unwrap();
        for i in 0..1000u64 {
            rde.oltp()
                .bulk_load("audit", i, vec![Value::I64(i as i64), Value::F64(0.0)])
                .unwrap();
        }
        let scheduler = HtapScheduler::new(
            rde,
            Schedule::Adaptive(SchedulerPolicy::adaptive_non_isolated(0.5)),
        );
        let q = scheduler.schedule_query(&plan(), true);
        assert_eq!(q.state, SystemState::S2Isolated, "batches always ETL");
    }

    #[test]
    fn scheduled_sources_cover_all_plan_tables() {
        let rde = rde_with_rows(20);
        rde.create_table(TableSchema::new(
            "item",
            vec![
                ColumnDef::new("i_id", DataType::I64),
                ColumnDef::new("i_price", DataType::F64),
            ],
            Some(0),
        ))
        .unwrap();
        let join = QueryPlan::JoinAggregate {
            fact: "sales".into(),
            dim: "item".into(),
            fact_key: "id".into(),
            dim_key: "i_id".into(),
            fact_filters: vec![],
            dim_filters: vec![],
            aggregates: vec![AggExpr::Count],
        };
        let scheduler = HtapScheduler::new(rde, Schedule::Static(SystemState::S1Colocated));
        let q = scheduler.schedule_query(&join, false);
        assert!(q.sources.contains_key("sales") && q.sources.contains_key("item"));
        assert_eq!(q.access, AccessMethod::OltpSnapshot);
    }
}
