//! Algorithm 2 — freshness-driven resource scheduling.
//!
//! ```text
//! ResourceSchedule():
//!   if Nfq < α·Nft AND !QueryBatch:
//!     if !Fel:             MigrateStateS3(ISOLATED)
//!     else if Mel==HYBRID: MigrateStateS3(NON-ISOLATED)
//!     else:                MigrateStateS1()
//!   else:                  MigrateStateS2()
//! ```
//!
//! The heuristic optimises OLAP performance within the OLTP engine's
//! restrictions: it first prefers taking compute to the data (S3-NI), then
//! trading it (S1), then plain remote access (S3-IS); once the fresh delta is
//! large enough (relative to α), it amortises a full ETL (S2) to restore
//! locality for future queries.

use crate::freshness::QueryFreshness;
use htap_rde::{ElasticityMode, SystemState};

/// The decision produced by the policy for one query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PolicyDecision {
    /// The state the system should migrate to before executing the query.
    pub state: SystemState,
    /// Whether the decision was driven by the ETL branch (`Nfq ≥ α·Nft` or a
    /// query batch) rather than the elasticity branch.
    pub etl_branch: bool,
}

/// The tunable scheduler policy of Algorithm 2.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SchedulerPolicy {
    /// ETL sensitivity α ∈ [0, 1]. Smaller values make the scheduler prefer
    /// ETL (state S2); the paper's adaptive experiments use α = 0.5.
    pub alpha: f64,
    /// Elasticity availability flag `Fel`: whether the OLAP engine is allowed
    /// to take compute resources from the OLTP engine.
    pub elasticity_allowed: bool,
    /// Elasticity mode `Mel`: hybrid (borrow cores, S3-NI) or co-location (S1).
    pub elasticity_mode: ElasticityMode,
}

impl Default for SchedulerPolicy {
    fn default() -> Self {
        SchedulerPolicy {
            alpha: 0.5,
            elasticity_allowed: true,
            elasticity_mode: ElasticityMode::Hybrid,
        }
    }
}

impl SchedulerPolicy {
    /// Policy matching the paper's "Adaptive-S3-IS" schedule: no elasticity,
    /// so the scheduler alternates between split remote access and ETL.
    pub fn adaptive_isolated(alpha: f64) -> Self {
        SchedulerPolicy {
            alpha,
            elasticity_allowed: false,
            elasticity_mode: ElasticityMode::Hybrid,
        }
    }

    /// Policy matching the paper's "Adaptive-S3-NI" schedule: elasticity in
    /// hybrid mode (borrow OLTP cores for fresh data).
    pub fn adaptive_non_isolated(alpha: f64) -> Self {
        SchedulerPolicy {
            alpha,
            elasticity_allowed: true,
            elasticity_mode: ElasticityMode::Hybrid,
        }
    }

    /// Policy preferring full co-location (adaptive S1).
    pub fn adaptive_colocated(alpha: f64) -> Self {
        SchedulerPolicy {
            alpha,
            elasticity_allowed: true,
            elasticity_mode: ElasticityMode::Colocation,
        }
    }

    /// Run Algorithm 2 for one query.
    ///
    /// `freshness` carries `Nfq` and `Nft`; `is_batch` indicates that the
    /// query belongs to a batch executed over the same snapshot, which always
    /// takes the ETL branch (§4.2 "Query Batch").
    pub fn decide(&self, freshness: &QueryFreshness, is_batch: bool) -> PolicyDecision {
        let nfq = freshness.query_fresh_rows as f64;
        let nft = freshness.total_fresh_rows as f64;
        let elastic_branch = nfq < self.alpha * nft && !is_batch;
        if elastic_branch {
            let state = if !self.elasticity_allowed {
                SystemState::S3HybridIsolated
            } else {
                match self.elasticity_mode {
                    ElasticityMode::Hybrid => SystemState::S3HybridNonIsolated,
                    ElasticityMode::Colocation => SystemState::S1Colocated,
                }
            };
            PolicyDecision {
                state,
                etl_branch: false,
            }
        } else {
            PolicyDecision {
                state: SystemState::S2Isolated,
                etl_branch: true,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn freshness(nfq: u64, nft: u64) -> QueryFreshness {
        QueryFreshness {
            query_fresh_bytes: nfq * 8,
            total_fresh_bytes: nft * 8,
            query_fresh_rows: nfq,
            total_fresh_rows: nft,
            query_total_rows: 0,
            per_table: Vec::new(),
        }
    }

    #[test]
    fn small_fresh_share_without_elasticity_goes_to_s3_isolated() {
        let policy = SchedulerPolicy::adaptive_isolated(0.5);
        let d = policy.decide(&freshness(10, 100), false);
        assert_eq!(d.state, SystemState::S3HybridIsolated);
        assert!(!d.etl_branch);
    }

    #[test]
    fn small_fresh_share_with_hybrid_elasticity_goes_to_s3_non_isolated() {
        let policy = SchedulerPolicy::adaptive_non_isolated(0.5);
        let d = policy.decide(&freshness(10, 100), false);
        assert_eq!(d.state, SystemState::S3HybridNonIsolated);
    }

    #[test]
    fn small_fresh_share_with_colocation_mode_goes_to_s1() {
        let policy = SchedulerPolicy::adaptive_colocated(0.5);
        let d = policy.decide(&freshness(10, 100), false);
        assert_eq!(d.state, SystemState::S1Colocated);
    }

    #[test]
    fn large_fresh_share_triggers_etl() {
        let policy = SchedulerPolicy::default();
        let d = policy.decide(&freshness(80, 100), false);
        assert_eq!(d.state, SystemState::S2Isolated);
        assert!(d.etl_branch);
    }

    #[test]
    fn query_batches_always_take_the_etl_branch() {
        let policy = SchedulerPolicy::default();
        let d = policy.decide(&freshness(1, 1_000_000), true);
        assert_eq!(d.state, SystemState::S2Isolated);
        assert!(d.etl_branch);
    }

    #[test]
    fn alpha_controls_the_etl_sensitivity() {
        // The same freshness picture flips with α: Nfq/Nft = 0.3.
        let f = freshness(30, 100);
        let eager_etl = SchedulerPolicy {
            alpha: 0.1,
            ..SchedulerPolicy::default()
        };
        let lazy_etl = SchedulerPolicy {
            alpha: 0.9,
            ..SchedulerPolicy::default()
        };
        assert_eq!(eager_etl.decide(&f, false).state, SystemState::S2Isolated);
        assert_eq!(
            lazy_etl.decide(&f, false).state,
            SystemState::S3HybridNonIsolated
        );
    }

    #[test]
    fn alpha_zero_always_prefers_etl() {
        // With α = 0 the condition Nfq < 0 never holds, so every query ETLs —
        // which the paper notes corresponds to the S1 twin-instance design's
        // built-in behaviour when co-locating.
        let policy = SchedulerPolicy {
            alpha: 0.0,
            ..SchedulerPolicy::default()
        };
        assert_eq!(
            policy.decide(&freshness(0, 100), false).state,
            SystemState::S2Isolated
        );
        assert_eq!(
            policy.decide(&freshness(0, 0), false).state,
            SystemState::S2Isolated
        );
    }

    #[test]
    fn no_fresh_data_takes_the_etl_branch_as_a_noop() {
        let policy = SchedulerPolicy::default();
        let d = policy.decide(&freshness(0, 0), false);
        assert_eq!(d.state, SystemState::S2Isolated);
    }
}
