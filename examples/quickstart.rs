//! Quickstart: build the HTAP system, ingest transactions, run the three
//! CH-benCHmark analytical queries and print what the scheduler did.
//!
//! Run with: `cargo run --example quickstart --release`

use adaptive_htap::{HtapConfig, HtapSystem, QueryId};

fn main() -> Result<(), String> {
    // A small CH-benCHmark database on the simulated two-socket server, with
    // the adaptive (hybrid-elasticity) schedule and α = 0.5.
    let system = HtapSystem::build(HtapConfig::small())?;
    println!(
        "loaded CH-benCHmark: {} rows ({} order lines), resources: {}",
        system.population().total_rows,
        system.population().orderlines,
        system.rde().describe_resources()
    );

    // The transactional queue: NewOrder transactions on every worker.
    let committed = system.run_oltp(200);
    println!("ingested {committed} NewOrder transactions");

    // Analytical queries arrive one by one; the scheduler picks a state for
    // each based on the freshness of the data it touches.
    for query in [QueryId::Q1, QueryId::Q6, QueryId::Q19] {
        let report = system.execute_query(query).expect("CH query executes");
        println!(
            "{:>3}: state={:<5} exec={:.4}s sched={:.4}s freshness={:.3} fresh_rows={} oltp={:.2} MTPS{}",
            report.query,
            report.state.label(),
            report.execution_time,
            report.scheduling_time,
            report.freshness_rate,
            report.fresh_rows_accessed,
            report.oltp_mtps(),
            if report.performed_etl { " (ETL)" } else { "" },
        );
    }

    // More transactions arrive, making the OLAP instance stale again.
    system.run_oltp(200);
    let report = system
        .execute_query(QueryId::Q6)
        .expect("CH query executes");
    println!(
        "after more ingest -> {} chose {} (freshness {:.3})",
        report.query,
        report.state.label(),
        report.freshness_rate
    );
    Ok(())
}
