//! Offline stand-in for `rand` (0.9 API subset).
//!
//! Implements the surface this workspace uses — `StdRng`, `SeedableRng::
//! seed_from_u64` and `Rng::random_range` over integer and float ranges —
//! with a xoshiro256** generator seeded through SplitMix64. The sequences
//! are deterministic per seed (the workload generators rely on that) but are
//! NOT the sequences the real `rand` produces; any test asserting exact
//! populations must derive its expectations through the same generator.

use std::ops::{Range, RangeInclusive};

/// Seedable generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The standard generator: xoshiro256**.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    state: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion, the canonical way to seed xoshiro.
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        StdRng {
            state: [next(), next(), next(), next()],
        }
    }
}

impl StdRng {
    fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.state;
        let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s1 << 17;
        let mut s = [s0, s1, s2, s3];
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        self.state = s;
        result
    }

    /// A uniform f64 in `[0, 1)`.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Debiased uniform integer in `[0, bound)` (Lemire-style rejection).
    fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let v = self.next_u64();
            let (hi, lo) = {
                let wide = (v as u128) * (bound as u128);
                ((wide >> 64) as u64, wide as u64)
            };
            if lo >= threshold {
                return hi;
            }
        }
    }
}

/// Ranges `random_range` can sample from (subset of `rand::distr`).
pub trait SampleRange<T> {
    /// Draw a uniform sample from the range. Panics if the range is empty.
    fn sample(self, rng: &mut StdRng) -> T;
}

macro_rules! impl_int_sample_range {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample(self, rng: &mut StdRng) -> $ty {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $ty
            }
        }
        impl SampleRange<$ty> for RangeInclusive<$ty> {
            fn sample(self, rng: &mut StdRng) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Only reachable for the full u64/i64 domain.
                    return rng.next_u64() as $ty;
                }
                (start as i128 + rng.below(span as u64) as i128) as $ty
            }
        }
    )*};
}

impl_int_sample_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample(self, rng: &mut StdRng) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample(self, rng: &mut StdRng) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + rng.next_f64() as f32 * (self.end - self.start)
    }
}

/// User-facing generator methods (subset of `rand::Rng`).
pub trait Rng {
    /// Uniform sample from `range`.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T;

    /// A Bernoulli draw with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool;
}

impl Rng for StdRng {
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    fn random_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

/// Namespace mirror of `rand::rngs`.
pub mod rngs {
    pub use super::StdRng;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: i64 = rng.random_range(-5..5);
            assert!((-5..5).contains(&v));
            let w: usize = rng.random_range(1..=15);
            assert!((1..=15).contains(&w));
            let f: f64 = rng.random_range(0.5..2.0);
            assert!((0.5..2.0).contains(&f));
        }
    }

    #[test]
    fn full_domain_inclusive_range_is_reachable() {
        let mut rng = StdRng::seed_from_u64(3);
        let _: u64 = rng.random_range(0..=u64::MAX);
        let _: i64 = rng.random_range(i64::MIN..=i64::MAX);
    }

    #[test]
    fn bool_probabilities_are_sane() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }
}
