//! The assembled HTAP system.

use crate::config::HtapConfig;
use crate::report::QueryReport;
use htap_chbench::{ChGenerator, PopulationReport, QueryId, TransactionDriver};
use htap_durability::{load_state, DurableStorage, Wal, WalConfig};
use htap_olap::{OlapError, QueryOutput, QueryPlan};
use htap_oltp::{
    apply_recovered, DurabilityController, OltpCounts, RetryPolicy, WorkerReport, CHECKPOINT_FILE,
    WAL_FILE,
};
use htap_rde::RdeEngine;
use htap_scheduler::{HtapScheduler, Schedule};
use htap_sql::{Catalog, SqlError};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// An error from [`HtapSystem::execute_sql`]: either the frontend rejected
/// the query text, or the engine rejected the (well-formed) plan.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlRunError {
    /// The SQL frontend could not compile the text (syntax, unknown or
    /// ambiguous name, unsupported construct) — with position info.
    Sql(SqlError),
    /// The engine could not execute the plan.
    Olap(OlapError),
}

impl std::fmt::Display for SqlRunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SqlRunError::Sql(e) => write!(f, "SQL frontend: {e}"),
            SqlRunError::Olap(e) => write!(f, "OLAP engine: {e}"),
        }
    }
}

impl std::error::Error for SqlRunError {}

impl From<SqlError> for SqlRunError {
    fn from(e: SqlError) -> Self {
        SqlRunError::Sql(e)
    }
}

impl From<OlapError> for SqlRunError {
    fn from(e: OlapError) -> Self {
        SqlRunError::Olap(e)
    }
}

/// The fully assembled adaptive HTAP system: engines, scheduler and the
/// CH-benCHmark workload drivers.
#[derive(Debug)]
pub struct HtapSystem {
    config: HtapConfig,
    rde: Arc<RdeEngine>,
    scheduler: Mutex<HtapScheduler>,
    txn_driver: Arc<TransactionDriver>,
    population: PopulationReport,
    txn_seed: AtomicU64,
    /// The SQL catalog over the CH-benCHmark schema, built once — name
    /// resolution and planner cardinalities for [`HtapSystem::execute_sql`].
    catalog: Catalog,
}

impl HtapSystem {
    /// Build the system: bootstrap the engines, create the CH-benCHmark
    /// relations and load the initial population.
    pub fn build(config: HtapConfig) -> Result<Self, String> {
        config.validate()?;
        let rde = Arc::new(RdeEngine::bootstrap(config.rde_config()));
        let generator = ChGenerator::new(config.chbench.clone());
        let population = generator.build(&rde)?;
        let txn_driver = Arc::new(TransactionDriver::for_config(&config.chbench));
        let scheduler = HtapScheduler::new(Arc::clone(&rde), config.schedule);
        Ok(HtapSystem {
            rde,
            scheduler: Mutex::new(scheduler),
            txn_driver,
            population,
            txn_seed: AtomicU64::new(config.chbench.seed),
            catalog: htap_chbench::catalog(),
            config,
        })
    }

    /// Build the system on top of a durable storage backend: recover whatever
    /// the backend holds (checkpoint + WAL tail), then enable write-ahead
    /// logging and periodic checkpoints for everything that commits from now
    /// on.
    ///
    /// On an empty backend this behaves like [`HtapSystem::build`] plus WAL
    /// attach. The initial bulk-loaded population is *not* WAL-logged — it is
    /// deterministic from the configuration, so recovery regenerates it and
    /// replays the WAL tail on top; the first checkpoint then makes the full
    /// store durable directly.
    pub fn build_durable(
        config: HtapConfig,
        storage: Arc<dyn DurableStorage>,
    ) -> Result<Self, String> {
        config.validate()?;
        let rde = Arc::new(RdeEngine::bootstrap(config.rde_config()));
        let generator = ChGenerator::new(config.chbench.clone());

        // Open (and torn-tail-repair) the WAL first, then read the durable
        // state back through the repaired file.
        let wal_config = WalConfig {
            flush_interval_micros: config.durability.flush_interval_micros,
            max_batch: config.durability.max_batch,
        };
        let (wal, _segment) = Wal::open(Arc::clone(&storage), WAL_FILE, wal_config)
            .map_err(|e| format!("opening WAL: {e}"))?;
        let state = load_state(storage.as_ref(), WAL_FILE, CHECKPOINT_FILE)
            .map_err(|e| format!("loading durable state: {e}"))?;

        let population = if state.checkpoint.is_some() {
            // The checkpoint captured the whole store: recreate the schema
            // empty and restore rows + WAL tail from disk.
            generator.create_tables(&rde)?;
            apply_recovered(rde.oltp(), &state).map_err(|e| format!("recovery failed: {e}"))?;
            Self::population_from_store(&rde)
        } else {
            // No checkpoint yet: the initial population is regenerated
            // deterministically, then the WAL tail replays on top of it.
            let population = generator.build(&rde)?;
            apply_recovered(rde.oltp(), &state).map_err(|e| format!("recovery failed: {e}"))?;
            population
        };

        let controller = Arc::new(DurabilityController::new(
            storage,
            wal,
            config.durability.checkpoint_interval_switches,
        ));
        rde.oltp().attach_durability(controller);

        let txn_driver = Arc::new(TransactionDriver::for_config(&config.chbench));
        let scheduler = HtapScheduler::new(Arc::clone(&rde), config.schedule);
        Ok(HtapSystem {
            rde,
            scheduler: Mutex::new(scheduler),
            txn_driver,
            population,
            txn_seed: AtomicU64::new(config.chbench.seed),
            catalog: htap_chbench::catalog(),
            config,
        })
    }

    /// Reconstruct the population summary from live row counts (used after a
    /// checkpoint restore, where the generator never ran).
    fn population_from_store(rde: &RdeEngine) -> PopulationReport {
        let rows = |name: &str| {
            rde.oltp()
                .table(name)
                .map(|rt| rt.twin().row_count())
                .unwrap_or(0)
        };
        PopulationReport {
            warehouses: rows("warehouse"),
            districts: rows("district"),
            customers: rows("customer"),
            items: rows("item"),
            stock: rows("stock"),
            orders: rows("orders"),
            orderlines: rows("orderline"),
            total_rows: rde.oltp().total_rows(),
        }
    }

    /// Take a checkpoint right now (quiescing the engine) and truncate the
    /// WAL to it. `Ok(false)` when the system was not built durable.
    pub fn checkpoint_now(&self) -> Result<bool, String> {
        self.rde.oltp().checkpoint_now().map_err(|e| e.to_string())
    }

    /// The SQL catalog the frontend binds against.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The system configuration.
    pub fn config(&self) -> &HtapConfig {
        &self.config
    }

    /// The RDE engine (and through it the OLTP/OLAP engines).
    pub fn rde(&self) -> &Arc<RdeEngine> {
        &self.rde
    }

    /// The initial-population summary.
    pub fn population(&self) -> &PopulationReport {
        &self.population
    }

    /// The CH-benCHmark transaction driver.
    pub fn txn_driver(&self) -> &Arc<TransactionDriver> {
        &self.txn_driver
    }

    /// Run `f` with the scheduler locked (e.g. to inspect its state).
    pub fn with_scheduler<R>(&self, f: impl FnOnce(&HtapScheduler) -> R) -> R {
        f(&self.scheduler.lock())
    }

    /// Change the scheduling discipline (takes effect for the next query).
    pub fn set_schedule(&self, schedule: Schedule) {
        self.scheduler.lock().set_schedule(schedule);
    }

    /// The current scheduling discipline.
    pub fn schedule(&self) -> Schedule {
        self.scheduler.lock().schedule()
    }

    /// Run `count` NewOrder transactions per active OLTP worker (sequentially
    /// over workers, deterministic). Returns the number of committed
    /// transactions. This is the "transactional queue" between analytical
    /// queries.
    pub fn run_oltp(&self, count_per_worker: u64) -> u64 {
        let workers = self
            .rde
            .txn_work()
            .total_workers()
            .min(self.config.chbench.warehouses as usize)
            .max(1);
        let seed = self.txn_seed.fetch_add(1, Ordering::Relaxed);
        let mut committed = 0;
        for worker in 0..workers as u64 {
            committed +=
                self.txn_driver
                    .run_new_orders(self.rde.oltp(), worker, count_per_worker, seed);
        }
        committed
    }

    /// Start continuous OLTP ingest: one long-running worker thread per
    /// core the machine could ever grant the OLTP engine (parked beyond the
    /// current grant), each generating and executing transactions of the
    /// TPC-C-style mix — NewOrder, Payment, Delivery and StockLevel — back
    /// to back (the paper's "complete transactional queue", §3.2). Elastic
    /// migrations resize the pool mid-flight in both directions; aborted
    /// transactions are counted, not retried. Returns the number of worker
    /// threads started (0 when ingest is already running).
    pub fn start_oltp_ingest(&self) -> usize {
        if self.oltp_ingest_running() {
            // No-op starts must not consume a seed: the parameter stream of
            // later runs would shift and break reproducibility.
            return 0;
        }
        let driver = Arc::clone(&self.txn_driver);
        let oltp = Arc::clone(self.rde.oltp());
        let seed = self.txn_seed.fetch_add(1, Ordering::Relaxed);
        let capacity = self.config.topology.total_cores() as usize;
        self.rde
            .oltp()
            .worker_manager()
            .set_retry_policy(RetryPolicy {
                max_retries: self.config.txn_max_retries,
                backoff_micros: self.config.txn_retry_backoff_micros,
            });
        self.rde.oltp().worker_manager().start_with_capacity(
            capacity,
            move |worker_id, _core, txn_index| {
                driver.run_one_mixed(&oltp, worker_id as u64, seed, txn_index)
            },
        )
    }

    /// Stop the continuous ingest pool and return its per-worker counts.
    pub fn stop_oltp_ingest(&self) -> WorkerReport {
        self.rde.oltp().worker_manager().stop()
    }

    /// Whether the continuous ingest pool is running.
    pub fn oltp_ingest_running(&self) -> bool {
        self.rde.oltp().worker_manager().ingest_running()
    }

    /// Live committed/aborted/retried totals of the continuous ingest pool —
    /// sampled around each analytical query to derive measured OLTP
    /// throughput. The triple comes from one seqlock-consistent snapshot, so
    /// the three counts never tear against each other. Retries are counted
    /// separately from aborts: a transaction that eventually commits after
    /// retrying contributes to `committed` and to `retried`, never to
    /// `aborted`. All-zero when ingest is not running.
    pub fn oltp_live_counts(&self) -> OltpCounts {
        self.rde.oltp().worker_manager().live_counts()
    }

    /// Run `count` NewOrder transactions per worker using one OS thread per
    /// worker (exercises the concurrent transaction path).
    pub fn run_oltp_parallel(&self, count_per_worker: u64) -> u64 {
        let workers = self
            .rde
            .txn_work()
            .total_workers()
            .min(self.config.chbench.warehouses as usize)
            .max(1);
        let seed = self.txn_seed.fetch_add(1, Ordering::Relaxed);
        let driver = &self.txn_driver;
        let oltp = self.rde.oltp();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers as u64)
                .map(|worker| {
                    scope.spawn(move || driver.run_new_orders(oltp, worker, count_per_worker, seed))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .sum()
        })
    }

    /// Number of pipeline workers the OLAP engine currently fields — the
    /// cores the RDE engine has granted it. Elastic migrations change this
    /// between queries, and with it the measured parallelism of the next
    /// query.
    pub fn olap_worker_count(&self) -> usize {
        self.rde.olap().workers().worker_count()
    }

    /// Schedule and execute one plan, returning the report *and* the raw
    /// engine output (results + `WorkProfile`).
    fn execute_plan_inner(
        &self,
        label: &str,
        sql: Option<String>,
        plan: &QueryPlan,
        is_batch: bool,
    ) -> Result<(QueryReport, QueryOutput), OlapError> {
        let guard = htap_obs::span("query.execute");
        if guard.is_active() {
            guard.detail(label);
        }
        let scheduled = {
            let scheduler = self.scheduler.lock();
            scheduler.schedule_query(plan, is_batch)
        };
        let txn = self.rde.txn_work();
        let execution = self
            .rde
            .olap()
            .run_query(plan, &scheduled.sources, Some(&txn))?;
        let olap_traffic = self
            .rde
            .olap_traffic_for(&execution.output.work.bytes_per_socket);
        let oltp_tps = self.rde.modeled_oltp_throughput(&olap_traffic);
        self.rde.clock().advance(
            htap_sim::clock::Activity::QueryExecution,
            execution.modeled.total,
        );
        let report = QueryReport {
            query: label.to_string(),
            sql,
            state: scheduled.state,
            execution_time: execution.modeled.total,
            scheduling_time: scheduled.scheduling_time,
            freshness_rate: scheduled.freshness.freshness_rate(),
            fresh_rows_accessed: execution.output.work.fresh_rows,
            bytes_scanned: execution.output.work.total_bytes(),
            oltp_tps,
            oltp_tps_measured: false,
            oltp_sample_window: 0.0,
            result_rows: execution.output.result.row_count(),
            performed_etl: scheduled.migration.etl.is_some(),
        };
        if guard.is_active() {
            guard.arg("freshness", report.freshness_rate);
            guard.arg("execution_time_s", report.execution_time);
            guard.arg("bytes_scanned", report.bytes_scanned as f64);
            guard.arg("fresh_rows", report.fresh_rows_accessed as f64);
            guard.arg("result_rows", report.result_rows as f64);
            guard.arg("oltp_tps", report.oltp_tps);
        }
        // Per-query freshness distribution in parts-per-million (the rate is
        // in [0,1]; the log-linear histogram needs integer-scale values).
        htap_obs::histogram("query.freshness_ppm").record_scaled(report.freshness_rate, 1e6);
        Ok((report, execution.output))
    }

    /// Schedule and execute one analytical query plan.
    ///
    /// Errors (rather than panicking) when the plan references relations or
    /// columns the scheduled access paths cannot serve.
    pub fn execute_plan(
        &self,
        label: &str,
        plan: &QueryPlan,
        is_batch: bool,
    ) -> Result<QueryReport, OlapError> {
        self.execute_plan_inner(label, None, plan, is_batch)
            .map(|(report, _)| report)
    }

    /// Compile one SQL `SELECT` against the CH-benCHmark catalog without
    /// executing it — the plan the engine *would* run.
    pub fn plan_sql(&self, sql: &str) -> Result<QueryPlan, SqlError> {
        htap_sql::plan(sql, &self.catalog)
    }

    /// Compile and execute one ad-hoc SQL query: parse → bind → plan →
    /// schedule → vectorized morsel execution, exactly like
    /// [`HtapSystem::execute_query`] — including per-query freshness against
    /// live OLTP ingest. The report carries the SQL text.
    pub fn execute_sql(&self, sql: &str) -> Result<QueryReport, SqlRunError> {
        self.execute_sql_with_output(sql).map(|(report, _)| report)
    }

    /// [`HtapSystem::execute_sql`], additionally returning the raw engine
    /// output (result rows + `WorkProfile`) — what the SQL shell prints.
    pub fn execute_sql_with_output(
        &self,
        sql: &str,
    ) -> Result<(QueryReport, QueryOutput), SqlRunError> {
        let guard = htap_obs::span("query");
        if guard.is_active() {
            guard.detail(sql);
        }
        let plan = self.plan_sql(sql)?;
        Ok(self.execute_planned_sql(sql, &plan)?)
    }

    /// Execute a plan previously compiled by [`HtapSystem::plan_sql`],
    /// tagging the report with the originating SQL text. Lets callers that
    /// already hold the plan (the shell prints it first) avoid compiling
    /// twice.
    pub fn execute_planned_sql(
        &self,
        sql: &str,
        plan: &QueryPlan,
    ) -> Result<(QueryReport, QueryOutput), OlapError> {
        let label = format!("sql-{}", plan.label());
        self.execute_plan_inner(&label, Some(sql.to_string()), plan, false)
    }

    /// Schedule and execute one CH-benCHmark query.
    pub fn execute_query(&self, query: QueryId) -> Result<QueryReport, OlapError> {
        let guard = htap_obs::span("query");
        if guard.is_active() {
            guard.detail(query.label());
        }
        self.execute_plan_inner(query.label(), Some(query.sql()), &query.plan(), false)
            .map(|(report, _)| report)
    }

    /// Schedule and execute one CH-benCHmark query as part of a batch
    /// (batches always take the ETL branch of Algorithm 2). Follow-up queries
    /// of the batch reuse the snapshot, so their report carries no scheduling
    /// overhead.
    pub fn execute_batch_query(
        &self,
        query: QueryId,
        is_follow_up: bool,
    ) -> Result<QueryReport, OlapError> {
        let guard = htap_obs::span("query");
        if guard.is_active() {
            guard.detail(query.label());
        }
        let (mut report, _) =
            self.execute_plan_inner(query.label(), Some(query.sql()), &query.plan(), true)?;
        if is_follow_up {
            report.scheduling_time = 0.0;
            report.performed_etl = false;
        }
        Ok(report)
    }
}

impl Drop for HtapSystem {
    /// The ingest threads hold `Arc`s into the engines, so a system dropped
    /// mid-ingest would leave them running forever — stop the pool first.
    fn drop(&mut self) {
        self.stop_oltp_ingest();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use htap_rde::SystemState;
    use htap_scheduler::SchedulerPolicy;

    fn tiny_system() -> HtapSystem {
        HtapSystem::build(HtapConfig::tiny()).unwrap()
    }

    #[test]
    fn build_populates_the_database() {
        let system = tiny_system();
        assert!(system.population().orderlines > 0);
        assert_eq!(
            system.population().total_rows,
            system.rde().oltp().total_rows()
        );
        assert!(system.rde().oltp().table("orderline").is_some());
        assert!(system.rde().olap().store().table("orderline").is_some());
    }

    #[test]
    fn oltp_and_olap_sides_work_together() {
        let system = tiny_system();
        let committed = system.run_oltp(5);
        assert!(committed > 0);
        let report = system.execute_query(QueryId::Q6).unwrap();
        assert!(report.execution_time > 0.0);
        assert!(report.result_rows >= 1);
        assert!(report.oltp_tps > 0.0);
        assert!(report.bytes_scanned > 0);
    }

    #[test]
    fn query_results_are_consistent_across_schedules() {
        // The same data must produce the same Q6 answer regardless of the
        // schedule that executed it.
        let system = tiny_system();
        system.run_oltp(3);
        let mut answers = Vec::new();
        for schedule in [
            Schedule::Static(SystemState::S2Isolated),
            Schedule::Static(SystemState::S1Colocated),
            Schedule::Static(SystemState::S3HybridIsolated),
            Schedule::Static(SystemState::S3HybridNonIsolated),
            Schedule::Adaptive(SchedulerPolicy::adaptive_non_isolated(0.5)),
        ] {
            system.set_schedule(schedule);
            let plan = QueryId::Q6.plan();
            let scheduled = system.with_scheduler(|s| s.schedule_query(&plan, false));
            let exec = system
                .rde()
                .olap()
                .run_query(&plan, &scheduled.sources, None)
                .unwrap();
            answers.push(exec.output.result.scalars().unwrap()[0]);
        }
        for pair in answers.windows(2) {
            assert!(
                (pair[0] - pair[1]).abs() < 1e-6,
                "schedules disagree on the query answer: {answers:?}"
            );
        }
    }

    #[test]
    fn parallel_oltp_commits_the_requested_work() {
        let system = tiny_system();
        let committed = system.run_oltp_parallel(3);
        // Two warehouses in the tiny config -> at most 2 concurrent workers.
        assert_eq!(committed, 2 * 3);
        assert!(system.txn_driver().stats().committed() >= committed);
    }

    #[test]
    fn continuous_ingest_runs_until_stopped() {
        let system = tiny_system();
        let workers = system.start_oltp_ingest();
        assert!(workers > 0);
        assert!(system.oltp_ingest_running());
        // A second start leaves the running pool untouched.
        assert_eq!(system.start_oltp_ingest(), 0);
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
        while system.oltp_live_counts().committed == 0 {
            assert!(
                std::time::Instant::now() < deadline,
                "no commits within 30s"
            );
            std::thread::yield_now();
        }
        // Analytics work while ingest runs (the switch gate quiesces workers).
        let report = system.execute_query(QueryId::Q6).unwrap();
        assert!(report.execution_time > 0.0);
        let pool = system.stop_oltp_ingest();
        assert!(!system.oltp_ingest_running());
        assert!(pool.committed() > 0);
        assert_eq!(
            pool.committed(),
            system.txn_driver().stats().committed(),
            "pool counters must agree with the driver's statistics"
        );
    }

    #[test]
    fn execute_sql_runs_the_full_pipeline() {
        let system = tiny_system();
        system.run_oltp(3);
        // The same query, once as SQL text and once as the hand-built plan:
        // identical answers, and the SQL report is self-describing.
        let sql = QueryId::Q6.sql();
        let report = system.execute_sql(&sql).unwrap();
        assert_eq!(report.sql.as_deref(), Some(sql.as_str()));
        assert_eq!(report.query, "sql-aggregate");
        assert!(report.execution_time > 0.0);
        assert!((0.0..=1.0).contains(&report.freshness_rate));
        let by_id = system.execute_query(QueryId::Q6).unwrap();
        assert_eq!(by_id.sql.as_deref(), Some(sql.as_str()));
        assert_eq!(report.result_rows, by_id.result_rows);
        assert_eq!(report.bytes_scanned, by_id.bytes_scanned);
    }

    #[test]
    fn execute_sql_with_output_returns_rows_and_work() {
        let system = tiny_system();
        let (report, output) = system
            .execute_sql_with_output(
                "SELECT ol_number, SUM(ol_amount), COUNT(*) FROM orderline \
                 GROUP BY ol_number ORDER BY ol_number",
            )
            .unwrap();
        let groups = output.result.groups().unwrap();
        assert!(!groups.is_empty());
        assert_eq!(report.result_rows, groups.len());
        assert!(output.work.tuples_scanned > 0);
        assert_eq!(report.bytes_scanned, output.work.total_bytes());
        // Ad-hoc joins plan through the catalog too.
        let (report, _) = system
            .execute_sql_with_output(
                "SELECT COUNT(*) FROM orderline JOIN item ON ol_i_id = i_id \
                 WHERE i_price >= 5",
            )
            .unwrap();
        assert_eq!(report.query, "sql-join");
    }

    #[test]
    fn execute_sql_errors_are_typed_not_panics() {
        let system = tiny_system();
        // Frontend rejection: unknown table, with position info.
        let err = system.execute_sql("SELECT COUNT(*) FROM nope").unwrap_err();
        match err {
            SqlRunError::Sql(SqlError::UnknownTable { ref name, pos }) => {
                assert_eq!(name, "nope");
                assert_eq!(pos, 21);
            }
            other => panic!("expected UnknownTable, got {other:?}"),
        }
        // Unknown column.
        assert!(matches!(
            system
                .execute_sql("SELECT SUM(ghost) FROM orderline")
                .unwrap_err(),
            SqlRunError::Sql(SqlError::UnknownColumn { .. })
        ));
        // Unclosed string.
        assert!(matches!(
            system
                .execute_sql("SELECT COUNT(*) FROM item WHERE i_data LIKE 'PR")
                .unwrap_err(),
            SqlRunError::Sql(SqlError::UnclosedString { .. })
        ));
        // Unsupported construct; the Display impl mentions the offset.
        let err = system
            .execute_sql("SELECT COUNT(*) FROM orderline, orders, customer, item")
            .unwrap_err();
        assert!(err.to_string().contains("offset"), "{err}");
    }

    #[test]
    fn schedule_changes_take_effect() {
        let system = tiny_system();
        system.set_schedule(Schedule::Static(SystemState::S2Isolated));
        let report = system.execute_query(QueryId::Q1).unwrap();
        assert_eq!(report.state, SystemState::S2Isolated);
        assert!(report.performed_etl);

        system.set_schedule(Schedule::Static(SystemState::S3HybridIsolated));
        let report = system.execute_query(QueryId::Q1).unwrap();
        assert_eq!(report.state, SystemState::S3HybridIsolated);
        assert!(!report.performed_etl);
        assert_eq!(system.schedule().label(), "S3-IS");
    }

    #[test]
    fn batch_follow_up_queries_do_not_pay_scheduling() {
        let system = tiny_system();
        let first = system.execute_batch_query(QueryId::Q6, false).unwrap();
        let follow_up = system.execute_batch_query(QueryId::Q6, true).unwrap();
        assert!(first.scheduling_time >= 0.0);
        assert_eq!(follow_up.scheduling_time, 0.0);
        assert!(!follow_up.performed_etl);
    }
}
