//! Span trees: hierarchical timed sections recorded on the coordinating
//! thread (query granularity — allocation here is fine; the per-morsel hot
//! path uses the event rings instead).
//!
//! Each thread keeps a stack of open spans. [`span`] opens one and returns
//! an RAII guard; dropping the guard closes the span and attaches it to its
//! parent, or — for a root — pushes the finished tree into the global span
//! log (bounded, drop-newest with a counter). Guards close any deeper spans
//! still open, so early returns via `?` can never corrupt the stack.
//!
//! The hierarchy produced for one SQL query:
//!
//! ```text
//! query                      (label, freshness, modeled/actual times)
//! ├── sql.parse
//! ├── sql.bind
//! ├── sql.plan
//! └── query.execute
//!     ├── rde.schedule       (switch, freshness measure, migrate)
//!     │   ├── rde.switch
//!     │   └── rde.etl
//!     └── olap.pipeline*     (one per pipeline; per-worker rollup children)
//!         └── worker*        (morsels, busy_us per worker)
//! ```
//!
//! `Transaction::commit` trees are *not* built here — a commit is far too
//! hot for per-commit allocation. Commits record one packed ring event and
//! the Chrome exporter re-inflates it into a lock/WAL-wait/apply span tree.

use crate::clock::now_us;
use std::cell::RefCell;

/// One closed span: a named interval with numeric args, free-text detail,
/// and child spans.
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    /// Section name (static: span opening never allocates for the name).
    pub name: &'static str,
    /// Optional free-text annotation (query label, SQL text, ...).
    pub detail: String,
    /// Start, µs since the trace epoch.
    pub start_us: u64,
    /// End, µs since the trace epoch.
    pub end_us: u64,
    /// Numeric annotations, in insertion order.
    pub args: Vec<(&'static str, f64)>,
    /// Nested child spans, in completion order.
    pub children: Vec<Span>,
}

impl Span {
    fn open(name: &'static str) -> Self {
        Span {
            name,
            detail: String::new(),
            start_us: now_us(),
            end_us: 0,
            args: Vec::new(),
            children: Vec::new(),
        }
    }

    /// Duration in µs.
    pub fn duration_us(&self) -> u64 {
        self.end_us.saturating_sub(self.start_us)
    }

    /// Total number of spans in this tree (self included).
    pub fn tree_len(&self) -> usize {
        1 + self.children.iter().map(Span::tree_len).sum::<usize>()
    }

    /// Depth-first search for a descendant (or self) by name.
    pub fn find(&self, name: &str) -> Option<&Span> {
        if self.name == name {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find(name))
    }
}

/// The bounded global log of finished root spans.
#[derive(Debug, Default)]
pub(crate) struct SpanLog {
    pub(crate) roots: Vec<Span>,
    pub(crate) dropped: u64,
}

/// Root spans kept before drop-newest kicks in. Pre-reserved at first push
/// so steady-state pushes never reallocate.
pub(crate) const SPAN_LOG_CAPACITY: usize = 8192;

impl SpanLog {
    pub(crate) fn push(&mut self, span: Span) {
        if self.roots.capacity() == 0 {
            self.roots.reserve_exact(SPAN_LOG_CAPACITY);
        }
        if self.roots.len() < SPAN_LOG_CAPACITY {
            self.roots.push(span);
        } else {
            self.dropped += 1;
        }
    }
}

thread_local! {
    /// Open spans of the current thread, outermost first.
    static STACK: RefCell<Vec<Span>> = const { RefCell::new(Vec::new()) };
}

/// RAII handle for an open span. Dropping it closes the span (and any
/// deeper spans left open by early returns).
#[derive(Debug)]
pub struct SpanGuard {
    /// Index of the span in the thread's open stack; `None` when tracing
    /// was disabled at open (the guard is a no-op then).
    depth: Option<usize>,
}

impl SpanGuard {
    /// A guard that does nothing (tracing disabled).
    pub(crate) fn disabled() -> SpanGuard {
        SpanGuard { depth: None }
    }

    /// Whether this guard actually tracks a span.
    pub fn is_active(&self) -> bool {
        self.depth.is_some()
    }

    /// Attach a numeric annotation to this span.
    pub fn arg(&self, key: &'static str, value: f64) {
        let Some(depth) = self.depth else { return };
        with_stack(|stack| {
            if let Some(span) = stack.get_mut(depth) {
                span.args.push((key, value));
            }
        });
    }

    /// Set the free-text detail of this span.
    pub fn detail(&self, detail: &str) {
        let Some(depth) = self.depth else { return };
        with_stack(|stack| {
            if let Some(span) = stack.get_mut(depth) {
                span.detail.clear();
                span.detail.push_str(detail);
            }
        });
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(depth) = self.depth else { return };
        close_to_depth(depth);
    }
}

/// Run `f` over the thread's open-span stack; silently a no-op during
/// thread teardown or pathological re-entrancy (never panics).
fn with_stack<R>(f: impl FnOnce(&mut Vec<Span>) -> R) -> Option<R> {
    STACK
        .try_with(|cell| cell.try_borrow_mut().ok().map(|mut s| f(&mut s)))
        .ok()
        .flatten()
}

/// Open a span on the current thread. Returns an inert guard when tracing
/// is disabled.
pub fn span(name: &'static str) -> SpanGuard {
    if !crate::enabled() {
        return SpanGuard::disabled();
    }
    let depth = with_stack(|stack| {
        stack.push(Span::open(name));
        stack.len() - 1
    });
    SpanGuard { depth }
}

/// Attach a numeric annotation to the innermost open span, if any.
pub fn span_arg(key: &'static str, value: f64) {
    with_stack(|stack| {
        if let Some(span) = stack.last_mut() {
            span.args.push((key, value));
        }
    });
}

/// Append an already-timed child span to the innermost open span (or to the
/// global log as a root when none is open). Used for per-worker morsel
/// rollups, whose bounds are measured outside the span stack.
pub fn child_span(name: &'static str, start_us: u64, end_us: u64, args: &[(&'static str, f64)]) {
    if !crate::enabled() {
        return;
    }
    let child = Span {
        name,
        detail: String::new(),
        start_us,
        end_us,
        args: args.to_vec(),
        children: Vec::new(),
    };
    let attached = with_stack(|stack| match stack.last_mut() {
        Some(parent) => {
            parent.children.push(child.clone());
            true
        }
        None => false,
    });
    if attached != Some(true) {
        crate::obs().spans.lock().push(child);
    }
}

/// Close every span at `depth` or deeper, attaching each to its parent and
/// pushing finished roots to the global log.
fn close_to_depth(depth: usize) {
    let finished = with_stack(|stack| {
        let mut roots = Vec::new();
        while stack.len() > depth {
            let Some(mut span) = stack.pop() else { break };
            span.end_us = now_us();
            match stack.last_mut() {
                Some(parent) => parent.children.push(span),
                None => roots.push(span),
            }
        }
        roots
    });
    if let Some(roots) = finished {
        if !roots.is_empty() {
            let mut log = crate::obs().spans.lock();
            for root in roots {
                log.push(root);
            }
        }
    }
}

/// Clone the finished root spans collected so far (newest last), without
/// draining them.
pub fn spans_snapshot() -> Vec<Span> {
    crate::obs().spans.lock().roots.clone()
}

/// Number of root spans dropped because the span log was full.
pub fn spans_dropped() -> u64 {
    crate::obs().spans.lock().dropped
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_roots_reach_the_log() {
        let _g = crate::test_lock();
        crate::set_enabled(true);
        let before = spans_snapshot().len();
        {
            let root = span("test.root");
            root.detail("hello");
            root.arg("x", 1.0);
            {
                let child = span("test.child");
                child.arg("y", 2.0);
                child_span("test.rollup", 1, 5, &[("morsels", 3.0)]);
            }
        }
        let spans = spans_snapshot();
        assert_eq!(spans.len(), before + 1);
        let root = spans.last().cloned().unwrap_or_else(|| {
            unreachable!();
        });
        assert_eq!(root.name, "test.root");
        assert_eq!(root.detail, "hello");
        assert_eq!(root.args, vec![("x", 1.0)]);
        assert_eq!(root.children.len(), 1);
        let child = &root.children[0];
        assert_eq!(child.name, "test.child");
        assert_eq!(child.children.len(), 1);
        assert_eq!(child.children[0].name, "test.rollup");
        assert_eq!(child.children[0].duration_us(), 4);
        assert_eq!(root.tree_len(), 3);
        assert!(root.find("test.rollup").is_some());
        assert!(root.find("nope").is_none());
    }

    #[test]
    fn dropping_an_outer_guard_closes_leaked_inner_spans() {
        let _g = crate::test_lock();
        crate::set_enabled(true);
        let before = spans_snapshot().len();
        {
            let _root = span("test.leak-root");
            let inner = span("test.leaked-inner");
            // Simulate an early return: the inner guard is forgotten, the
            // outer drop must still close and attach it.
            std::mem::forget(inner);
        }
        let spans = spans_snapshot();
        assert_eq!(spans.len(), before + 1);
        let root = &spans[spans.len() - 1];
        assert_eq!(root.name, "test.leak-root");
        assert_eq!(root.children.len(), 1);
        assert_eq!(root.children[0].name, "test.leaked-inner");
    }

    #[test]
    fn disabled_spans_are_inert() {
        let _g = crate::test_lock();
        crate::set_enabled(false);
        let before = spans_snapshot().len();
        {
            let g = span("test.disabled");
            assert!(!g.is_active());
            g.arg("x", 1.0);
        }
        assert_eq!(spans_snapshot().len(), before);
        crate::set_enabled(true);
    }
}
