//! Event-ring contract tests: wraparound drop-oldest semantics, exact
//! accounting under concurrent writers vs. a draining reader, and the
//! monotonic-timestamp property of drained per-worker sequences.

use htap_obs::{EventKind, EventRing};
use proptest::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

#[test]
fn wraparound_drops_oldest_and_counts_them() {
    let ring = EventRing::with_capacity(16);
    let cap = ring.capacity() as u64;
    // Write three laps worth: only the newest `cap` survive.
    let total = cap * 3;
    for i in 0..total {
        ring.record(EventKind::Morsel, i, i, 0);
    }
    let d = ring.drain();
    assert_eq!(d.events.len(), cap as usize, "newest lap survives");
    assert_eq!(d.dropped, total - cap, "everything older is counted");
    // The survivors are exactly the newest `cap`, in order.
    for (j, e) in d.events.iter().enumerate() {
        assert_eq!(e.ts_us, total - cap + j as u64);
    }
    let s = ring.stats();
    assert_eq!(s.recorded, total);
    assert_eq!(s.drained + s.dropped, total);
}

#[test]
fn overflow_never_blocks_a_writer() {
    // No drain at all: writers keep making progress forever.
    let ring = EventRing::with_capacity(8);
    for i in 0..10_000u64 {
        ring.record(EventKind::TxnRetry, i, 0, i);
    }
    assert_eq!(ring.stats().recorded, 10_000);
    let d = ring.drain();
    assert_eq!(d.events.len(), ring.capacity());
    assert_eq!(d.dropped, 10_000 - ring.capacity() as u64);
}

#[test]
fn concurrent_writers_vs_draining_reader_account_exactly() {
    let ring = Arc::new(EventRing::with_capacity(256));
    let stop = Arc::new(AtomicBool::new(false));
    const WRITERS: u64 = 4;
    const PER_WRITER: u64 = 20_000;

    let mut accepted = 0u64;
    let mut dropped = 0u64;
    std::thread::scope(|scope| {
        for w in 0..WRITERS {
            let ring = Arc::clone(&ring);
            scope.spawn(move || {
                for i in 0..PER_WRITER {
                    ring.record(EventKind::Morsel, i, w, i);
                }
            });
        }
        // Reader drains continuously while writers hammer the ring.
        let reader_ring = Arc::clone(&ring);
        let reader_stop = Arc::clone(&stop);
        let reader = scope.spawn(move || {
            let mut accepted = 0u64;
            let mut dropped = 0u64;
            while !reader_stop.load(Ordering::Relaxed) {
                let d = reader_ring.drain();
                for e in &d.events {
                    assert!(e.a < WRITERS, "payload from nowhere: {e:?}");
                    assert!(e.kind == EventKind::Morsel);
                }
                accepted += d.events.len() as u64;
                dropped += d.dropped;
            }
            (accepted, dropped)
        });
        // scope joins the writers when they fall off the end; signal the
        // reader once they are done by watching the recorded count.
        while ring.stats().recorded < WRITERS * PER_WRITER {
            std::thread::yield_now();
        }
        stop.store(true, Ordering::Relaxed);
        if let Ok((a, d)) = reader.join() {
            accepted = a;
            dropped = d;
        }
    });
    // Final drain with all writers quiescent: every reserved sequence
    // number is accounted exactly once, as accepted or dropped.
    let d = ring.drain();
    accepted += d.events.len() as u64;
    dropped += d.dropped;
    assert_eq!(
        accepted + dropped,
        WRITERS * PER_WRITER,
        "exact accounting: accepted {accepted} + dropped {dropped}"
    );
    assert!(accepted > 0, "the reader kept up with nothing at all");
}

proptest! {
    /// A single worker's drained event sequence is monotonically
    /// timestamped, regardless of ring size, drain cadence, or overflow.
    #[test]
    fn drained_sequences_are_monotonically_timestamped(
        capacity in 8usize..128,
        batches in prop::collection::vec(1u64..200, 1..8),
    ) {
        let ring = EventRing::with_capacity(capacity);
        let mut ts = 0u64;
        let mut last_drained: Option<u64> = None;
        for batch in batches {
            for _ in 0..batch {
                // Monotone (not strictly increasing) clock, as now_us is.
                ts += u64::from(!ts.is_multiple_of(3));
                ring.record(EventKind::Morsel, ts, 0, 0);
            }
            let d = ring.drain();
            for e in &d.events {
                if let Some(prev) = last_drained {
                    prop_assert!(
                        e.ts_us >= prev,
                        "timestamp went backwards: {} after {prev}",
                        e.ts_us
                    );
                }
                last_drained = Some(e.ts_us);
            }
        }
    }
}
