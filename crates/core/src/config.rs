//! Configuration of the assembled HTAP system.

use htap_chbench::ChConfig;
use htap_rde::RdeConfig;
use htap_scheduler::{Schedule, SchedulerPolicy};
use htap_sim::{SocketId, Topology};

/// Durability (WAL + checkpoint) tuning of an [`crate::HtapSystem`].
///
/// Durability itself is enabled by *building* the system against a durable
/// storage backend ([`crate::HtapSystem::build_durable`]); this struct only
/// tunes the group-commit coordinator and the checkpoint cadence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DurabilityConfig {
    /// How long a group-commit leader lingers for more committers to join
    /// its batch before issuing the fsync, in microseconds.
    pub flush_interval_micros: u64,
    /// Batch size that triggers an immediate flush without lingering.
    pub max_batch: usize,
    /// Take a column-segment checkpoint (and truncate the WAL) every N
    /// instance switches; 0 disables periodic checkpoints.
    pub checkpoint_interval_switches: u64,
}

impl Default for DurabilityConfig {
    fn default() -> Self {
        DurabilityConfig {
            flush_interval_micros: 100,
            max_batch: 64,
            checkpoint_interval_switches: 4,
        }
    }
}

/// Configuration of an [`crate::HtapSystem`].
#[derive(Debug, Clone)]
pub struct HtapConfig {
    /// The simulated machine.
    pub topology: Topology,
    /// Socket hosting the OLTP engine's storage.
    pub oltp_socket: SocketId,
    /// Socket hosting the OLAP engine's storage.
    pub olap_socket: SocketId,
    /// Minimum OLTP cores per socket the scheduler must preserve.
    pub oltp_min_cores_per_socket: usize,
    /// Minimum number of OLTP sockets.
    pub oltp_min_sockets: usize,
    /// OLTP-socket cores the OLAP engine may borrow in state S3-NI.
    pub elastic_cores: usize,
    /// Base throughput of one OLTP worker (transactions per second).
    pub base_tps_per_worker: f64,
    /// CH-benCHmark population.
    pub chbench: ChConfig,
    /// Initial scheduling discipline.
    pub schedule: Schedule,
    /// OLAP executor block size in tuples (0 = engine default).
    pub block_rows: usize,
    /// WAL / checkpoint tuning (effective only when the system is built with
    /// [`crate::HtapSystem::build_durable`]).
    pub durability: DurabilityConfig,
    /// How often the continuous-ingest pool retries an aborted transaction
    /// before counting it as aborted; 0 = abort immediately (the paper's
    /// NO-WAIT behaviour).
    pub txn_max_retries: u32,
    /// Base backoff between ingest retries in microseconds (exponential with
    /// deterministic jitter); 0 = retry immediately.
    pub txn_retry_backoff_micros: u64,
}

impl HtapConfig {
    /// A configuration mirroring the paper's evaluation server with a small
    /// database — the right starting point for examples and quick runs.
    pub fn small() -> Self {
        HtapConfig {
            topology: Topology::two_socket(),
            oltp_socket: SocketId(0),
            olap_socket: SocketId(1),
            oltp_min_cores_per_socket: 4,
            oltp_min_sockets: 1,
            elastic_cores: 4,
            base_tps_per_worker: 85_000.0,
            chbench: ChConfig::small(),
            schedule: Schedule::Adaptive(SchedulerPolicy::adaptive_non_isolated(0.5)),
            block_rows: 0,
            durability: DurabilityConfig::default(),
            txn_max_retries: 0,
            txn_retry_backoff_micros: 0,
        }
    }

    /// A tiny configuration for unit/integration tests.
    pub fn tiny() -> Self {
        HtapConfig {
            chbench: ChConfig::tiny(),
            ..Self::small()
        }
    }

    /// A configuration scaled like the paper (scale factor `sf`); note that
    /// SF 300 needs a correspondingly large amount of host memory — the
    /// benchmark harnesses use small scale factors and report the scaling rule
    /// in EXPERIMENTS.md.
    pub fn scale_factor(sf: f64) -> Self {
        HtapConfig {
            chbench: ChConfig::scale_factor(sf),
            ..Self::small()
        }
    }

    /// Use the given scheduling discipline.
    pub fn with_schedule(mut self, schedule: Schedule) -> Self {
        self.schedule = schedule;
        self
    }

    /// Use the given ETL-sensitivity α with the adaptive (hybrid) policy.
    pub fn with_alpha(mut self, alpha: f64) -> Self {
        self.schedule = Schedule::Adaptive(SchedulerPolicy::adaptive_non_isolated(alpha));
        self
    }

    /// Use the given CH-benCHmark population.
    pub fn with_chbench(mut self, chbench: ChConfig) -> Self {
        self.chbench = chbench;
        self
    }

    /// Number of cores the OLAP engine may borrow elastically.
    pub fn with_elastic_cores(mut self, cores: usize) -> Self {
        self.elastic_cores = cores;
        self
    }

    /// Use the given WAL / checkpoint tuning.
    pub fn with_durability(mut self, durability: DurabilityConfig) -> Self {
        self.durability = durability;
        self
    }

    /// Retry aborted ingest transactions up to `max_retries` times with the
    /// given base backoff (microseconds, exponential + deterministic jitter).
    pub fn with_txn_retries(mut self, max_retries: u32, backoff_micros: u64) -> Self {
        self.txn_max_retries = max_retries;
        self.txn_retry_backoff_micros = backoff_micros;
        self
    }

    /// The RDE-engine configuration implied by this system configuration.
    pub fn rde_config(&self) -> RdeConfig {
        RdeConfig {
            topology: self.topology.clone(),
            oltp_socket: self.oltp_socket,
            olap_socket: self.olap_socket,
            oltp_min_cores_per_socket: self.oltp_min_cores_per_socket,
            oltp_min_sockets: self.oltp_min_sockets,
            elastic_cores: self.elastic_cores,
            base_tps_per_worker: self.base_tps_per_worker,
        }
    }

    /// Validate the configuration.
    pub fn validate(&self) -> Result<(), String> {
        self.topology.validate()?;
        if self.oltp_socket == self.olap_socket {
            return Err("OLTP and OLAP home sockets must differ".into());
        }
        if self.oltp_socket.index() >= self.topology.sockets as usize
            || self.olap_socket.index() >= self.topology.sockets as usize
        {
            return Err("home sockets out of range for the topology".into());
        }
        if self.elastic_cores >= self.topology.cores_per_socket as usize {
            return Err("elastic cores must leave at least one OLTP core".into());
        }
        Ok(())
    }
}

impl Default for HtapConfig {
    fn default() -> Self {
        Self::small()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_valid() {
        assert!(HtapConfig::small().validate().is_ok());
        assert!(HtapConfig::tiny().validate().is_ok());
        assert!(HtapConfig::scale_factor(0.01).validate().is_ok());
    }

    #[test]
    fn builder_methods_compose() {
        let cfg = HtapConfig::tiny()
            .with_alpha(0.25)
            .with_elastic_cores(6)
            .with_chbench(ChConfig::tiny())
            .with_durability(DurabilityConfig {
                flush_interval_micros: 50,
                max_batch: 8,
                checkpoint_interval_switches: 2,
            })
            .with_txn_retries(3, 25);
        assert_eq!(cfg.elastic_cores, 6);
        assert_eq!(cfg.durability.max_batch, 8);
        assert_eq!(cfg.durability.checkpoint_interval_switches, 2);
        assert_eq!(cfg.txn_max_retries, 3);
        assert_eq!(cfg.txn_retry_backoff_micros, 25);
        match cfg.schedule {
            Schedule::Adaptive(p) => assert!((p.alpha - 0.25).abs() < 1e-12),
            _ => panic!("expected adaptive schedule"),
        }
        let rde = cfg.rde_config();
        assert_eq!(rde.elastic_cores, 6);
    }

    #[test]
    fn validation_rejects_bad_configurations() {
        let mut cfg = HtapConfig::tiny();
        cfg.olap_socket = cfg.oltp_socket;
        assert!(cfg.validate().is_err());

        let mut cfg = HtapConfig::tiny();
        cfg.olap_socket = SocketId(9);
        assert!(cfg.validate().is_err());

        let mut cfg = HtapConfig::tiny();
        cfg.elastic_cores = 14;
        assert!(cfg.validate().is_err());
    }
}
