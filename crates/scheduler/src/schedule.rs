//! Schedules: static (always the same state, the paper's comparison points)
//! or adaptive (Algorithm 2).

use crate::policy::SchedulerPolicy;
use htap_rde::SystemState;

/// A scheduling discipline for the HTAP system.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Schedule {
    /// Always migrate to the same state before every query (the static
    /// schedules of Figure 5: S1, S2, S3-IS, S3-NI).
    Static(SystemState),
    /// Freshness-driven adaptive scheduling (Algorithm 2).
    Adaptive(SchedulerPolicy),
}

impl Schedule {
    /// All schedules evaluated in Figure 5, in the paper's order:
    /// the four static states plus the two adaptive variants.
    pub fn figure5_set(alpha: f64) -> Vec<(String, Schedule)> {
        vec![
            ("S1".to_string(), Schedule::Static(SystemState::S1Colocated)),
            ("S2".to_string(), Schedule::Static(SystemState::S2Isolated)),
            (
                "S3-IS".to_string(),
                Schedule::Static(SystemState::S3HybridIsolated),
            ),
            (
                "Adaptive-S3-IS".to_string(),
                Schedule::Adaptive(SchedulerPolicy::adaptive_isolated(alpha)),
            ),
            (
                "S3-NI".to_string(),
                Schedule::Static(SystemState::S3HybridNonIsolated),
            ),
            (
                "Adaptive-S3-NI".to_string(),
                Schedule::Adaptive(SchedulerPolicy::adaptive_non_isolated(alpha)),
            ),
        ]
    }

    /// Short label for reports.
    pub fn label(&self) -> String {
        match self {
            Schedule::Static(state) => state.label().to_string(),
            Schedule::Adaptive(policy) => {
                if !policy.elasticity_allowed {
                    "Adaptive-S3-IS".to_string()
                } else {
                    match policy.elasticity_mode {
                        htap_rde::ElasticityMode::Hybrid => "Adaptive-S3-NI".to_string(),
                        htap_rde::ElasticityMode::Colocation => "Adaptive-S1".to_string(),
                    }
                }
            }
        }
    }

    /// Whether the schedule is adaptive.
    pub fn is_adaptive(&self) -> bool {
        matches!(self, Schedule::Adaptive(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure5_set_contains_all_paper_schedules() {
        let set = Schedule::figure5_set(0.5);
        let labels: Vec<&str> = set.iter().map(|(l, _)| l.as_str()).collect();
        assert_eq!(
            labels,
            vec![
                "S1",
                "S2",
                "S3-IS",
                "Adaptive-S3-IS",
                "S3-NI",
                "Adaptive-S3-NI"
            ]
        );
        assert_eq!(set.iter().filter(|(_, s)| s.is_adaptive()).count(), 2);
    }

    #[test]
    fn labels_match_schedule_kind() {
        assert_eq!(Schedule::Static(SystemState::S2Isolated).label(), "S2");
        assert_eq!(
            Schedule::Adaptive(SchedulerPolicy::adaptive_isolated(0.5)).label(),
            "Adaptive-S3-IS"
        );
        assert_eq!(
            Schedule::Adaptive(SchedulerPolicy::adaptive_non_isolated(0.5)).label(),
            "Adaptive-S3-NI"
        );
        assert_eq!(
            Schedule::Adaptive(SchedulerPolicy::adaptive_colocated(0.5)).label(),
            "Adaptive-S1"
        );
    }
}
