//! Figure 4 — OLAP response time with respect to the amount of fresh data.
//!
//! The OLAP instance is synchronised once; the transactional stream then keeps
//! inserting, and after every ingest step the same CH-Q1 query is executed
//! under three access strategies: S3-IS with split access (read only the
//! fresh tail remotely), S2 (full delta ETL, then local execution) and S3-IS
//! full-remote (re-read everything from the OLTP socket). The x-axis is the
//! fresh data touched by the query as a percentage of the database.
//!
//! `cargo run --release -p htap-bench --bin fig4_freshness_sweep`

use htap_bench::{fmt_secs, Harness, HarnessArgs};
use htap_chbench::ch_q1;
use htap_core::ExperimentTable;
use htap_rde::AccessMethod;

fn main() {
    let args = HarnessArgs::parse();
    let plan = ch_q1();
    println!("Figure 4: response time vs fresh data accessed (CH-Q1)");

    let mut table = ExperimentTable::new(
        "Figure 4 — query response time vs % of fresh data accessed by the query",
        &[
            "fresh_pct_of_db",
            "s3is_split_access_s",
            "s2_etl_plus_local_s",
            "s3is_full_remote_s",
        ],
    );

    // Three identically-populated stacks so the S2 strategy's ETLs do not
    // change what the other two strategies see.
    let split_stack = Harness::two_socket(&args);
    let etl_stack = Harness::two_socket(&args);
    let remote_stack = Harness::two_socket(&args);
    for stack in [&split_stack, &etl_stack, &remote_stack] {
        stack.rde.switch_and_sync();
        stack.rde.etl_to_olap();
    }

    let tables: Vec<&str> = plan.tables();
    for step in 0..8 {
        // Grow the fresh tail on every stack identically.
        for stack in [&split_stack, &etl_stack, &remote_stack] {
            stack.ingest(600, 4, 1000 + step);
            stack.rde.switch_and_sync();
        }

        // Fresh fraction, measured on the split stack.
        let orderline = split_stack.rde.oltp().store().table("orderline").unwrap();
        let fresh_rows = orderline.fresh_rows_vs_olap();
        let total_rows = orderline.snapshot().rows().max(1);
        let fresh_pct = 100.0 * fresh_rows as f64 / total_rows as f64;

        // S3-IS split access.
        let sources = split_stack.rde.sources_for(&tables, AccessMethod::Split);
        let txn = split_stack.rde.txn_work();
        let split_time = split_stack
            .rde
            .olap()
            .run_query(&plan, &sources, Some(&txn))
            .expect("CH plan matches the scheduled sources")
            .modeled
            .total;

        // S2: pay the delta ETL, then run locally.
        let etl = etl_stack.rde.etl_to_olap();
        let sources = etl_stack.rde.sources_for(&tables, AccessMethod::OlapLocal);
        let txn = etl_stack.rde.txn_work();
        let s2_time = etl.modeled_time
            + etl_stack
                .rde
                .olap()
                .run_query(&plan, &sources, Some(&txn))
                .expect("CH plan matches the scheduled sources")
                .modeled
                .total;

        // S3-IS full remote.
        let sources = remote_stack
            .rde
            .sources_for(&tables, AccessMethod::OltpSnapshot);
        let txn = remote_stack.rde.txn_work();
        let remote_time = remote_stack
            .rde
            .olap()
            .run_query(&plan, &sources, Some(&txn))
            .expect("CH plan matches the scheduled sources")
            .modeled
            .total;

        table.push_row(vec![
            format!("{fresh_pct:.2}"),
            fmt_secs(split_time),
            fmt_secs(s2_time),
            fmt_secs(remote_time),
        ]);
    }

    if args.csv {
        print!("{}", table.to_csv());
    } else {
        print!("{}", table.render());
    }
    println!();
    println!(
        "Expected shape (paper): full-remote is the slowest and roughly flat; split access starts\n\
         fastest and grows with the fresh fraction, approaching (and eventually crossing) the S2\n\
         line — the point at which the scheduler prefers to pay the ETL."
    );
}
