//! Morsels: the NUMA-tagged work units of the parallel pipelines.
//!
//! Morsel-driven execution (Leis et al., SIGMOD'14 — the scheduling model
//! behind the engine the paper builds on) splits every scan into fixed-size
//! row ranges, *morsels*, that pipeline workers claim one at a time. The
//! split is computed once per query from the [`ScanSource`]'s segments, so a
//! morsel never spans two memory areas: each one inherits the socket and the
//! provenance (OLAP instance vs OLTP snapshot) of the segment it was cut
//! from, which keeps both NUMA-aware scheduling and per-worker work
//! accounting exact.
//!
//! Determinism contract: a morsel's identity is its index in the split.
//! Workers may claim morsels in any order, but every per-morsel partial
//! result is merged back in morsel-index order, so the final result of a
//! query is bit-for-bit identical for every worker count (see
//! [`crate::exec::QueryExecutor`]).

use crate::source::{ScanSource, SegmentOrigin};
use htap_sim::SocketId;
use std::ops::Range;

/// One claimable unit of scan work: a contiguous row range of one segment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Morsel {
    /// Index of the segment (within [`ScanSource::segments`]) the morsel was
    /// cut from.
    pub segment: usize,
    /// Absolute row range within the segment's backing table.
    pub rows: Range<u64>,
    /// Socket whose DRAM holds the rows.
    pub socket: SocketId,
    /// Where the rows come from (OLAP instance or OLTP snapshot).
    pub origin: SegmentOrigin,
}

impl Morsel {
    /// Number of rows in the morsel.
    pub fn row_count(&self) -> usize {
        (self.rows.end - self.rows.start) as usize
    }

    /// Whether the morsel serves fresh (OLTP-snapshot) rows.
    pub fn is_fresh(&self) -> bool {
        self.origin == SegmentOrigin::OltpSnapshot
    }
}

/// Split `source` into morsels of at most `morsel_rows` rows.
///
/// Segments are cut independently and in order, so morsel `i` always covers
/// rows that precede morsel `i + 1` in scan order. A `morsel_rows` of zero is
/// treated as "one morsel per segment". Empty segments and empty sources
/// produce no morsels.
pub fn split_morsels(source: &ScanSource, morsel_rows: usize) -> Vec<Morsel> {
    let mut out = Vec::new();
    for (segment, seg) in source.segments.iter().enumerate() {
        let mut start = seg.rows.start;
        if seg.rows.end <= start {
            continue;
        }
        let step = if morsel_rows == 0 {
            (seg.rows.end - start) as usize
        } else {
            morsel_rows
        };
        while start < seg.rows.end {
            let end = (start + step as u64).min(seg.rows.end);
            out.push(Morsel {
                segment,
                rows: start..end,
                socket: seg.socket,
                origin: seg.origin,
            });
            start = end;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use htap_storage::{ColumnDef, ColumnarTable, DataType, TableSchema, TableSnapshot, Value};
    use std::sync::Arc;

    fn table_with(n: u64) -> Arc<ColumnarTable> {
        let schema = TableSchema::new(
            "t",
            vec![
                ColumnDef::new("id", DataType::I64),
                ColumnDef::new("x", DataType::F64),
            ],
            Some(0),
        );
        let t = ColumnarTable::new(schema);
        for i in 0..n {
            t.append_row(&[Value::I64(i as i64), Value::F64(i as f64)])
                .unwrap();
        }
        Arc::new(t)
    }

    fn snapshot_source(n: u64) -> ScanSource {
        let table = table_with(n);
        let snap = TableSnapshot::new("t".into(), table, n, 0);
        ScanSource::contiguous_snapshot(&snap, SocketId(0))
    }

    #[test]
    fn empty_table_yields_no_morsels() {
        assert!(split_morsels(&snapshot_source(0), 128).is_empty());
    }

    #[test]
    fn single_row_yields_one_morsel() {
        let morsels = split_morsels(&snapshot_source(1), 128);
        assert_eq!(morsels.len(), 1);
        assert_eq!(morsels[0].rows, 0..1);
        assert_eq!(morsels[0].row_count(), 1);
        assert!(morsels[0].is_fresh());
    }

    #[test]
    fn non_divisible_split_has_short_tail() {
        let morsels = split_morsels(&snapshot_source(1000), 300);
        assert_eq!(morsels.len(), 4);
        assert_eq!(
            morsels.iter().map(Morsel::row_count).collect::<Vec<_>>(),
            vec![300, 300, 300, 100]
        );
        // Contiguous, ordered coverage of the whole range.
        for pair in morsels.windows(2) {
            assert_eq!(pair[0].rows.end, pair[1].rows.start);
        }
        assert_eq!(morsels.last().unwrap().rows.end, 1000);
    }

    #[test]
    fn exact_division_has_no_tail() {
        let morsels = split_morsels(&snapshot_source(1024), 256);
        assert_eq!(morsels.len(), 4);
        assert!(morsels.iter().all(|m| m.row_count() == 256));
    }

    #[test]
    fn zero_morsel_rows_means_one_morsel_per_segment() {
        let morsels = split_morsels(&snapshot_source(777), 0);
        assert_eq!(morsels.len(), 1);
        assert_eq!(morsels[0].rows, 0..777);
    }

    #[test]
    fn split_access_morsels_never_span_segments() {
        let olap = table_with(100);
        let oltp = table_with(130);
        let snap = TableSnapshot::new("t".into(), oltp, 130, 1);
        let src = ScanSource::split(olap, 100, SocketId(1), &snap, SocketId(0));
        let morsels = split_morsels(&src, 64);
        // Segment 0: rows 0..100 -> 64 + 36; segment 1: rows 100..130 -> 30.
        assert_eq!(morsels.len(), 3);
        assert_eq!(morsels[0].rows, 0..64);
        assert_eq!(morsels[1].rows, 64..100);
        assert_eq!(morsels[2].rows, 100..130);
        assert_eq!(morsels[0].socket, SocketId(1));
        assert_eq!(morsels[2].socket, SocketId(0));
        assert!(!morsels[0].is_fresh());
        assert!(morsels[2].is_fresh());
        // Per-morsel row accounting matches the source totals.
        let rows: u64 = morsels.iter().map(|m| m.row_count() as u64).sum();
        assert_eq!(rows, src.total_rows());
        let fresh: u64 = morsels
            .iter()
            .filter(|m| m.is_fresh())
            .map(|m| m.row_count() as u64)
            .sum();
        assert_eq!(fresh, src.fresh_rows());
    }
}
