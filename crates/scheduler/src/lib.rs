//! Freshness-driven elastic HTAP scheduling (§4 of the paper).
//!
//! The scheduler sits on top of the RDE engine. For every analytical query it
//! measures the freshness-rate of the columns the query accesses
//! ([`freshness`]), runs Algorithm 2 ([`policy`]) to pick a system state, asks
//! the RDE engine to migrate ([`htap_rde::migration`]), and hands back the
//! access paths and the modelled scheduling overhead (instance switch, ETL)
//! that the query must absorb.
//!
//! Besides the adaptive policy, the crate provides the *static* schedules the
//! paper compares against in Figure 5 (always-S1, always-S2, always-S3-IS,
//! always-S3-NI) through the same interface ([`schedule`]).

pub mod freshness;
pub mod policy;
pub mod schedule;
pub mod scheduler;

pub use freshness::{FreshnessReport, QueryFreshness};
pub use policy::{PolicyDecision, SchedulerPolicy};
pub use schedule::Schedule;
pub use scheduler::{HtapScheduler, ScheduledQuery};
