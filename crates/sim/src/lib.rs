//! Simulated scale-up NUMA server substrate for the adaptive HTAP system.
//!
//! The paper evaluates on a 2-socket (4-socket for Figure 1) Intel Xeon server.
//! This crate replaces that hardware with a deterministic model of the same
//! resources: sockets, cores, per-socket DRAM bandwidth, the cross-socket
//! interconnect, and the way concurrent sequential (OLAP) and random (OLTP)
//! access streams share those resources.
//!
//! The functional engines (`htap-storage`, `htap-oltp`, `htap-olap`) execute
//! real work on real data; this crate is only consulted to convert *measured
//! work* (bytes scanned per locality class, tuples copied, cores used) into
//! *modelled time*, so that the benchmark harness can regenerate the shape of
//! every figure in the paper on any host.
//!
//! Main entry points:
//! * [`Topology`] — the machine description (sockets, cores, bandwidths).
//! * [`CpuSet`] / [`ResourcePool`] — CPU ownership and lending between engines.
//! * [`BandwidthModel`] — max-min fair sharing of DRAM and interconnect
//!   bandwidth among concurrent access streams.
//! * [`CostModel`] — converts [`ScanWork`], [`TransferWork`] and [`TxnWork`]
//!   descriptors into simulated seconds / transactions per second.
//! * [`SimClock`] — accumulates modelled time per engine.

pub mod bandwidth;
pub mod clock;
pub mod cost;
pub mod interference;
pub mod region;
pub mod resources;
pub mod topology;

pub use bandwidth::{BandwidthModel, Stream, StreamAllocation, StreamClass, StreamId};
pub use clock::SimClock;
pub use cost::{
    CostModel, CostParams, ExecPlacement, JoinWork, ScanCost, ScanSegment, ScanWork, TransferWork,
    TxnWork,
};
pub use interference::{InterferenceModel, OlapTraffic, OltpSlowdown};
pub use region::{MemoryRegion, RegionId, RegionKind};
pub use resources::{CpuSet, EngineId, ResourceError, ResourceGrant, ResourcePool};
pub use topology::{CoreId, SocketId, Topology};

/// Simulated seconds. All cost-model outputs are expressed in this unit.
pub type Seconds = f64;

/// Gigabytes per second; the unit used throughout the bandwidth model.
pub type GBps = f64;
