//! Primary-key index structures.
//!
//! The OLTP engine maintains one index per relation, "implemented using cuckoo
//! hashing. The index always points to the last updated record in either of
//! the two instances" (§3.2).

pub mod cuckoo;

use crate::{Epoch, RowId};

/// Location of the most recent version of a record: which twin instance last
/// received a write for it and which row it occupies (rows are aligned across
/// instances, so `row` is valid in both).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecordLocation {
    /// Row identifier, valid in both twin instances.
    pub row: RowId,
    /// Twin instance (0 or 1) that last received a write for this record.
    pub instance: u8,
    /// Epoch in which the location was last refreshed.
    pub epoch: Epoch,
}

impl RecordLocation {
    /// Location of a record in the given instance and row at epoch 0.
    pub fn new(row: RowId, instance: u8) -> Self {
        RecordLocation {
            row,
            instance,
            epoch: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_location_construction() {
        let loc = RecordLocation::new(42, 1);
        assert_eq!(loc.row, 42);
        assert_eq!(loc.instance, 1);
        assert_eq!(loc.epoch, 0);
    }
}
