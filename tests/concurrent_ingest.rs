//! Concurrent-ingest integration tests: NewOrder traffic flowing
//! continuously while analytical sequences execute.
//!
//! These cover the acceptance criteria of the concurrent mixed-workload
//! subsystem: freshness-rate decreasing across the queries of one sequence
//! while ingest runs, per-query OLTP throughput derived from real commit
//! counters, NO-WAIT aborts counted rather than silently lost, and
//! sequential mode staying bit-for-bit deterministic.

use adaptive_htap::chbench::keys;
use adaptive_htap::core::{
    run_mixed_workload, run_mixed_workload_concurrent, ConcurrentOptions, MixedWorkload,
    QuerySequence, SchedulerPolicy,
};
use adaptive_htap::{HtapConfig, HtapSystem, QueryId, Schedule, SystemState};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn tiny_system_with_schedule(schedule: Schedule) -> HtapSystem {
    HtapSystem::build(HtapConfig::tiny().with_schedule(schedule)).expect("system builds")
}

#[test]
fn freshness_decreases_within_a_sequence_while_ingest_runs() {
    // Static S3-NI never ETLs, so once the OLAP instance is seeded, fresh
    // data only accumulates — each query of the sequence must observe a
    // strictly lower freshness-rate than the one before it.
    let system = tiny_system_with_schedule(Schedule::Static(SystemState::S3HybridNonIsolated));
    system.rde().switch_and_sync();
    system.rde().etl_to_olap();

    let workload = MixedWorkload {
        sequence: QuerySequence::repeated(QueryId::Q6, 4),
        sequences: 1,
        txns_per_worker_between: 0,
    };
    let options = ConcurrentOptions {
        pacing_commits: 25,
        max_pacing_wait: Duration::from_secs(60),
    };
    let report = run_mixed_workload_concurrent(&system, &workload, &options).unwrap();

    let queries = &report.sequences[0].queries;
    assert_eq!(queries.len(), 4);
    for pair in queries.windows(2) {
        assert!(
            pair[1].freshness_rate < pair[0].freshness_rate,
            "freshness must decay under live ingest: {:?}",
            queries.iter().map(|q| q.freshness_rate).collect::<Vec<_>>()
        );
    }
    for q in queries {
        assert!(
            (0.0..=1.0).contains(&q.freshness_rate),
            "freshness-rate must stay clamped to [0, 1], got {}",
            q.freshness_rate
        );
    }
    assert!(report.transactions_committed > 0);
}

/// Acceptance criterion of the SQL frontend: an *ad-hoc* SQL query arriving
/// mid-stream — while continuous OLTP ingest is mutating the very relations
/// it reads — plans, schedules and executes like `execute_query`, reporting
/// freshness against the live delta stream and carrying its SQL text.
#[test]
fn adhoc_sql_executes_against_live_ingest() {
    let system = tiny_system_with_schedule(Schedule::Adaptive(
        SchedulerPolicy::adaptive_non_isolated(0.5),
    ));
    assert!(system.start_oltp_ingest() > 0);
    let deadline = Instant::now() + Duration::from_secs(30);
    while system.oltp_live_counts().committed < 20 {
        assert!(Instant::now() < deadline, "no commits within 30s");
        std::thread::yield_now();
    }
    let sql = "SELECT ol_number, SUM(ol_amount), COUNT(*) FROM orderline \
               WHERE ol_quantity >= 1 GROUP BY ol_number ORDER BY ol_number";
    let report = system.execute_sql(sql).expect("ad-hoc SQL executes");
    assert_eq!(report.sql.as_deref(), Some(sql));
    assert_eq!(report.query, "sql-group-by");
    assert!((0.0..=1.0).contains(&report.freshness_rate));
    assert!(report.result_rows >= 1);
    assert!(report.bytes_scanned > 0);
    // A malformed query mid-stream is a typed error and leaves ingest alive.
    assert!(system
        .execute_sql("SELECT SUM(ghost) FROM orderline")
        .is_err());
    assert!(system.oltp_ingest_running());
    // More ingest, another ad-hoc query: a join this time, still live.
    let join_sql = "SELECT SUM(ol_amount) FROM orderline JOIN item ON ol_i_id = i_id \
                    WHERE i_price >= 1";
    let join_report = system.execute_sql(join_sql).expect("ad-hoc join executes");
    assert_eq!(join_report.query, "sql-join");
    assert!((0.0..=1.0).contains(&join_report.freshness_rate));
    let pool = system.stop_oltp_ingest();
    assert!(pool.committed() >= 20);
}

#[test]
fn per_query_throughput_comes_from_real_commit_counters() {
    let system = tiny_system_with_schedule(Schedule::Adaptive(
        SchedulerPolicy::adaptive_non_isolated(0.5),
    ));
    let workload = MixedWorkload::figure5(2, 0);
    let options = ConcurrentOptions {
        pacing_commits: 10,
        max_pacing_wait: Duration::from_secs(60),
    };
    let report = run_mixed_workload_concurrent(&system, &workload, &options).unwrap();

    for q in report.sequences.iter().flat_map(|s| &s.queries) {
        assert!(
            q.oltp_tps_measured,
            "query {} must carry measured throughput",
            q.query
        );
        assert!(q.oltp_tps > 0.0);
    }
    // The pool's counts flow into the report, not the modelled constant.
    let stats = system.txn_driver().stats();
    assert_eq!(report.transactions_committed, stats.committed());
    assert_eq!(report.transactions_aborted, stats.aborted());
    assert!(!system.oltp_ingest_running(), "pool stopped after the run");
}

#[test]
fn no_wait_aborts_under_contention_are_counted() {
    let system = tiny_system_with_schedule(Schedule::Adaptive(
        SchedulerPolicy::adaptive_non_isolated(0.5),
    ));
    assert!(system.start_oltp_ingest() > 0);

    // Hold a NO-WAIT lock on a hot district record: every ingest worker that
    // draws this district must abort, and the abort must be counted live.
    // Acquiring the lock itself races the ingest workers, so retry our own
    // NO-WAIT conflicts until we win it.
    let oltp = Arc::clone(system.rde().oltp());
    let deadline = Instant::now() + Duration::from_secs(60);
    let txn = loop {
        let mut txn = oltp.begin();
        match txn.read_for_update("district", keys::district(1, 1), 5) {
            Ok(_) => break txn,
            Err(_) => {
                assert!(
                    Instant::now() < deadline,
                    "could not win the district lock within 60s"
                );
                drop(txn);
                std::thread::yield_now();
            }
        }
    };
    while system.oltp_live_counts().aborted == 0 {
        assert!(
            Instant::now() < deadline,
            "no NO-WAIT aborts observed within 60s"
        );
        std::thread::yield_now();
    }
    txn.abort();

    let pool = system.stop_oltp_ingest();
    assert!(pool.aborted() > 0, "aborts must not be silently lost");
    assert_eq!(
        pool.aborted(),
        system.txn_driver().stats().aborted(),
        "pool counters must agree with the driver's statistics"
    );
}

#[test]
fn caller_started_pool_is_left_running_and_accounted_by_delta() {
    let system = tiny_system_with_schedule(Schedule::Adaptive(
        SchedulerPolicy::adaptive_non_isolated(0.5),
    ));
    assert!(system.start_oltp_ingest() > 0);
    // Let pre-workload traffic accumulate so a whole-lifetime total would be
    // visibly wrong.
    let deadline = Instant::now() + Duration::from_secs(60);
    while system.oltp_live_counts().committed < 20 {
        assert!(
            Instant::now() < deadline,
            "no pre-workload commits within 60s"
        );
        std::thread::sleep(Duration::from_millis(1));
    }

    let report = run_mixed_workload_concurrent(
        &system,
        &MixedWorkload::figure5(1, 0),
        &ConcurrentOptions {
            pacing_commits: 5,
            max_pacing_wait: Duration::from_secs(60),
        },
    )
    .unwrap();

    assert!(
        system.oltp_ingest_running(),
        "a pool the caller started must survive the workload"
    );
    let pool = system.stop_oltp_ingest();
    assert!(
        report.transactions_committed < pool.committed(),
        "the report must cover only the workload window, not the pool's lifetime"
    );
    assert!(report.transactions_committed > 0);
}

#[test]
fn sequential_mode_remains_bit_for_bit_deterministic() {
    let run = || {
        let system = tiny_system_with_schedule(Schedule::Adaptive(
            SchedulerPolicy::adaptive_non_isolated(0.5),
        ));
        run_mixed_workload(&system, &MixedWorkload::figure5(3, 2)).unwrap()
    };
    let first = run();
    let second = run();
    assert_eq!(first, second, "sequential runs must be reproducible");
    // Sequential mode keeps the modelled throughput untouched.
    assert!(first
        .sequences
        .iter()
        .flat_map(|s| &s.queries)
        .all(|q| !q.oltp_tps_measured));
}
