//! Per-instance and per-column statistics maintained by the storage manager.
//!
//! The paper's SM "maintains instance statistics per column, which are the
//! number of records at the time of switch, a flag indicating if the column
//! contains updated tuples and the epoch number" (§3.2). These statistics are
//! what the RDE engine reads to compute fresh-data amounts for the scheduler
//! without touching the data itself.

use crate::Epoch;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Statistics of one column within one instance.
#[derive(Debug, Default)]
pub struct ColumnStats {
    /// Rows present in the column at the time of the last instance switch.
    rows_at_switch: AtomicU64,
    /// Whether the column has received updates since its update flag was cleared.
    updated: AtomicBool,
    /// Epoch of the last switch that observed this column.
    epoch: AtomicU64,
}

impl ColumnStats {
    /// New statistics with all counters at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record the state observed at an instance switch.
    pub fn record_switch(&self, rows: u64, epoch: Epoch) {
        self.rows_at_switch.store(rows, Ordering::Release);
        self.epoch.store(epoch, Ordering::Release);
    }

    /// Rows present at the last switch.
    pub fn rows_at_switch(&self) -> u64 {
        self.rows_at_switch.load(Ordering::Acquire)
    }

    /// Epoch recorded at the last switch.
    pub fn epoch(&self) -> Epoch {
        self.epoch.load(Ordering::Acquire)
    }

    /// Mark the column as containing updated tuples.
    pub fn mark_updated(&self) {
        self.updated.store(true, Ordering::Release);
    }

    /// Whether the column contains updated tuples since the flag was cleared.
    pub fn is_updated(&self) -> bool {
        self.updated.load(Ordering::Acquire)
    }

    /// Clear the updated flag (after synchronisation / ETL).
    pub fn clear_updated(&self) {
        self.updated.store(false, Ordering::Release);
    }
}

/// Aggregated statistics of one table instance, exposed to the RDE engine and
/// the scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct InstanceStats {
    /// Rows visible in the instance.
    pub visible_rows: u64,
    /// Rows inserted since the last switch.
    pub inserted_since_switch: u64,
    /// Records updated since the last synchronisation against the twin.
    pub updated_since_sync: u64,
    /// Records updated or inserted since the last ETL to the OLAP instance.
    pub fresh_vs_olap: u64,
    /// Epoch of the instance (incremented at every switch).
    pub epoch: Epoch,
}

impl InstanceStats {
    /// Total fresh records (inserted + updated) relative to the twin instance.
    pub fn fresh_vs_twin(&self) -> u64 {
        self.inserted_since_switch + self.updated_since_sync
    }
}

/// Hierarchical update-presence flag (schema → relation → column) used by the
/// RDE engine to skip untouched tables cheaply during synchronisation (§3.4).
#[derive(Debug, Default)]
pub struct UpdatePresence {
    any: AtomicBool,
}

impl UpdatePresence {
    /// New flag, initially clear.
    pub fn new() -> Self {
        Self::default()
    }

    /// Mark that some update happened below this level.
    pub fn mark(&self) {
        self.any.store(true, Ordering::Release);
    }

    /// Whether any update happened below this level.
    pub fn is_set(&self) -> bool {
        self.any.load(Ordering::Acquire)
    }

    /// Clear the flag.
    pub fn clear(&self) {
        self.any.store(false, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn column_stats_record_switch_and_updates() {
        let s = ColumnStats::new();
        assert_eq!(s.rows_at_switch(), 0);
        assert!(!s.is_updated());
        s.record_switch(42, 3);
        s.mark_updated();
        assert_eq!(s.rows_at_switch(), 42);
        assert_eq!(s.epoch(), 3);
        assert!(s.is_updated());
        s.clear_updated();
        assert!(!s.is_updated());
    }

    #[test]
    fn instance_stats_fresh_vs_twin_sums_inserts_and_updates() {
        let s = InstanceStats {
            visible_rows: 100,
            inserted_since_switch: 7,
            updated_since_sync: 5,
            fresh_vs_olap: 20,
            epoch: 2,
        };
        assert_eq!(s.fresh_vs_twin(), 12);
    }

    #[test]
    fn update_presence_flag_toggles() {
        let f = UpdatePresence::new();
        assert!(!f.is_set());
        f.mark();
        assert!(f.is_set());
        f.clear();
        assert!(!f.is_set());
    }
}
