//! Figure 3(a) — sensitivity of the co-located state S1.
//!
//! Starting from full isolation, the engines trade CPUs: the x-axis is the
//! number of CPUs interchanged between the sockets. For every configuration a
//! batch of 16 CH-Q6 queries runs over the freshest snapshot, and the plot
//! reports average query response time, OLTP throughput without OLAP (striped
//! bars in the paper) and OLTP throughput with concurrent OLAP (filled bars).
//!
//! `cargo run --release -p htap-bench --bin fig3a_s1_sensitivity`

use htap_bench::{fmt_mtps, fmt_secs, Harness, HarnessArgs};
use htap_chbench::ch_q6;
use htap_core::ExperimentTable;
use htap_rde::AccessMethod;
use htap_sim::SocketId;

const QUERIES: usize = 16;

fn main() {
    let args = HarnessArgs::parse();
    let harness = Harness::two_socket(&args);
    let plan = ch_q6();
    println!(
        "Figure 3(a): S1 sensitivity, {} rows loaded, CH-Q6 x{QUERIES} per point",
        harness.rows_loaded
    );

    let mut table = ExperimentTable::new(
        "Figure 3(a) — OLTP/OLAP performance at state S1 vs CPUs interchanged",
        &[
            "cpus_interchanged",
            "oltp_only_mtps",
            "oltp_with_olap_mtps",
            "olap_query_resp_s",
        ],
    );

    for (step, traded) in [0usize, 1, 2, 4, 6, 8, 10, 12, 14].into_iter().enumerate() {
        // Fresh transactional work before each configuration.
        harness.ingest(300, 4, step as u64);
        // Trade `traded` CPUs: OLTP gives up cores on its socket and receives
        // the same number on the OLAP socket.
        let report = harness
            .rde
            .migrate_state_s1_with(&[(SocketId(0), 14 - traded), (SocketId(1), traded)]);
        assert_eq!(report.oltp_cores, 14);

        let sources = harness
            .rde
            .sources_for(&["orderline"], AccessMethod::OltpSnapshot);
        let txn = harness.rde.txn_work();

        // Average response time of the 16-query batch.
        let mut total = 0.0;
        let mut bytes = std::collections::BTreeMap::new();
        for _ in 0..QUERIES {
            let exec = harness
                .rde
                .olap()
                .run_query(&plan, &sources, Some(&txn))
                .expect("CH plan matches the scheduled sources");
            total += exec.modeled.total;
            for (&s, &b) in &exec.output.work.bytes_per_socket {
                *bytes.entry(s).or_insert(0) += b;
            }
        }
        let avg_query = total / QUERIES as f64;

        let oltp_only = harness.rde.modeled_oltp_throughput_idle();
        let oltp_with_olap = harness
            .rde
            .modeled_oltp_throughput(&harness.rde.olap_traffic_for(&bytes));

        table.push_row(vec![
            traded.to_string(),
            fmt_mtps(oltp_only),
            fmt_mtps(oltp_with_olap),
            fmt_secs(avg_query),
        ]);
    }

    if args.csv {
        print!("{}", table.to_csv());
    } else {
        print!("{}", table.render());
    }
    println!();
    println!(
        "Expected shape (paper): OLTP-only throughput drops up to ~37% as CPUs spread across\n\
         sockets; with concurrent OLAP the drop reaches ~55%. OLAP response time improves until\n\
         about 4 traded CPUs and then flattens (the data socket's bandwidth saturates)."
    );
}
