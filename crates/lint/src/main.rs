//! `htap-lint` CLI.
//!
//! ```text
//! htap-lint --workspace [--root DIR] [--unsafe-inventory PATH]
//! htap-lint FILE.rs [FILE.rs ...]
//! ```
//!
//! Exit code 0 when clean, 1 on any diagnostic, 2 on usage/IO errors.
//! Diagnostics print as `file:line: [L3/no-panic] message`, one per line.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut workspace = false;
    let mut root = PathBuf::from(".");
    let mut inventory_path: Option<PathBuf> = None;
    let mut files: Vec<PathBuf> = Vec::new();

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--workspace" => workspace = true,
            "--root" => match it.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => return usage("--root needs a directory"),
            },
            "--unsafe-inventory" => match it.next() {
                Some(p) => inventory_path = Some(PathBuf::from(p)),
                None => return usage("--unsafe-inventory needs a path"),
            },
            "--help" | "-h" => {
                println!(
                    "htap-lint: workspace determinism/concurrency static analysis\n\n\
                     usage: htap-lint --workspace [--root DIR] [--unsafe-inventory PATH]\n\
                     \u{20}      htap-lint FILE.rs [FILE.rs ...]\n\n\
                     rules: L1 unordered-container, L2 undocumented-unsafe, L3 no-panic,\n\
                     \u{20}      L4 lock-order, L5 nondeterministic-source\n\
                     suppress with: // lint:allow(<rule>): <justification>"
                );
                return ExitCode::SUCCESS;
            }
            flag if flag.starts_with("--") => {
                return usage(&format!("unknown flag {flag}"));
            }
            file => files.push(PathBuf::from(file)),
        }
    }
    if !workspace && files.is_empty() {
        return usage("pass --workspace or at least one file");
    }

    if workspace {
        match htap_lint::discover(&root) {
            Ok(found) => files.extend(found),
            Err(e) => {
                eprintln!("htap-lint: cannot walk {}: {e}", root.display());
                return ExitCode::from(2);
            }
        }
    }

    let mut sources = Vec::with_capacity(files.len());
    for file in &files {
        match std::fs::read_to_string(file) {
            Ok(src) => {
                // Report paths relative to the root for stable diagnostics.
                let rel = file
                    .strip_prefix(&root)
                    .unwrap_or(file)
                    .to_string_lossy()
                    .into_owned();
                sources.push((rel, src));
            }
            Err(e) => {
                eprintln!("htap-lint: cannot read {}: {e}", file.display());
                return ExitCode::from(2);
            }
        }
    }

    let report = htap_lint::lint_files(&sources);

    if let Some(path) = inventory_path {
        let json = htap_lint::unsafe_inventory_json(&report.unsafe_sites);
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("htap-lint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    for diag in &report.diagnostics {
        println!("{diag}");
    }
    let documented = report
        .unsafe_sites
        .iter()
        .filter(|s| s.safety.is_some())
        .count();
    eprintln!(
        "htap-lint: {} files, {} unsafe sites ({} documented), {} diagnostic{}",
        report.files,
        report.unsafe_sites.len(),
        documented,
        report.diagnostics.len(),
        if report.diagnostics.len() == 1 {
            ""
        } else {
            "s"
        }
    );
    if report.diagnostics.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn usage(err: &str) -> ExitCode {
    eprintln!("htap-lint: {err}; see --help");
    ExitCode::from(2)
}
