//! A miniature version of the paper's Figure-5 experiment: the {Q1, Q6, Q19}
//! mix executed repeatedly while NewOrder transactions keep arriving, under a
//! static schedule (always S3-IS) and under the adaptive scheduler. The
//! adaptive run starts identical, pays one ETL when the fresh delta has grown
//! enough, and from then on every sequence is faster.
//!
//! Run with: `cargo run --example adaptive_vs_static --release`

use adaptive_htap::core::{run_mixed_workload, MixedWorkload, SchedulerPolicy};
use adaptive_htap::{HtapConfig, HtapSystem, Schedule, SystemState};

fn run(label: &str, schedule: Schedule, sequences: usize) -> Result<Vec<f64>, String> {
    let system = HtapSystem::build(HtapConfig::small().with_schedule(schedule))?;
    let workload = MixedWorkload::figure5(sequences, 40);
    let report = run_mixed_workload(&system, &workload).expect("CH workload matches the CH schema");
    println!(
        "{label:<14} total={:.3}s mean OLTP={:.2} MTPS etls={}",
        report.total_query_time(),
        report.mean_oltp_mtps(),
        report.etl_count()
    );
    Ok(report.sequence_times())
}

fn main() -> Result<(), String> {
    let sequences = 12;
    let static_times = run(
        "static S3-IS",
        Schedule::Static(SystemState::S3HybridIsolated),
        sequences,
    )?;
    let adaptive_times = run(
        "adaptive",
        Schedule::Adaptive(SchedulerPolicy::adaptive_isolated(0.5)),
        sequences,
    )?;

    println!("\nsequence   static-S3-IS   adaptive   gain");
    for (i, (s, a)) in static_times.iter().zip(&adaptive_times).enumerate() {
        println!(
            "{i:>8}   {s:>12.4}   {a:>8.4}   {:>5.1}%",
            (s - a) / s * 100.0
        );
    }
    let total_static: f64 = static_times.iter().sum();
    let total_adaptive: f64 = adaptive_times.iter().sum();
    println!(
        "\ncumulative gain over {sequences} sequences: {:.1}%",
        (total_static - total_adaptive) / total_static * 100.0
    );
    Ok(())
}
