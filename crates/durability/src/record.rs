//! WAL record format: typed commit records with length + CRC32 framing.
//!
//! File layout:
//!
//! ```text
//! [magic u64 LE = "HTAPWAL1"] [version u32 LE] [base_lsn u64 LE]   header
//! [len u32 LE] [crc32 u32 LE] [body: len bytes]                    record 0  (lsn = base_lsn)
//! [len u32 LE] [crc32 u32 LE] [body: len bytes]                    record 1  (lsn = base_lsn + 1)
//! ...
//! ```
//!
//! A record's LSN is implicit in its position. The CRC covers the body only;
//! a record whose frame is incomplete (torn write at the tail) or whose CRC
//! mismatches (bit rot) ends the valid prefix — it and everything after it
//! is discarded on recovery, which is exactly transaction atomicity: a
//! commit whose record never became fully durable never happened.
//!
//! Body layout: `txn_id u64, commit_ts u64, op_count u32, ops...`; each op
//! is a tag byte (1 = insert, 2 = update) followed by its fields. Strings
//! are `len u32 + UTF-8 bytes`; values are a type tag byte followed by the
//! fixed-width little-endian payload (`f64` via `to_bits`) or a string.
//! Decoding is total: every read is bounds-checked and malformed input ends
//! the valid prefix instead of panicking.

use crate::error::DurabilityError;
use htap_storage::Value;

/// Log sequence number: position of a record in the logical WAL.
pub type Lsn = u64;

/// Magic bytes identifying a WAL file.
pub const WAL_MAGIC: u64 = u64::from_le_bytes(*b"HTAPWAL1");
/// WAL format version.
pub const WAL_VERSION: u32 = 1;
/// Byte length of the WAL file header.
pub const WAL_HEADER_LEN: usize = 8 + 4 + 8;
/// Upper bound on one record body; larger frames are treated as corruption.
const MAX_RECORD_LEN: u32 = 64 << 20;

// ---------------------------------------------------------------------------
// CRC32 (IEEE), table generated at compile time — no external crates.
// ---------------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

/// CRC32 (IEEE 802.3) of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in data {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

// ---------------------------------------------------------------------------
// Typed operations
// ---------------------------------------------------------------------------

/// One logged mutation within a committed transaction.
#[derive(Debug, Clone, PartialEq)]
pub enum WalOp {
    /// Insert of a new record.
    Insert {
        /// Relation name.
        table: String,
        /// Primary key.
        key: u64,
        /// Full row of values.
        values: Vec<Value>,
    },
    /// Update of one attribute of an existing record.
    Update {
        /// Relation name.
        table: String,
        /// Primary key.
        key: u64,
        /// Column index.
        column: u32,
        /// New value.
        value: Value,
    },
}

/// One committed transaction's WAL record.
#[derive(Debug, Clone, PartialEq)]
pub struct WalRecord {
    /// Transaction identifier (diagnostic only; replay is positional).
    pub txn_id: u64,
    /// Commit timestamp assigned by the transaction manager.
    pub commit_ts: u64,
    /// The transaction's mutations, in apply order.
    pub ops: Vec<WalOp>,
}

const TAG_INSERT: u8 = 1;
const TAG_UPDATE: u8 = 2;

const VAL_I64: u8 = 1;
const VAL_F64: u8 = 2;
const VAL_I32: u8 = 3;
const VAL_STR: u8 = 4;

fn put_str(buf: &mut Vec<u8>, s: &str) {
    buf.extend_from_slice(&(s.len() as u32).to_le_bytes());
    buf.extend_from_slice(s.as_bytes());
}

fn put_value(buf: &mut Vec<u8>, v: &Value) {
    match v {
        Value::I64(x) => {
            buf.push(VAL_I64);
            buf.extend_from_slice(&x.to_le_bytes());
        }
        Value::F64(x) => {
            buf.push(VAL_F64);
            buf.extend_from_slice(&x.to_bits().to_le_bytes());
        }
        Value::I32(x) => {
            buf.push(VAL_I32);
            buf.extend_from_slice(&x.to_le_bytes());
        }
        Value::Str(s) => {
            buf.push(VAL_STR);
            put_str(buf, s);
        }
    }
}

impl WalRecord {
    /// Append the framed encoding of this record to `buf`.
    pub fn encode_into(&self, buf: &mut Vec<u8>) {
        let mut body = Vec::with_capacity(64);
        body.extend_from_slice(&self.txn_id.to_le_bytes());
        body.extend_from_slice(&self.commit_ts.to_le_bytes());
        body.extend_from_slice(&(self.ops.len() as u32).to_le_bytes());
        for op in &self.ops {
            match op {
                WalOp::Insert { table, key, values } => {
                    body.push(TAG_INSERT);
                    put_str(&mut body, table);
                    body.extend_from_slice(&key.to_le_bytes());
                    body.extend_from_slice(&(values.len() as u32).to_le_bytes());
                    for v in values {
                        put_value(&mut body, v);
                    }
                }
                WalOp::Update {
                    table,
                    key,
                    column,
                    value,
                } => {
                    body.push(TAG_UPDATE);
                    put_str(&mut body, table);
                    body.extend_from_slice(&key.to_le_bytes());
                    body.extend_from_slice(&column.to_le_bytes());
                    put_value(&mut body, value);
                }
            }
        }
        buf.extend_from_slice(&(body.len() as u32).to_le_bytes());
        buf.extend_from_slice(&crc32(&body).to_le_bytes());
        buf.extend_from_slice(&body);
    }
}

// ---------------------------------------------------------------------------
// Total (panic-free) decoding
// ---------------------------------------------------------------------------

/// Bounds-checked little-endian reader over a byte slice.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let slice = self.bytes.get(self.pos..end)?;
        self.pos = end;
        Some(slice)
    }

    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|s| s[0])
    }

    fn u32(&mut self) -> Option<u32> {
        self.take(4).map(|s| {
            let mut b = [0u8; 4];
            b.copy_from_slice(s);
            u32::from_le_bytes(b)
        })
    }

    fn u64(&mut self) -> Option<u64> {
        self.take(8).map(|s| {
            let mut b = [0u8; 8];
            b.copy_from_slice(s);
            u64::from_le_bytes(b)
        })
    }

    fn str(&mut self) -> Option<String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).ok()
    }

    fn value(&mut self) -> Option<Value> {
        match self.u8()? {
            VAL_I64 => self.u64().map(|x| Value::I64(x as i64)),
            VAL_F64 => self.u64().map(|x| Value::F64(f64::from_bits(x))),
            VAL_I32 => self.u32().map(|x| Value::I32(x as i32)),
            VAL_STR => self.str().map(Value::Str),
            _ => None,
        }
    }
}

fn decode_body(body: &[u8]) -> Option<WalRecord> {
    let mut r = Reader::new(body);
    let txn_id = r.u64()?;
    let commit_ts = r.u64()?;
    let op_count = r.u32()? as usize;
    // An op is at least a tag + table length; bound op_count by what could
    // possibly fit so a corrupt count cannot cause a huge allocation.
    if op_count > body.len() {
        return None;
    }
    let mut ops = Vec::with_capacity(op_count);
    for _ in 0..op_count {
        let op = match r.u8()? {
            TAG_INSERT => {
                let table = r.str()?;
                let key = r.u64()?;
                let value_count = r.u32()? as usize;
                if value_count > body.len() {
                    return None;
                }
                let mut values = Vec::with_capacity(value_count);
                for _ in 0..value_count {
                    values.push(r.value()?);
                }
                WalOp::Insert { table, key, values }
            }
            TAG_UPDATE => {
                let table = r.str()?;
                let key = r.u64()?;
                let column = r.u32()?;
                let value = r.value()?;
                WalOp::Update {
                    table,
                    key,
                    column,
                    value,
                }
            }
            _ => return None,
        };
        ops.push(op);
    }
    // Trailing garbage inside a CRC-valid body would mean an encoder bug; be
    // strict and reject it.
    if r.pos != body.len() {
        return None;
    }
    Some(WalRecord {
        txn_id,
        commit_ts,
        ops,
    })
}

/// The decoded content of a WAL file: its base LSN, the records of the valid
/// prefix, and where that prefix ends in the byte stream.
#[derive(Debug, Clone, PartialEq)]
pub struct WalSegment {
    /// LSN of the first record in the file.
    pub base_lsn: Lsn,
    /// Records of the valid prefix, in LSN order.
    pub records: Vec<WalRecord>,
    /// Byte length of the valid prefix (header + intact records). Anything
    /// past this offset is a torn or corrupt tail.
    pub valid_len: usize,
}

impl WalSegment {
    /// One past the LSN of the last intact record (the LSN the next append
    /// would receive). Exclusive bounds avoid `-1` sentinels everywhere.
    pub fn end_lsn(&self) -> Lsn {
        self.base_lsn + self.records.len() as u64
    }

    /// `(lsn, record)` pairs of the valid prefix.
    pub fn numbered(&self) -> impl Iterator<Item = (Lsn, &WalRecord)> {
        let base = self.base_lsn;
        self.records
            .iter()
            .enumerate()
            .map(move |(i, r)| (base + i as u64, r))
    }
}

/// Build the header bytes for an empty WAL starting at `base_lsn`.
pub fn encode_wal_header(base_lsn: Lsn) -> Vec<u8> {
    let mut buf = Vec::with_capacity(WAL_HEADER_LEN);
    buf.extend_from_slice(&WAL_MAGIC.to_le_bytes());
    buf.extend_from_slice(&WAL_VERSION.to_le_bytes());
    buf.extend_from_slice(&base_lsn.to_le_bytes());
    buf
}

/// Decode a WAL file. Fails only if the header itself is missing or invalid;
/// a torn or corrupt record tail is expected after a crash and simply ends
/// the valid prefix.
pub fn decode_wal(bytes: &[u8]) -> Result<WalSegment, DurabilityError> {
    let mut r = Reader::new(bytes);
    let magic = r
        .u64()
        .ok_or_else(|| DurabilityError::corrupt("wal header truncated"))?;
    if magic != WAL_MAGIC {
        return Err(DurabilityError::corrupt("wal magic mismatch"));
    }
    let version = r
        .u32()
        .ok_or_else(|| DurabilityError::corrupt("wal header truncated"))?;
    if version != WAL_VERSION {
        return Err(DurabilityError::corrupt(format!(
            "unsupported wal version {version}"
        )));
    }
    let base_lsn = r
        .u64()
        .ok_or_else(|| DurabilityError::corrupt("wal header truncated"))?;

    let mut records = Vec::new();
    let mut valid_len = WAL_HEADER_LEN;
    loop {
        let frame_start = r.pos;
        let Some(len) = r.u32() else { break };
        if len > MAX_RECORD_LEN {
            break;
        }
        let Some(crc) = r.u32() else { break };
        let Some(body) = r.take(len as usize) else {
            break;
        };
        if crc32(body) != crc {
            break;
        }
        let Some(record) = decode_body(body) else {
            break;
        };
        records.push(record);
        valid_len = frame_start + 8 + len as usize;
    }
    Ok(WalSegment {
        base_lsn,
        records,
        valid_len,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(txn_id: u64) -> WalRecord {
        WalRecord {
            txn_id,
            commit_ts: txn_id * 10,
            ops: vec![
                WalOp::Insert {
                    table: "orders".into(),
                    key: txn_id,
                    values: vec![
                        Value::I64(txn_id as i64),
                        Value::F64(1.5),
                        Value::I32(-7),
                        Value::Str("pending".into()),
                    ],
                },
                WalOp::Update {
                    table: "district".into(),
                    key: 3,
                    column: 2,
                    value: Value::F64(99.25),
                },
            ],
        }
    }

    fn file_with(records: &[WalRecord], base_lsn: Lsn) -> Vec<u8> {
        let mut bytes = encode_wal_header(base_lsn);
        for r in records {
            r.encode_into(&mut bytes);
        }
        bytes
    }

    #[test]
    fn round_trip_preserves_records() {
        let records = vec![sample(1), sample(2), sample(3)];
        let bytes = file_with(&records, 5);
        let seg = decode_wal(&bytes).unwrap();
        assert_eq!(seg.base_lsn, 5);
        assert_eq!(seg.records, records);
        assert_eq!(seg.valid_len, bytes.len());
        assert_eq!(seg.end_lsn(), 8);
        let numbered: Vec<_> = seg.numbered().map(|(lsn, _)| lsn).collect();
        assert_eq!(numbered, vec![5, 6, 7]);
    }

    #[test]
    fn torn_tail_ends_the_valid_prefix() {
        let records = vec![sample(1), sample(2)];
        let full = file_with(&records, 0);
        let one = file_with(&records[..1], 0);
        // Cut anywhere strictly inside the second record: only record 1 survives.
        for cut in one.len() + 1..full.len() {
            let seg = decode_wal(&full[..cut]).unwrap();
            assert_eq!(seg.records.len(), 1, "cut at {cut}");
            assert_eq!(seg.valid_len, one.len());
        }
    }

    #[test]
    fn bit_flip_is_caught_by_crc() {
        let records = vec![sample(1), sample(2)];
        let clean = file_with(&records, 0);
        let one_len = file_with(&records[..1], 0).len();
        // Flip a bit in the second record's body.
        let mut bytes = clean.clone();
        bytes[one_len + 12] ^= 0x10;
        let seg = decode_wal(&bytes).unwrap();
        assert_eq!(seg.records.len(), 1);
        assert_eq!(seg.records[0], records[0]);
    }

    #[test]
    fn header_corruption_is_an_error() {
        assert!(decode_wal(b"short").is_err());
        let mut bytes = file_with(&[sample(1)], 0);
        bytes[0] ^= 0xFF;
        assert!(decode_wal(&bytes).is_err());
    }

    #[test]
    fn empty_wal_decodes_to_no_records() {
        let bytes = encode_wal_header(42);
        let seg = decode_wal(&bytes).unwrap();
        assert_eq!(seg.base_lsn, 42);
        assert!(seg.records.is_empty());
        assert_eq!(seg.valid_len, WAL_HEADER_LEN);
    }

    #[test]
    fn crc32_known_vector() {
        // Standard IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn f64_round_trips_bit_exactly() {
        for v in [0.0, -0.0, 1.0 / 3.0, f64::MIN_POSITIVE, 1e308] {
            let rec = WalRecord {
                txn_id: 1,
                commit_ts: 2,
                ops: vec![WalOp::Update {
                    table: "t".into(),
                    key: 0,
                    column: 0,
                    value: Value::F64(v),
                }],
            };
            let mut bytes = encode_wal_header(0);
            rec.encode_into(&mut bytes);
            let seg = decode_wal(&bytes).unwrap();
            match &seg.records[0].ops[0] {
                WalOp::Update {
                    value: Value::F64(got),
                    ..
                } => assert_eq!(got.to_bits(), v.to_bits()),
                other => panic!("unexpected op {other:?}"),
            }
        }
    }
}
