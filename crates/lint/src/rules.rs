//! The domain rules.
//!
//! | id | name | scope | invariant |
//! |----|------|-------|-----------|
//! | L1 | `unordered-container` | `crates/olap/src`, `crates/sql/src` | no `HashMap`/`HashSet` in result-producing code: iteration order is nondeterministic, result ordering must come from morsel order or an explicit sort |
//! | L2 | `undocumented-unsafe` | whole workspace | every `unsafe` carries a `// SAFETY:` (or `/// # Safety`) comment |
//! | L3 | `no-panic` | `crates/{olap,sql,storage,durability,obs}/src` | no `.unwrap()` / `.expect()` / `panic!` / `todo!` / `unimplemented!` on the query, recovery or tracing path — errors are typed (`OlapError`, `SqlError`, `DurabilityError`) and tracing must never take a worker down |
//! | L4 | `lock-order` | whole workspace | the static graph of nested `.lock()`/`.read()`/`.write()` acquisitions is acyclic |
//! | L5 | `nondeterministic-source` | `exec.rs`, `kernels.rs`, `hashtable.rs`, `program.rs` | no wall clock (`Instant`, `SystemTime`) or RNG construction inside deterministic execution paths |
//!
//! Test code (`#[cfg(test)]` modules, `#[test]` functions, files under
//! `tests/`, `examples/`, `benches/`) is exempt from L1/L3/L5 — tests may
//! unwrap and may iterate however they like — but not from L2: an
//! undocumented `unsafe` is a defect wherever it lives. L4 skips test code
//! because deliberate inversions are exactly what the shim's *runtime*
//! checker tests construct.

use crate::lexer::{Kind, Token};

/// A lint rule identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// L1: unordered container named in a result-producing crate.
    UnorderedContainer,
    /// L2: `unsafe` without a SAFETY comment.
    UndocumentedUnsafe,
    /// L3: panic-family call on the query path.
    NoPanic,
    /// L4: cycle in the static lock-order graph.
    LockOrder,
    /// L5: wall clock / RNG in a deterministic execution path.
    NondeterministicSource,
    /// A `lint:allow` entry without a justification.
    UnjustifiedAllow,
    /// A `lint:allow` entry that suppressed nothing.
    UnusedAllow,
}

impl Rule {
    /// Canonical kebab-case name (what `lint:allow(...)` takes).
    pub fn name(self) -> &'static str {
        match self {
            Rule::UnorderedContainer => "unordered-container",
            Rule::UndocumentedUnsafe => "undocumented-unsafe",
            Rule::NoPanic => "no-panic",
            Rule::LockOrder => "lock-order",
            Rule::NondeterministicSource => "nondeterministic-source",
            Rule::UnjustifiedAllow => "unjustified-allow",
            Rule::UnusedAllow => "unused-allow",
        }
    }

    /// Short id used in diagnostics (`L1`..`L5`; meta rules have none).
    pub fn id(self) -> &'static str {
        match self {
            Rule::UnorderedContainer => "L1",
            Rule::UndocumentedUnsafe => "L2",
            Rule::NoPanic => "L3",
            Rule::LockOrder => "L4",
            Rule::NondeterministicSource => "L5",
            Rule::UnjustifiedAllow | Rule::UnusedAllow => "allow",
        }
    }

    /// Parse a rule name or short id, case-insensitively.
    pub fn parse(text: &str) -> Option<Rule> {
        let lower = text.trim().to_ascii_lowercase();
        let all = [
            Rule::UnorderedContainer,
            Rule::UndocumentedUnsafe,
            Rule::NoPanic,
            Rule::LockOrder,
            Rule::NondeterministicSource,
        ];
        all.into_iter()
            .find(|r| lower == r.name() || lower == r.id().to_ascii_lowercase())
    }
}

/// One diagnostic: a rule violation at a file:line.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// The violated rule.
    pub rule: Rule,
    /// Human-readable explanation.
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}/{}] {}",
            self.file,
            self.line,
            self.rule.id(),
            self.rule.name(),
            self.message
        )
    }
}

/// One `unsafe` occurrence, for the machine-readable inventory.
#[derive(Debug, Clone)]
pub struct UnsafeSite {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line of the `unsafe` keyword.
    pub line: u32,
    /// What the keyword introduces: `block`, `fn`, `impl`, `trait`,
    /// `extern`, or `other`.
    pub kind: &'static str,
    /// The SAFETY comment text, when present.
    pub safety: Option<String>,
}

/// Indices of the non-comment tokens, the working set for code rules.
pub fn significant(tokens: &[Token]) -> Vec<usize> {
    (0..tokens.len())
        .filter(|&i| !tokens[i].is_comment())
        .collect()
}

/// Per-token mask: `true` where the token sits inside test-only code — a
/// `#[cfg(test)]` or `#[test]` item (module, function, impl, use, ...).
pub fn test_mask(tokens: &[Token], sig: &[usize]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut s = 0usize;
    let mut pending_test_attr = false;
    while s < sig.len() {
        let i = sig[s];
        // Attribute: #[...] — scan its bracket group.
        if tokens[i].is_punct('#') && s + 1 < sig.len() && tokens[sig[s + 1]].is_punct('[') {
            let (end_s, is_test) = scan_attr(tokens, sig, s + 1);
            pending_test_attr |= is_test;
            s = end_s + 1;
            continue;
        }
        if pending_test_attr && tokens[i].kind == Kind::Ident {
            // The attributed item: mark from here to its end (matching `}`
            // of its first body brace, or the terminating `;`).
            let end_s = item_end(tokens, sig, s);
            // Mark the whole span, comments included: a `lint:allow` or
            // SAFETY comment inside a test item belongs to test code.
            let hi = sig[end_s.min(sig.len() - 1)];
            for m in mask.iter_mut().take(hi + 1).skip(i) {
                *m = true;
            }
            pending_test_attr = false;
            s = end_s + 1;
            continue;
        }
        s += 1;
    }
    mask
}

/// Scan the attribute bracket group starting at `sig[open_s]` (the `[`).
/// Returns (index into `sig` of the closing `]`, whether it marks test code).
fn scan_attr(tokens: &[Token], sig: &[usize], open_s: usize) -> (usize, bool) {
    let mut depth = 0i32;
    let mut has_test = false;
    let mut has_not = false;
    let mut s = open_s;
    while s < sig.len() {
        let tok = &tokens[sig[s]];
        if tok.is_punct('[') {
            depth += 1;
        } else if tok.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                break;
            }
        } else if tok.is_ident("test") {
            has_test = true;
        } else if tok.is_ident("not") {
            has_not = true;
        }
        s += 1;
    }
    // `#[test]`, `#[cfg(test)]`, `#[cfg(any(test, ...))]` are test markers;
    // `#[cfg(not(test))]` is production code.
    (s, has_test && !has_not)
}

/// Index into `sig` of the last token of the item starting at `sig[start_s]`:
/// the `}` matching its first body brace, or the `;` that ends a braceless
/// item (`use`, `type`, ...).
fn item_end(tokens: &[Token], sig: &[usize], start_s: usize) -> usize {
    let mut s = start_s;
    // Find the body opening brace (outside parens: fn params carry no
    // braces) or a terminating semicolon.
    let mut paren = 0i32;
    while s < sig.len() {
        let tok = &tokens[sig[s]];
        if tok.is_punct('(') {
            paren += 1;
        } else if tok.is_punct(')') {
            paren -= 1;
        } else if tok.is_punct(';') && paren == 0 {
            return s;
        } else if tok.is_punct('{') && paren == 0 {
            break;
        }
        s += 1;
    }
    if s >= sig.len() {
        return sig.len() - 1;
    }
    // Match braces to the item's closing one.
    let mut depth = 0i32;
    while s < sig.len() {
        let tok = &tokens[sig[s]];
        if tok.is_punct('{') {
            depth += 1;
        } else if tok.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return s;
            }
        }
        s += 1;
    }
    sig.len() - 1
}

/// Lines covered by comments, with whether any comment on that line carries
/// a SAFETY marker, and the comment text.
pub struct CommentLines {
    covered: std::collections::BTreeMap<u32, String>,
}

impl CommentLines {
    /// Build from the token stream.
    pub fn new(tokens: &[Token]) -> Self {
        let mut covered = std::collections::BTreeMap::new();
        for tok in tokens.iter().filter(|t| t.is_comment()) {
            for line in tok.line..=tok.end_line {
                covered
                    .entry(line)
                    .and_modify(|t: &mut String| {
                        t.push('\n');
                        t.push_str(&tok.text);
                    })
                    .or_insert_with(|| tok.text.clone());
            }
        }
        CommentLines { covered }
    }

    fn is_comment_line(&self, line: u32) -> bool {
        self.covered.contains_key(&line)
    }

    fn safety_on(&self, line: u32) -> Option<String> {
        let text = self.covered.get(&line)?;
        if text.contains("SAFETY:") || text.contains("# Safety") {
            Some(
                text.lines()
                    .map(|l| {
                        l.trim_start()
                            .trim_start_matches('/')
                            .trim_start_matches('*')
                            .trim()
                    })
                    .filter(|l| !l.is_empty())
                    .collect::<Vec<_>>()
                    .join(" "),
            )
        } else {
            None
        }
    }

    /// The SAFETY comment justifying a statement that starts on
    /// `stmt_line` and contains `unsafe` on `unsafe_line`: on any line of
    /// the statement itself, or in the contiguous comment run directly
    /// above the statement.
    pub fn safety_for(&self, stmt_line: u32, unsafe_line: u32) -> Option<String> {
        for line in stmt_line..=unsafe_line {
            if let Some(text) = self.safety_on(line) {
                return Some(text);
            }
        }
        let mut line = stmt_line.saturating_sub(1);
        while line > 0 && self.is_comment_line(line) {
            if let Some(text) = self.safety_on(line) {
                return Some(text);
            }
            line -= 1;
        }
        None
    }
}

/// Scan for L1/L2/L3/L5 violations and collect the unsafe inventory.
///
/// `sig` is the significant-token index, `mask` the test mask over all
/// tokens. Scope flags say which rules apply to this file. Suppression and
/// allow bookkeeping happen in the caller.
pub struct ScanOutput {
    /// Raw (unsuppressed) diagnostics.
    pub raw: Vec<Diagnostic>,
    /// Every `unsafe` occurrence (test code included).
    pub unsafe_sites: Vec<UnsafeSite>,
}

/// Rule scopes for one file.
#[derive(Debug, Clone, Copy)]
pub struct Scope {
    /// L1 applies (crates/olap, crates/sql, non-test file).
    pub unordered: bool,
    /// L3 applies (crates/{olap,sql,storage}, non-test file).
    pub no_panic: bool,
    /// L5 applies (deterministic-path files).
    pub nondeterminism: bool,
}

const PANIC_MACROS: [&str; 3] = ["panic", "todo", "unimplemented"];
const NONDET_IDENTS: [&str; 5] = [
    "Instant",
    "SystemTime",
    "thread_rng",
    "from_entropy",
    "StdRng",
];

/// Run the per-file token scans.
pub fn scan(
    file: &str,
    tokens: &[Token],
    sig: &[usize],
    mask: &[bool],
    scope: Scope,
) -> ScanOutput {
    let comments = CommentLines::new(tokens);
    let mut raw = Vec::new();
    let mut unsafe_sites = Vec::new();
    // Line on which the current statement started (for SAFETY lookup).
    let mut stmt_line = tokens.first().map(|t| t.line).unwrap_or(1);
    let mut stmt_boundary = true;

    for (s, &i) in sig.iter().enumerate() {
        let tok = &tokens[i];
        if stmt_boundary {
            stmt_line = tok.line;
            stmt_boundary = false;
        }
        if tok.kind == Kind::Punct && (tok.is_punct(';') || tok.is_punct('{') || tok.is_punct('}'))
        {
            stmt_boundary = true;
        }
        if tok.kind != Kind::Ident {
            continue;
        }
        let in_test = mask[i];
        let prev = s.checked_sub(1).map(|p| &tokens[sig[p]]);
        let next = sig.get(s + 1).map(|&n| &tokens[n]);

        // L2 + inventory: every `unsafe`, test code included.
        if tok.text == "unsafe" {
            let kind = match next {
                Some(n) if n.is_punct('{') => "block",
                Some(n) if n.is_ident("fn") => "fn",
                Some(n) if n.is_ident("impl") => "impl",
                Some(n) if n.is_ident("trait") => "trait",
                Some(n) if n.is_ident("extern") => "extern",
                _ => "other",
            };
            let safety = comments.safety_for(stmt_line, tok.line);
            if safety.is_none() {
                raw.push(Diagnostic {
                    file: file.to_string(),
                    line: tok.line,
                    rule: Rule::UndocumentedUnsafe,
                    message: format!(
                        "`unsafe` {kind} without a `// SAFETY:` comment; state the invariant \
                         that makes it sound"
                    ),
                });
            }
            unsafe_sites.push(UnsafeSite {
                file: file.to_string(),
                line: tok.line,
                kind,
                safety,
            });
            continue;
        }
        if in_test {
            continue;
        }

        // L1: unordered containers in result-producing crates.
        if scope.unordered && (tok.text == "HashMap" || tok.text == "HashSet") {
            raw.push(Diagnostic {
                file: file.to_string(),
                line: tok.line,
                rule: Rule::UnorderedContainer,
                message: format!(
                    "`{}` in a result-producing crate: iteration order is nondeterministic \
                     and can leak into query output; derive ordering from morsel order, an \
                     explicit sort, or use BTreeMap/BTreeSet",
                    tok.text
                ),
            });
            continue;
        }

        // L3: panic family on the query path.
        if scope.no_panic {
            let method_recv = matches!(&prev, Some(p) if p.is_punct('.') || p.is_punct(':'));
            if (tok.text == "unwrap" || tok.text == "expect") && method_recv {
                raw.push(Diagnostic {
                    file: file.to_string(),
                    line: tok.line,
                    rule: Rule::NoPanic,
                    message: format!(
                        "`.{}()` on the query path can abort a worker mid-pipeline; \
                         propagate a typed OlapError/SqlError instead",
                        tok.text
                    ),
                });
                continue;
            }
            if PANIC_MACROS.contains(&tok.text.as_str())
                && matches!(&next, Some(n) if n.is_punct('!'))
            {
                raw.push(Diagnostic {
                    file: file.to_string(),
                    line: tok.line,
                    rule: Rule::NoPanic,
                    message: format!(
                        "`{}!` on the query path; return a typed error instead of \
                         crashing the worker",
                        tok.text
                    ),
                });
                continue;
            }
        }

        // L5: nondeterministic sources in deterministic execution paths.
        if scope.nondeterminism {
            // `rand` only as a crate path (`rand::`), not a local named rand
            // (`rand: u32` in a signature has a single colon).
            let next2 = sig.get(s + 2).map(|&n| &tokens[n]);
            let nondet = NONDET_IDENTS.contains(&tok.text.as_str())
                || (tok.text == "rand"
                    && matches!(&next, Some(n) if n.is_punct(':'))
                    && matches!(&next2, Some(n) if n.is_punct(':')));
            if nondet {
                raw.push(Diagnostic {
                    file: file.to_string(),
                    line: tok.line,
                    rule: Rule::NondeterministicSource,
                    message: format!(
                        "`{}` inside a deterministic execution path: results must be a pure \
                         function of committed data and plan; take timestamps/seeds at the \
                         boundary and pass them in",
                        tok.text
                    ),
                });
            }
        }
    }
    ScanOutput { raw, unsafe_sites }
}
