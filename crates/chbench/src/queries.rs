//! The analytical queries of the CH-benCHmark workload, expressed as plans of
//! the OLAP engine.
//!
//! The paper's evaluation (§5.3) uses CH-Q1, CH-Q6 and CH-Q19; this module
//! additionally implements Q3, Q4, Q12 and Q14 to widen the analytical mix
//! the adaptive scheduler is exercised with (different plan shapes touch
//! different relation sets, which stresses different freshness/cost
//! trade-offs).
//!
//! Adaptation rules, following the paper: date conditions use 100 %
//! selectivity (the worst case for join and group-by operators), `LIKE` and
//! other string conditions are removed because the engine's schema is
//! integer/float only (Q19's `LIKE` is dropped exactly as in the paper; Q3's
//! `c_state LIKE` becomes a balance predicate, Q14's `i_data LIKE 'PR%'`
//! becomes an `i_im_id` range). Composite TPC-C join keys are joined through
//! their integer encoding (see [`crate::schema::keys`]): e.g. `orderline`
//! matches `orders` via `(ol_w_id·100 + ol_d_id)·10^7 + ol_o_id = o_key`.

use crate::transactions::DELIVERY_DATE_BASE;
use htap_olap::{AggExpr, BuildSide, CmpOp, Predicate, QueryPlan, ScalarExpr, TopK};

/// The encoded `orders` key computed over `orderline` rows.
fn ol_order_key() -> ScalarExpr {
    (ScalarExpr::col("ol_w_id") * ScalarExpr::lit(100.0) + ScalarExpr::col("ol_d_id"))
        * ScalarExpr::lit(10_000_000.0)
        + ScalarExpr::col("ol_o_id")
}

/// The encoded `customer` key computed over `orders` rows.
fn o_customer_key() -> ScalarExpr {
    (ScalarExpr::col("o_w_id") * ScalarExpr::lit(100.0) + ScalarExpr::col("o_d_id"))
        * ScalarExpr::lit(100_000.0)
        + ScalarExpr::col("o_c_id")
}

/// Identifier of a CH-benCHmark analytical query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueryId {
    /// CH-Q1: scan–filter–group-by over `orderline`.
    Q1,
    /// CH-Q3: `orderline` ⋈ `orders` ⋈ `customer` chain join with revenue
    /// aggregation.
    Q3,
    /// CH-Q4: `orders` ⋈ `orderline` semijoin, grouped by `o_ol_cnt`, top-5
    /// groups by count.
    Q4,
    /// CH-Q6: scan–filter–reduce over `orderline`.
    Q6,
    /// CH-Q12: `orders` ⋈ `orderline`, grouped by `o_carrier_id`.
    Q12,
    /// CH-Q14: `orderline` ⋈ `item` promotion-revenue join.
    Q14,
    /// CH-Q19: `orderline` ⋈ `item` with aggregation.
    Q19,
}

impl QueryId {
    /// Build the plan for this query.
    pub fn plan(self) -> QueryPlan {
        match self {
            QueryId::Q1 => ch_q1(),
            QueryId::Q3 => ch_q3(),
            QueryId::Q4 => ch_q4(),
            QueryId::Q6 => ch_q6(),
            QueryId::Q12 => ch_q12(),
            QueryId::Q14 => ch_q14(),
            QueryId::Q19 => ch_q19(),
        }
    }

    /// Short label ("Q1", "Q3", ..., "Q19").
    pub fn label(self) -> &'static str {
        match self {
            QueryId::Q1 => "Q1",
            QueryId::Q3 => "Q3",
            QueryId::Q4 => "Q4",
            QueryId::Q6 => "Q6",
            QueryId::Q12 => "Q12",
            QueryId::Q14 => "Q14",
            QueryId::Q19 => "Q19",
        }
    }

    /// The query as SQL text. Planning this through the SQL frontend
    /// ([`htap_sql::plan`] against [`crate::catalog::catalog`]) produces a
    /// [`QueryPlan`] structurally identical to [`QueryId::plan`] — the
    /// differential suite (`tests/sql_differential.rs`) proves the two give
    /// bit-for-bit identical `QueryOutput`s at every worker count.
    pub fn sql(self) -> String {
        match self {
            QueryId::Q1 => "SELECT ol_number, SUM(ol_quantity), SUM(ol_amount), \
                 AVG(ol_quantity), AVG(ol_amount), COUNT(*) \
                 FROM orderline WHERE ol_delivery_d >= 0 \
                 GROUP BY ol_number ORDER BY ol_number"
                .into(),
            QueryId::Q3 => "SELECT SUM(ol_amount), COUNT(*) FROM orderline \
                 JOIN orders ON (ol_w_id * 100 + ol_d_id) * 10000000 + ol_o_id = o_key \
                 JOIN customer ON (o_w_id * 100 + o_d_id) * 100000 + o_c_id = c_key \
                 WHERE ol_delivery_d >= 0 AND o_entry_d >= 0 AND c_balance < 0"
                .into(),
            QueryId::Q4 => "SELECT o_ol_cnt, COUNT(*) FROM orders \
                 JOIN orderline ON o_key = (ol_w_id * 100 + ol_d_id) * 10000000 + ol_o_id \
                 WHERE o_entry_d >= 0 AND ol_amount >= 500 \
                 GROUP BY o_ol_cnt ORDER BY COUNT(*) DESC LIMIT 5"
                .into(),
            QueryId::Q6 => "SELECT SUM(ol_amount * ol_quantity) FROM orderline \
                 WHERE ol_delivery_d >= 0 AND ol_quantity >= 1"
                .into(),
            QueryId::Q12 => format!(
                "SELECT o_carrier_id, COUNT(*), SUM(o_ol_cnt) FROM orders \
                 JOIN orderline ON o_key = (ol_w_id * 100 + ol_d_id) * 10000000 + ol_o_id \
                 WHERE ol_delivery_d >= {DELIVERY_DATE_BASE} \
                 GROUP BY o_carrier_id ORDER BY o_carrier_id"
            ),
            QueryId::Q14 => "SELECT SUM(ol_amount), COUNT(*) FROM orderline \
                 JOIN item ON ol_i_id = i_id \
                 WHERE ol_delivery_d >= 0 AND i_data LIKE 'PR%'"
                .into(),
            QueryId::Q19 => "SELECT SUM(ol_amount) FROM orderline \
                 JOIN item ON ol_i_id = i_id \
                 WHERE ol_quantity >= 1 AND ol_quantity <= 10 AND i_price >= 1"
                .into(),
        }
    }

    /// Compile [`QueryId::sql`] through the SQL frontend. The result equals
    /// [`QueryId::plan`] structurally; this is the path `execute_sql` takes.
    pub fn sql_plan(self) -> Result<QueryPlan, htap_sql::SqlError> {
        htap_sql::plan(&self.sql(), &crate::catalog::catalog())
    }
}

/// CH-Q1 — pricing summary report: group order lines by `ol_number` and
/// report quantity/amount sums, averages and counts. Scan-filter-group-by;
/// the grouping and aggregation stress CPU caches (§5.3).
pub fn ch_q1() -> QueryPlan {
    QueryPlan::GroupByAggregate {
        table: "orderline".into(),
        // ol_delivery_d > some date: 100% selectivity per the paper's setup.
        filters: vec![Predicate::new("ol_delivery_d", CmpOp::Ge, 0.0)],
        group_by: vec!["ol_number".into()],
        aggregates: vec![
            AggExpr::Sum(ScalarExpr::col("ol_quantity")),
            AggExpr::Sum(ScalarExpr::col("ol_amount")),
            AggExpr::Avg(ScalarExpr::col("ol_quantity")),
            AggExpr::Avg(ScalarExpr::col("ol_amount")),
            AggExpr::Count,
        ],
    }
}

/// CH-Q3 — unshipped-order revenue: `orderline ⋈ orders ⋈ customer` through
/// the encoded composite keys. The three-table chain is the widest freshness
/// footprint in the mix — it reads fact *and* two dimensions that both
/// receive OLTP writes (NewOrder inserts orders, Payment/Delivery update
/// customers). The `c_state LIKE` condition becomes a balance predicate
/// (customers load with negative balances; deliveries push them positive, so
/// selectivity drifts as the transactional mix runs).
pub fn ch_q3() -> QueryPlan {
    QueryPlan::MultiJoinAggregate {
        fact: "orderline".into(),
        fact_key: ol_order_key(),
        // ol_delivery_d > date: 100% selectivity.
        fact_filters: vec![Predicate::new("ol_delivery_d", CmpOp::Ge, 0.0)],
        mid: BuildSide::new(
            "orders",
            ScalarExpr::col("o_key"),
            // o_entry_d < date: 100% selectivity.
            vec![Predicate::new("o_entry_d", CmpOp::Ge, 0.0)],
        ),
        mid_fk: o_customer_key(),
        far: BuildSide::new(
            "customer",
            ScalarExpr::col("c_key"),
            vec![Predicate::new("c_balance", CmpOp::Lt, 0.0)],
        ),
        aggregates: vec![AggExpr::Sum(ScalarExpr::col("ol_amount")), AggExpr::Count],
    }
}

/// CH-Q4 — order-priority checking, adapted: count orders that have at least
/// one significant order line (`EXISTS` becomes a semijoin against the
/// `ol_amount ≥ 500` lines), grouped by `o_ol_cnt`, keeping the five most
/// frequent line counts (the top-k path of the join-group-by shape).
pub fn ch_q4() -> QueryPlan {
    QueryPlan::JoinGroupByAggregate {
        fact: "orders".into(),
        fact_key: ScalarExpr::col("o_key"),
        // o_entry_d between dates: 100% selectivity.
        fact_filters: vec![Predicate::new("o_entry_d", CmpOp::Ge, 0.0)],
        dim: BuildSide::new(
            "orderline",
            ol_order_key(),
            vec![Predicate::new("ol_amount", CmpOp::Ge, 500.0)],
        ),
        group_by: vec!["o_ol_cnt".into()],
        aggregates: vec![AggExpr::Count],
        top_k: Some(TopK { agg_index: 0, k: 5 }),
    }
}

/// CH-Q6 — revenue forecast: a single filtered aggregate over `orderline`.
/// Memory-bandwidth bound (§5.3).
pub fn ch_q6() -> QueryPlan {
    QueryPlan::Aggregate {
        table: "orderline".into(),
        filters: vec![
            // ol_delivery_d between dates: 100% selectivity.
            Predicate::new("ol_delivery_d", CmpOp::Ge, 0.0),
            // ol_quantity between 1 and 100000 (CH-benCHmark text).
            Predicate::new("ol_quantity", CmpOp::Ge, 1.0),
        ],
        aggregates: vec![AggExpr::Sum(
            ScalarExpr::col("ol_amount") * ScalarExpr::col("ol_quantity"),
        )],
    }
}

/// CH-Q12 — shipping-mode / priority distribution, adapted: join `orders`
/// with their delivered lines and group by `o_carrier_id` (NewOrder inserts
/// carrier 0, Delivery stamps a real carrier — the group histogram shifts as
/// deliveries run), reporting order counts and line-count sums per carrier.
pub fn ch_q12() -> QueryPlan {
    QueryPlan::JoinGroupByAggregate {
        fact: "orders".into(),
        fact_key: ScalarExpr::col("o_key"),
        fact_filters: vec![],
        // Entry dates stay strictly below DELIVERY_DATE_BASE, so this
        // selects exactly the lines the Delivery transaction has stamped:
        // the histogram is empty until deliveries run and grows with them.
        dim: BuildSide::new(
            "orderline",
            ol_order_key(),
            vec![Predicate::new(
                "ol_delivery_d",
                CmpOp::Ge,
                DELIVERY_DATE_BASE as f64,
            )],
        ),
        group_by: vec!["o_carrier_id".into()],
        aggregates: vec![AggExpr::Count, AggExpr::Sum(ScalarExpr::col("o_ol_cnt"))],
        top_k: None,
    }
}

/// CH-Q14 — promotion-effect revenue: join `orderline` with `item` and
/// aggregate the revenue of promotional items. The `i_data LIKE 'PR%'`
/// condition becomes an `i_im_id < 5000` range (about half the catalogue).
pub fn ch_q14() -> QueryPlan {
    QueryPlan::JoinAggregate {
        fact: "orderline".into(),
        dim: "item".into(),
        fact_key: "ol_i_id".into(),
        dim_key: "i_id".into(),
        // ol_delivery_d between dates: 100% selectivity.
        fact_filters: vec![Predicate::new("ol_delivery_d", CmpOp::Ge, 0.0)],
        dim_filters: vec![Predicate::new("i_im_id", CmpOp::Lt, 5000.0)],
        aggregates: vec![AggExpr::Sum(ScalarExpr::col("ol_amount")), AggExpr::Count],
    }
}

/// CH-Q19 — discounted revenue: join `orderline` with `item` and aggregate
/// the revenue of matching lines. Broadcast hash join dominated by random
/// probes (§5.3); the `LIKE` condition is removed as in the paper.
pub fn ch_q19() -> QueryPlan {
    QueryPlan::JoinAggregate {
        fact: "orderline".into(),
        dim: "item".into(),
        fact_key: "ol_i_id".into(),
        dim_key: "i_id".into(),
        fact_filters: vec![
            Predicate::new("ol_quantity", CmpOp::Ge, 1.0),
            Predicate::new("ol_quantity", CmpOp::Le, 10.0),
        ],
        dim_filters: vec![Predicate::new("i_price", CmpOp::Ge, 1.0)],
        aggregates: vec![AggExpr::Sum(ScalarExpr::col("ol_amount"))],
    }
}

/// The query mix the paper uses for the adaptive experiment (Figure 5): Q1,
/// Q6 and Q19 executed one after the other per sequence.
pub fn query_mix() -> Vec<QueryId> {
    vec![QueryId::Q1, QueryId::Q6, QueryId::Q19]
}

/// The widened analytical mix: every implemented query, one after the other.
/// Covers all five plan shapes and relation footprints from one to three
/// tables, which is what makes the adaptive scheduler's per-query freshness
/// decisions diverge across queries of one sequence.
pub fn query_mix_wide() -> Vec<QueryId> {
    vec![
        QueryId::Q1,
        QueryId::Q3,
        QueryId::Q4,
        QueryId::Q6,
        QueryId::Q12,
        QueryId::Q14,
        QueryId::Q19,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn q1_is_a_group_by_over_orderline() {
        let plan = ch_q1();
        assert_eq!(plan.label(), "group-by");
        assert_eq!(plan.tables(), vec!["orderline"]);
        let cols = &plan.accessed_columns()["orderline"];
        for c in ["ol_delivery_d", "ol_number", "ol_quantity", "ol_amount"] {
            assert!(cols.contains(&c.to_string()));
        }
    }

    #[test]
    fn q3_chains_orderline_orders_customer() {
        let plan = ch_q3();
        assert_eq!(plan.label(), "multi-join");
        assert_eq!(plan.tables(), vec!["orderline", "orders", "customer"]);
        let cols = plan.accessed_columns();
        // The fact side reads the key-encoding columns of the composite join.
        for c in ["ol_w_id", "ol_d_id", "ol_o_id", "ol_amount"] {
            assert!(cols["orderline"].contains(&c.to_string()), "missing {c}");
        }
        for c in ["o_key", "o_w_id", "o_d_id", "o_c_id"] {
            assert!(cols["orders"].contains(&c.to_string()), "missing {c}");
        }
        assert!(cols["customer"].contains(&"c_balance".to_string()));
        assert!(cols["customer"].contains(&"c_key".to_string()));
    }

    #[test]
    fn q4_is_a_top_k_join_group_by() {
        let plan = ch_q4();
        assert_eq!(plan.label(), "join-group-by");
        assert_eq!(plan.tables(), vec!["orders", "orderline"]);
        match plan {
            QueryPlan::JoinGroupByAggregate {
                top_k, group_by, ..
            } => {
                assert_eq!(top_k, Some(TopK { agg_index: 0, k: 5 }));
                assert_eq!(group_by, vec!["o_ol_cnt".to_string()]);
            }
            other => panic!("unexpected shape {other:?}"),
        }
    }

    #[test]
    fn q6_is_a_scan_reduce_over_orderline() {
        let plan = ch_q6();
        assert_eq!(plan.label(), "aggregate");
        let cols = &plan.accessed_columns()["orderline"];
        assert!(cols.contains(&"ol_amount".to_string()));
        assert!(cols.contains(&"ol_quantity".to_string()));
    }

    #[test]
    fn q12_groups_orders_by_carrier() {
        let plan = ch_q12();
        assert_eq!(plan.label(), "join-group-by");
        let cols = plan.accessed_columns();
        assert!(cols["orders"].contains(&"o_carrier_id".to_string()));
        assert!(cols["orderline"].contains(&"ol_delivery_d".to_string()));
    }

    #[test]
    fn q12_selects_only_delivered_lines() {
        // The dim filter floor must equal the Delivery transaction's date
        // base: entry dates sit strictly below it, delivery stamps at or
        // above it, so the predicate admits exactly the delivered lines.
        match ch_q12() {
            QueryPlan::JoinGroupByAggregate { dim, .. } => {
                assert_eq!(
                    dim.filters,
                    vec![Predicate::new(
                        "ol_delivery_d",
                        CmpOp::Ge,
                        DELIVERY_DATE_BASE as f64
                    )]
                );
            }
            other => panic!("unexpected shape {other:?}"),
        }
    }

    #[test]
    fn q14_and_q19_join_orderline_with_item() {
        for (plan, dim_col) in [(ch_q14(), "i_im_id"), (ch_q19(), "i_price")] {
            assert_eq!(plan.label(), "join");
            assert_eq!(plan.tables(), vec!["orderline", "item"]);
            let cols = plan.accessed_columns();
            assert!(cols["item"].contains(&dim_col.to_string()));
            assert!(cols["orderline"].contains(&"ol_i_id".to_string()));
        }
    }

    #[test]
    fn mix_matches_paper_order() {
        let mix = query_mix();
        assert_eq!(mix.len(), 3);
        assert_eq!(mix[0].label(), "Q1");
        assert_eq!(mix[1].label(), "Q6");
        assert_eq!(mix[2].label(), "Q19");
        for q in mix {
            // Every query's plan builds without panicking.
            let _ = q.plan();
        }
    }

    /// The tentpole invariant of the SQL frontend: every CH query's SQL text
    /// plans to a `QueryPlan` *structurally identical* to the hand-built
    /// plan — same shapes, same predicate order, same key expressions — so
    /// execution (results and `WorkProfile` accounting) is trivially
    /// bit-for-bit identical. The differential suite re-proves the output
    /// equality over real data at 1/2/4 workers.
    #[test]
    fn sql_texts_plan_to_the_hand_built_plans() {
        for q in query_mix_wide() {
            let sql_plan = q
                .sql_plan()
                .unwrap_or_else(|e| panic!("{}: SQL failed to plan: {e}", q.label()));
            assert_eq!(
                sql_plan,
                q.plan(),
                "{}: SQL {:?} planned differently from the hand-built plan",
                q.label(),
                q.sql()
            );
        }
    }

    #[test]
    fn wide_mix_covers_every_query_and_all_plan_shapes() {
        let mix = query_mix_wide();
        assert_eq!(mix.len(), 7);
        let labels: Vec<&str> = mix.iter().map(|q| q.label()).collect();
        assert_eq!(labels, vec!["Q1", "Q3", "Q4", "Q6", "Q12", "Q14", "Q19"]);
        let mut shapes: Vec<&str> = mix.iter().map(|q| q.plan().label()).collect();
        shapes.sort_unstable();
        shapes.dedup();
        assert_eq!(
            shapes,
            vec![
                "aggregate",
                "group-by",
                "join",
                "join-group-by",
                "multi-join"
            ],
            "the widened mix must exercise all five plan shapes"
        );
    }
}
