//! Chunked, data-parallel kernels for the vectorized hot path.
//!
//! Every inner loop of the morsel engine that touches a whole column —
//! filter comparisons, key hashing, aggregate folds — lives here as an
//! explicit fixed-width-chunk kernel: the input is processed in
//! [`LANES`]-wide blocks (`[f64; 8]` / `[i64; 8]`) with a scalar tail, the
//! shape LLVM's autovectorizer reliably turns into SIMD on every target the
//! repo builds for (no intrinsics, no `target_feature` gates). Three kernel
//! families:
//!
//! * **Filters** ([`filter_dense_f64`] and friends) — compare one column
//!   against a literal and produce/compact a `u32` selection vector via
//!   branchless compaction: each lane writes its row id unconditionally and
//!   the output cursor advances by the comparison result, so the loop body
//!   carries no data-dependent branch.
//! * **Hashing** ([`hash1_dense`] and friends) — batch multiplicative
//!   hashing of a morsel's key column(s) into a reused `u64` buffer, so the
//!   probe/upsert loops of [`crate::hashtable`] take precomputed hashes
//!   instead of hashing row at a time. The scalar [`hash_i64`] /
//!   [`hash_combine`] / [`hash_key`] primitives are defined here and shared
//!   with the tables (integer ops: batch and scalar are trivially
//!   bit-identical).
//! * **Folds** ([`fold_sum_dense`] and friends) — SUM/AVG/MIN/MAX over a
//!   dense column or a selection vector. Floating-point accumulation order
//!   is **observable**: the frozen [`crate::baseline::BaselineExecutor`]
//!   and the differential oracle are compared bit-for-bit, so the fold
//!   kernels keep the strict sequential row order and win by *gathering*
//!   chunks of selected lanes (and by being monomorphised per aggregate
//!   kind, with the `ValView` dispatch hoisted out of the loop) — never by
//!   lane-parallel partial accumulators, which would reassociate the sums.
//!
//! Every chunked kernel has a `_scalar` twin: the obvious one-row-at-a-time
//! loop. The twins are the reference the property tests
//! (`crates/olap/tests/kernels_proptest.rs`) compare against on adversarial
//! inputs — NaN/±INF in filters, keys at ±2^53 and `i64::MIN`/`MAX`,
//! selections with ragged tails shorter than one chunk — and they double as
//! readable documentation of each kernel's exact semantics.

use crate::expr::{AggState, CmpOp};

/// Fixed chunk width of every kernel: 8 lanes fill one 64-byte cache line
/// of `f64`/`i64` and map onto one AVX-512 / two AVX2 / four NEON registers.
pub const LANES: usize = 8;

// ---------------------------------------------------------------------------
// Multiplicative hashing.
// ---------------------------------------------------------------------------

/// Multiplicative hash of one `i64` key (Knuth's 2^64 golden-ratio constant
/// with an xor-shift finalizer so the masked low bits are well mixed).
#[inline(always)]
pub fn hash_i64(k: i64) -> u64 {
    let mut h = (k as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    h ^= h >> 32;
    h
}

/// Combine a running hash with the next key part of a composite key.
#[inline(always)]
pub fn hash_combine(h: u64, k: i64) -> u64 {
    let mut h = (h ^ (k as u64)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    h ^= h >> 32;
    h
}

/// Hash a composite key of any width ≥ 1 (the order the parts are combined
/// in is the key-column order, same as the per-row upsert paths).
#[inline]
pub fn hash_key(key: &[i64]) -> u64 {
    let mut h = hash_i64(key[0]);
    for &k in &key[1..] {
        h = hash_combine(h, k);
    }
    h
}

/// Batch-hash a dense key column into `out` (`out[i] = hash_i64(keys[i])`).
pub fn hash1_dense(keys: &[i64], out: &mut Vec<u64>) {
    out.clear();
    out.resize(keys.len(), 0);
    let mut chunks = keys.chunks_exact(LANES);
    let mut at = 0;
    for chunk in &mut chunks {
        let mut h = [0u64; LANES];
        for l in 0..LANES {
            h[l] = hash_i64(chunk[l]);
        }
        out[at..at + LANES].copy_from_slice(&h);
        at += LANES;
    }
    for (l, &k) in chunks.remainder().iter().enumerate() {
        out[at + l] = hash_i64(k);
    }
}

/// Scalar twin of [`hash1_dense`].
pub fn hash1_dense_scalar(keys: &[i64], out: &mut Vec<u64>) {
    out.clear();
    out.extend(keys.iter().map(|&k| hash_i64(k)));
}

/// Batch-hash the selected rows of a key column (`out[pos] =
/// hash_i64(keys[sel[pos]])`, one output lane per selection entry).
pub fn hash1_gather(keys: &[i64], sel: &[u32], out: &mut Vec<u64>) {
    out.clear();
    out.resize(sel.len(), 0);
    let mut chunks = sel.chunks_exact(LANES);
    let mut at = 0;
    for chunk in &mut chunks {
        let mut lanes = [0i64; LANES];
        for l in 0..LANES {
            lanes[l] = keys[chunk[l] as usize];
        }
        let mut h = [0u64; LANES];
        for l in 0..LANES {
            h[l] = hash_i64(lanes[l]);
        }
        out[at..at + LANES].copy_from_slice(&h);
        at += LANES;
    }
    for (l, &i) in chunks.remainder().iter().enumerate() {
        out[at + l] = hash_i64(keys[i as usize]);
    }
}

/// Scalar twin of [`hash1_gather`].
pub fn hash1_gather_scalar(keys: &[i64], sel: &[u32], out: &mut Vec<u64>) {
    out.clear();
    out.extend(sel.iter().map(|&i| hash_i64(keys[i as usize])));
}

/// Batch-hash a dense two-column composite key
/// (`out[i] = hash_combine(hash_i64(k0[i]), k1[i])`).
pub fn hash2_dense(k0: &[i64], k1: &[i64], out: &mut Vec<u64>) {
    debug_assert_eq!(k0.len(), k1.len());
    out.clear();
    out.resize(k0.len(), 0);
    let mut a = k0.chunks_exact(LANES);
    let mut b = k1.chunks_exact(LANES);
    let mut at = 0;
    for (ca, cb) in (&mut a).zip(&mut b) {
        let mut h = [0u64; LANES];
        for l in 0..LANES {
            h[l] = hash_combine(hash_i64(ca[l]), cb[l]);
        }
        out[at..at + LANES].copy_from_slice(&h);
        at += LANES;
    }
    for (l, (&ka, &kb)) in a.remainder().iter().zip(b.remainder()).enumerate() {
        out[at + l] = hash_combine(hash_i64(ka), kb);
    }
}

/// Scalar twin of [`hash2_dense`].
pub fn hash2_dense_scalar(k0: &[i64], k1: &[i64], out: &mut Vec<u64>) {
    out.clear();
    out.extend(
        k0.iter()
            .zip(k1)
            .map(|(&a, &b)| hash_combine(hash_i64(a), b)),
    );
}

/// Batch-hash the selected rows of a two-column composite key.
pub fn hash2_gather(k0: &[i64], k1: &[i64], sel: &[u32], out: &mut Vec<u64>) {
    out.clear();
    out.resize(sel.len(), 0);
    let mut chunks = sel.chunks_exact(LANES);
    let mut at = 0;
    for chunk in &mut chunks {
        let mut h = [0u64; LANES];
        for l in 0..LANES {
            let i = chunk[l] as usize;
            h[l] = hash_combine(hash_i64(k0[i]), k1[i]);
        }
        out[at..at + LANES].copy_from_slice(&h);
        at += LANES;
    }
    for (l, &i) in chunks.remainder().iter().enumerate() {
        let i = i as usize;
        out[at + l] = hash_combine(hash_i64(k0[i]), k1[i]);
    }
}

/// Scalar twin of [`hash2_gather`].
pub fn hash2_gather_scalar(k0: &[i64], k1: &[i64], sel: &[u32], out: &mut Vec<u64>) {
    out.clear();
    out.extend(sel.iter().map(|&i| {
        let i = i as usize;
        hash_combine(hash_i64(k0[i]), k1[i])
    }));
}

// ---------------------------------------------------------------------------
// Filter kernels: branchless selection-vector compaction.
// ---------------------------------------------------------------------------

/// Monomorphise a kernel body per comparison operator: `keep` becomes a
/// concrete `f64 x f64` comparison the autovectorizer can lower to a packed
/// compare, instead of a per-row `match` on the operator.
macro_rules! for_each_cmp {
    ($op:expr, $lit:expr, |$keep:ident| $body:expr) => {
        match $op {
            CmpOp::Eq => {
                let $keep = |v: f64| v == $lit;
                $body
            }
            CmpOp::Ne => {
                let $keep = |v: f64| v != $lit;
                $body
            }
            CmpOp::Lt => {
                let $keep = |v: f64| v < $lit;
                $body
            }
            CmpOp::Le => {
                let $keep = |v: f64| v <= $lit;
                $body
            }
            CmpOp::Gt => {
                let $keep = |v: f64| v > $lit;
                $body
            }
            CmpOp::Ge => {
                let $keep = |v: f64| v >= $lit;
                $body
            }
        }
    };
}

/// Dense filter body: `sel` is sized to `vals.len()` up front, every lane
/// writes its row id at the output cursor unconditionally, and the cursor
/// advances by the comparison result — no data-dependent branch, so a
/// selective predicate costs the same as a permissive one.
#[inline(always)]
fn filter_dense_with(vals: &[f64], keep: impl Fn(f64) -> bool, sel: &mut Vec<u32>) {
    sel.clear();
    sel.resize(vals.len(), 0);
    let mut len = 0usize;
    let mut base = 0u32;
    let mut chunks = vals.chunks_exact(LANES);
    for chunk in &mut chunks {
        let mut flags = [0u32; LANES];
        for l in 0..LANES {
            flags[l] = keep(chunk[l]) as u32;
        }
        for (l, &f) in flags.iter().enumerate() {
            sel[len] = base + l as u32;
            len += f as usize;
        }
        base += LANES as u32;
    }
    for (l, &v) in chunks.remainder().iter().enumerate() {
        sel[len] = base + l as u32;
        len += keep(v) as usize;
    }
    sel.truncate(len);
}

/// Refine body: compact the existing selection in place. The write cursor
/// never overtakes the read cursor (each chunk's ids are copied out first),
/// so reading and writing the same vector is safe.
#[inline(always)]
fn filter_refine_with(vals: &[f64], keep: impl Fn(f64) -> bool, sel: &mut Vec<u32>) {
    let n = sel.len();
    let mut kept = 0usize;
    let mut pos = 0usize;
    while pos + LANES <= n {
        let mut ids = [0u32; LANES];
        ids.copy_from_slice(&sel[pos..pos + LANES]);
        let mut flags = [0u32; LANES];
        for l in 0..LANES {
            flags[l] = keep(vals[ids[l] as usize]) as u32;
        }
        for (l, &f) in flags.iter().enumerate() {
            sel[kept] = ids[l];
            kept += f as usize;
        }
        pos += LANES;
    }
    while pos < n {
        let i = sel[pos];
        sel[kept] = i;
        kept += keep(vals[i as usize]) as usize;
        pos += 1;
    }
    sel.truncate(kept);
}

/// Filter a dense `f64` column into a fresh selection vector.
pub fn filter_dense_f64(vals: &[f64], op: CmpOp, lit: f64, sel: &mut Vec<u32>) {
    for_each_cmp!(op, lit, |keep| filter_dense_with(vals, keep, sel));
}

/// Scalar twin of [`filter_dense_f64`].
pub fn filter_dense_f64_scalar(vals: &[f64], op: CmpOp, lit: f64, sel: &mut Vec<u32>) {
    sel.clear();
    for (i, &v) in vals.iter().enumerate() {
        if op.apply(v, lit) {
            sel.push(i as u32);
        }
    }
}

/// Filter a dense `i64` key column (compared as `f64`, mirroring the
/// predicate fallback the block interpreter applies to key columns).
pub fn filter_dense_i64(vals: &[i64], op: CmpOp, lit: f64, sel: &mut Vec<u32>) {
    for_each_cmp!(op, lit, |keep| {
        sel.clear();
        sel.resize(vals.len(), 0);
        let mut len = 0usize;
        let mut base = 0u32;
        let mut chunks = vals.chunks_exact(LANES);
        for chunk in &mut chunks {
            let mut flags = [0u32; LANES];
            for l in 0..LANES {
                flags[l] = keep(chunk[l] as f64) as u32;
            }
            for (l, &f) in flags.iter().enumerate() {
                sel[len] = base + l as u32;
                len += f as usize;
            }
            base += LANES as u32;
        }
        for (l, &v) in chunks.remainder().iter().enumerate() {
            sel[len] = base + l as u32;
            len += keep(v as f64) as usize;
        }
        sel.truncate(len);
    });
}

/// Scalar twin of [`filter_dense_i64`].
pub fn filter_dense_i64_scalar(vals: &[i64], op: CmpOp, lit: f64, sel: &mut Vec<u32>) {
    sel.clear();
    for (i, &v) in vals.iter().enumerate() {
        if op.apply(v as f64, lit) {
            sel.push(i as u32);
        }
    }
}

/// Refine an existing selection against an `f64` column, compacting in place.
pub fn filter_refine_f64(vals: &[f64], op: CmpOp, lit: f64, sel: &mut Vec<u32>) {
    for_each_cmp!(op, lit, |keep| filter_refine_with(vals, keep, sel));
}

/// Scalar twin of [`filter_refine_f64`].
pub fn filter_refine_f64_scalar(vals: &[f64], op: CmpOp, lit: f64, sel: &mut Vec<u32>) {
    let mut kept = 0usize;
    for pos in 0..sel.len() {
        let i = sel[pos];
        if op.apply(vals[i as usize], lit) {
            sel[kept] = i;
            kept += 1;
        }
    }
    sel.truncate(kept);
}

/// Refine an existing selection against an `i64` key column (compared as
/// `f64`), compacting in place.
pub fn filter_refine_i64(vals: &[i64], op: CmpOp, lit: f64, sel: &mut Vec<u32>) {
    for_each_cmp!(op, lit, |keep| {
        let n = sel.len();
        let mut kept = 0usize;
        let mut pos = 0usize;
        while pos + LANES <= n {
            let mut ids = [0u32; LANES];
            ids.copy_from_slice(&sel[pos..pos + LANES]);
            let mut flags = [0u32; LANES];
            for l in 0..LANES {
                flags[l] = keep(vals[ids[l] as usize] as f64) as u32;
            }
            for (l, &f) in flags.iter().enumerate() {
                sel[kept] = ids[l];
                kept += f as usize;
            }
            pos += LANES;
        }
        while pos < n {
            let i = sel[pos];
            sel[kept] = i;
            kept += keep(vals[i as usize] as f64) as usize;
            pos += 1;
        }
        sel.truncate(kept);
    });
}

/// Scalar twin of [`filter_refine_i64`].
pub fn filter_refine_i64_scalar(vals: &[i64], op: CmpOp, lit: f64, sel: &mut Vec<u32>) {
    let mut kept = 0usize;
    for pos in 0..sel.len() {
        let i = sel[pos];
        if op.apply(vals[i as usize] as f64, lit) {
            sel[kept] = i;
            kept += 1;
        }
    }
    sel.truncate(kept);
}

// ---------------------------------------------------------------------------
// Aggregate fold kernels.
// ---------------------------------------------------------------------------

/// Generate the dense/gather fold kernel pair (plus scalar twins) for one
/// [`AggState`] fold. The accumulation order is strictly sequential in both
/// variants — floating-point addition does not associate and `min`/`max`
/// tie-breaking on signed zeros is order-sensitive, and the engine is
/// compared bit-for-bit against the frozen baseline — so the gather variant
/// loads [`LANES`] selected values into a `[f64; 8]` (the gather is what
/// vectorizes) and folds the chunk in order.
macro_rules! fold_kernels {
    ($dense:ident, $dense_scalar:ident, $gather:ident, $gather_scalar:ident, $fold:ident) => {
        /// Fold a dense value slice into `state`, in row order.
        pub fn $dense(state: &mut AggState, vals: &[f64]) {
            for &v in vals {
                state.$fold(v);
            }
        }

        /// Scalar twin of the dense fold (identical loop; dense folds have
        /// no chunked gather to diverge from).
        pub fn $dense_scalar(state: &mut AggState, vals: &[f64]) {
            for &v in vals {
                state.$fold(v);
            }
        }

        /// Fold the selected rows of a value slice into `state`, in
        /// selection order: chunked gather, sequential fold.
        pub fn $gather(state: &mut AggState, vals: &[f64], sel: &[u32]) {
            let mut chunks = sel.chunks_exact(LANES);
            for chunk in &mut chunks {
                let mut lanes = [0.0f64; LANES];
                for l in 0..LANES {
                    lanes[l] = vals[chunk[l] as usize];
                }
                for &v in &lanes {
                    state.$fold(v);
                }
            }
            for &i in chunks.remainder() {
                state.$fold(vals[i as usize]);
            }
        }

        /// Scalar twin of the gather fold.
        pub fn $gather_scalar(state: &mut AggState, vals: &[f64], sel: &[u32]) {
            for &i in sel {
                state.$fold(vals[i as usize]);
            }
        }
    };
}

fold_kernels!(
    fold_sum_dense,
    fold_sum_dense_scalar,
    fold_sum_gather,
    fold_sum_gather_scalar,
    fold_sum
);
fold_kernels!(
    fold_avg_dense,
    fold_avg_dense_scalar,
    fold_avg_gather,
    fold_avg_gather_scalar,
    fold_avg
);
fold_kernels!(
    fold_min_dense,
    fold_min_dense_scalar,
    fold_min_gather,
    fold_min_gather_scalar,
    fold_min
);
fold_kernels!(
    fold_max_dense,
    fold_max_dense_scalar,
    fold_max_gather,
    fold_max_gather_scalar,
    fold_max
);

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(n: usize) -> Vec<u32> {
        (0..n as u32).collect()
    }

    #[test]
    fn dense_filter_agrees_with_scalar_on_special_values() {
        let vals = vec![
            1.0,
            f64::NAN,
            f64::INFINITY,
            f64::NEG_INFINITY,
            -0.0,
            0.0,
            2.5,
            -2.5,
            1.0,
            f64::NAN,
            3.0,
        ];
        for op in [
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
        ] {
            for lit in [0.0, -0.0, 1.0, f64::NAN, f64::INFINITY] {
                let (mut a, mut b) = (Vec::new(), Vec::new());
                filter_dense_f64(&vals, op, lit, &mut a);
                filter_dense_f64_scalar(&vals, op, lit, &mut b);
                assert_eq!(a, b, "{op:?} {lit}");
            }
        }
    }

    #[test]
    fn refine_compacts_in_place_like_scalar() {
        let vals: Vec<f64> = (0..37).map(|i| (i % 5) as f64).collect();
        let mut a = ids(37);
        let mut b = ids(37);
        filter_refine_f64(&vals, CmpOp::Ge, 2.0, &mut a);
        filter_refine_f64_scalar(&vals, CmpOp::Ge, 2.0, &mut b);
        assert_eq!(a, b);
        // Second refinement over the already-sparse selection.
        let mut a2 = a.clone();
        let mut b2 = a;
        filter_refine_f64(&vals, CmpOp::Lt, 4.0, &mut a2);
        filter_refine_f64_scalar(&vals, CmpOp::Lt, 4.0, &mut b2);
        assert_eq!(a2, b2);
    }

    #[test]
    fn i64_filters_compare_through_f64_like_the_interpreter() {
        // 2^53 and 2^53 + 1 collapse to the same f64 — the kernel must
        // reproduce that (documented) behaviour, not "fix" it.
        let vals = vec![i64::MIN, -1, 0, 1, 1 << 53, (1 << 53) + 1, i64::MAX];
        let (mut a, mut b) = (Vec::new(), Vec::new());
        filter_dense_i64(&vals, CmpOp::Eq, (1u64 << 53) as f64, &mut a);
        filter_dense_i64_scalar(&vals, CmpOp::Eq, (1u64 << 53) as f64, &mut b);
        assert_eq!(a, b);
        assert_eq!(a, vec![4, 5], "both 2^53 and 2^53+1 compare equal as f64");
    }

    #[test]
    fn batch_hashes_match_the_scalar_primitives() {
        let keys: Vec<i64> = (0..29).map(|i| i * 7 - 90).collect();
        let k1: Vec<i64> = (0..29).map(|i| i * 3 + 1).collect();
        let sel: Vec<u32> = (0..29).step_by(2).map(|i| i as u32).collect();
        let (mut a, mut b) = (Vec::new(), Vec::new());
        hash1_dense(&keys, &mut a);
        hash1_dense_scalar(&keys, &mut b);
        assert_eq!(a, b);
        assert!(a.iter().zip(&keys).all(|(&h, &k)| h == hash_i64(k)));
        hash1_gather(&keys, &sel, &mut a);
        hash1_gather_scalar(&keys, &sel, &mut b);
        assert_eq!(a, b);
        hash2_dense(&keys, &k1, &mut a);
        hash2_dense_scalar(&keys, &k1, &mut b);
        assert_eq!(a, b);
        hash2_gather(&keys, &k1, &sel, &mut a);
        hash2_gather_scalar(&keys, &k1, &sel, &mut b);
        assert_eq!(a, b);
        assert_eq!(hash_key(&[5]), hash_i64(5));
        assert_eq!(hash_key(&[5, 9]), hash_combine(hash_i64(5), 9));
    }

    #[test]
    fn gather_folds_keep_sequential_order() {
        // A sum whose value depends on accumulation order: huge alternating
        // terms cancel only when folded strictly left to right.
        let vals = vec![1e308, -1e308, 1.0, 1e308, -1e308, 2.0, 3.0, 4.0, 5.0, 6.0];
        let sel = ids(vals.len());
        let mut chunked = AggState::default();
        let mut scalar = AggState::default();
        fold_sum_gather(&mut chunked, &vals, &sel);
        fold_sum_gather_scalar(&mut scalar, &vals, &sel);
        assert_eq!(chunked, scalar);
        let mut dense = AggState::default();
        fold_sum_dense(&mut dense, &vals);
        assert_eq!(dense, chunked);
    }

    #[test]
    fn ragged_tails_shorter_than_one_chunk() {
        for n in 0..(2 * LANES + 3) {
            let vals: Vec<f64> = (0..n).map(|i| i as f64 - 3.0).collect();
            let (mut a, mut b) = (Vec::new(), Vec::new());
            filter_dense_f64(&vals, CmpOp::Gt, 0.0, &mut a);
            filter_dense_f64_scalar(&vals, CmpOp::Gt, 0.0, &mut b);
            assert_eq!(a, b, "dense filter, {n} rows");
            let keys: Vec<i64> = (0..n as i64).collect();
            let (mut ha, mut hb) = (Vec::new(), Vec::new());
            hash1_dense(&keys, &mut ha);
            hash1_dense_scalar(&keys, &mut hb);
            assert_eq!(ha, hb, "dense hash, {n} rows");
            let mut sa = AggState::default();
            let mut sb = AggState::default();
            fold_min_gather(&mut sa, &vals, &b);
            fold_min_gather_scalar(&mut sb, &vals, &b);
            assert_eq!(sa, sb, "gather fold, {n} rows");
        }
    }
}
