//! Simulated clock: accumulates modelled time per engine and per activity.
//!
//! The functional code paths never read this clock; only the benchmark
//! harness does, so that the figures can be regenerated deterministically on
//! any host. The clock distinguishes the activities the paper's figures break
//! down (query execution vs. data transfer vs. transaction processing).

use crate::Seconds;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Activities whose modelled time is tracked separately.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Activity {
    /// OLAP query execution (scan/aggregate/join work).
    QueryExecution,
    /// Data transfer between engines (ETL, instance synchronisation).
    DataTransfer,
    /// OLTP instance switch + synchronisation.
    InstanceSync,
    /// Transaction processing.
    Transactions,
    /// Scheduler/RDE bookkeeping.
    Scheduling,
}

impl std::fmt::Display for Activity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Activity::QueryExecution => "query-execution",
            Activity::DataTransfer => "data-transfer",
            Activity::InstanceSync => "instance-sync",
            Activity::Transactions => "transactions",
            Activity::Scheduling => "scheduling",
        };
        f.write_str(s)
    }
}

/// Thread-safe accumulator of modelled time.
///
/// Cloning a `SimClock` yields a handle to the same underlying accumulator, so
/// the engines and the harness can share it freely.
#[derive(Debug, Clone, Default)]
pub struct SimClock {
    inner: Arc<Mutex<BTreeMap<Activity, Seconds>>>,
}

impl SimClock {
    /// New clock with all counters at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `seconds` of modelled time to `activity`.
    pub fn advance(&self, activity: Activity, seconds: Seconds) {
        assert!(
            seconds >= 0.0 && seconds.is_finite(),
            "modelled time must be finite and non-negative, got {seconds}"
        );
        *self.inner.lock().entry(activity).or_insert(0.0) += seconds;
    }

    /// Modelled time accumulated for `activity`.
    pub fn elapsed(&self, activity: Activity) -> Seconds {
        self.inner.lock().get(&activity).copied().unwrap_or(0.0)
    }

    /// Total modelled time across all activities.
    pub fn total(&self) -> Seconds {
        self.inner.lock().values().sum()
    }

    /// Snapshot of all counters.
    pub fn snapshot(&self) -> BTreeMap<Activity, Seconds> {
        self.inner.lock().clone()
    }

    /// Reset all counters to zero.
    pub fn reset(&self) {
        self.inner.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advance_accumulates_per_activity() {
        let clock = SimClock::new();
        clock.advance(Activity::QueryExecution, 1.5);
        clock.advance(Activity::QueryExecution, 0.5);
        clock.advance(Activity::DataTransfer, 0.25);
        assert_eq!(clock.elapsed(Activity::QueryExecution), 2.0);
        assert_eq!(clock.elapsed(Activity::DataTransfer), 0.25);
        assert_eq!(clock.elapsed(Activity::Transactions), 0.0);
        assert!((clock.total() - 2.25).abs() < 1e-12);
    }

    #[test]
    fn clones_share_state() {
        let clock = SimClock::new();
        let other = clock.clone();
        other.advance(Activity::InstanceSync, 0.01);
        assert_eq!(clock.elapsed(Activity::InstanceSync), 0.01);
    }

    #[test]
    fn reset_clears_counters() {
        let clock = SimClock::new();
        clock.advance(Activity::Scheduling, 3.0);
        clock.reset();
        assert_eq!(clock.total(), 0.0);
        assert!(clock.snapshot().is_empty());
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_time_is_rejected() {
        SimClock::new().advance(Activity::QueryExecution, -1.0);
    }
}
