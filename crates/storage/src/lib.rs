//! In-memory columnar storage for the adaptive HTAP system.
//!
//! This crate implements the storage manager the paper's OLTP engine is built
//! on (§3.2) and the snapshot handles its OLAP engine consumes (§3.3):
//!
//! * typed, append-friendly **columns** and **columnar tables** ([`column`],
//!   [`table`], [`schema`]);
//! * **twin instances** per table — two full columnar copies of the data, of
//!   which exactly one is *active* for transaction processing at any time,
//!   with per-record atomic **update-indication bits**, per-column update
//!   flags and instance statistics ([`twin`], [`update_bits`], [`stats`]);
//! * a **delta / version store** holding newest-to-oldest version chains for
//!   multi-version concurrency control ([`delta`]);
//! * a **cuckoo-hash primary-key index** pointing at the latest version of
//!   each record ([`index`]);
//! * read-only **snapshot handles** over an inactive instance, which is what
//!   the RDE engine hands to the OLAP engine ([`snapshot`]).
//!
//! The storage layer is deliberately engine-agnostic: the OLTP engine drives
//! writes through it, the RDE engine drives instance switches, synchronisation
//! and ETL, and the OLAP engine only ever sees immutable snapshots.

pub mod column;
pub mod delta;
pub mod error;
pub mod index;
pub mod schema;
pub mod snapshot;
pub mod stats;
pub mod table;
pub mod twin;
pub mod update_bits;

pub use column::{Column, ColumnGuard};
pub use delta::{DeltaStorage, Version};
pub use error::StorageError;
pub use index::cuckoo::CuckooIndex;
pub use index::RecordLocation;
pub use schema::{ColumnDef, DataType, TableSchema, Value};
pub use snapshot::{SnapshotHandle, TableSnapshot};
pub use stats::{ColumnStats, InstanceStats};
pub use table::ColumnarTable;
pub use twin::{InstanceId, SwitchOutcome, SyncOutcome, TwinStore, TwinTable};
pub use update_bits::AtomicBitmap;

/// Row identifier within a table. Rows are numbered identically in both twin
/// instances (inserts are applied to both), so a `RowId` is instance-agnostic.
pub type RowId = u64;

/// Epoch counter incremented on every active-instance switch.
pub type Epoch = u64;
