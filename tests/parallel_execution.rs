//! Integration tests of the morsel-driven parallel execution layer, driven
//! through the public API: the same CH-benCHmark query must produce
//! bit-for-bit identical results whatever the elastic core grant, and the
//! grant must be visible as the executor's parallelism.

use adaptive_htap::chbench::{ch_q1, ch_q19, ch_q6, ChConfig, ChGenerator};
use adaptive_htap::olap::{QueryExecutor, WorkerTeam};
use adaptive_htap::rde::{AccessMethod, RdeConfig, RdeEngine};
use adaptive_htap::sim::{CoreId, CpuSet, SocketId, Topology};
use adaptive_htap::{HtapConfig, HtapSystem};

fn populated_rde() -> RdeEngine {
    let rde = RdeEngine::bootstrap(RdeConfig::default());
    ChGenerator::new(ChConfig::tiny()).build(&rde).unwrap();
    rde.switch_and_sync();
    rde
}

#[test]
fn ch_queries_are_deterministic_across_worker_grants() {
    let rde = populated_rde();
    let executor = QueryExecutor::with_block_rows(512);
    for plan in [ch_q6(), ch_q1(), ch_q19()] {
        let sources = rde.sources_for(&plan.tables(), AccessMethod::OltpSnapshot);
        let solo = executor
            .execute_parallel(&plan, &sources, &WorkerTeam::solo())
            .unwrap();
        for workers in [2u16, 4, 8] {
            let team = WorkerTeam::from_cores((0..workers).map(CoreId).collect());
            let parallel = executor.execute_parallel(&plan, &sources, &team).unwrap();
            assert_eq!(
                solo,
                parallel,
                "{} with {workers} workers diverged from the solo run",
                plan.label()
            );
        }
    }
}

#[test]
fn elastic_grants_resize_the_engines_worker_team() {
    let rde = populated_rde();
    let topo = Topology::two_socket();
    // Bootstrap grants the OLAP engine its whole home socket.
    assert_eq!(rde.olap_worker_count(), 14);
    assert_eq!(rde.olap().workers().team().size(), 14);

    // An explicit (shrunken) grant resizes the team the next query runs with.
    rde.olap()
        .set_workers(CpuSet::from_cores([CoreId(14), CoreId(15)]));
    assert_eq!(rde.olap_worker_count(), 2);
    let team = rde.olap().workers().team();
    assert_eq!(team.size(), 2);
    assert_eq!(team.cores(), &[CoreId(14), CoreId(15)]);

    // Queries still answer identically under the shrunken grant.
    let plan = ch_q6();
    let sources = rde.sources_for(&plan.tables(), AccessMethod::OltpSnapshot);
    let shrunk = rde.olap().run_query(&plan, &sources, None).unwrap();
    rde.olap().set_workers(CpuSet::socket(&topo, SocketId(1)));
    let full = rde.olap().run_query(&plan, &sources, None).unwrap();
    assert_eq!(shrunk.output, full.output);
}

#[test]
fn system_facade_exposes_the_olap_worker_count() {
    let system = HtapSystem::build(HtapConfig::tiny()).unwrap();
    // The tiny topology's bootstrap still hands the OLAP engine one socket.
    assert!(system.olap_worker_count() > 0);
    let report = system.execute_query(adaptive_htap::QueryId::Q6).unwrap();
    assert!(report.result_rows >= 1);
}

#[test]
fn work_profiles_sum_identically_across_worker_counts() {
    let rde = populated_rde();
    let executor = QueryExecutor::with_block_rows(256);
    let plan = ch_q1();
    let sources = rde.sources_for(&plan.tables(), AccessMethod::OltpSnapshot);
    let solo = executor
        .execute_parallel(&plan, &sources, &WorkerTeam::solo())
        .unwrap();
    let team = WorkerTeam::from_cores((0..6).map(CoreId).collect());
    let parallel = executor.execute_parallel(&plan, &sources, &team).unwrap();
    // Same bytes per socket, tuples, freshness — the scheduler and cost model
    // see identical totals whatever the parallelism.
    assert_eq!(solo.work, parallel.work);
    assert!(parallel.work.tuples_scanned > 0);
    assert!(parallel.work.total_bytes() > 0);
}
