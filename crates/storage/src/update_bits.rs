//! Atomic update-indication bitmaps.
//!
//! The paper's storage manager "maintains an update indication bit for each
//! record, which is set when the record gets updated. Access to the update
//! indication bits is synchronized using atomic operations" (§3.2). The RDE
//! engine consumes the bits during instance synchronisation and ETL and clears
//! them as records are copied.
//!
//! The bitmap also keeps an approximate popcount so that the scheduler can ask
//! "how much fresh data is there?" (the `Nft` input of Algorithm 2) without
//! scanning the bit words.

use std::sync::atomic::{AtomicU64, Ordering};

const BITS_PER_WORD: usize = 64;

/// A concurrently updatable bitmap that grows on demand.
#[derive(Debug, Default)]
pub struct AtomicBitmap {
    words: parking_lot::RwLock<Vec<AtomicU64>>,
    /// Number of bits currently set (maintained on 0→1 and 1→0 transitions).
    set_count: AtomicU64,
}

impl AtomicBitmap {
    /// Empty bitmap.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bitmap pre-sized for `bits` bits.
    pub fn with_capacity(bits: usize) -> Self {
        let words = bits.div_ceil(BITS_PER_WORD);
        AtomicBitmap {
            words: parking_lot::RwLock::new((0..words).map(|_| AtomicU64::new(0)).collect()),
            set_count: AtomicU64::new(0),
        }
    }

    fn ensure_capacity(&self, bit: usize) {
        let word = bit / BITS_PER_WORD;
        {
            let words = self.words.read();
            if word < words.len() {
                return;
            }
        }
        let mut words = self.words.write();
        while words.len() <= word {
            words.push(AtomicU64::new(0));
        }
    }

    /// Set bit `bit`. Returns `true` if the bit transitioned from 0 to 1.
    pub fn set(&self, bit: usize) -> bool {
        self.ensure_capacity(bit);
        let words = self.words.read();
        let mask = 1u64 << (bit % BITS_PER_WORD);
        let prev = words[bit / BITS_PER_WORD].fetch_or(mask, Ordering::AcqRel);
        let newly_set = prev & mask == 0;
        if newly_set {
            self.set_count.fetch_add(1, Ordering::AcqRel);
        }
        newly_set
    }

    /// Clear bit `bit`. Returns `true` if the bit transitioned from 1 to 0.
    pub fn clear(&self, bit: usize) -> bool {
        let words = self.words.read();
        let word = bit / BITS_PER_WORD;
        if word >= words.len() {
            return false;
        }
        let mask = 1u64 << (bit % BITS_PER_WORD);
        let prev = words[word].fetch_and(!mask, Ordering::AcqRel);
        let was_set = prev & mask != 0;
        if was_set {
            self.set_count.fetch_sub(1, Ordering::AcqRel);
        }
        was_set
    }

    /// Whether bit `bit` is set.
    pub fn get(&self, bit: usize) -> bool {
        let words = self.words.read();
        let word = bit / BITS_PER_WORD;
        if word >= words.len() {
            return false;
        }
        words[word].load(Ordering::Acquire) & (1u64 << (bit % BITS_PER_WORD)) != 0
    }

    /// Number of set bits (exact, maintained incrementally).
    pub fn count(&self) -> u64 {
        self.set_count.load(Ordering::Acquire)
    }

    /// Collect the indices of all set bits, in ascending order.
    pub fn iter_set(&self) -> Vec<usize> {
        let words = self.words.read();
        let mut out = Vec::with_capacity(self.count() as usize);
        for (wi, w) in words.iter().enumerate() {
            let mut bits = w.load(Ordering::Acquire);
            while bits != 0 {
                let tz = bits.trailing_zeros() as usize;
                out.push(wi * BITS_PER_WORD + tz);
                bits &= bits - 1;
            }
        }
        out
    }

    /// Clear every bit and return the indices that were set.
    pub fn drain(&self) -> Vec<usize> {
        let set = self.iter_set();
        for &bit in &set {
            self.clear(bit);
        }
        set
    }

    /// Clear all bits without collecting them.
    pub fn clear_all(&self) {
        let words = self.words.read();
        for w in words.iter() {
            let prev = w.swap(0, Ordering::AcqRel);
            let ones = prev.count_ones() as u64;
            if ones > 0 {
                self.set_count.fetch_sub(ones, Ordering::AcqRel);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn set_get_clear_roundtrip() {
        let b = AtomicBitmap::new();
        assert!(!b.get(100));
        assert!(b.set(100));
        assert!(!b.set(100), "second set is not a transition");
        assert!(b.get(100));
        assert_eq!(b.count(), 1);
        assert!(b.clear(100));
        assert!(!b.clear(100));
        assert_eq!(b.count(), 0);
    }

    #[test]
    fn iter_set_returns_sorted_indices() {
        let b = AtomicBitmap::with_capacity(1024);
        for i in [5usize, 63, 64, 512, 7] {
            b.set(i);
        }
        assert_eq!(b.iter_set(), vec![5, 7, 63, 64, 512]);
        assert_eq!(b.count(), 5);
    }

    #[test]
    fn drain_clears_and_returns() {
        let b = AtomicBitmap::new();
        b.set(1);
        b.set(2);
        let drained = b.drain();
        assert_eq!(drained, vec![1, 2]);
        assert_eq!(b.count(), 0);
        assert!(b.iter_set().is_empty());
    }

    #[test]
    fn clear_all_resets_count() {
        let b = AtomicBitmap::new();
        for i in 0..1000 {
            b.set(i * 3);
        }
        assert_eq!(b.count(), 1000);
        b.clear_all();
        assert_eq!(b.count(), 0);
        assert!(!b.get(3));
    }

    #[test]
    fn clearing_out_of_range_bit_is_noop() {
        let b = AtomicBitmap::new();
        assert!(!b.clear(1_000_000));
        assert!(!b.get(1_000_000));
    }

    #[test]
    fn concurrent_sets_count_exactly_once_per_bit() {
        let b = Arc::new(AtomicBitmap::with_capacity(10_000));
        let mut handles = Vec::new();
        for t in 0..4 {
            let b = Arc::clone(&b);
            handles.push(std::thread::spawn(move || {
                // Threads overlap on every other bit.
                for i in 0..5_000usize {
                    b.set(i * 2 + (t % 2));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(b.count(), 10_000);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeSet;

    proptest! {
        /// The bitmap behaves exactly like a set of indices.
        #[test]
        fn model_based_against_btreeset(ops in prop::collection::vec((0usize..2048, prop::bool::ANY), 0..300)) {
            let bitmap = AtomicBitmap::new();
            let mut model = BTreeSet::new();
            for (bit, set) in ops {
                if set {
                    bitmap.set(bit);
                    model.insert(bit);
                } else {
                    bitmap.clear(bit);
                    model.remove(&bit);
                }
            }
            prop_assert_eq!(bitmap.count() as usize, model.len());
            prop_assert_eq!(bitmap.iter_set(), model.into_iter().collect::<Vec<_>>());
        }
    }
}
