//! The binder: AST + catalog → a bound logical query.
//!
//! Binding resolves every table and column name against the [`Catalog`],
//! types every expression, splits the flat condition list into per-relation
//! filters and equi-join conditions, rewrites `LIKE` over encoded columns,
//! and validates the clauses against what the engine can evaluate — all with
//! typed [`SqlError`]s carrying positions, never panics.

use crate::ast::{
    self, AggFunc, BinOp, Condition, Expr, HavingLeft, OrderKey, SelectItem, SelectStmt,
};
use crate::catalog::Catalog;
use crate::error::SqlError;
use htap_olap::{AggExpr, CmpOp, HavingPred, Predicate, RowSlot, ScalarExpr};
use htap_storage::DataType;
use std::collections::BTreeSet;

/// One relation in scope, in `FROM` order.
#[derive(Debug, Clone, PartialEq)]
pub struct BoundTable {
    /// Relation name.
    pub name: String,
    /// Estimated row count from the catalog (the planner's cost input).
    pub rows: u64,
    /// The relation's primary-key column, if declared. Kept as catalog
    /// metadata; the planner no longer needs it for join-order correctness —
    /// the engine's hash probe preserves multiplicities, so the probe-side
    /// choice is pure cost.
    pub pk: Option<String>,
    /// Byte offset of the `FROM` entry.
    pub pos: usize,
}

/// One bound equi-join condition between two relations in scope.
#[derive(Debug, Clone, PartialEq)]
pub struct BoundJoin {
    /// Index (into [`BoundQuery::tables`]) of the left side.
    pub left: usize,
    /// Join-key expression over the left relation's columns.
    pub left_key: ScalarExpr,
    /// Index of the right side.
    pub right: usize,
    /// Join-key expression over the right relation's columns.
    pub right_key: ScalarExpr,
    /// Byte offset of the condition.
    pub pos: usize,
}

/// A resolved `ORDER BY` target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoundOrder {
    /// The `i`-th `GROUP BY` key, ascending.
    GroupKey(usize),
    /// The `i`-th aggregate of the `SELECT` list, descending.
    Aggregate(usize),
}

/// The bound logical query the planner lowers onto a physical shape.
#[derive(Debug, Clone, PartialEq)]
pub struct BoundQuery {
    /// Relations in `FROM` order.
    pub tables: Vec<BoundTable>,
    /// Per-relation filter predicates (parallel to `tables`), in text order.
    pub filters: Vec<Vec<Predicate>>,
    /// Equi-join conditions.
    pub joins: Vec<BoundJoin>,
    /// Grouping key columns (bare names, all from `group_table`).
    pub group_by: Vec<String>,
    /// Index of the relation the grouping keys come from.
    pub group_table: Option<usize>,
    /// Byte offset of the first grouping key.
    pub group_pos: usize,
    /// Aggregates of the `SELECT` list, in order.
    pub aggregates: Vec<AggExpr>,
    /// Byte offsets of the aggregates (parallel to `aggregates`).
    pub agg_pos: Vec<usize>,
    /// Relations referenced by aggregate arguments.
    pub agg_tables: BTreeSet<usize>,
    /// Bound `HAVING` conjuncts over the group rows, in text order.
    pub having: Vec<HavingPred>,
    /// Resolved `ORDER BY` items with their positions.
    pub order_by: Vec<(BoundOrder, usize)>,
    /// `LIMIT` value and its position.
    pub limit: Option<(u64, usize)>,
}

/// Bind a parsed statement against a catalog.
pub fn bind(stmt: &SelectStmt, catalog: &Catalog) -> Result<BoundQuery, SqlError> {
    let binder = Binder::new(stmt, catalog)?;
    binder.run()
}

struct Binder<'a> {
    stmt: &'a SelectStmt,
    catalog: &'a Catalog,
    tables: Vec<BoundTable>,
}

/// A lowered scalar expression plus the set of in-scope relations it reads.
struct Lowered {
    expr: ScalarExpr,
    tables: BTreeSet<usize>,
}

impl<'a> Binder<'a> {
    fn new(stmt: &'a SelectStmt, catalog: &'a Catalog) -> Result<Self, SqlError> {
        if stmt.from.is_empty() {
            return Err(SqlError::UnexpectedToken {
                found: "nothing".into(),
                expected: "a FROM relation".into(),
                pos: 0,
            });
        }
        let mut tables: Vec<BoundTable> = Vec::new();
        for table_ref in &stmt.from {
            if tables.iter().any(|t| t.name == table_ref.name) {
                return Err(SqlError::DuplicateTable {
                    name: table_ref.name.clone(),
                    pos: table_ref.pos,
                });
            }
            let info = catalog.resolve_table(&table_ref.name, table_ref.pos)?;
            tables.push(BoundTable {
                name: table_ref.name.clone(),
                rows: info.rows,
                pk: info
                    .schema
                    .primary_key
                    .map(|i| info.schema.column(i).name.clone()),
                pos: table_ref.pos,
            });
        }
        Ok(Binder {
            stmt,
            catalog,
            tables,
        })
    }

    /// Resolve a (possibly qualified) column to its relation index and dtype.
    fn resolve_column(
        &self,
        table: Option<&str>,
        name: &str,
        pos: usize,
    ) -> Result<(usize, DataType), SqlError> {
        let (idx, dtype) = if let Some(qualifier) = table {
            let idx = self
                .tables
                .iter()
                .position(|t| t.name == qualifier)
                .ok_or_else(|| SqlError::UnknownTable {
                    name: qualifier.to_string(),
                    pos,
                })?;
            let dtype = self.catalog.column_type(qualifier, name).ok_or_else(|| {
                SqlError::UnknownColumn {
                    name: format!("{qualifier}.{name}"),
                    pos,
                }
            })?;
            (idx, dtype)
        } else {
            let matches: Vec<(usize, DataType)> = self
                .tables
                .iter()
                .enumerate()
                .filter_map(|(i, t)| self.catalog.column_type(&t.name, name).map(|d| (i, d)))
                .collect();
            match matches.len() {
                0 => {
                    return Err(SqlError::UnknownColumn {
                        name: name.to_string(),
                        pos,
                    })
                }
                1 => matches[0],
                _ => {
                    return Err(SqlError::AmbiguousColumn {
                        name: name.to_string(),
                        tables: matches
                            .iter()
                            .map(|&(i, _)| self.tables[i].name.clone())
                            .collect(),
                        pos,
                    })
                }
            }
        };
        if dtype == DataType::Str {
            return Err(SqlError::Unsupported {
                what: format!(
                    "string column {name:?} (string data is only reachable through encoded LIKE rewrites)"
                ),
                pos,
            });
        }
        Ok((idx, dtype))
    }

    /// Lower an AST expression to a [`ScalarExpr`], collecting the relations
    /// it references.
    fn lower_expr(&self, expr: &Expr) -> Result<Lowered, SqlError> {
        match expr {
            Expr::Number { value, .. } => Ok(Lowered {
                expr: ScalarExpr::lit(*value),
                tables: BTreeSet::new(),
            }),
            Expr::Column { table, name, pos } => {
                let (idx, _) = self.resolve_column(table.as_deref(), name, *pos)?;
                let mut tables = BTreeSet::new();
                tables.insert(idx);
                Ok(Lowered {
                    // The engine addresses columns by bare name (CH column
                    // names are globally unique; ambiguity was just checked).
                    expr: ScalarExpr::col(name.clone()),
                    tables,
                })
            }
            Expr::Binary { op, lhs, rhs, .. } => {
                let l = self.lower_expr(lhs)?;
                let r = self.lower_expr(rhs)?;
                let mut tables = l.tables;
                tables.extend(r.tables);
                let expr = match op {
                    BinOp::Add => l.expr + r.expr,
                    BinOp::Sub => l.expr - r.expr,
                    BinOp::Mul => l.expr * r.expr,
                };
                Ok(Lowered { expr, tables })
            }
        }
    }

    fn run(self) -> Result<BoundQuery, SqlError> {
        let mut filters: Vec<Vec<Predicate>> = vec![Vec::new(); self.tables.len()];
        let mut joins: Vec<BoundJoin> = Vec::new();

        for condition in &self.stmt.conditions {
            match condition {
                Condition::Like {
                    table,
                    column,
                    pattern,
                    pos,
                } => {
                    let (idx, predicate) =
                        self.bind_like(table.as_deref(), column, pattern, *pos)?;
                    filters[idx].push(predicate);
                }
                Condition::Cmp { lhs, op, rhs, pos } => {
                    self.bind_cmp(lhs, *op, rhs, *pos, &mut filters, &mut joins)?;
                }
            }
        }

        // GROUP BY: all keys from one relation, integer-typed.
        let mut group_by = Vec::new();
        let mut group_table: Option<usize> = None;
        let group_pos = self.stmt.group_by.first().map_or(0, |g| g.pos);
        for key in &self.stmt.group_by {
            let (idx, dtype) = self.resolve_column(key.table.as_deref(), &key.name, key.pos)?;
            if !matches!(dtype, DataType::I64 | DataType::I32) {
                return Err(SqlError::Unsupported {
                    what: format!("non-integer GROUP BY key {:?} ({dtype})", key.name),
                    pos: key.pos,
                });
            }
            match group_table {
                None => group_table = Some(idx),
                Some(t) if t == idx => {}
                Some(t) => {
                    return Err(SqlError::Unsupported {
                        what: format!(
                            "GROUP BY keys from more than one relation ({} and {})",
                            self.tables[t].name, self.tables[idx].name
                        ),
                        pos: key.pos,
                    })
                }
            }
            group_by.push(key.name.clone());
        }

        // SELECT list: the grouping keys (in order), then the aggregates.
        let mut aggregates = Vec::new();
        let mut agg_pos = Vec::new();
        let mut agg_tables = BTreeSet::new();
        let mut leading_columns = 0usize;
        for item in &self.stmt.items {
            match item {
                SelectItem::Column { table, name, pos } => {
                    if !aggregates.is_empty() {
                        return Err(SqlError::Unsupported {
                            what: "bare columns after an aggregate in the SELECT list".into(),
                            pos: *pos,
                        });
                    }
                    if group_by.is_empty() {
                        return Err(SqlError::Unsupported {
                            what: format!(
                                "bare column {name:?} without a GROUP BY (only aggregates)"
                            ),
                            pos: *pos,
                        });
                    }
                    let (idx, _) = self.resolve_column(table.as_deref(), name, *pos)?;
                    match group_by.get(leading_columns) {
                        Some(key) if *key == *name && Some(idx) == group_table => {}
                        _ => {
                            return Err(SqlError::Unsupported {
                                what: format!(
                                    "SELECT column {name:?} must list the GROUP BY keys in order"
                                ),
                                pos: *pos,
                            })
                        }
                    }
                    leading_columns += 1;
                }
                SelectItem::Aggregate { func, arg, pos } => {
                    let agg = self.bind_aggregate(*func, arg.as_ref(), *pos, &mut agg_tables)?;
                    aggregates.push(agg);
                    agg_pos.push(*pos);
                }
            }
        }
        if aggregates.is_empty() {
            return Err(SqlError::Unsupported {
                what: "a query without aggregates (the engine computes aggregations)".into(),
                pos: self.stmt.items.first().map_or(0, select_item_pos),
            });
        }
        if leading_columns != group_by.len() {
            return Err(SqlError::Unsupported {
                what: format!(
                    "the SELECT list must lead with all {} GROUP BY key(s)",
                    group_by.len()
                ),
                pos: group_pos,
            });
        }

        // ORDER BY: either a prefix of the grouping keys (ascending — the
        // order the engine already produces) or one aggregate descending
        // (the top-k path; the planner checks the shape supports it).
        let mut order_by = Vec::new();
        for (i, item) in self.stmt.order_by.iter().enumerate() {
            match &item.key {
                OrderKey::Column { table, name, pos } => {
                    let (idx, _) = self.resolve_column(table.as_deref(), name, *pos)?;
                    let matches_key =
                        group_by.get(i).is_some_and(|k| k == name) && Some(idx) == group_table;
                    if !matches_key {
                        return Err(SqlError::Unsupported {
                            what: format!(
                                "ORDER BY {name:?} (keys must follow the GROUP BY order, which \
                                 the engine already produces)"
                            ),
                            pos: *pos,
                        });
                    }
                    if item.desc {
                        return Err(SqlError::Unsupported {
                            what: "descending key order (groups are emitted ascending)".into(),
                            pos: item.pos,
                        });
                    }
                    order_by.push((BoundOrder::GroupKey(i), *pos));
                }
                OrderKey::Aggregate { func, arg, pos } => {
                    let mut scratch = BTreeSet::new();
                    let agg = self.bind_aggregate(*func, arg.as_ref(), *pos, &mut scratch)?;
                    let Some(agg_index) = aggregates.iter().position(|a| *a == agg) else {
                        return Err(SqlError::Unsupported {
                            what: "ORDER BY an aggregate that is not in the SELECT list".into(),
                            pos: *pos,
                        });
                    };
                    if !item.desc {
                        return Err(SqlError::Unsupported {
                            what: "ascending aggregate order (top-k keeps the largest)".into(),
                            pos: item.pos,
                        });
                    }
                    if i != 0 || self.stmt.order_by.len() != 1 {
                        return Err(SqlError::Unsupported {
                            what: "mixing aggregate and key ORDER BY items".into(),
                            pos: item.pos,
                        });
                    }
                    order_by.push((BoundOrder::Aggregate(agg_index), *pos));
                }
            }
        }

        // HAVING: each conjunct reads a grouping key or a SELECT-list
        // aggregate, so it can run as a finisher over already-folded group
        // rows without re-touching base data.
        let mut having = Vec::new();
        for cond in &self.stmt.having {
            if group_by.is_empty() {
                return Err(SqlError::Unsupported {
                    what: "HAVING without GROUP BY (scalar aggregates have no rows to filter)"
                        .into(),
                    pos: cond.pos,
                });
            }
            let slot = match &cond.left {
                HavingLeft::Column { table, name, pos } => {
                    let (idx, _) = self.resolve_column(table.as_deref(), name, *pos)?;
                    let key = group_by
                        .iter()
                        .position(|k| k == name)
                        .filter(|_| Some(idx) == group_table);
                    let Some(key) = key else {
                        return Err(SqlError::Unsupported {
                            what: format!("HAVING on column {name:?} that is not a GROUP BY key"),
                            pos: *pos,
                        });
                    };
                    RowSlot::Key(key)
                }
                HavingLeft::Aggregate { func, arg, pos } => {
                    let mut scratch = BTreeSet::new();
                    let agg = self.bind_aggregate(*func, arg.as_ref(), *pos, &mut scratch)?;
                    let Some(agg_index) = aggregates.iter().position(|a| *a == agg) else {
                        return Err(SqlError::Unsupported {
                            what: "HAVING on an aggregate that is not in the SELECT list".into(),
                            pos: *pos,
                        });
                    };
                    RowSlot::Agg(agg_index)
                }
            };
            having.push(HavingPred {
                slot,
                op: lower_cmp(cond.op),
                literal: cond.value,
            });
        }

        Ok(BoundQuery {
            tables: self.tables,
            filters,
            joins,
            group_by,
            group_table,
            group_pos,
            aggregates,
            agg_pos,
            agg_tables,
            having,
            order_by,
            limit: self.stmt.limit,
        })
    }

    fn bind_aggregate(
        &self,
        func: AggFunc,
        arg: Option<&Expr>,
        pos: usize,
        agg_tables: &mut BTreeSet<usize>,
    ) -> Result<AggExpr, SqlError> {
        match (func, arg) {
            (AggFunc::Count, None) => Ok(AggExpr::Count),
            (AggFunc::Count, Some(_)) => Err(SqlError::Unsupported {
                what: "COUNT over an expression (only COUNT(*))".into(),
                pos,
            }),
            (_, None) => Err(SqlError::UnexpectedToken {
                found: "'*'".into(),
                expected: "an expression argument".into(),
                pos,
            }),
            (func, Some(arg)) => {
                let lowered = self.lower_expr(arg)?;
                if lowered.tables.len() > 1 {
                    return Err(SqlError::Unsupported {
                        what: "an aggregate over columns of more than one relation".into(),
                        pos,
                    });
                }
                agg_tables.extend(lowered.tables.iter().copied());
                Ok(match func {
                    AggFunc::Sum => AggExpr::Sum(lowered.expr),
                    AggFunc::Avg => AggExpr::Avg(lowered.expr),
                    AggFunc::Min => AggExpr::Min(lowered.expr),
                    AggFunc::Max => AggExpr::Max(lowered.expr),
                    AggFunc::Count => unreachable!("handled above"),
                })
            }
        }
    }

    /// Resolve `column LIKE 'pattern'` through the catalog's encoded-column
    /// rewrites.
    fn bind_like(
        &self,
        table: Option<&str>,
        column: &str,
        pattern: &str,
        pos: usize,
    ) -> Result<(usize, Predicate), SqlError> {
        let rewrites = self.catalog.like_rewrites_for(column);
        // Candidate rewrites whose relation is in scope (and matches the
        // qualifier, if any).
        let in_scope: Vec<(usize, &crate::catalog::LikeRewrite)> = rewrites
            .iter()
            .filter(|r| table.is_none_or(|t| t == r.table))
            .filter_map(|r| {
                self.tables
                    .iter()
                    .position(|t| t.name == r.table)
                    .map(|i| (i, *r))
            })
            .collect();
        if in_scope.is_empty() {
            // Distinguish "no such column at all" from "real but non-encoded
            // column used with LIKE".
            return match self.resolve_column(table, column, pos) {
                Ok(_) => Err(SqlError::Unsupported {
                    what: format!("LIKE on column {column:?} (no encoded rewrite registered)"),
                    pos,
                }),
                // An unknown column is reported as such; every other
                // resolution error (unknown qualifier table, ambiguity, a
                // Str column) already names the actual problem — pass it
                // through rather than misdirecting the caret at the column.
                Err(SqlError::UnknownColumn { .. }) => Err(SqlError::UnknownColumn {
                    name: column.to_string(),
                    pos,
                }),
                Err(e) => Err(e),
            };
        }
        let tables_matching: BTreeSet<usize> = in_scope.iter().map(|&(i, _)| i).collect();
        if tables_matching.len() > 1 {
            return Err(SqlError::AmbiguousColumn {
                name: column.to_string(),
                tables: tables_matching
                    .iter()
                    .map(|&i| self.tables[i].name.clone())
                    .collect(),
                pos,
            });
        }
        match in_scope.iter().find(|(_, r)| r.pattern == pattern) {
            Some(&(idx, rewrite)) => Ok((idx, rewrite.predicate.clone())),
            None => Err(SqlError::Unsupported {
                what: format!(
                    "LIKE pattern {pattern:?} on {column:?} (encoded patterns: {})",
                    in_scope
                        .iter()
                        .map(|(_, r)| format!("{:?}", r.pattern))
                        .collect::<Vec<_>>()
                        .join(", ")
                ),
                pos,
            }),
        }
    }

    fn bind_cmp(
        &self,
        lhs: &Expr,
        op: ast::CmpOp,
        rhs: &Expr,
        pos: usize,
        filters: &mut [Vec<Predicate>],
        joins: &mut Vec<BoundJoin>,
    ) -> Result<(), SqlError> {
        let l = self.lower_expr(lhs)?;
        let r = self.lower_expr(rhs)?;
        match (l.tables.is_empty(), r.tables.is_empty()) {
            (true, true) => Err(SqlError::Unsupported {
                what: "a comparison between two constants".into(),
                pos,
            }),
            // column-side vs constant-side: a per-relation filter.
            (false, true) => self.push_filter(&l, lower_cmp(op), &r.expr, pos, filters, lhs.pos()),
            (true, false) => self.push_filter(
                &r,
                flip_cmp(lower_cmp(op)),
                &l.expr,
                pos,
                filters,
                rhs.pos(),
            ),
            // both sides reference relations: an equi-join condition.
            (false, false) => {
                if op != ast::CmpOp::Eq {
                    return Err(SqlError::Unsupported {
                        what: "non-equality join conditions".into(),
                        pos,
                    });
                }
                if l.tables.len() > 1 || r.tables.len() > 1 {
                    return Err(SqlError::Unsupported {
                        what: "a join key mixing columns of several relations".into(),
                        pos,
                    });
                }
                // Both sides are non-empty in this arm; the else branch is a
                // typed error rather than a query-path panic.
                let (Some(&left), Some(&right)) = (l.tables.first(), r.tables.first()) else {
                    return Err(SqlError::Unsupported {
                        what: "a join condition with a side referencing no relation".into(),
                        pos,
                    });
                };
                if left == right {
                    return Err(SqlError::Unsupported {
                        what: "a column-to-column comparison within one relation".into(),
                        pos,
                    });
                }
                joins.push(BoundJoin {
                    left,
                    left_key: l.expr,
                    right,
                    right_key: r.expr,
                    pos,
                });
                Ok(())
            }
        }
    }

    fn push_filter(
        &self,
        column_side: &Lowered,
        op: CmpOp,
        constant_side: &ScalarExpr,
        pos: usize,
        filters: &mut [Vec<Predicate>],
        column_pos: usize,
    ) -> Result<(), SqlError> {
        let ScalarExpr::Col(name) = &column_side.expr else {
            return Err(SqlError::Unsupported {
                what: "a filter over a computed expression (compare a single column with a \
                       literal)"
                    .into(),
                pos: column_pos,
            });
        };
        let literal = const_eval(constant_side).ok_or_else(|| SqlError::Unsupported {
            what: "a non-constant comparison value".into(),
            pos,
        })?;
        let table = *column_side
            .tables
            .first()
            .ok_or_else(|| SqlError::Unsupported {
                what: "a filter column that references no relation".into(),
                pos: column_pos,
            })?;
        filters[table].push(Predicate::new(name.clone(), op, literal));
        Ok(())
    }
}

fn select_item_pos(item: &SelectItem) -> usize {
    match item {
        SelectItem::Column { pos, .. } | SelectItem::Aggregate { pos, .. } => *pos,
    }
}

/// Evaluate a constant (column-free) expression.
fn const_eval(expr: &ScalarExpr) -> Option<f64> {
    match expr {
        ScalarExpr::Literal(v) => Some(*v),
        ScalarExpr::Col(_) => None,
        ScalarExpr::Add(a, b) => Some(const_eval(a)? + const_eval(b)?),
        ScalarExpr::Sub(a, b) => Some(const_eval(a)? - const_eval(b)?),
        ScalarExpr::Mul(a, b) => Some(const_eval(a)? * const_eval(b)?),
    }
}

fn lower_cmp(op: ast::CmpOp) -> CmpOp {
    match op {
        ast::CmpOp::Eq => CmpOp::Eq,
        ast::CmpOp::Ne => CmpOp::Ne,
        ast::CmpOp::Lt => CmpOp::Lt,
        ast::CmpOp::Le => CmpOp::Le,
        ast::CmpOp::Gt => CmpOp::Gt,
        ast::CmpOp::Ge => CmpOp::Ge,
    }
}

/// Mirror a comparison when the literal moves from right to left:
/// `5 < col` becomes `col > 5`.
fn flip_cmp(op: CmpOp) -> CmpOp {
    match op {
        CmpOp::Eq => CmpOp::Eq,
        CmpOp::Ne => CmpOp::Ne,
        CmpOp::Lt => CmpOp::Gt,
        CmpOp::Le => CmpOp::Ge,
        CmpOp::Gt => CmpOp::Lt,
        CmpOp::Ge => CmpOp::Le,
    }
}
