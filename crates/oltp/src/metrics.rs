//! Transactional throughput accounting.

use std::sync::atomic::{AtomicU64, Ordering};

/// Counters of committed and aborted transactions.
///
/// The counters are purely functional bookkeeping; the *modelled* throughput
/// reported in the figures comes from `htap_sim::InterferenceModel`, fed with
/// the worker placement that produced these counts.
#[derive(Debug, Default)]
pub struct ThroughputCounter {
    committed: AtomicU64,
    aborted: AtomicU64,
}

impl ThroughputCounter {
    /// New counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a commit.
    pub fn record_commit(&self) {
        self.committed.fetch_add(1, Ordering::Relaxed);
    }

    /// Record an abort.
    pub fn record_abort(&self) {
        self.aborted.fetch_add(1, Ordering::Relaxed);
    }

    /// Committed transactions so far.
    pub fn committed(&self) -> u64 {
        self.committed.load(Ordering::Relaxed)
    }

    /// Aborted transactions so far.
    pub fn aborted(&self) -> u64 {
        self.aborted.load(Ordering::Relaxed)
    }

    /// Abort rate in `[0, 1]` (0 when nothing has run yet).
    pub fn abort_rate(&self) -> f64 {
        let c = self.committed() as f64;
        let a = self.aborted() as f64;
        if c + a == 0.0 {
            0.0
        } else {
            a / (c + a)
        }
    }

    /// Reset both counters.
    pub fn reset(&self) {
        self.committed.store(0, Ordering::Relaxed);
        self.aborted.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_abort_rate() {
        let c = ThroughputCounter::new();
        assert_eq!(c.abort_rate(), 0.0);
        for _ in 0..8 {
            c.record_commit();
        }
        for _ in 0..2 {
            c.record_abort();
        }
        assert_eq!(c.committed(), 8);
        assert_eq!(c.aborted(), 2);
        assert!((c.abort_rate() - 0.2).abs() < 1e-12);
        c.reset();
        assert_eq!(c.committed(), 0);
        assert_eq!(c.aborted(), 0);
    }

    #[test]
    fn concurrent_updates_are_not_lost() {
        use std::sync::Arc;
        let c = Arc::new(ThroughputCounter::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.record_commit();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.committed(), 4000);
    }
}
