//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! The API subset this workspace uses is provided with `parking_lot`
//! semantics: `lock()` / `read()` / `write()` return guards directly (no
//! `Result`), and a poisoned `std` lock is recovered transparently — a
//! panicking thread must not poison simulation state for every other thread.
//! Swap the workspace dependency for the real crate when network access is
//! available; no call site needs to change.
//!
//! # Runtime lock-order checking
//!
//! Because the workspace owns this shim, it doubles as a dynamic deadlock
//! detector in debug builds (`cfg(debug_assertions)` — every `cargo test`
//! run). Each lock gets a lazily assigned id; each thread keeps a stack of
//! the locks it currently holds; and a process-global registry records every
//! *ordered pair* `(A, B)` meaning "B was acquired while A was held". If a
//! thread then acquires `A` while holding `B`, the two orders compose into a
//! potential deadlock cycle — even if no execution has deadlocked yet — and
//! the checker panics immediately with both acquisition sites and the full
//! held-lock stack. This turns a probabilistic hang into a deterministic
//! test failure: any single interleaving that exercises both orders is
//! enough to catch the inversion.
//!
//! Two deliberate exclusions keep the checker silent on correct code:
//!
//! - **Shared–shared pairs are not recorded.** Read guards taken in
//!   per-query column order (scan pipelines take them in projection order,
//!   which varies by query) would otherwise register spurious inversions;
//!   two shared acquisitions cannot deadlock each other without an
//!   intervening writer, and any such writer participates in an
//!   exclusive-edged cycle the checker *does* track.
//! - **`try_*` acquisitions record no edges.** A non-blocking attempt cannot
//!   participate in a deadlock; successful tries still push onto the held
//!   stack so blocking acquisitions made while they are held are checked.
//!
//! Release builds compile all of this out: the guard wrappers become
//! zero-cost newtypes around the `std::sync` guards.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{self, LockResult, TryLockError};

#[cfg(debug_assertions)]
use std::panic::Location;
#[cfg(debug_assertions)]
use std::sync::atomic::AtomicU64;

/// Runtime lock-order checker state. Active only under `debug_assertions`;
/// the release-mode twin of this module stubs the introspection API out.
#[cfg(debug_assertions)]
pub mod lock_order {
    use std::cell::RefCell;
    use std::collections::BTreeMap;
    use std::panic::Location;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Mutex as StdMutex;

    /// 0 means "no id assigned yet"; real ids start at 1.
    static NEXT_ID: AtomicU64 = AtomicU64::new(1);

    /// Resolve a lock's id, assigning one on first acquisition. Lazy because
    /// `Mutex::new`/`RwLock::new` are `const fn` and cannot touch a global
    /// counter.
    pub(crate) fn id_of(cell: &AtomicU64) -> u64 {
        let id = cell.load(Ordering::Relaxed);
        if id != 0 {
            return id;
        }
        let fresh = NEXT_ID.fetch_add(1, Ordering::Relaxed);
        match cell.compare_exchange(0, fresh, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => fresh,
            Err(existing) => existing,
        }
    }

    #[derive(Clone, Copy)]
    struct HeldLock {
        id: u64,
        exclusive: bool,
        site: &'static Location<'static>,
    }

    thread_local! {
        /// The locks this thread currently holds, in acquisition order.
        static HELD: RefCell<Vec<HeldLock>> = const { RefCell::new(Vec::new()) };
    }

    /// Where an ordered pair `(held, acquired)` was first observed.
    struct PairSites {
        held_site: &'static Location<'static>,
        acquired_site: &'static Location<'static>,
    }

    /// Every `(held, acquired)` pair ever observed, process-wide. A plain
    /// `std` mutex (not this crate's wrapper) so the checker never recurses
    /// into itself.
    static PAIRS: StdMutex<BTreeMap<(u64, u64), PairSites>> = StdMutex::new(BTreeMap::new());

    fn pairs_guard() -> std::sync::MutexGuard<'static, BTreeMap<(u64, u64), PairSites>> {
        match PAIRS.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Token proving an entry was pushed on this thread's held stack; pops
    /// it (last occurrence of the id — guards may drop out of order) on drop.
    pub(crate) struct Held {
        id: u64,
    }

    impl Drop for Held {
        fn drop(&mut self) {
            HELD.with(|held| {
                let mut held = held.borrow_mut();
                if let Some(pos) = held.iter().rposition(|h| h.id == self.id) {
                    held.remove(pos);
                }
            });
        }
    }

    /// Record a (blocking) acquisition: check every held lock for a known
    /// reverse ordering, record the forward orderings, and push onto the
    /// held stack. Called *before* the underlying lock call so an inversion
    /// panics instead of deadlocking when the schedule happens to block.
    pub(crate) fn acquire(
        cell: &AtomicU64,
        exclusive: bool,
        site: &'static Location<'static>,
    ) -> Held {
        let id = id_of(cell);
        HELD.with(|held| {
            // Single borrow, no clone: the morsel loop acquires column
            // guards on its steady-state path and must not allocate here.
            {
                let stack = held.borrow();
                for h in stack.iter() {
                    // Re-acquiring a lock this thread already holds (shared
                    // re-entrancy) is not an ordering between two locks.
                    if h.id == id {
                        continue;
                    }
                    // Shared–shared: cannot deadlock without an exclusive edge.
                    if !h.exclusive && !exclusive {
                        continue;
                    }
                    check_and_record(h, id, site, &stack);
                }
            }
            held.borrow_mut().push(HeldLock {
                id,
                exclusive,
                site,
            });
        });
        Held { id }
    }

    /// Push a successful non-blocking acquisition: held-stack only, no edges.
    pub(crate) fn acquire_try(
        cell: &AtomicU64,
        exclusive: bool,
        site: &'static Location<'static>,
    ) -> Held {
        let id = id_of(cell);
        HELD.with(|held| {
            held.borrow_mut().push(HeldLock {
                id,
                exclusive,
                site,
            })
        });
        Held { id }
    }

    fn check_and_record(
        held: &HeldLock,
        acquiring: u64,
        site: &'static Location<'static>,
        stack: &[HeldLock],
    ) {
        let inversion = {
            let mut pairs = pairs_guard();
            if let Some(prior) = pairs.get(&(acquiring, held.id)) {
                // Reverse order already on record: format the report while
                // the registry is still readable, panic after releasing it.
                Some(format!(
                    "lock-order inversion: lock #{a} acquired at {here} while holding lock \
                     #{b} (acquired at {held_site}), but the opposite order was recorded \
                     earlier: #{b} at {prior_acq} while holding #{a} at {prior_held}. A \
                     concurrent schedule interleaving these two orders deadlocks.\n\
                     held by this thread now: {stack}",
                    a = acquiring,
                    b = held.id,
                    here = site,
                    held_site = held.site,
                    prior_acq = prior.acquired_site,
                    prior_held = prior.held_site,
                    stack = describe(stack),
                ))
            } else {
                pairs.entry((held.id, acquiring)).or_insert(PairSites {
                    held_site: held.site,
                    acquired_site: site,
                });
                None
            }
        };
        if let Some(message) = inversion {
            panic!("{message}");
        }
    }

    fn describe(stack: &[HeldLock]) -> String {
        if stack.is_empty() {
            return "(empty)".to_string();
        }
        stack
            .iter()
            .map(|h| {
                format!(
                    "#{} ({}) at {}",
                    h.id,
                    if h.exclusive { "exclusive" } else { "shared" },
                    h.site
                )
            })
            .collect::<Vec<_>>()
            .join(" -> ")
    }

    /// Whether the runtime checker is compiled in (true in debug builds).
    pub fn is_active() -> bool {
        true
    }

    /// Number of distinct ordered `(held, acquired)` pairs observed so far.
    pub fn pairs_recorded() -> usize {
        pairs_guard().len()
    }

    /// Number of locks the current thread holds (via this shim).
    pub fn held_by_current_thread() -> usize {
        HELD.with(|held| held.borrow().len())
    }
}

/// Release-mode stub: the checker is compiled out, introspection reports so.
#[cfg(not(debug_assertions))]
pub mod lock_order {
    /// Whether the runtime checker is compiled in (false in release builds).
    pub fn is_active() -> bool {
        false
    }

    /// No pairs are recorded in release builds.
    pub fn pairs_recorded() -> usize {
        0
    }

    /// Not tracked in release builds.
    pub fn held_by_current_thread() -> usize {
        0
    }
}

/// A mutual-exclusion primitive with `parking_lot`'s panic-free API.
pub struct Mutex<T: ?Sized> {
    #[cfg(debug_assertions)]
    id: AtomicU64,
    inner: sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`]. Wraps the `std` guard; in debug
/// builds it also pops the lock-order checker's held stack on drop.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: sync::MutexGuard<'a, T>,
    #[cfg(debug_assertions)]
    _held: lock_order::Held,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

fn recover<G>(result: LockResult<G>) -> G {
    match result {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            #[cfg(debug_assertions)]
            id: AtomicU64::new(0),
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        recover(self.inner.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the mutex, blocking until it is available.
    #[track_caller]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        #[cfg(debug_assertions)]
        let _held = lock_order::acquire(&self.id, true, Location::caller());
        MutexGuard {
            inner: recover(self.inner.lock()),
            #[cfg(debug_assertions)]
            _held,
        }
    }

    /// Try to acquire the mutex without blocking.
    #[track_caller]
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        let inner = match self.inner.try_lock() {
            Ok(guard) => guard,
            Err(TryLockError::Poisoned(poisoned)) => poisoned.into_inner(),
            Err(TryLockError::WouldBlock) => return None,
        };
        Some(MutexGuard {
            inner,
            #[cfg(debug_assertions)]
            _held: lock_order::acquire_try(&self.id, true, Location::caller()),
        })
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        recover(self.inner.get_mut())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// A reader-writer lock with `parking_lot`'s panic-free API.
pub struct RwLock<T: ?Sized> {
    #[cfg(debug_assertions)]
    id: AtomicU64,
    inner: sync::RwLock<T>,
}

/// RAII guard returned by [`RwLock::read`]. Wraps the `std` guard; in debug
/// builds it also pops the lock-order checker's held stack on drop.
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
    #[cfg(debug_assertions)]
    _held: lock_order::Held,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLockReadGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// RAII guard returned by [`RwLock::write`]. Wraps the `std` guard; in debug
/// builds it also pops the lock-order checker's held stack on drop.
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
    #[cfg(debug_assertions)]
    _held: lock_order::Held,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLockWriteGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

impl<T> RwLock<T> {
    /// Create a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            #[cfg(debug_assertions)]
            id: AtomicU64::new(0),
            inner: sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        recover(self.inner.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    #[track_caller]
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        #[cfg(debug_assertions)]
        let _held = lock_order::acquire(&self.id, false, Location::caller());
        RwLockReadGuard {
            inner: recover(self.inner.read()),
            #[cfg(debug_assertions)]
            _held,
        }
    }

    /// Acquire an exclusive write guard.
    #[track_caller]
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        #[cfg(debug_assertions)]
        let _held = lock_order::acquire(&self.id, true, Location::caller());
        RwLockWriteGuard {
            inner: recover(self.inner.write()),
            #[cfg(debug_assertions)]
            _held,
        }
    }

    /// Try to acquire a shared read guard without blocking.
    #[track_caller]
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        let inner = match self.inner.try_read() {
            Ok(guard) => guard,
            Err(TryLockError::Poisoned(poisoned)) => poisoned.into_inner(),
            Err(TryLockError::WouldBlock) => return None,
        };
        Some(RwLockReadGuard {
            inner,
            #[cfg(debug_assertions)]
            _held: lock_order::acquire_try(&self.id, false, Location::caller()),
        })
    }

    /// Try to acquire an exclusive write guard without blocking.
    #[track_caller]
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        let inner = match self.inner.try_write() {
            Ok(guard) => guard,
            Err(TryLockError::Poisoned(poisoned)) => poisoned.into_inner(),
            Err(TryLockError::WouldBlock) => return None,
        };
        Some(RwLockWriteGuard {
            inner,
            #[cfg(debug_assertions)]
            _held: lock_order::acquire_try(&self.id, true, Location::caller()),
        })
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        recover(self.inner.get_mut())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_read() {
            Some(guard) => f.debug_struct("RwLock").field("data", &&*guard).finish(),
            None => f.debug_struct("RwLock").field("data", &"<locked>").finish(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(format!("{m:?}").contains('2'));
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn guards_pop_held_stack_in_any_drop_order() {
        let a = Mutex::new(());
        let b = Mutex::new(());
        let base = lock_order::held_by_current_thread();
        let ga = a.lock();
        let gb = b.lock();
        if lock_order::is_active() {
            assert_eq!(lock_order::held_by_current_thread(), base + 2);
        }
        // Drop out of acquisition order: a's guard first.
        drop(ga);
        drop(gb);
        if lock_order::is_active() {
            assert_eq!(lock_order::held_by_current_thread(), base);
        }
    }

    #[test]
    fn consistent_nesting_is_silent() {
        let a = Mutex::new(0);
        let b = Mutex::new(0);
        for _ in 0..3 {
            let ga = a.lock();
            let gb = b.lock();
            drop(gb);
            drop(ga);
        }
    }

    #[cfg(debug_assertions)]
    #[test]
    fn inversion_panics_with_both_sites() {
        let a = std::sync::Arc::new(Mutex::new(0));
        let b = std::sync::Arc::new(Mutex::new(0));
        {
            let ga = a.lock();
            let gb = b.lock(); // records (a, b)
            drop(gb);
            drop(ga);
        }
        let (a2, b2) = (a.clone(), b.clone());
        // The reverse nesting is detected from the recorded pair alone, on a
        // fresh thread (its unwind is contained) and without any real
        // contention — no second thread has to be mid-acquisition.
        let result = std::thread::spawn(move || {
            let gb = b2.lock();
            let ga = a2.lock(); // inversion: (b, a) vs recorded (a, b)
            drop(ga);
            drop(gb);
        })
        .join();
        let payload = result.expect_err("inversion must panic");
        let message = payload
            .downcast_ref::<String>()
            .expect("panic carries a formatted report");
        assert!(message.contains("lock-order inversion"), "{message}");
        assert!(message.contains("held by this thread now"), "{message}");
    }

    #[cfg(debug_assertions)]
    #[test]
    fn try_lock_records_no_edges() {
        let a = Mutex::new(0);
        let b = Mutex::new(0);
        {
            let ga = a.try_lock().expect("uncontended");
            let gb = b.try_lock().expect("uncontended");
            drop(gb);
            drop(ga);
        }
        // Reverse nesting via try_*: still silent — non-blocking attempts
        // cannot deadlock, so no ordering was recorded either way.
        let gb = b.try_lock().expect("uncontended");
        let ga = a.try_lock().expect("uncontended");
        drop(ga);
        drop(gb);
    }

    #[cfg(debug_assertions)]
    #[test]
    fn shared_shared_orders_are_ignored() {
        let a = RwLock::new(0);
        let b = RwLock::new(0);
        {
            let ga = a.read();
            let gb = b.read();
            drop(gb);
            drop(ga);
        }
        // Reverse order of two *shared* acquisitions is fine.
        let gb = b.read();
        let ga = a.read();
        drop(ga);
        drop(gb);
    }

    #[cfg(debug_assertions)]
    #[test]
    fn write_read_inversion_is_caught() {
        let a = std::sync::Arc::new(RwLock::new(0));
        let b = std::sync::Arc::new(RwLock::new(0));
        {
            let ga = a.write();
            let gb = b.read(); // records (a, b): exclusive edge
            drop(gb);
            drop(ga);
        }
        let (a2, b2) = (a.clone(), b.clone());
        let result = std::thread::spawn(move || {
            let gb = b2.write();
            let ga = a2.read(); // (b, a) completes the cycle
            drop(ga);
            drop(gb);
        })
        .join();
        assert!(result.is_err(), "write/read inversion must panic");
    }

    #[test]
    fn introspection_reports_checker_state() {
        assert_eq!(lock_order::is_active(), cfg!(debug_assertions));
        let a = Mutex::new(0);
        let b = Mutex::new(0);
        let before = lock_order::pairs_recorded();
        let ga = a.lock();
        let gb = b.lock();
        drop(gb);
        drop(ga);
        if lock_order::is_active() {
            assert!(lock_order::pairs_recorded() > before);
        } else {
            assert_eq!(lock_order::pairs_recorded(), 0);
        }
    }
}
