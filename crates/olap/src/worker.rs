//! The OLAP engine's worker manager and the elastic worker team.
//!
//! "The OLAP engine also includes a Worker Manager, which works in a similar
//! way to the WM of the OLTP engine" (§3.3): it holds the CPUs the RDE engine
//! has granted and exposes them as an execution placement. Each pipeline
//! worker is affinitised to one core; the placement (cores per socket) is what
//! both the routing policies and the cost model consume.
//!
//! Execution side: [`OlapWorkerManager::team`] snapshots the current grant
//! into a [`WorkerTeam`] — one pipeline worker per granted core. The team
//! runs morsel-driven pipelines on real OS threads (see
//! [`crate::exec::QueryExecutor::execute_parallel`]), pinning each worker to
//! its core where the host allows it, so an elastic grant changes *measured*
//! scan time, not just the modelled one.

use htap_sim::{CoreId, CpuSet, ExecPlacement, SocketId, Topology};
use parking_lot::RwLock;

/// Best-effort pinning of the calling thread to one CPU.
///
/// The simulated topology's core numbering is passed straight to the host;
/// on machines with fewer CPUs than the simulated server (or ones that
/// refuse the affinity mask) the call fails and the worker simply stays
/// unpinned — correctness never depends on placement, only locality does.
#[cfg(target_os = "linux")]
fn pin_current_thread(core: CoreId) {
    // `cpu_set_t` is 1024 bits; `sched_setaffinity` is provided by the libc
    // that std already links against.
    extern "C" {
        fn sched_setaffinity(pid: i32, cpusetsize: usize, mask: *const u64) -> i32;
    }
    let mut mask = [0u64; 16];
    let cpu = core.0 as usize;
    if cpu < 1024 {
        mask[cpu / 64] |= 1 << (cpu % 64);
        // SAFETY: the mask is a valid, live 128-byte buffer and pid 0 means
        // "the calling thread". Failure is deliberately ignored.
        unsafe {
            sched_setaffinity(0, std::mem::size_of_val(&mask), mask.as_ptr());
        }
    }
}

#[cfg(not(target_os = "linux"))]
fn pin_current_thread(_core: CoreId) {}

/// A snapshot of the granted cores, ready to execute one pipeline.
///
/// The team is taken per query ([`OlapWorkerManager::team`]) so that elastic
/// grants and revocations between queries resize the next query's
/// parallelism without synchronising with a running one.
#[derive(Debug, Clone, Default)]
pub struct WorkerTeam {
    cores: Vec<CoreId>,
}

impl WorkerTeam {
    /// A team over an explicit core list (tests, benches).
    pub fn from_cores(cores: Vec<CoreId>) -> Self {
        WorkerTeam { cores }
    }

    /// A single unpinned worker: the degenerate team every query falls back
    /// to when the OLAP engine currently holds no cores.
    pub fn solo() -> Self {
        WorkerTeam::default()
    }

    /// Number of pipeline workers the team fields.
    pub fn size(&self) -> usize {
        self.cores.len().max(1)
    }

    /// The cores backing the team (empty for [`WorkerTeam::solo`]).
    pub fn cores(&self) -> &[CoreId] {
        &self.cores
    }

    /// A team limited to at most `n` workers (no point fielding more workers
    /// than there are morsels).
    pub fn capped(&self, n: usize) -> WorkerTeam {
        let n = n.max(1);
        WorkerTeam {
            cores: self.cores.iter().copied().take(n).collect(),
        }
    }

    /// Run `worker` once per team member, in parallel, and collect the
    /// per-worker results in worker order (deterministic).
    ///
    /// A [`WorkerTeam::solo`] team (no cores) runs inline on the calling
    /// thread — the sequential executor is literally the parallel one with
    /// one worker, which is what makes the 1-vs-N determinism contract
    /// testable. A team *with* cores always spawns, even for one worker, so
    /// every point of a measured scaling sweep runs pinned the same way.
    pub fn run<T: Send, F: Fn(usize) -> T + Sync>(&self, worker: F) -> Vec<T> {
        let n = self.size();
        if self.cores.is_empty() {
            return vec![worker(0)];
        }
        std::thread::scope(|scope| {
            let worker = &worker;
            let handles: Vec<_> = (0..n)
                .map(|idx| {
                    let core = self.cores.get(idx).copied();
                    scope.spawn(move || {
                        if let Some(core) = core {
                            pin_current_thread(core);
                        }
                        worker(idx)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(value) => value,
                    // A worker panic is re-raised on the coordinating
                    // thread with its original payload; swallowing it here
                    // would return a partial result set as if complete.
                    Err(payload) => std::panic::resume_unwind(payload),
                })
                .collect()
        })
    }
}

/// Elastic pool of OLAP pipeline workers.
#[derive(Debug)]
pub struct OlapWorkerManager {
    topology: Topology,
    cores: RwLock<CpuSet>,
}

impl OlapWorkerManager {
    /// New manager with no cores assigned.
    pub fn new(topology: Topology) -> Self {
        OlapWorkerManager {
            topology,
            cores: RwLock::new(CpuSet::new()),
        }
    }

    /// Replace the worker pool with one worker per core of `cores`
    /// (called by the RDE engine during state migration).
    pub fn set_workers(&self, cores: CpuSet) {
        *self.cores.write() = cores;
    }

    /// Add cores to the pool (elastic scale-up).
    pub fn add_cores(&self, cores: &CpuSet) {
        let mut current = self.cores.write();
        *current = current.union(cores);
    }

    /// Remove cores from the pool (elastic scale-down); returns the cores
    /// actually removed.
    pub fn remove_cores(&self, cores: &CpuSet) -> CpuSet {
        let mut current = self.cores.write();
        let removed: CpuSet = current.iter().filter(|c| cores.contains(*c)).collect();
        *current = current.difference(cores);
        removed
    }

    /// The cores currently assigned.
    pub fn cores(&self) -> CpuSet {
        self.cores.read().clone()
    }

    /// Number of workers.
    pub fn worker_count(&self) -> usize {
        self.cores.read().len()
    }

    /// Cores on a given socket.
    pub fn cores_on(&self, socket: SocketId) -> usize {
        self.cores.read().count_on_socket(&self.topology, socket)
    }

    /// The execution placement (cores per socket) used by routing and the
    /// cost model.
    pub fn placement(&self) -> ExecPlacement {
        ExecPlacement::of_cpuset(&self.topology, &self.cores.read())
    }

    /// Worker-to-core assignment, in worker order.
    pub fn affinity(&self) -> Vec<CoreId> {
        self.cores.read().iter().collect()
    }

    /// Snapshot the current grant into an executable [`WorkerTeam`].
    pub fn team(&self) -> WorkerTeam {
        WorkerTeam::from_cores(self.affinity())
    }

    /// The machine topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn placement_reflects_assigned_cores() {
        let topo = Topology::two_socket();
        let wm = OlapWorkerManager::new(topo.clone());
        assert_eq!(wm.worker_count(), 0);
        assert_eq!(wm.placement().total_cores(), 0);

        wm.set_workers(CpuSet::socket(&topo, SocketId(1)));
        assert_eq!(wm.worker_count(), 14);
        assert_eq!(wm.cores_on(SocketId(1)), 14);
        assert_eq!(wm.placement().cores_on(SocketId(1)), 14);
        assert_eq!(wm.placement().cores_on(SocketId(0)), 0);
    }

    #[test]
    fn elastic_add_and_remove() {
        let topo = Topology::two_socket();
        let wm = OlapWorkerManager::new(topo.clone());
        wm.set_workers(CpuSet::socket(&topo, SocketId(1)));
        let borrowed = CpuSet::from_cores([CoreId(0), CoreId(1), CoreId(2), CoreId(3)]);
        wm.add_cores(&borrowed);
        assert_eq!(wm.worker_count(), 18);
        assert_eq!(wm.placement().cores_on(SocketId(0)), 4);

        let removed = wm.remove_cores(&borrowed);
        assert_eq!(removed.len(), 4);
        assert_eq!(wm.worker_count(), 14);
        assert_eq!(wm.cores_on(SocketId(0)), 0);
        // Removing cores we do not hold is a no-op.
        let removed = wm.remove_cores(&CpuSet::from_cores([CoreId(0)]));
        assert_eq!(removed.len(), 0);
    }

    #[test]
    fn affinity_lists_cores_in_order() {
        let topo = Topology::tiny();
        let wm = OlapWorkerManager::new(topo.clone());
        wm.set_workers(CpuSet::from_cores([CoreId(3), CoreId(0)]));
        assert_eq!(wm.affinity(), vec![CoreId(0), CoreId(3)]);
        assert_eq!(wm.topology().sockets, 2);
    }

    #[test]
    fn team_snapshots_the_current_grant() {
        let topo = Topology::tiny();
        let wm = OlapWorkerManager::new(topo);
        assert_eq!(wm.team().size(), 1, "no grant still fields a solo worker");
        wm.set_workers(CpuSet::from_cores([CoreId(0), CoreId(1), CoreId(2)]));
        let team = wm.team();
        assert_eq!(team.size(), 3);
        assert_eq!(team.cores(), &[CoreId(0), CoreId(1), CoreId(2)]);
        // The snapshot is decoupled from later elastic changes.
        wm.set_workers(CpuSet::new());
        assert_eq!(team.size(), 3);
    }

    #[test]
    fn team_runs_one_task_per_worker_in_worker_order() {
        let team = WorkerTeam::from_cores((0..6).map(CoreId).collect());
        let results = team.run(|worker| worker * 10);
        assert_eq!(results, vec![0, 10, 20, 30, 40, 50]);
        // Solo teams run inline.
        let solo = WorkerTeam::solo();
        assert_eq!(solo.size(), 1);
        assert_eq!(solo.run(|w| w), vec![0]);
    }

    #[test]
    fn team_workers_run_concurrently_and_share_state() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let team = WorkerTeam::from_cores((0..4).map(CoreId).collect());
        let counter = AtomicUsize::new(0);
        let claims = team.run(|_| {
            let mut mine = 0;
            while counter.fetch_add(1, Ordering::Relaxed) < 100 {
                mine += 1;
            }
            mine
        });
        let total: usize = claims.iter().sum();
        assert!(
            total >= 100,
            "all claims must be accounted for, got {total}"
        );
    }

    #[test]
    fn capped_team_never_exceeds_the_cap_and_never_drops_to_zero() {
        let team = WorkerTeam::from_cores((0..8).map(CoreId).collect());
        assert_eq!(team.capped(3).size(), 3);
        assert_eq!(team.capped(100).size(), 8);
        assert_eq!(team.capped(0).size(), 1);
        assert_eq!(WorkerTeam::solo().capped(5).size(), 1);
    }
}
