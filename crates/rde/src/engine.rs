//! The RDE engine proper: owner of memory and CPU resources, driver of
//! instance switches, twin synchronisation and ETL, and provider of data
//! access paths to the OLAP engine.

use crate::state::SystemState;
use htap_olap::{OlapEngine, ScanSource};
use htap_oltp::OltpEngine;
use htap_sim::clock::Activity;
use htap_sim::region::RegionDirectory;
use htap_sim::{
    CostModel, EngineId, ExecPlacement, InterferenceModel, OlapTraffic, RegionKind, ResourcePool,
    Seconds, SimClock, SocketId, Stream, Topology, TransferWork, TxnWork,
};
use htap_storage::TableSchema;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;

/// How the OLAP engine accesses the data of a query (§3.3's two access methods
/// plus the OLAP-local case after an ETL).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessMethod {
    /// Read everything from the (inactive) OLTP instance — contiguous access
    /// to the OLTP socket (states S1 and S3-IS "full remote").
    OltpSnapshot,
    /// Read everything from the OLAP engine's own instance (state S2, after ETL).
    OlapLocal,
    /// Split access: OLAP-local rows plus the freshly inserted tail from the
    /// OLTP snapshot (states S3-IS and S3-NI).
    Split,
}

/// Configuration of the RDE engine.
#[derive(Debug, Clone)]
pub struct RdeConfig {
    /// The simulated machine.
    pub topology: Topology,
    /// Socket holding the OLTP instances, index and delta storage.
    pub oltp_socket: SocketId,
    /// Socket holding the OLAP instance.
    pub olap_socket: SocketId,
    /// Administrator-set minimum OLTP cores per socket it occupies
    /// (`OLTPCpuThres` of Algorithm 1).
    pub oltp_min_cores_per_socket: usize,
    /// Administrator-set minimum number of OLTP sockets (`OLTPSockThres`).
    pub oltp_min_sockets: usize,
    /// Number of OLTP-socket cores the OLAP engine may borrow in the
    /// non-isolated hybrid state (set by the DBA; the paper's sensitivity
    /// analysis picks 4, §5.2/§5.3).
    pub elastic_cores: usize,
    /// Throughput of a single OLTP worker with local data and no interference.
    pub base_tps_per_worker: f64,
}

impl Default for RdeConfig {
    fn default() -> Self {
        let topology = Topology::two_socket();
        RdeConfig {
            oltp_socket: SocketId(0),
            olap_socket: SocketId(1),
            oltp_min_cores_per_socket: 4,
            oltp_min_sockets: 1,
            elastic_cores: 4,
            base_tps_per_worker: 85_000.0,
            topology,
        }
    }
}

/// Outcome of an instance switch + twin synchronisation.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SwitchReport {
    /// Rows visible in the new snapshot, across relations.
    pub snapshot_rows: u64,
    /// Records that had to be synchronised into the new active instance.
    pub synced_records: u64,
    /// Records skipped because the active instance had already overwritten them.
    pub skipped_records: u64,
    /// Fresh rows (vs. the OLAP instance) after the switch.
    pub fresh_rows_vs_olap: u64,
    /// Modelled time of the switch + synchronisation.
    pub modeled_time: Seconds,
}

/// Outcome of an ETL into the OLAP instance.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EtlReport {
    /// Rows copied into the OLAP instance.
    pub copied_rows: u64,
    /// Bytes copied.
    pub copied_bytes: u64,
    /// Modelled transfer time (charged to the query, §3.4).
    pub modeled_time: Seconds,
}

/// The Resource and Data Exchange engine.
#[derive(Debug)]
pub struct RdeEngine {
    config: RdeConfig,
    oltp: Arc<OltpEngine>,
    olap: Arc<OlapEngine>,
    pool: Mutex<ResourcePool>,
    regions: Mutex<RegionDirectory>,
    cost: CostModel,
    interference: InterferenceModel,
    clock: SimClock,
    state: Mutex<Option<SystemState>>,
}

impl RdeEngine {
    /// Bootstrap the HTAP system: create both engines, give each one socket
    /// (the paper's bootstrap corresponds to the full-isolation state S2) and
    /// pre-register the memory regions.
    pub fn bootstrap(config: RdeConfig) -> Self {
        config.topology.validate().expect("invalid topology");
        let oltp = Arc::new(OltpEngine::new());
        let olap = Arc::new(OlapEngine::new(config.topology.clone(), config.olap_socket));
        let mut pool = ResourcePool::bootstrap(config.topology.clone());
        pool.oltp_min_cores_per_socket = config.oltp_min_cores_per_socket;
        pool.oltp_min_sockets = config.oltp_min_sockets;

        let mut regions = RegionDirectory::new();
        regions.register(config.oltp_socket, RegionKind::OltpInstance(0), 0);
        regions.register(config.oltp_socket, RegionKind::OltpInstance(1), 0);
        regions.register(config.oltp_socket, RegionKind::OltpDelta, 0);
        regions.register(config.oltp_socket, RegionKind::OltpIndex, 0);
        regions.register(config.olap_socket, RegionKind::OlapInstance, 0);
        regions.register(config.olap_socket, RegionKind::OlapScratch, 0);

        let engine = RdeEngine {
            cost: CostModel::new(config.topology.clone()),
            interference: InterferenceModel::new(config.topology.clone()),
            clock: SimClock::new(),
            oltp,
            olap,
            pool: Mutex::new(pool),
            regions: Mutex::new(regions),
            state: Mutex::new(None),
            config,
        };
        engine.apply_pool_to_engines();
        engine
    }

    /// The engine configuration.
    pub fn config(&self) -> &RdeConfig {
        &self.config
    }

    /// The transactional engine.
    pub fn oltp(&self) -> &Arc<OltpEngine> {
        &self.oltp
    }

    /// The analytical engine.
    pub fn olap(&self) -> &Arc<OlapEngine> {
        &self.olap
    }

    /// The shared simulated clock.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// The cost model used for modelled times.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// The interference model used for modelled OLTP throughput.
    pub fn interference_model(&self) -> &InterferenceModel {
        &self.interference
    }

    /// The state the system was last migrated to, if any.
    pub fn current_state(&self) -> Option<SystemState> {
        *self.state.lock()
    }

    pub(crate) fn set_current_state(&self, state: SystemState) {
        *self.state.lock() = Some(state);
    }

    /// Run `f` with exclusive access to the resource pool.
    pub fn with_pool<R>(&self, f: impl FnOnce(&mut ResourcePool) -> R) -> R {
        f(&mut self.pool.lock())
    }

    /// A human-readable description of the current CPU distribution.
    pub fn describe_resources(&self) -> String {
        self.pool.lock().describe()
    }

    /// Create a relation in both engines (OLTP twin instances + OLAP instance)
    /// and account its memory regions.
    pub fn create_table(&self, schema: TableSchema) -> Result<(), String> {
        self.oltp.create_table(schema.clone())?;
        self.olap.store().create_table(schema)?;
        Ok(())
    }

    /// Push the current pool assignment into both engines' worker managers.
    /// This is the mid-flight elasticity hook: a continuously running OLTP
    /// ingest pool observes the new grant immediately — revoked workers park,
    /// granted workers resume — without being restarted.
    pub fn apply_pool_to_engines(&self) {
        let pool = self.pool.lock();
        self.oltp
            .worker_manager()
            .set_workers(&pool.cores_of(EngineId::Oltp));
        self.olap.set_workers(pool.cores_of(EngineId::Olap));
    }

    /// OLTP worker placement as a cost-model descriptor.
    pub fn txn_work(&self) -> TxnWork {
        let pool = self.pool.lock();
        let cores = pool.cores_of(EngineId::Oltp);
        let mut workers_on = BTreeMap::new();
        for socket in self.config.topology.socket_ids() {
            let n = cores.count_on_socket(&self.config.topology, socket);
            if n > 0 {
                workers_on.insert(socket, n);
            }
        }
        TxnWork {
            workers_on,
            data_socket: self.config.oltp_socket,
            base_tps_per_worker: self.config.base_tps_per_worker,
        }
    }

    /// OLAP compute placement (cores per socket).
    pub fn olap_placement(&self) -> ExecPlacement {
        self.olap.workers().placement()
    }

    /// Number of pipeline workers the OLAP engine fields with the current
    /// grant — the parallelism the next analytical query executes with.
    pub fn olap_worker_count(&self) -> usize {
        self.olap.workers().worker_count()
    }

    /// Modelled OLTP throughput given the OLAP traffic currently active.
    pub fn modeled_oltp_throughput(&self, olap_traffic: &OlapTraffic) -> f64 {
        self.interference
            .oltp_throughput(&self.txn_work(), olap_traffic)
    }

    /// Modelled OLTP throughput with an idle OLAP engine.
    pub fn modeled_oltp_throughput_idle(&self) -> f64 {
        self.modeled_oltp_throughput(&OlapTraffic::idle())
    }

    /// The OLAP traffic descriptor for a query that scans `bytes_per_socket`
    /// with the current OLAP placement (used to model interference on OLTP).
    pub fn olap_traffic_for(&self, bytes_per_socket: &BTreeMap<SocketId, u64>) -> OlapTraffic {
        let placement = self.olap_placement();
        let mut streams = Vec::new();
        for (&source, &bytes) in bytes_per_socket {
            if bytes == 0 {
                continue;
            }
            for (&consumer, &cores) in &placement.cores_on {
                if cores > 0 {
                    streams.push(Stream::sequential(source, consumer, cores));
                }
            }
        }
        OlapTraffic::new(streams, placement.cores_on.clone())
    }

    /// Instruct the OLTP engine to switch its active instance and synchronise
    /// the twins (consuming the update-indication bits), in one quiescence
    /// window so concurrent ingest workers never observe the un-synced
    /// active instance. The modelled time is charged to the
    /// [`Activity::InstanceSync`] counter.
    pub fn switch_and_sync(&self) -> SwitchReport {
        let guard = htap_obs::span("rde.switch");
        let (outcomes, sync) = self.oltp.switch_and_sync_instances();

        let snapshot_rows: u64 = outcomes.values().map(|o| o.snapshot_rows).sum();
        let synced_records: u64 = sync.values().map(|s| s.copied_records).sum();
        let skipped_records: u64 = sync.values().map(|s| s.skipped_records).sum();
        let copied_bytes: u64 = sync.values().map(|s| s.copied_bytes).sum();
        let bytes_per_record = copied_bytes
            .checked_div(synced_records)
            .map_or(64, |b| b.max(1));
        // The RDE engine synchronises with a couple of helper threads; the
        // paper reports ~10 ms for ~1 M modified tuples.
        let modeled_time = self.cost.sync_time(synced_records, bytes_per_record, 2);
        self.clock.advance(Activity::InstanceSync, modeled_time);

        // Keep the region directory in step with the instance sizes.
        {
            let mut regions = self.regions.lock();
            let bytes = self.oltp.instance_bytes();
            let ids: Vec<_> = regions
                .iter()
                .filter(|r| matches!(r.kind, RegionKind::OltpInstance(_)))
                .map(|r| r.id)
                .collect();
            for id in ids {
                regions.resize(id, bytes);
            }
        }

        if guard.is_active() {
            guard.arg("synced_records", synced_records as f64);
            guard.arg("skipped_records", skipped_records as f64);
        }
        SwitchReport {
            snapshot_rows,
            synced_records,
            skipped_records,
            fresh_rows_vs_olap: self.oltp.fresh_rows_vs_olap(),
            modeled_time,
        }
    }

    /// Transfer the fresh delta (inserted + updated records since the last
    /// ETL) from the OLTP snapshot into the OLAP instance. The modelled time
    /// is charged to [`Activity::DataTransfer`] and, per §3.4, is paid by the
    /// query that triggered it.
    pub fn etl_to_olap(&self) -> EtlReport {
        let guard = htap_obs::span("rde.etl");
        let mut copied_rows = 0u64;
        let mut copied_bytes = 0u64;
        for twin in self.oltp.store().tables() {
            let snapshot = twin.snapshot();
            let (updated, inserted) = twin.olap_delta();
            let rows = updated.len() as u64 + (inserted.end - inserted.start);
            if rows == 0 {
                continue;
            }
            let applied = self.olap.store().apply_delta(&snapshot, &updated, inserted);
            twin.mark_olap_synced();
            copied_rows += applied;
            copied_bytes += applied * twin.schema().row_width_bytes();
        }
        let cores = self
            .olap_placement()
            .cores_on(self.config.olap_socket)
            .max(1);
        let modeled_time = if copied_bytes == 0 {
            0.0
        } else {
            self.cost.transfer_time(&TransferWork {
                bytes: copied_bytes,
                from: self.config.oltp_socket,
                to: self.config.olap_socket,
                cores,
            })
        };
        self.clock.advance(Activity::DataTransfer, modeled_time);

        // Track the OLAP instance growth.
        {
            let mut regions = self.regions.lock();
            let ids: Vec<_> = regions
                .iter()
                .filter(|r| r.kind == RegionKind::OlapInstance)
                .map(|r| r.id)
                .collect();
            for id in ids {
                regions.resize(id, self.olap.store().bytes());
            }
        }

        if guard.is_active() {
            guard.arg("copied_rows", copied_rows as f64);
            guard.arg("copied_bytes", copied_bytes as f64);
        }
        EtlReport {
            copied_rows,
            copied_bytes,
            modeled_time,
        }
    }

    /// Build the per-relation access paths for a query over `tables`, using
    /// the given access method.
    pub fn sources_for(
        &self,
        tables: &[&str],
        method: AccessMethod,
    ) -> BTreeMap<String, ScanSource> {
        let mut out = BTreeMap::new();
        for &name in tables {
            // A relation neither engine knows gets no entry: the executor then
            // reports a typed `MissingSource` error instead of this layer
            // panicking mid-schedule.
            let source = match method {
                AccessMethod::OltpSnapshot => self.oltp.store().table(name).map(|twin| {
                    ScanSource::contiguous_snapshot(&twin.snapshot(), self.config.oltp_socket)
                }),
                AccessMethod::OlapLocal => self.olap.store().local_source(name),
                AccessMethod::Split => self.oltp.store().table(name).and_then(|twin| {
                    self.olap.store().table(name).map(|olap_table| {
                        ScanSource::split(
                            Arc::clone(olap_table.table()),
                            olap_table.rows(),
                            self.config.olap_socket,
                            &twin.snapshot(),
                            self.config.oltp_socket,
                        )
                    })
                }),
            };
            if let Some(source) = source {
                out.insert(name.to_string(), source);
            }
        }
        out
    }

    /// Total memory registered per socket (for capacity checks and reports).
    pub fn memory_per_socket(&self) -> BTreeMap<SocketId, u64> {
        let regions = self.regions.lock();
        self.config
            .topology
            .socket_ids()
            .into_iter()
            .map(|s| (s, regions.bytes_on_socket(s)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use htap_storage::{ColumnDef, DataType, Value};

    fn schema(name: &str) -> TableSchema {
        TableSchema::new(
            name,
            vec![
                ColumnDef::new("id", DataType::I64),
                ColumnDef::new("amount", DataType::F64),
            ],
            Some(0),
        )
    }

    fn engine_with_data(rows: u64) -> RdeEngine {
        let rde = RdeEngine::bootstrap(RdeConfig::default());
        rde.create_table(schema("sales")).unwrap();
        for i in 0..rows {
            rde.oltp()
                .bulk_load("sales", i, vec![Value::I64(i as i64), Value::F64(i as f64)])
                .unwrap();
        }
        rde
    }

    #[test]
    fn bootstrap_assigns_one_socket_per_engine() {
        let rde = RdeEngine::bootstrap(RdeConfig::default());
        let txn = rde.txn_work();
        assert_eq!(txn.total_workers(), 14);
        assert_eq!(txn.data_socket, SocketId(0));
        let placement = rde.olap_placement();
        assert_eq!(placement.total_cores(), 14);
        assert_eq!(placement.cores_on(SocketId(1)), 14);
        assert!(rde.current_state().is_none());
        assert!(rde.describe_resources().contains("OLTP: 14"));
        // Regions registered for both sockets.
        assert_eq!(rde.memory_per_socket().len(), 2);
    }

    #[test]
    fn switch_and_sync_reports_fresh_rows_and_charges_time() {
        let rde = engine_with_data(100);
        // Update a few records transactionally.
        for key in 0..5u64 {
            rde.oltp().execute(|mut t| {
                t.update("sales", key, 1, Value::F64(1000.0)).unwrap();
                t.commit().unwrap();
            });
        }
        let report = rde.switch_and_sync();
        assert_eq!(report.snapshot_rows, 100);
        assert_eq!(report.synced_records, 5);
        assert_eq!(
            report.fresh_rows_vs_olap, 100,
            "nothing propagated to OLAP yet"
        );
        assert!(report.modeled_time > 0.0);
        assert!(rde.clock().elapsed(Activity::InstanceSync) > 0.0);
    }

    #[test]
    fn etl_fills_olap_instance_and_is_idempotent() {
        let rde = engine_with_data(50);
        rde.switch_and_sync();
        let etl = rde.etl_to_olap();
        assert_eq!(etl.copied_rows, 50);
        assert_eq!(etl.copied_bytes, 50 * 16);
        assert!(etl.modeled_time > 0.0);
        assert_eq!(rde.olap().store().table("sales").unwrap().rows(), 50);
        assert_eq!(rde.oltp().fresh_rows_vs_olap(), 0);
        // Nothing new: second ETL copies nothing and costs nothing.
        let second = rde.etl_to_olap();
        assert_eq!(second.copied_rows, 0);
        assert_eq!(second.modeled_time, 0.0);
    }

    #[test]
    fn sources_reflect_access_methods() {
        let rde = engine_with_data(40);
        rde.switch_and_sync();
        rde.etl_to_olap();
        // Add fresh rows after the ETL.
        for i in 40..60u64 {
            rde.oltp()
                .bulk_load("sales", i, vec![Value::I64(i as i64), Value::F64(0.0)])
                .unwrap();
        }
        rde.switch_and_sync();

        let remote = rde.sources_for(&["sales"], AccessMethod::OltpSnapshot);
        assert_eq!(remote["sales"].total_rows(), 60);
        assert_eq!(remote["sales"].fresh_rows(), 60);

        let local = rde.sources_for(&["sales"], AccessMethod::OlapLocal);
        assert_eq!(local["sales"].total_rows(), 40);
        assert_eq!(local["sales"].fresh_rows(), 0);

        let split = rde.sources_for(&["sales"], AccessMethod::Split);
        assert_eq!(split["sales"].total_rows(), 60);
        assert_eq!(split["sales"].fresh_rows(), 20);
        let bytes = split["sales"].bytes_per_socket(&["amount"]);
        assert_eq!(bytes[&SocketId(1)], 40 * 8);
        assert_eq!(bytes[&SocketId(0)], 20 * 8);
    }

    #[test]
    fn modeled_oltp_throughput_reacts_to_olap_traffic() {
        let rde = engine_with_data(10);
        let idle = rde.modeled_oltp_throughput_idle();
        assert!(idle > 1.0e6, "14 workers at 85k tps each");
        let mut bytes = BTreeMap::new();
        bytes.insert(SocketId(0), 10_000_000_000u64);
        let traffic = rde.olap_traffic_for(&bytes);
        let busy = rde.modeled_oltp_throughput(&traffic);
        assert!(busy < idle);
    }

    #[test]
    fn create_table_registers_in_both_engines() {
        let rde = RdeEngine::bootstrap(RdeConfig::default());
        rde.create_table(schema("t1")).unwrap();
        assert!(rde.oltp().table("t1").is_some());
        assert!(rde.olap().store().table("t1").is_some());
        assert!(rde.create_table(schema("t1")).is_err());
    }

    #[test]
    fn migrations_resize_a_running_ingest_pool_mid_flight() {
        use crate::state::SystemState;
        let rde = engine_with_data(10);
        let wm = rde.oltp().worker_manager();
        // Start the pool while S3-NI has lent 4 OLTP-socket cores away (10
        // active), with capacity for the whole machine so later grants can
        // grow it.
        rde.migrate(SystemState::S3HybridNonIsolated);
        let capacity = rde.config().topology.total_cores() as usize;
        assert_eq!(wm.start_with_capacity(capacity, |_, _, _| true), capacity);
        assert!(wm.ingest_running());
        assert_eq!(wm.active_workers(), 10);

        // S2 hands the whole socket back: the running pool must grow to 14
        // active workers without restarting.
        rde.migrate(SystemState::S2Isolated);
        assert_eq!(wm.active_workers(), 14);

        // And shrinking again parks the reclaimed workers.
        rde.migrate(SystemState::S3HybridNonIsolated);
        assert_eq!(wm.active_workers(), 10);

        let report = wm.stop();
        assert_eq!(report.committed_per_worker.len(), capacity);
        assert!(report.committed() > 0);
    }

    #[test]
    fn sources_for_unknown_relation_yields_no_entry() {
        // The executor turns the missing entry into a typed `MissingSource`
        // error; this layer must not panic mid-schedule.
        let rde = RdeEngine::bootstrap(RdeConfig::default());
        for method in [
            AccessMethod::OltpSnapshot,
            AccessMethod::OlapLocal,
            AccessMethod::Split,
        ] {
            assert!(rde.sources_for(&["ghost"], method).is_empty());
        }
    }
}
