//! Trace viewer: run a short mixed HTAP workload with tracing live, print
//! the recorded span trees, RDE decisions and metrics to the terminal, and
//! export the whole run as Chrome `trace_event` JSON.
//!
//! Run with: `cargo run --example trace_viewer --release [-- out.json]`
//!
//! Load the exported file in `chrome://tracing` or <https://ui.perfetto.dev>
//! to see the query spans (parse → bind → plan → execute, with per-pipeline
//! and per-worker children), the OLTP commit/fsync-batch events on their
//! ingest lanes, and the scheduler's grant/revoke decisions as instant
//! events.

use adaptive_htap::{obs, HtapConfig, HtapSystem, QueryId};

fn print_span(span: &obs::Span, depth: usize) {
    let indent = "  ".repeat(depth);
    let dur_us = span.end_us.saturating_sub(span.start_us);
    let detail = if span.detail.is_empty() {
        String::new()
    } else {
        format!(" [{}]", span.detail)
    };
    let args = span
        .args
        .iter()
        .map(|(k, v)| format!("{k}={v:.3}"))
        .collect::<Vec<_>>()
        .join(" ");
    println!(
        "{indent}{} {dur_us}µs{detail}{}{}",
        span.name,
        if args.is_empty() { "" } else { " " },
        args
    );
    for child in &span.children {
        print_span(child, depth + 1);
    }
}

fn main() -> Result<(), String> {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "trace.json".into());

    // A small system; ingest and analytics interleave so the trace shows
    // both engines and the scheduler reacting to freshness.
    let system = HtapSystem::build(HtapConfig::small())?;
    system.run_oltp(100);
    for query in [QueryId::Q1, QueryId::Q6, QueryId::Q19] {
        system.execute_query(query).expect("CH query executes");
    }
    system.run_oltp(100);
    system
        .execute_sql("SELECT COUNT(*), SUM(ol_amount) FROM orderline WHERE ol_quantity >= 1")
        .expect("SQL executes");

    // Span trees: one root per query, children per phase/pipeline/worker.
    println!("=== spans ===");
    for span in obs::spans_snapshot() {
        print_span(&span, 0);
    }

    // The RDE decision log: why the scheduler granted/revoked cores.
    println!();
    println!("=== rde decisions ===");
    for d in obs::decisions_snapshot() {
        println!(
            "{:>10}µs {:<12} {} freshness={:.3} pending={} oltp_workers={} \
             cores oltp/olap={}/{} ({})",
            d.ts_us,
            d.action,
            d.state,
            d.freshness,
            d.pending_delta_rows,
            d.active_oltp_workers,
            d.oltp_cores,
            d.olap_cores,
            d.query
        );
    }

    // Metrics registry snapshot: counters and log-linear histograms.
    println!();
    println!("=== metrics ===");
    let snapshot = obs::metrics_snapshot();
    for (name, value) in &snapshot.counters {
        println!("counter   {name} = {value}");
    }
    for (name, value) in &snapshot.gauges {
        println!("gauge     {name} = {value}");
    }
    for (name, h) in &snapshot.histograms {
        println!(
            "histogram {name}: n={} mean={:.1} p50={} p95={} p99={} max={}",
            h.count, h.mean, h.p50, h.p95, h.p99, h.max
        );
    }

    // Export everything (spans + ring events + decisions) as Chrome JSON.
    let json = obs::chrome::chrome_trace_json();
    std::fs::write(&out, &json).map_err(|e| format!("write {out}: {e}"))?;
    let totals = obs::obs().event_totals();
    println!();
    println!(
        "wrote {out}: {} bytes, {} ring events recorded ({} dropped), {} root spans",
        json.len(),
        totals.recorded,
        totals.dropped,
        obs::spans_snapshot().len()
    );
    Ok(())
}
