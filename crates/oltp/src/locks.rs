//! Record-level lock table with NO-WAIT deadlock avoidance.
//!
//! The transaction manager relies on two-phase locking over record identifiers
//! (MV2PL, §3.2). Deadlocks are avoided rather than detected: a lock request
//! that cannot be granted immediately fails and the requesting transaction
//! aborts and retries (the NO-WAIT policy, which the high-contention OLTP
//! literature the paper cites favours on multi-socket machines).
//!
//! The table is sharded to keep the critical sections short and to avoid a
//! single global hot spot — important because the lock table itself is one of
//! the shared structures that suffer from cross-socket traffic when workers
//! spread over sockets (§5.2).

use parking_lot::Mutex;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

/// Identifier of the lockable resource: a record (row) or a key of a relation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LockKey {
    /// Hash of the relation name (precomputed by the caller).
    pub table: u64,
    /// Row identifier or primary-key value being locked.
    pub record: u64,
}

impl LockKey {
    /// Build a lock key from a relation name and a record identifier.
    pub fn new(table: &str, record: u64) -> Self {
        let mut h = DefaultHasher::new();
        table.hash(&mut h);
        LockKey {
            table: h.finish(),
            record,
        }
    }
}

/// Lock mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockMode {
    /// Shared (read) lock.
    Shared,
    /// Exclusive (write) lock.
    Exclusive,
}

#[derive(Debug, Default)]
struct LockState {
    /// Transaction holding the exclusive lock, if any.
    exclusive: Option<u64>,
    /// Transactions holding shared locks.
    shared: Vec<u64>,
}

/// Sharded record-lock table.
#[derive(Debug)]
pub struct LockTable {
    shards: Vec<Mutex<HashMap<LockKey, LockState>>>,
}

impl Default for LockTable {
    fn default() -> Self {
        Self::new(64)
    }
}

impl LockTable {
    /// Create a lock table with `shards` shards.
    pub fn new(shards: usize) -> Self {
        LockTable {
            shards: (0..shards.max(1))
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
        }
    }

    fn shard(&self, key: &LockKey) -> &Mutex<HashMap<LockKey, LockState>> {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % self.shards.len()]
    }

    /// Try to acquire a lock for transaction `txn`. NO-WAIT: returns `false`
    /// immediately if the request conflicts with locks held by other
    /// transactions. Re-acquisition and upgrade by the same transaction are
    /// allowed when no other holder conflicts.
    pub fn try_acquire(&self, txn: u64, key: LockKey, mode: LockMode) -> bool {
        let mut shard = self.shard(&key).lock();
        let state = shard.entry(key).or_default();
        match mode {
            LockMode::Shared => match state.exclusive {
                Some(owner) if owner != txn => false,
                _ => {
                    if !state.shared.contains(&txn) {
                        state.shared.push(txn);
                    }
                    true
                }
            },
            LockMode::Exclusive => {
                let other_exclusive = state.exclusive.is_some_and(|o| o != txn);
                let other_shared = state.shared.iter().any(|&o| o != txn);
                if other_exclusive || other_shared {
                    return false;
                }
                state.exclusive = Some(txn);
                true
            }
        }
    }

    /// Release every lock held by `txn` on `key`.
    pub fn release(&self, txn: u64, key: LockKey) {
        let mut shard = self.shard(&key).lock();
        if let Some(state) = shard.get_mut(&key) {
            if state.exclusive == Some(txn) {
                state.exclusive = None;
            }
            state.shared.retain(|&o| o != txn);
            if state.exclusive.is_none() && state.shared.is_empty() {
                shard.remove(&key);
            }
        }
    }

    /// Release a set of locks held by `txn`.
    pub fn release_all(&self, txn: u64, keys: &[LockKey]) {
        for &key in keys {
            self.release(txn, key);
        }
    }

    /// Number of currently locked records (for tests and introspection).
    pub fn locked_records(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exclusive_locks_conflict_between_transactions() {
        let lt = LockTable::default();
        let k = LockKey::new("orders", 7);
        assert!(lt.try_acquire(1, k, LockMode::Exclusive));
        assert!(
            !lt.try_acquire(2, k, LockMode::Exclusive),
            "NO-WAIT must fail fast"
        );
        assert!(!lt.try_acquire(2, k, LockMode::Shared));
        lt.release(1, k);
        assert!(lt.try_acquire(2, k, LockMode::Exclusive));
        assert_eq!(lt.locked_records(), 1);
    }

    #[test]
    fn shared_locks_are_compatible_and_block_writers() {
        let lt = LockTable::default();
        let k = LockKey::new("orders", 7);
        assert!(lt.try_acquire(1, k, LockMode::Shared));
        assert!(lt.try_acquire(2, k, LockMode::Shared));
        assert!(!lt.try_acquire(3, k, LockMode::Exclusive));
        lt.release(1, k);
        assert!(!lt.try_acquire(3, k, LockMode::Exclusive));
        lt.release(2, k);
        assert!(lt.try_acquire(3, k, LockMode::Exclusive));
    }

    #[test]
    fn reacquisition_and_upgrade_by_same_transaction() {
        let lt = LockTable::default();
        let k = LockKey::new("orders", 1);
        assert!(lt.try_acquire(1, k, LockMode::Shared));
        assert!(lt.try_acquire(1, k, LockMode::Shared));
        assert!(
            lt.try_acquire(1, k, LockMode::Exclusive),
            "self-upgrade allowed"
        );
        assert!(lt.try_acquire(1, k, LockMode::Exclusive));
        assert!(!lt.try_acquire(2, k, LockMode::Shared));
    }

    #[test]
    fn locks_on_different_records_do_not_conflict() {
        let lt = LockTable::default();
        assert!(lt.try_acquire(1, LockKey::new("orders", 1), LockMode::Exclusive));
        assert!(lt.try_acquire(2, LockKey::new("orders", 2), LockMode::Exclusive));
        assert!(lt.try_acquire(3, LockKey::new("items", 1), LockMode::Exclusive));
        assert_eq!(lt.locked_records(), 3);
    }

    #[test]
    fn release_all_clears_table() {
        let lt = LockTable::new(8);
        let keys: Vec<LockKey> = (0..100).map(|i| LockKey::new("t", i)).collect();
        for &k in &keys {
            assert!(lt.try_acquire(1, k, LockMode::Exclusive));
        }
        assert_eq!(lt.locked_records(), 100);
        lt.release_all(1, &keys);
        assert_eq!(lt.locked_records(), 0);
    }

    #[test]
    fn concurrent_writers_never_hold_the_same_exclusive_lock() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        let lt = Arc::new(LockTable::new(16));
        let in_section = Arc::new(AtomicUsize::new(0));
        let max_seen = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let lt = Arc::clone(&lt);
            let in_section = Arc::clone(&in_section);
            let max_seen = Arc::clone(&max_seen);
            handles.push(std::thread::spawn(move || {
                let k = LockKey::new("hot", 0);
                let mut acquired = 0;
                while acquired < 200 {
                    if lt.try_acquire(t, k, LockMode::Exclusive) {
                        let now = in_section.fetch_add(1, Ordering::SeqCst) + 1;
                        max_seen.fetch_max(now, Ordering::SeqCst);
                        in_section.fetch_sub(1, Ordering::SeqCst);
                        lt.release(t, k);
                        acquired += 1;
                    } else {
                        std::hint::spin_loop();
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(
            max_seen.load(Ordering::SeqCst),
            1,
            "mutual exclusion violated"
        );
        assert_eq!(lt.locked_records(), 0);
    }
}
