//! Durability subsystem: write-ahead logging, group commit, column-segment
//! checkpoints and crash recovery for the adaptive HTAP engine.
//!
//! The paper's engine is in-memory; this crate adds the persistence layer a
//! deployable system needs without disturbing the hot path:
//!
//! * [`record`] — typed, CRC32-framed WAL commit records whose decoding is
//!   total (torn or bit-flipped bytes end the valid prefix, they never
//!   panic);
//! * [`wal`] — the group-commit coordinator: concurrent committers share one
//!   fsync per batch, and a commit only returns once its record is durable;
//! * [`checkpoint`] — atomic column-segment snapshots of every relation,
//!   taken inside the twin-instance switch quiescence window, after which
//!   the WAL is truncated to the checkpoint LSN;
//! * [`recovery`] — loads the latest checkpoint plus the intact WAL tail;
//!   the OLTP crate replays that tail through its normal insert/update path;
//! * [`file`] — the injectable [`DurableFile`]/[`DurableStorage`] I/O
//!   traits, with a real-filesystem backend, an in-memory backend whose
//!   "disk" outlives the engine, and a fault-injecting decorator (dropped,
//!   torn and bit-flipped writes, failing fsyncs, halted media) used by the
//!   crash-recovery test-suite.
//!
//! See `ARCHITECTURE.md` ("Durability & crash recovery") for the record
//! format, the group-commit protocol and the recovery invariant.

pub mod checkpoint;
pub mod error;
pub mod file;
pub mod record;
pub mod recovery;
pub mod wal;

pub use checkpoint::{CheckpointData, CheckpointTable};
pub use error::DurabilityError;
pub use file::{
    AppendFault, DurableFile, DurableStorage, FaultInjector, FaultStorage, FsStorage, MemStorage,
};
pub use record::{crc32, decode_wal, encode_wal_header, Lsn, WalOp, WalRecord, WalSegment};
pub use recovery::{load_state, RecoveredState};
pub use wal::{Wal, WalConfig, WalStats};
