//! The assembled HTAP system.

use crate::config::HtapConfig;
use crate::report::QueryReport;
use htap_chbench::{ChGenerator, PopulationReport, QueryId, TransactionDriver};
use htap_olap::{OlapError, QueryPlan};
use htap_oltp::WorkerReport;
use htap_rde::RdeEngine;
use htap_scheduler::{HtapScheduler, Schedule};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The fully assembled adaptive HTAP system: engines, scheduler and the
/// CH-benCHmark workload drivers.
#[derive(Debug)]
pub struct HtapSystem {
    config: HtapConfig,
    rde: Arc<RdeEngine>,
    scheduler: Mutex<HtapScheduler>,
    txn_driver: Arc<TransactionDriver>,
    population: PopulationReport,
    txn_seed: AtomicU64,
}

impl HtapSystem {
    /// Build the system: bootstrap the engines, create the CH-benCHmark
    /// relations and load the initial population.
    pub fn build(config: HtapConfig) -> Result<Self, String> {
        config.validate()?;
        let rde = Arc::new(RdeEngine::bootstrap(config.rde_config()));
        let generator = ChGenerator::new(config.chbench.clone());
        let population = generator.build(&rde)?;
        let txn_driver = Arc::new(TransactionDriver::for_config(&config.chbench));
        let scheduler = HtapScheduler::new(Arc::clone(&rde), config.schedule);
        Ok(HtapSystem {
            rde,
            scheduler: Mutex::new(scheduler),
            txn_driver,
            population,
            txn_seed: AtomicU64::new(config.chbench.seed),
            config,
        })
    }

    /// The system configuration.
    pub fn config(&self) -> &HtapConfig {
        &self.config
    }

    /// The RDE engine (and through it the OLTP/OLAP engines).
    pub fn rde(&self) -> &Arc<RdeEngine> {
        &self.rde
    }

    /// The initial-population summary.
    pub fn population(&self) -> &PopulationReport {
        &self.population
    }

    /// The CH-benCHmark transaction driver.
    pub fn txn_driver(&self) -> &Arc<TransactionDriver> {
        &self.txn_driver
    }

    /// Run `f` with the scheduler locked (e.g. to inspect its state).
    pub fn with_scheduler<R>(&self, f: impl FnOnce(&HtapScheduler) -> R) -> R {
        f(&self.scheduler.lock())
    }

    /// Change the scheduling discipline (takes effect for the next query).
    pub fn set_schedule(&self, schedule: Schedule) {
        self.scheduler.lock().set_schedule(schedule);
    }

    /// The current scheduling discipline.
    pub fn schedule(&self) -> Schedule {
        self.scheduler.lock().schedule()
    }

    /// Run `count` NewOrder transactions per active OLTP worker (sequentially
    /// over workers, deterministic). Returns the number of committed
    /// transactions. This is the "transactional queue" between analytical
    /// queries.
    pub fn run_oltp(&self, count_per_worker: u64) -> u64 {
        let workers = self
            .rde
            .txn_work()
            .total_workers()
            .min(self.config.chbench.warehouses as usize)
            .max(1);
        let seed = self.txn_seed.fetch_add(1, Ordering::Relaxed);
        let mut committed = 0;
        for worker in 0..workers as u64 {
            committed +=
                self.txn_driver
                    .run_new_orders(self.rde.oltp(), worker, count_per_worker, seed);
        }
        committed
    }

    /// Start continuous OLTP ingest: one long-running worker thread per
    /// core the machine could ever grant the OLTP engine (parked beyond the
    /// current grant), each generating and executing transactions of the
    /// TPC-C-style mix — NewOrder, Payment, Delivery and StockLevel — back
    /// to back (the paper's "complete transactional queue", §3.2). Elastic
    /// migrations resize the pool mid-flight in both directions; aborted
    /// transactions are counted, not retried. Returns the number of worker
    /// threads started (0 when ingest is already running).
    pub fn start_oltp_ingest(&self) -> usize {
        if self.oltp_ingest_running() {
            // No-op starts must not consume a seed: the parameter stream of
            // later runs would shift and break reproducibility.
            return 0;
        }
        let driver = Arc::clone(&self.txn_driver);
        let oltp = Arc::clone(self.rde.oltp());
        let seed = self.txn_seed.fetch_add(1, Ordering::Relaxed);
        let capacity = self.config.topology.total_cores() as usize;
        self.rde.oltp().worker_manager().start_with_capacity(
            capacity,
            move |worker_id, _core, txn_index| {
                driver.run_one_mixed(&oltp, worker_id as u64, seed, txn_index)
            },
        )
    }

    /// Stop the continuous ingest pool and return its per-worker counts.
    pub fn stop_oltp_ingest(&self) -> WorkerReport {
        self.rde.oltp().worker_manager().stop()
    }

    /// Whether the continuous ingest pool is running.
    pub fn oltp_ingest_running(&self) -> bool {
        self.rde.oltp().worker_manager().ingest_running()
    }

    /// Live `(committed, aborted)` totals of the continuous ingest pool —
    /// sampled around each analytical query to derive measured OLTP
    /// throughput. `(0, 0)` when ingest is not running.
    pub fn oltp_live_counts(&self) -> (u64, u64) {
        self.rde.oltp().worker_manager().live_counts()
    }

    /// Run `count` NewOrder transactions per worker using one OS thread per
    /// worker (exercises the concurrent transaction path).
    pub fn run_oltp_parallel(&self, count_per_worker: u64) -> u64 {
        let workers = self
            .rde
            .txn_work()
            .total_workers()
            .min(self.config.chbench.warehouses as usize)
            .max(1);
        let seed = self.txn_seed.fetch_add(1, Ordering::Relaxed);
        let driver = &self.txn_driver;
        let oltp = self.rde.oltp();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers as u64)
                .map(|worker| {
                    scope.spawn(move || driver.run_new_orders(oltp, worker, count_per_worker, seed))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .sum()
        })
    }

    /// Number of pipeline workers the OLAP engine currently fields — the
    /// cores the RDE engine has granted it. Elastic migrations change this
    /// between queries, and with it the measured parallelism of the next
    /// query.
    pub fn olap_worker_count(&self) -> usize {
        self.rde.olap().workers().worker_count()
    }

    /// Schedule and execute one analytical query plan.
    ///
    /// Errors (rather than panicking) when the plan references relations or
    /// columns the scheduled access paths cannot serve.
    pub fn execute_plan(
        &self,
        label: &str,
        plan: &QueryPlan,
        is_batch: bool,
    ) -> Result<QueryReport, OlapError> {
        let scheduled = {
            let scheduler = self.scheduler.lock();
            scheduler.schedule_query(plan, is_batch)
        };
        let txn = self.rde.txn_work();
        let execution = self
            .rde
            .olap()
            .run_query(plan, &scheduled.sources, Some(&txn))?;
        let olap_traffic = self
            .rde
            .olap_traffic_for(&execution.output.work.bytes_per_socket);
        let oltp_tps = self.rde.modeled_oltp_throughput(&olap_traffic);
        self.rde.clock().advance(
            htap_sim::clock::Activity::QueryExecution,
            execution.modeled.total,
        );
        Ok(QueryReport {
            query: label.to_string(),
            state: scheduled.state,
            execution_time: execution.modeled.total,
            scheduling_time: scheduled.scheduling_time,
            freshness_rate: scheduled.freshness.freshness_rate(),
            fresh_rows_accessed: execution.output.work.fresh_rows,
            bytes_scanned: execution.output.work.total_bytes(),
            oltp_tps,
            oltp_tps_measured: false,
            oltp_sample_window: 0.0,
            result_rows: execution.output.result.row_count(),
            performed_etl: scheduled.migration.etl.is_some(),
        })
    }

    /// Schedule and execute one CH-benCHmark query.
    pub fn execute_query(&self, query: QueryId) -> Result<QueryReport, OlapError> {
        self.execute_plan(query.label(), &query.plan(), false)
    }

    /// Schedule and execute one CH-benCHmark query as part of a batch
    /// (batches always take the ETL branch of Algorithm 2). Follow-up queries
    /// of the batch reuse the snapshot, so their report carries no scheduling
    /// overhead.
    pub fn execute_batch_query(
        &self,
        query: QueryId,
        is_follow_up: bool,
    ) -> Result<QueryReport, OlapError> {
        let mut report = self.execute_plan(query.label(), &query.plan(), true)?;
        if is_follow_up {
            report.scheduling_time = 0.0;
            report.performed_etl = false;
        }
        Ok(report)
    }
}

impl Drop for HtapSystem {
    /// The ingest threads hold `Arc`s into the engines, so a system dropped
    /// mid-ingest would leave them running forever — stop the pool first.
    fn drop(&mut self) {
        self.stop_oltp_ingest();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use htap_rde::SystemState;
    use htap_scheduler::SchedulerPolicy;

    fn tiny_system() -> HtapSystem {
        HtapSystem::build(HtapConfig::tiny()).unwrap()
    }

    #[test]
    fn build_populates_the_database() {
        let system = tiny_system();
        assert!(system.population().orderlines > 0);
        assert_eq!(
            system.population().total_rows,
            system.rde().oltp().total_rows()
        );
        assert!(system.rde().oltp().table("orderline").is_some());
        assert!(system.rde().olap().store().table("orderline").is_some());
    }

    #[test]
    fn oltp_and_olap_sides_work_together() {
        let system = tiny_system();
        let committed = system.run_oltp(5);
        assert!(committed > 0);
        let report = system.execute_query(QueryId::Q6).unwrap();
        assert!(report.execution_time > 0.0);
        assert!(report.result_rows >= 1);
        assert!(report.oltp_tps > 0.0);
        assert!(report.bytes_scanned > 0);
    }

    #[test]
    fn query_results_are_consistent_across_schedules() {
        // The same data must produce the same Q6 answer regardless of the
        // schedule that executed it.
        let system = tiny_system();
        system.run_oltp(3);
        let mut answers = Vec::new();
        for schedule in [
            Schedule::Static(SystemState::S2Isolated),
            Schedule::Static(SystemState::S1Colocated),
            Schedule::Static(SystemState::S3HybridIsolated),
            Schedule::Static(SystemState::S3HybridNonIsolated),
            Schedule::Adaptive(SchedulerPolicy::adaptive_non_isolated(0.5)),
        ] {
            system.set_schedule(schedule);
            let plan = QueryId::Q6.plan();
            let scheduled = system.with_scheduler(|s| s.schedule_query(&plan, false));
            let exec = system
                .rde()
                .olap()
                .run_query(&plan, &scheduled.sources, None)
                .unwrap();
            answers.push(exec.output.result.scalars().unwrap()[0]);
        }
        for pair in answers.windows(2) {
            assert!(
                (pair[0] - pair[1]).abs() < 1e-6,
                "schedules disagree on the query answer: {answers:?}"
            );
        }
    }

    #[test]
    fn parallel_oltp_commits_the_requested_work() {
        let system = tiny_system();
        let committed = system.run_oltp_parallel(3);
        // Two warehouses in the tiny config -> at most 2 concurrent workers.
        assert_eq!(committed, 2 * 3);
        assert!(system.txn_driver().stats().committed() >= committed);
    }

    #[test]
    fn continuous_ingest_runs_until_stopped() {
        let system = tiny_system();
        let workers = system.start_oltp_ingest();
        assert!(workers > 0);
        assert!(system.oltp_ingest_running());
        // A second start leaves the running pool untouched.
        assert_eq!(system.start_oltp_ingest(), 0);
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
        while system.oltp_live_counts().0 == 0 {
            assert!(
                std::time::Instant::now() < deadline,
                "no commits within 30s"
            );
            std::thread::yield_now();
        }
        // Analytics work while ingest runs (the switch gate quiesces workers).
        let report = system.execute_query(QueryId::Q6).unwrap();
        assert!(report.execution_time > 0.0);
        let pool = system.stop_oltp_ingest();
        assert!(!system.oltp_ingest_running());
        assert!(pool.committed() > 0);
        assert_eq!(
            pool.committed(),
            system.txn_driver().stats().committed(),
            "pool counters must agree with the driver's statistics"
        );
    }

    #[test]
    fn schedule_changes_take_effect() {
        let system = tiny_system();
        system.set_schedule(Schedule::Static(SystemState::S2Isolated));
        let report = system.execute_query(QueryId::Q1).unwrap();
        assert_eq!(report.state, SystemState::S2Isolated);
        assert!(report.performed_etl);

        system.set_schedule(Schedule::Static(SystemState::S3HybridIsolated));
        let report = system.execute_query(QueryId::Q1).unwrap();
        assert_eq!(report.state, SystemState::S3HybridIsolated);
        assert!(!report.performed_etl);
        assert_eq!(system.schedule().label(), "S3-IS");
    }

    #[test]
    fn batch_follow_up_queries_do_not_pay_scheduling() {
        let system = tiny_system();
        let first = system.execute_batch_query(QueryId::Q6, false).unwrap();
        let follow_up = system.execute_batch_query(QueryId::Q6, true).unwrap();
        assert!(first.scheduling_time >= 0.0);
        assert_eq!(follow_up.scheduling_time, 0.0);
        assert!(!follow_up.performed_etl);
    }
}
