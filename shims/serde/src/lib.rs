//! Offline stand-in for `serde`.
//!
//! Provides the `Serialize` / `Deserialize` derive names (as no-op derives)
//! so the crates in this workspace build without network access. Swap the
//! workspace `[workspace.dependencies]` entry for the real crates.io `serde`
//! to restore actual serialisation support.

pub use serde_derive::{Deserialize, Serialize};
