//! The discrete states of the HTAP design spectrum (§3.4).

/// The system states the RDE engine can migrate between.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SystemState {
    /// S1 — co-located OLTP and OLAP: the engines share the sockets; the OLAP
    /// engine reads the inactive OLTP instance in place.
    S1Colocated,
    /// S2 — isolated OLTP and OLAP: socket-level isolation, fresh data is
    /// ETL'd into the OLAP instance before query execution.
    S2Isolated,
    /// S3-IS — hybrid, isolated mode: socket-level compute isolation, the OLAP
    /// engine reads only the fresh data it needs from the OLTP socket over
    /// the interconnect (split access).
    S3HybridIsolated,
    /// S3-NI — hybrid, non-isolated mode: the OLAP engine additionally borrows
    /// CPU cores on the OLTP socket to access fresh data at full memory
    /// bandwidth.
    S3HybridNonIsolated,
}

impl SystemState {
    /// Whether the state lets OLAP compute run on the OLTP engine's sockets.
    pub fn shares_oltp_compute(self) -> bool {
        matches!(
            self,
            SystemState::S1Colocated | SystemState::S3HybridNonIsolated
        )
    }

    /// Whether the state performs an ETL into the OLAP instance.
    pub fn performs_etl(self) -> bool {
        matches!(self, SystemState::S2Isolated)
    }

    /// The static-schedule label used in the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            SystemState::S1Colocated => "S1",
            SystemState::S2Isolated => "S2",
            SystemState::S3HybridIsolated => "S3-IS",
            SystemState::S3HybridNonIsolated => "S3-NI",
        }
    }

    /// All states, in the order the paper presents them.
    pub fn all() -> [SystemState; 4] {
        [
            SystemState::S1Colocated,
            SystemState::S2Isolated,
            SystemState::S3HybridIsolated,
            SystemState::S3HybridNonIsolated,
        ]
    }
}

impl std::fmt::Display for SystemState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Elasticity mode of Algorithm 2: when elasticity is allowed, whether the
/// scheduler prefers hybrid execution (borrowing OLTP cores) or full
/// co-location.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ElasticityMode {
    /// Prefer S3-NI: borrow some OLTP cores for fresh-data access.
    Hybrid,
    /// Prefer S1: fully co-locate the engines.
    Colocation,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_properties_match_paper_descriptions() {
        assert!(SystemState::S1Colocated.shares_oltp_compute());
        assert!(SystemState::S3HybridNonIsolated.shares_oltp_compute());
        assert!(!SystemState::S2Isolated.shares_oltp_compute());
        assert!(!SystemState::S3HybridIsolated.shares_oltp_compute());

        assert!(SystemState::S2Isolated.performs_etl());
        assert!(!SystemState::S1Colocated.performs_etl());
    }

    #[test]
    fn labels_match_figures() {
        let labels: Vec<&str> = SystemState::all().iter().map(|s| s.label()).collect();
        assert_eq!(labels, vec!["S1", "S2", "S3-IS", "S3-NI"]);
        assert_eq!(SystemState::S3HybridIsolated.to_string(), "S3-IS");
    }
}
