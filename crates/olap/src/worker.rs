//! The OLAP engine's worker manager.
//!
//! "The OLAP engine also includes a Worker Manager, which works in a similar
//! way to the WM of the OLTP engine" (§3.3): it holds the CPUs the RDE engine
//! has granted and exposes them as an execution placement. Each pipeline
//! worker is affinitised to one core; the placement (cores per socket) is what
//! both the routing policies and the cost model consume.

use htap_sim::{CoreId, CpuSet, ExecPlacement, SocketId, Topology};
use parking_lot::RwLock;

/// Elastic pool of OLAP pipeline workers.
#[derive(Debug)]
pub struct OlapWorkerManager {
    topology: Topology,
    cores: RwLock<CpuSet>,
}

impl OlapWorkerManager {
    /// New manager with no cores assigned.
    pub fn new(topology: Topology) -> Self {
        OlapWorkerManager {
            topology,
            cores: RwLock::new(CpuSet::new()),
        }
    }

    /// Replace the worker pool with one worker per core of `cores`
    /// (called by the RDE engine during state migration).
    pub fn set_workers(&self, cores: CpuSet) {
        *self.cores.write() = cores;
    }

    /// Add cores to the pool (elastic scale-up).
    pub fn add_cores(&self, cores: &CpuSet) {
        let mut current = self.cores.write();
        *current = current.union(cores);
    }

    /// Remove cores from the pool (elastic scale-down); returns the cores
    /// actually removed.
    pub fn remove_cores(&self, cores: &CpuSet) -> CpuSet {
        let mut current = self.cores.write();
        let removed: CpuSet = current.iter().filter(|c| cores.contains(*c)).collect();
        *current = current.difference(cores);
        removed
    }

    /// The cores currently assigned.
    pub fn cores(&self) -> CpuSet {
        self.cores.read().clone()
    }

    /// Number of workers.
    pub fn worker_count(&self) -> usize {
        self.cores.read().len()
    }

    /// Cores on a given socket.
    pub fn cores_on(&self, socket: SocketId) -> usize {
        self.cores.read().count_on_socket(&self.topology, socket)
    }

    /// The execution placement (cores per socket) used by routing and the
    /// cost model.
    pub fn placement(&self) -> ExecPlacement {
        let cores = self.cores.read();
        let mut placement = ExecPlacement::new();
        for socket in self.topology.socket_ids() {
            let n = cores.count_on_socket(&self.topology, socket);
            if n > 0 {
                placement = placement.with(socket, n);
            }
        }
        placement
    }

    /// Worker-to-core assignment, in worker order.
    pub fn affinity(&self) -> Vec<CoreId> {
        self.cores.read().iter().collect()
    }

    /// The machine topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn placement_reflects_assigned_cores() {
        let topo = Topology::two_socket();
        let wm = OlapWorkerManager::new(topo.clone());
        assert_eq!(wm.worker_count(), 0);
        assert_eq!(wm.placement().total_cores(), 0);

        wm.set_workers(CpuSet::socket(&topo, SocketId(1)));
        assert_eq!(wm.worker_count(), 14);
        assert_eq!(wm.cores_on(SocketId(1)), 14);
        assert_eq!(wm.placement().cores_on(SocketId(1)), 14);
        assert_eq!(wm.placement().cores_on(SocketId(0)), 0);
    }

    #[test]
    fn elastic_add_and_remove() {
        let topo = Topology::two_socket();
        let wm = OlapWorkerManager::new(topo.clone());
        wm.set_workers(CpuSet::socket(&topo, SocketId(1)));
        let borrowed = CpuSet::from_cores([CoreId(0), CoreId(1), CoreId(2), CoreId(3)]);
        wm.add_cores(&borrowed);
        assert_eq!(wm.worker_count(), 18);
        assert_eq!(wm.placement().cores_on(SocketId(0)), 4);

        let removed = wm.remove_cores(&borrowed);
        assert_eq!(removed.len(), 4);
        assert_eq!(wm.worker_count(), 14);
        assert_eq!(wm.cores_on(SocketId(0)), 0);
        // Removing cores we do not hold is a no-op.
        let removed = wm.remove_cores(&CpuSet::from_cores([CoreId(0)]));
        assert_eq!(removed.len(), 0);
    }

    #[test]
    fn affinity_lists_cores_in_order() {
        let topo = Topology::tiny();
        let wm = OlapWorkerManager::new(topo.clone());
        wm.set_workers(CpuSet::from_cores([CoreId(3), CoreId(0)]));
        assert_eq!(wm.affinity(), vec![CoreId(0), CoreId(3)]);
        assert_eq!(wm.topology().sockets, 2);
    }
}
