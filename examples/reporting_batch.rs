//! A reporting workload (§2.3 "query batches"): periodic report generation
//! runs a batch of queries over one consistent snapshot. Batches always take
//! the ETL branch of Algorithm 2, so the transfer cost is paid once and then
//! amortised across the whole batch — the decoupled-storage sweet spot.
//!
//! Run with: `cargo run --example reporting_batch --release`

use adaptive_htap::core::{run_mixed_workload, MixedWorkload};
use adaptive_htap::{HtapConfig, HtapSystem, QueryId};

fn main() -> Result<(), String> {
    let system = HtapSystem::build(HtapConfig::small())?;
    println!(
        "nightly reporting over {} rows",
        system.population().total_rows
    );

    // Compare how the per-query cost changes with the size of the report batch.
    for batch_size in [1usize, 2, 4, 8, 16] {
        let workload = MixedWorkload::batches(QueryId::Q1, batch_size, 1, 100);
        let report =
            run_mixed_workload(&system, &workload).expect("CH workload matches the CH schema");
        let sequence = &report.sequences[0];
        let scheduling: f64 = sequence.queries.iter().map(|q| q.scheduling_time).sum();
        let execution: f64 = sequence.queries.iter().map(|q| q.execution_time).sum();
        println!(
            "batch of {batch_size:>2}: total={:.4}s (etl+switch {:.4}s, execution {:.4}s) -> {:.4}s per report, OLTP {:.2} MTPS",
            sequence.total_time(),
            scheduling,
            execution,
            sequence.total_time() / batch_size as f64,
            sequence.oltp_mtps(),
        );
    }
    Ok(())
}
