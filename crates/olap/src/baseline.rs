//! The frozen block-interpreted executor — the pre-vectorization morsel
//! kernels, kept verbatim as a measured performance baseline.
//!
//! [`BaselineExecutor`] is the executor this crate shipped before the
//! vectorized rewrite: expression trees are interpreted per block with a
//! fresh `Vec<f64>` per node, filters materialise `Vec<bool>` masks, the
//! group-by keys heap-allocated `Vec<i64>` into per-morsel `BTreeMap`s, and
//! join build sides rebuild `std::collections::HashSet`s per morsel.
//!
//! It exists for two reasons and is **never** on the production query path:
//!
//! 1. **Perf trajectory** — `cargo run -p htap-bench --bin bench_exec`
//!    executes every plan shape on both engines and writes the rows/sec
//!    ratio to `BENCH_exec.json`, so each PR leaves a measured before/after
//!    on the same machine.
//! 2. **Differential testing** — `tests/differential_exec.rs` asserts the
//!    vectorized engine produces *bit-for-bit* the same [`QueryOutput`]
//!    (results and [`WorkProfile`] accounting) as this baseline on every
//!    randomized plan: both fold rows in morsel order, so not even the
//!    floating-point sums may differ.
//!
//! Everything below mirrors the old `exec.rs` pipelines; only the
//! `Result`-returning expression API (the typed `MissingColumn` error that
//! replaced the evaluation panics) required touch-ups.

use crate::error::OlapError;
use crate::exec::{
    accessed_refs, finalize_groups, merge_group_table, numeric_columns, side_build_bytes,
    source_for, split_read_columns, QueryOutput, QueryResult, WorkProfile,
};
use crate::expr::{evaluate_conjunction, AggExpr, AggState, ScalarExpr};
use crate::morsel::Morsel;
use crate::plan::{BuildSide, QueryPlan, TopK};
use crate::source::ScanSource;
use crate::worker::WorkerTeam;
// lint:allow(unordered-container): frozen pre-vectorization baseline; sets are membership-only
use std::collections::{BTreeMap, HashSet};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Partial result of one morsel of an aggregation pipeline.
struct AggPartial {
    states: Vec<AggState>,
    profile: WorkProfile,
}

/// Partial result of one morsel of a group-by pipeline.
struct GroupPartial {
    groups: BTreeMap<Vec<i64>, Vec<AggState>>,
    profile: WorkProfile,
}

/// Partial result of one morsel of a join build pipeline.
struct BuildPartial {
    // lint:allow(unordered-container): membership-only key set, never iterated into output
    keys: HashSet<i64>,
    probes: u64,
    profile: WorkProfile,
}

/// Partial result of one morsel of a join probe pipeline.
struct ProbePartial {
    states: Vec<AggState>,
    probes: u64,
    profile: WorkProfile,
}

/// Partial result of one morsel of a join-then-group-by probe pipeline.
struct GroupProbePartial {
    groups: BTreeMap<Vec<i64>, Vec<AggState>>,
    probes: u64,
    profile: WorkProfile,
}

/// The frozen block-interpreted morsel executor (see the module docs).
#[derive(Debug, Clone)]
pub struct BaselineExecutor {
    /// Tuples per morsel (the unit of work a pipeline worker claims).
    pub block_rows: usize,
}

impl Default for BaselineExecutor {
    fn default() -> Self {
        BaselineExecutor {
            block_rows: crate::block::DEFAULT_BLOCK_ROWS,
        }
    }
}

impl BaselineExecutor {
    /// Executor with a custom morsel size (tests and benches).
    pub fn with_block_rows(block_rows: usize) -> Self {
        BaselineExecutor { block_rows }
    }

    /// Execute `plan` sequentially (a solo worker team).
    pub fn execute(
        &self,
        plan: &QueryPlan,
        sources: &BTreeMap<String, ScanSource>,
    ) -> Result<QueryOutput, OlapError> {
        self.execute_parallel(plan, sources, &WorkerTeam::solo())
    }

    /// Execute `plan` with one pipeline worker per core of `team`.
    pub fn execute_parallel(
        &self,
        plan: &QueryPlan,
        sources: &BTreeMap<String, ScanSource>,
        team: &WorkerTeam,
    ) -> Result<QueryOutput, OlapError> {
        match plan {
            QueryPlan::Aggregate {
                table,
                filters,
                aggregates,
            } => self.execute_aggregate(table, filters, aggregates, sources, team),
            QueryPlan::GroupByAggregate {
                table,
                filters,
                group_by,
                aggregates,
            } => self.execute_group_by(table, filters, group_by, aggregates, sources, team),
            QueryPlan::JoinAggregate {
                fact,
                dim,
                fact_key,
                dim_key,
                fact_filters,
                dim_filters,
                aggregates,
            } => self.execute_join(
                fact,
                dim,
                fact_key,
                dim_key,
                fact_filters,
                dim_filters,
                aggregates,
                sources,
                team,
            ),
            QueryPlan::MultiJoinAggregate {
                fact,
                fact_key,
                fact_filters,
                mid,
                mid_fk,
                far,
                aggregates,
            } => self.execute_multi_join(
                fact,
                fact_key,
                fact_filters,
                mid,
                mid_fk,
                far,
                aggregates,
                sources,
                team,
            ),
            QueryPlan::JoinGroupByAggregate {
                fact,
                fact_key,
                fact_filters,
                dim,
                group_by,
                aggregates,
                top_k,
            } => self.execute_join_group_by(
                fact,
                fact_key,
                fact_filters,
                dim,
                group_by,
                aggregates,
                *top_k,
                sources,
                team,
            ),
            // The frozen baseline predates the operator DAG (and its
            // multiplicity-preserving join); it only ever measures the five
            // named shapes above.
            QueryPlan::Dag(_) => Err(OlapError::InvalidDag {
                reason: "the frozen baseline executor only runs the five named plan shapes".into(),
            }),
        }
    }

    /// Evaluate a join-key expression over a block and cast to `i64`.
    fn key_values(expr: &ScalarExpr, block: &crate::block::Block) -> Result<Vec<i64>, OlapError> {
        Ok(expr
            .evaluate(block)?
            .into_iter()
            .map(|v| v as i64)
            .collect())
    }

    /// Join keys of one block: plain column references take the exact `i64`
    /// key path, computed expressions go through [`Self::key_values`].
    fn expr_keys(expr: &ScalarExpr, block: &crate::block::Block) -> Result<Vec<i64>, OlapError> {
        if let ScalarExpr::Col(name) = expr {
            if let Some(keys) = block.key(name) {
                return Ok(keys.to_vec());
            }
        }
        Self::key_values(expr, block)
    }

    /// Build the hash set of join keys of one [`BuildSide`] — per-morsel
    /// `HashSet` partials unioned after the pipeline (the allocation pattern
    /// the vectorized engine's per-worker [`crate::hashtable::KeySet`]
    /// replaced).
    fn build_key_set(
        &self,
        source: &ScanSource,
        side: &BuildSide,
        // lint:allow(unordered-container): membership probe set, queried with contains() only
        membership: Option<(&ScalarExpr, &HashSet<i64>)>,
        team: &WorkerTeam,
        work: &mut WorkProfile,
        // lint:allow(unordered-container): returned set is only probed, never iterated
    ) -> Result<HashSet<i64>, OlapError> {
        let fk_expr = membership.map(|(fk, _)| fk);
        let key_exprs: Vec<&ScalarExpr> = std::iter::once(&side.key).chain(fk_expr).collect();
        let (numeric, key_cols) = split_read_columns(&side.filters, &[], &key_exprs, &[]);
        let numeric_refs: Vec<&str> = numeric.iter().map(String::as_str).collect();
        let key_refs: Vec<&str> = key_cols.iter().map(String::as_str).collect();
        let accessed = accessed_refs(&numeric_refs, &key_refs);
        let morsels = source.morsels(self.block_rows);
        let partials = Self::run_pipeline(team, &morsels, |morsel| {
            let block = source.read_morsel(morsel, &numeric_refs, &key_refs)?;
            let selection = evaluate_conjunction(&side.filters, &block)?;
            let keys = Self::expr_keys(&side.key, &block)?;
            let fks = fk_expr.map(|fk| Self::expr_keys(fk, &block)).transpose()?;
            // lint:allow(unordered-container): per-morsel build partial; order-insensitive union
            let mut passing = HashSet::new();
            let mut probes = 0u64;
            for (row, &sel) in selection.iter().enumerate() {
                if !sel {
                    continue;
                }
                if let (Some(fks), Some((_, set))) = (&fks, membership) {
                    probes += 1;
                    if !set.contains(&fks[row]) {
                        continue;
                    }
                }
                passing.insert(keys[row]);
            }
            let mut profile = WorkProfile::default();
            profile.absorb_morsel(source, morsel, &accessed);
            Ok(BuildPartial {
                keys: passing,
                probes,
                profile,
            })
        })?;
        // lint:allow(unordered-container): union of partials is order-insensitive
        let mut set = HashSet::new();
        for partial in partials {
            work.merge(&partial.profile);
            work.probes += partial.probes;
            set.extend(partial.keys);
        }
        Ok(set)
    }

    /// Drive one pipeline over `morsels` with the team's workers, returning
    /// per-morsel partials in morsel-index order.
    fn run_pipeline<P, F>(
        team: &WorkerTeam,
        morsels: &[Morsel],
        task: F,
    ) -> Result<Vec<P>, OlapError>
    where
        P: Send,
        F: Fn(&Morsel) -> Result<P, OlapError> + Sync,
    {
        let cursor = AtomicUsize::new(0);
        let worker_results = team.capped(morsels.len()).run(|_worker| {
            let mut claimed: Vec<(usize, P)> = Vec::new();
            loop {
                let idx = cursor.fetch_add(1, Ordering::Relaxed);
                if idx >= morsels.len() {
                    break;
                }
                claimed.push((idx, task(&morsels[idx])?));
            }
            Ok(claimed)
        });
        let mut partials: Vec<(usize, P)> = Vec::with_capacity(morsels.len());
        for result in worker_results {
            partials.extend(result?);
        }
        partials.sort_by_key(|(idx, _)| *idx);
        Ok(partials.into_iter().map(|(_, p)| p).collect())
    }

    /// Evaluate the aggregate inputs of one block (None for `COUNT(*)`).
    fn aggregate_inputs(
        aggregates: &[AggExpr],
        block: &crate::block::Block,
    ) -> Result<Vec<Option<Vec<f64>>>, OlapError> {
        aggregates
            .iter()
            .map(|agg| match agg {
                AggExpr::Count => Ok(None),
                AggExpr::Sum(e) | AggExpr::Avg(e) | AggExpr::Min(e) | AggExpr::Max(e) => {
                    e.evaluate(block).map(Some)
                }
            })
            .collect()
    }

    fn execute_aggregate(
        &self,
        table: &str,
        filters: &[crate::expr::Predicate],
        aggregates: &[AggExpr],
        sources: &BTreeMap<String, ScanSource>,
        team: &WorkerTeam,
    ) -> Result<QueryOutput, OlapError> {
        let source = source_for(sources, table)?;
        let numeric = numeric_columns(filters, aggregates);
        let numeric_refs: Vec<&str> = numeric.iter().map(String::as_str).collect();
        let morsels = source.morsels(self.block_rows);

        let partials = Self::run_pipeline(team, &morsels, |morsel| {
            let block = source.read_morsel(morsel, &numeric_refs, &[])?;
            let selection = evaluate_conjunction(filters, &block)?;
            let mut states = vec![AggState::default(); aggregates.len()];
            let inputs = Self::aggregate_inputs(aggregates, &block)?;
            let mut selected = 0u64;
            for row in 0..block.rows() {
                if !selection[row] {
                    continue;
                }
                selected += 1;
                for (state, input) in states.iter_mut().zip(&inputs) {
                    match input {
                        None => state.update_count(),
                        Some(values) => state.update(values[row]),
                    }
                }
            }
            let mut profile = WorkProfile::default();
            profile.absorb_morsel(source, morsel, &numeric_refs);
            profile.tuples_selected = selected;
            Ok(AggPartial { states, profile })
        })?;

        let mut work = WorkProfile::default();
        let mut states = vec![AggState::default(); aggregates.len()];
        for partial in &partials {
            work.merge(&partial.profile);
            for (state, partial_state) in states.iter_mut().zip(&partial.states) {
                state.merge(partial_state);
            }
        }

        Ok(QueryOutput {
            result: QueryResult::Scalars(
                aggregates
                    .iter()
                    .zip(&states)
                    .map(|(agg, st)| st.finalize(agg))
                    .collect(),
            ),
            work,
        })
    }

    fn execute_group_by(
        &self,
        table: &str,
        filters: &[crate::expr::Predicate],
        group_by: &[String],
        aggregates: &[AggExpr],
        sources: &BTreeMap<String, ScanSource>,
        team: &WorkerTeam,
    ) -> Result<QueryOutput, OlapError> {
        let source = source_for(sources, table)?;
        let numeric = numeric_columns(filters, aggregates);
        let numeric_refs: Vec<&str> = numeric.iter().map(String::as_str).collect();
        let key_refs: Vec<&str> = group_by.iter().map(String::as_str).collect();
        let accessed = accessed_refs(&numeric_refs, &key_refs);
        let morsels = source.morsels(self.block_rows);

        let partials = Self::run_pipeline(team, &morsels, |morsel| {
            let block = source.read_morsel(morsel, &numeric_refs, &key_refs)?;
            let selection = evaluate_conjunction(filters, &block)?;
            let key_columns: Vec<&[i64]> = key_refs
                .iter()
                .map(|k| {
                    block.key(k).ok_or_else(|| OlapError::MissingColumn {
                        column: (*k).to_string(),
                    })
                })
                .collect::<Result<_, _>>()?;
            let inputs = Self::aggregate_inputs(aggregates, &block)?;
            let mut groups: BTreeMap<Vec<i64>, Vec<AggState>> = BTreeMap::new();
            let mut selected = 0u64;
            for row in 0..block.rows() {
                if !selection[row] {
                    continue;
                }
                selected += 1;
                let key: Vec<i64> = key_columns.iter().map(|col| col[row]).collect();
                let states = groups
                    .entry(key)
                    .or_insert_with(|| vec![AggState::default(); aggregates.len()]);
                for (i, input) in inputs.iter().enumerate() {
                    match input {
                        None => states[i].update_count(),
                        Some(values) => states[i].update(values[row]),
                    }
                }
            }
            let mut profile = WorkProfile::default();
            profile.absorb_morsel(source, morsel, &accessed);
            profile.tuples_selected = selected;
            Ok(GroupPartial { groups, profile })
        })?;

        let mut work = WorkProfile::default();
        let mut groups: BTreeMap<Vec<i64>, Vec<AggState>> = BTreeMap::new();
        for partial in partials {
            work.merge(&partial.profile);
            merge_group_table(&mut groups, partial.groups);
        }

        Ok(QueryOutput {
            result: QueryResult::Groups(finalize_groups(groups, aggregates)),
            work,
        })
    }

    #[allow(clippy::too_many_arguments)]
    fn execute_join(
        &self,
        fact: &str,
        dim: &str,
        fact_key: &str,
        dim_key: &str,
        fact_filters: &[crate::expr::Predicate],
        dim_filters: &[crate::expr::Predicate],
        aggregates: &[AggExpr],
        sources: &BTreeMap<String, ScanSource>,
        team: &WorkerTeam,
    ) -> Result<QueryOutput, OlapError> {
        let fact_source = source_for(sources, fact)?;
        let dim_source = source_for(sources, dim)?;

        let dim_side = BuildSide::new(dim, ScalarExpr::col(dim_key), dim_filters.to_vec());
        let mut work = WorkProfile::default();
        let build = self.build_key_set(dim_source, &dim_side, None, team, &mut work)?;

        let fact_numeric = numeric_columns(fact_filters, aggregates);
        let fact_numeric_refs: Vec<&str> = fact_numeric.iter().map(String::as_str).collect();
        let fact_cols = accessed_refs(&fact_numeric_refs, &[fact_key]);
        let fact_morsels = fact_source.morsels(self.block_rows);
        let build_ref = &build;
        let probe_partials = Self::run_pipeline(team, &fact_morsels, |morsel| {
            let block = fact_source.read_morsel(morsel, &fact_numeric_refs, &[fact_key])?;
            let selection = evaluate_conjunction(fact_filters, &block)?;
            let keys = block
                .key(fact_key)
                .ok_or_else(|| OlapError::MissingColumn {
                    column: fact_key.to_string(),
                })?;
            let inputs = Self::aggregate_inputs(aggregates, &block)?;
            let mut states = vec![AggState::default(); aggregates.len()];
            let mut probes = 0u64;
            let mut selected = 0u64;
            for row in 0..block.rows() {
                if !selection[row] {
                    continue;
                }
                probes += 1;
                if !build_ref.contains(&keys[row]) {
                    continue;
                }
                selected += 1;
                for (i, input) in inputs.iter().enumerate() {
                    match input {
                        None => states[i].update_count(),
                        Some(values) => states[i].update(values[row]),
                    }
                }
            }
            let mut profile = WorkProfile::default();
            profile.absorb_morsel(fact_source, morsel, &fact_cols);
            profile.tuples_selected = selected;
            Ok(ProbePartial {
                states,
                probes,
                profile,
            })
        })?;

        let mut states = vec![AggState::default(); aggregates.len()];
        for partial in &probe_partials {
            work.merge(&partial.profile);
            work.probes += partial.probes;
            for (state, partial_state) in states.iter_mut().zip(&partial.states) {
                state.merge(partial_state);
            }
        }

        work.build_bytes = side_build_bytes(dim_source, &dim_side.read_columns(None));
        work.hash_table_bytes = build.len() as u64 * 16;

        Ok(QueryOutput {
            result: QueryResult::Scalars(
                aggregates
                    .iter()
                    .zip(&states)
                    .map(|(agg, st)| st.finalize(agg))
                    .collect(),
            ),
            work,
        })
    }

    #[allow(clippy::too_many_arguments)]
    fn execute_multi_join(
        &self,
        fact: &str,
        fact_key: &ScalarExpr,
        fact_filters: &[crate::expr::Predicate],
        mid: &BuildSide,
        mid_fk: &ScalarExpr,
        far: &BuildSide,
        aggregates: &[AggExpr],
        sources: &BTreeMap<String, ScanSource>,
        team: &WorkerTeam,
    ) -> Result<QueryOutput, OlapError> {
        let fact_source = source_for(sources, fact)?;
        let mid_source = source_for(sources, &mid.table)?;
        let far_source = source_for(sources, &far.table)?;
        let mut work = WorkProfile::default();

        let far_set = self.build_key_set(far_source, far, None, team, &mut work)?;
        work.far_build_bytes = side_build_bytes(far_source, &far.read_columns(None));
        work.far_hash_table_bytes = far_set.len() as u64 * 16;

        let mid_set =
            self.build_key_set(mid_source, mid, Some((mid_fk, &far_set)), team, &mut work)?;
        work.build_bytes = side_build_bytes(mid_source, &mid.read_columns(Some(mid_fk)));
        work.hash_table_bytes = mid_set.len() as u64 * 16;

        let (fact_numeric, fact_keys) =
            split_read_columns(fact_filters, aggregates, &[fact_key], &[]);
        let fact_refs: Vec<&str> = fact_numeric.iter().map(String::as_str).collect();
        let fact_key_refs: Vec<&str> = fact_keys.iter().map(String::as_str).collect();
        let accessed = accessed_refs(&fact_refs, &fact_key_refs);
        let fact_morsels = fact_source.morsels(self.block_rows);
        let mid_ref = &mid_set;
        let probe_partials = Self::run_pipeline(team, &fact_morsels, |morsel| {
            let block = fact_source.read_morsel(morsel, &fact_refs, &fact_key_refs)?;
            let selection = evaluate_conjunction(fact_filters, &block)?;
            let keys = Self::expr_keys(fact_key, &block)?;
            let inputs = Self::aggregate_inputs(aggregates, &block)?;
            let mut states = vec![AggState::default(); aggregates.len()];
            let mut probes = 0u64;
            let mut selected = 0u64;
            for row in 0..block.rows() {
                if !selection[row] {
                    continue;
                }
                probes += 1;
                if !mid_ref.contains(&keys[row]) {
                    continue;
                }
                selected += 1;
                for (i, input) in inputs.iter().enumerate() {
                    match input {
                        None => states[i].update_count(),
                        Some(values) => states[i].update(values[row]),
                    }
                }
            }
            let mut profile = WorkProfile::default();
            profile.absorb_morsel(fact_source, morsel, &accessed);
            profile.tuples_selected = selected;
            Ok(ProbePartial {
                states,
                probes,
                profile,
            })
        })?;

        let mut states = vec![AggState::default(); aggregates.len()];
        for partial in &probe_partials {
            work.merge(&partial.profile);
            work.probes += partial.probes;
            for (state, partial_state) in states.iter_mut().zip(&partial.states) {
                state.merge(partial_state);
            }
        }

        Ok(QueryOutput {
            result: QueryResult::Scalars(
                aggregates
                    .iter()
                    .zip(&states)
                    .map(|(agg, st)| st.finalize(agg))
                    .collect(),
            ),
            work,
        })
    }

    #[allow(clippy::too_many_arguments)]
    fn execute_join_group_by(
        &self,
        fact: &str,
        fact_key: &ScalarExpr,
        fact_filters: &[crate::expr::Predicate],
        dim: &BuildSide,
        group_by: &[String],
        aggregates: &[AggExpr],
        top_k: Option<TopK>,
        sources: &BTreeMap<String, ScanSource>,
        team: &WorkerTeam,
    ) -> Result<QueryOutput, OlapError> {
        if let Some(tk) = top_k {
            if tk.agg_index >= aggregates.len() {
                return Err(OlapError::InvalidTopK {
                    agg_index: tk.agg_index,
                    aggregates: aggregates.len(),
                });
            }
        }
        let fact_source = source_for(sources, fact)?;
        let dim_source = source_for(sources, &dim.table)?;
        let mut work = WorkProfile::default();

        let build = self.build_key_set(dim_source, dim, None, team, &mut work)?;
        work.build_bytes = side_build_bytes(dim_source, &dim.read_columns(None));
        work.hash_table_bytes = build.len() as u64 * 16;

        let (fact_numeric, fact_keys) =
            split_read_columns(fact_filters, aggregates, &[fact_key], group_by);
        let fact_refs: Vec<&str> = fact_numeric.iter().map(String::as_str).collect();
        let fact_key_refs: Vec<&str> = fact_keys.iter().map(String::as_str).collect();
        let accessed = accessed_refs(&fact_refs, &fact_key_refs);
        let fact_morsels = fact_source.morsels(self.block_rows);
        let build_ref = &build;
        let partials = Self::run_pipeline(team, &fact_morsels, |morsel| {
            let block = fact_source.read_morsel(morsel, &fact_refs, &fact_key_refs)?;
            let selection = evaluate_conjunction(fact_filters, &block)?;
            let join_keys = Self::expr_keys(fact_key, &block)?;
            let key_columns: Vec<&[i64]> = group_by
                .iter()
                .map(|k| {
                    block.key(k).ok_or_else(|| OlapError::MissingColumn {
                        column: k.to_string(),
                    })
                })
                .collect::<Result<_, _>>()?;
            let inputs = Self::aggregate_inputs(aggregates, &block)?;
            let mut groups: BTreeMap<Vec<i64>, Vec<AggState>> = BTreeMap::new();
            let mut probes = 0u64;
            let mut selected = 0u64;
            for row in 0..block.rows() {
                if !selection[row] {
                    continue;
                }
                probes += 1;
                if !build_ref.contains(&join_keys[row]) {
                    continue;
                }
                selected += 1;
                let key: Vec<i64> = key_columns.iter().map(|col| col[row]).collect();
                let states = groups
                    .entry(key)
                    .or_insert_with(|| vec![AggState::default(); aggregates.len()]);
                for (i, input) in inputs.iter().enumerate() {
                    match input {
                        None => states[i].update_count(),
                        Some(values) => states[i].update(values[row]),
                    }
                }
            }
            let mut profile = WorkProfile::default();
            profile.absorb_morsel(fact_source, morsel, &accessed);
            profile.tuples_selected = selected;
            Ok(GroupProbePartial {
                groups,
                probes,
                profile,
            })
        })?;

        let mut groups: BTreeMap<Vec<i64>, Vec<AggState>> = BTreeMap::new();
        for partial in partials {
            work.merge(&partial.profile);
            work.probes += partial.probes;
            merge_group_table(&mut groups, partial.groups);
        }

        let mut rows = finalize_groups(groups, aggregates);
        if let Some(tk) = top_k {
            rows.sort_by(|a, b| {
                b.1[tk.agg_index]
                    .total_cmp(&a.1[tk.agg_index])
                    .then_with(|| a.0.cmp(&b.0))
            });
            rows.truncate(tk.k);
        }
        Ok(QueryOutput {
            result: QueryResult::Groups(rows),
            work,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::QueryExecutor;
    use crate::expr::{CmpOp, Predicate};
    use htap_sim::SocketId;
    use htap_storage::{ColumnDef, ColumnarTable, DataType, TableSchema, TableSnapshot, Value};
    use std::sync::Arc;

    fn sources_for(n: u64) -> BTreeMap<String, ScanSource> {
        let schema = TableSchema::new(
            "orderline",
            vec![
                ColumnDef::new("ol_number", DataType::I64),
                ColumnDef::new("ol_quantity", DataType::I32),
                ColumnDef::new("ol_amount", DataType::F64),
                ColumnDef::new("ol_i_id", DataType::I64),
            ],
            Some(0),
        );
        let t = ColumnarTable::new(schema);
        for i in 0..n {
            t.append_row(&[
                Value::I64(i as i64),
                Value::I32((i % 10) as i32),
                Value::F64((i % 100) as f64 + 0.1),
                Value::I64((i % 5) as i64),
            ])
            .unwrap();
        }
        let snap = TableSnapshot::new("orderline".into(), Arc::new(t), n, 0);
        let mut m = BTreeMap::new();
        m.insert(
            "orderline".to_string(),
            ScanSource::contiguous_snapshot(&snap, SocketId(0)),
        );
        m
    }

    /// The contract the perf trajectory rests on: the frozen baseline and
    /// the vectorized engine produce bit-for-bit identical outputs
    /// (results *and* work profiles) — any drift would invalidate the
    /// before/after comparison in `BENCH_exec.json`.
    #[test]
    fn baseline_and_vectorized_agree_bit_for_bit() {
        let sources = sources_for(2_003);
        let plans = [
            QueryPlan::Aggregate {
                table: "orderline".into(),
                filters: vec![Predicate::new("ol_quantity", CmpOp::Lt, 7.0)],
                aggregates: vec![
                    AggExpr::Sum(ScalarExpr::col("ol_amount") * ScalarExpr::col("ol_quantity")),
                    AggExpr::Avg(ScalarExpr::col("ol_amount")),
                    AggExpr::Count,
                ],
            },
            QueryPlan::GroupByAggregate {
                table: "orderline".into(),
                filters: vec![Predicate::new("ol_amount", CmpOp::Ge, 3.0)],
                group_by: vec!["ol_quantity".into()],
                aggregates: vec![
                    AggExpr::Sum(ScalarExpr::col("ol_amount")),
                    AggExpr::Min(ScalarExpr::col("ol_amount")),
                    AggExpr::Count,
                ],
            },
        ];
        for plan in &plans {
            let baseline = BaselineExecutor::with_block_rows(97)
                .execute(plan, &sources)
                .unwrap();
            let vectorized = QueryExecutor::with_block_rows(97)
                .execute(plan, &sources)
                .unwrap();
            assert_eq!(baseline, vectorized, "{} diverged", plan.label());
        }
    }
}
